#!/usr/bin/env python3
"""Dead-spot revival with coherent diversity (§8, §11.4).

A client with ~0 dB links cannot receive anything from a single 802.11 AP.
With MegaMIMO's diversity mode, N APs transmit the same stream with
per-packet phase synchronization so the signals add coherently — an N^2
SNR gain — and the dead spot comes alive.  The paper's Fig. 11 reports
~21 Mbps at 0 dB with 10 APs.

    python examples/dead_spot_diversity.py
"""

import numpy as np

from repro import MegaMimoSystem, SystemConfig, get_mcs
from repro.channel.models import RicianChannel
from repro.constants import MAC_EFFICIENCY, SAMPLE_RATE_USRP
from repro.mac.rate import EffectiveSnrRateSelector
from repro.sim.fastsim import SyncErrorModel, diversity_snr_db, build_channel_tensor


def sample_level_demo():
    """Sample level: a 4-AP system actually delivering a packet at 3 dB."""
    print("Sample-level demo: 4 APs, one client with 3 dB links\n")
    config = SystemConfig(n_aps=4, n_clients=1, seed=20)
    system = MegaMimoSystem.create(
        config, client_snr_db=3.0, channel_model=RicianChannel(k_factor=8.0)
    )
    system.run_sounding(0.0)
    report = system.diversity_transmit(
        b"rescued from the dead spot!", get_mcs(1), client_index=0, start_time=1e-3
    )
    r = report.receptions[0]
    print(f"  single-link SNR:       ~3 dB (no 802.11 service)")
    print(f"  post-combining SNR:    {r.effective_snr_db:.1f} dB")
    print(f"  decoded: {r.decoded.payload!r} (CRC {'ok' if r.decoded.crc_ok else 'BAD'})\n")


def coverage_sweep():
    """Fast path: throughput vs. link SNR for growing AP counts."""
    rng = np.random.default_rng(11)
    selector = EffectiveSnrRateSelector(SAMPLE_RATE_USRP, mac_efficiency=MAC_EFFICIENCY)
    error_model = SyncErrorModel()
    snrs = np.arange(-5.0, 21.0, 2.5)

    print("Coverage sweep (throughput in Mbps):\n")
    header = "SNR(dB)   802.11"
    for n in (2, 4, 10):
        header += f"  {n:3d} APs"
    print(header)
    for s in snrs:
        row = f"{s:7.1f}"
        base = np.mean(
            [
                selector.goodput(
                    10 * np.log10(np.abs(build_channel_tensor(
                        np.full((1, 1), s), rng)[:, 0, 0]) ** 2 + 1e-12)
                )
                for _ in range(20)
            ]
        ) / 1e6
        row += f"  {base:7.2f}"
        for n in (2, 4, 10):
            rates = []
            for _ in range(20):
                ch = build_channel_tensor(np.full((1, n), s), rng)
                errors = error_model.phase_errors(n, rng)
                rates.append(selector.goodput(diversity_snr_db(ch[:, 0, :], phase_errors=errors)))
            row += f"  {np.mean(rates) / 1e6:7.2f}"
        print(row)
    print(
        "\nAt 0 dB a single AP delivers nothing; 10 APs deliver ~20 Mbps —"
        "\ncoherent combining turns dead spots into served clients."
    )


if __name__ == "__main__":
    sample_level_demo()
    coverage_sweep()
