#!/usr/bin/env python3
"""Working with off-the-shelf 802.11n clients (§6).

An 802.11n card with 2 antennas can only sound 2 transmit streams per
packet, so it can never snapshot a 4-antenna distributed system at once.
This example runs the paper's reference-antenna "trick": every sounding is
a 2-stream packet containing the lead's reference antenna L1, and phase
drift between packets is cancelled using measurements of L1 alone — then
beamforms 4 streams from two independent APs to two 2-antenna clients.

    python examples/compat_80211n.py
"""

import numpy as np

from repro.core.beamforming import zero_forcing_precoder
from repro.core.compat80211n import Compat80211nSounder, stitching_phase_error
from repro.core.narrowband import NarrowbandNetwork
from repro.utils.units import linear_to_db

TX = ["L1", "L2", "S1", "S2"]
RX = ["R1a", "R1b", "R2a", "R2b"]


def build_network(seed):
    net = NarrowbandNetwork(rng=seed)
    net.add_device("lead-ap", ["L1", "L2"])
    net.add_device("slave-ap", ["S1", "S2"])
    net.add_device("client1", ["R1a", "R1b"])
    net.add_device("client2", ["R2a", "R2b"])
    net.randomize_channels(TX, RX + ["S1"])
    return net


def main():
    net = build_network(seed=3)
    sounder = Compat80211nSounder(net, reference_antenna="L1",
                                  client_snr_db=30.0, ap_snr_db=35.0)

    print("1. Stitched sounding: sequential 2-stream packets, 2 ms apart")
    est = sounder.measure(TX, RX, packet_spacing_s=2e-3)
    truth = sounder.true_snapshot(TX, RX, est.reference_time)
    errors = stitching_phase_error(est, truth)
    print(f"   median stitching phase error: {np.median(errors):.4f} rad")

    naive = sounder.naive_measure(TX, RX, packet_spacing_s=2e-3)
    naive_errors = stitching_phase_error(naive, truth)
    print(f"   naive (no reference antenna): {np.median(naive_errors):.4f} rad")

    print("\n2. Joint 4x4 zero-forcing from the stitched snapshot")
    w, k = zero_forcing_precoder(est.channel)
    eff = truth @ w
    signal = np.abs(np.diag(eff)) ** 2
    leak = np.sum(np.abs(eff) ** 2, axis=1) - signal
    for i, rx in enumerate(RX):
        sir = linear_to_db(signal[i] / max(leak[i], 1e-30))
        print(f"   stream -> {rx}: signal-to-leakage {sir:6.1f} dB")

    print("\n3. The same precoder from the naive snapshot")
    w_naive, _ = zero_forcing_precoder(naive.channel)
    eff = truth @ w_naive
    signal = np.abs(np.diag(eff)) ** 2
    leak = np.sum(np.abs(eff) ** 2, axis=1) - signal
    worst = linear_to_db(np.min(signal / np.maximum(leak, 1e-30)))
    print(f"   worst stream signal-to-leakage: {worst:.1f} dB "
          "(inter-packet drift corrupts the snapshot)")

    print(
        "\nOnly the reference-antenna stitching yields a snapshot clean"
        "\nenough for distributed beamforming — with zero client changes."
    )


if __name__ == "__main__":
    main()
