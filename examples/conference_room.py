#!/usr/bin/env python3
"""Conference-room scenario: the paper's motivating deployment (§1, §3).

Builds a physical room (Fig. 5 style), places N APs and N clients, drives
the full link layer — shared downlink queue, lead election, joint
scheduling, weighted contention, effective-SNR rate selection, ARQ — over
the fast frequency-domain PHY, and compares aggregate throughput against
traditional 802.11 for growing AP counts.

    python examples/conference_room.py [n_aps_max]
"""

import sys

import numpy as np

from repro.constants import MAC_EFFICIENCY, SAMPLE_RATE_USRP, SNR_BANDS_DB
from repro.mac.arq import ArqController
from repro.mac.csma import CsmaSimulator, Station
from repro.mac.queue import DownlinkQueue
from repro.mac.rate import EffectiveSnrRateSelector
from repro.mac.scheduler import JointScheduler
from repro.sim.fastsim import SyncErrorModel, joint_zf_sinr_db, unicast_snr_db
from repro.sim.network import NetworkScenario, ScenarioConfig


def simulate_airtime_second(n: int, seed: int, selector, error_model, rng):
    """One second of downlink traffic for an n-AP, n-client room."""
    scenario = NetworkScenario(ScenarioConfig(n_aps=n, n_clients=n, seed=seed))
    scenario.clip_snrs_to_band(SNR_BANDS_DB["high"])
    channels = scenario.channel_tensor()
    est = error_model.corrupt_estimate(channels, scenario.client_ap_snr_db, rng)
    errors = error_model.phase_errors(n, rng)
    sinr_db = joint_zf_sinr_db(channels, phase_errors=errors, est_channels=est)

    # per-stream rates the PHY would sustain
    stream_rates = np.array([selector.goodput(sinr_db[c]) for c in range(n)])
    best_ap = np.argmax(scenario.client_ap_snr_db, axis=1)
    unicast_rates = np.array(
        [
            selector.goodput(unicast_snr_db(channels, c, int(best_ap[c])))
            for c in range(n)
        ]
    )

    # link layer: every client has backlogged traffic
    queue = DownlinkQueue(scenario.client_ap_snr_db)
    for c in range(n):
        for _ in range(4):
            queue.enqueue(c, size_bytes=1500)
    scheduler = JointScheduler(queue, max_streams=n)
    arq = ArqController(queue)

    group = scheduler.next_group()
    delivered_bits = 0
    now = 0.0
    while group is not None:
        for packet in group.packets:
            arq.on_transmit(packet, now)
            # a stream below its MCS floor is lost and retransmitted
            if stream_rates[packet.client] > 0:
                arq.on_ack(packet.seqno)
                delivered_bits += packet.size_bytes * 8
        arq.poll_timeouts(now + 1.0)
        now += 1e-3
        group = scheduler.next_group()

    # contention: the MegaMIMO lead contends once for n packets
    contention = CsmaSimulator(
        [Station("megamimo-lead", weight=n), Station("legacy", weight=1)],
        rng=rng,
    ).run(2000)

    return {
        "megamimo_bps": float(stream_rates.sum()),
        "baseline_bps": float(unicast_rates.mean()),
        "delivered_frames": len(arq.delivered),
        "lead_share": contention.share("megamimo-lead"),
    }


def main():
    n_max = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    rng = np.random.default_rng(2012)
    selector = EffectiveSnrRateSelector(SAMPLE_RATE_USRP, mac_efficiency=MAC_EFFICIENCY)
    error_model = SyncErrorModel()

    print(f"Conference room, high-SNR band, 2..{n_max} APs (= clients)\n")
    print("n_aps  802.11(Mbps)  MegaMIMO(Mbps)   gain  frames/burst  lead airtime")
    for n in range(2, n_max + 1):
        cells = [
            simulate_airtime_second(n, seed, selector, error_model, rng)
            for seed in range(3)
        ]
        mm = np.mean([c["megamimo_bps"] for c in cells]) / 1e6
        bl = np.mean([c["baseline_bps"] for c in cells]) / 1e6
        frames = np.mean([c["delivered_frames"] for c in cells])
        share = np.mean([c["lead_share"] for c in cells])
        print(
            f"{n:5d}  {bl:12.1f}  {mm:14.1f}  {mm / bl:4.1f}x  "
            f"{frames:12.1f}  {share:11.2f}"
        )
    print(
        "\nThe network's total throughput keeps growing as APs are added to"
        "\nthe same channel — the paper's headline property."
    )


if __name__ == "__main__":
    main()
