#!/usr/bin/env python3
"""Quickstart: two independent APs jointly beamform to two clients.

Runs the full sample-level protocol — interleaved channel sounding, lead
sync header, slave phase correction, zero-forcing beamforming — and shows
both clients decoding their own packets concurrently on one channel.

    python examples/quickstart.py
"""


from repro import MegaMimoSystem, SystemConfig, get_mcs
from repro.channel.models import RicianChannel


def main():
    print("MegaMIMO quickstart: 2 APs -> 2 clients, one 10 MHz channel\n")

    config = SystemConfig(n_aps=2, n_clients=2, seed=7)
    system = MegaMimoSystem.create(
        config,
        client_snr_db=25.0,
        channel_model=RicianChannel(k_factor=8.0),  # conference-room LOS
    )

    print("1. Channel measurement phase (interleaved sounding, §5.1)...")
    sounding = system.run_sounding(start_time=0.0)
    for i, est in enumerate(sounding.client_estimates):
        cfos = ", ".join(f"{c:+.0f} Hz" for c in est.cfos_hz)
        print(f"   client{i}: per-AP CFOs [{cfos}], "
              f"noise estimate {est.noise_power:.2f}")

    print("\n2. Joint data transmission (sync header + beamforming, §5.2)...")
    payloads = [b"packet for client zero :)", b"packet for client one  :D"]
    report = system.joint_transmit(payloads, get_mcs(2), start_time=1e-3)

    for slave, mis in report.misalignment_rad.items():
        print(f"   {slave} phase misalignment at transmit time: {mis:.4f} rad")
    print(f"   beamforming diagonal gain k = {report.precoder_gain:.2f}\n")

    print("3. Client decode results:")
    for i, (reception, sent) in enumerate(zip(report.receptions, payloads)):
        decoded = reception.decoded
        status = "OK " if decoded.crc_ok and decoded.payload == sent else "FAIL"
        print(
            f"   client{i}: [{status}] SNR {reception.effective_snr_db:5.1f} dB, "
            f"EVM {reception.evm_db:6.1f} dB, payload={decoded.payload!r}"
        )

    both = all(
        r.decoded.crc_ok and r.decoded.payload == p
        for r, p in zip(report.receptions, payloads)
    )
    print(
        "\nTwo packets delivered concurrently by two independent, "
        "unsynchronized APs." if both else "\nDecode failed — try another seed."
    )


if __name__ == "__main__":
    main()
