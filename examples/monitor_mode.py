#!/usr/bin/env python3
"""Monitor mode: sniff everything a bystander hears on the channel.

Puts a passive listener on the medium while a MegaMIMO cell sounds and
jointly transmits, captures its samples, and runs the packet sniffer +
waveform analyzer over the capture.  A nice way to *see* the protocol:
the sounding frame, the per-packet sync headers, the beamformed payloads
(which the bystander generally cannot decode — the streams are nulled
away from it), and any legacy traffic.

    python examples/monitor_mode.py
"""

import numpy as np

from repro import MegaMimoSystem, SystemConfig, get_mcs
from repro.channel.interference import LegacySender
from repro.channel.models import LinkChannel, RicianChannel
from repro.channel.oscillator import Oscillator, OscillatorConfig
from repro.core.system import OFDM_SIGNAL_POWER
from repro.phy.analysis import analyze_waveform
from repro.phy.sniffer import PacketSniffer
from repro.utils.units import db_to_linear


def main():
    config = SystemConfig(n_aps=2, n_clients=2, seed=9)
    system = MegaMimoSystem.create(
        config, client_snr_db=25.0, channel_model=RicianChannel(k_factor=8.0)
    )
    fs = config.sample_rate

    # a passive observer that hears every AP
    spy_osc = Oscillator(OscillatorConfig(ppm_offset=0.7), rng=1)
    system.medium.register_node("spy", spy_osc)
    gain = db_to_linear(22.0) / OFDM_SIGNAL_POWER
    for antenna in system.antenna_ids:
        system.medium.set_link(
            antenna, "spy", RicianChannel(k_factor=8.0).realize(gain, rng=2)
        )

    # run the protocol but keep the medium contents for the spy
    print("Running sounding + one joint transmission with a spy present...\n")
    system.run_sounding(0.0)

    # replay a joint transmission without clearing, so the spy can listen
    payloads = [b"secret for client zero!!", b"secret for client one!!!"]
    original_clear = system.medium.clear
    system.medium.clear = lambda: None  # keep transmissions audible
    report = system.joint_transmit(payloads, get_mcs(2), start_time=1e-3)
    # some legacy traffic on the same channel afterwards
    system.medium.register_node("legacy", Oscillator(OscillatorConfig(ppm_offset=-1.2), rng=3))
    system.medium.set_link(
        "legacy", "spy", LinkChannel(taps=np.array([0.9 + 0.2j]) * np.sqrt(gain))
    )
    LegacySender(frame_bytes=48, inter_frame_s=200e-6).schedule(
        system.medium, "legacy", 2.6e-3, 0.8e-3, rng=4
    )

    capture = system.medium.receive("spy", 0.0, int(3.6e-3 * fs))
    system.medium.clear = original_clear
    system.medium.clear()

    print("Capture stats:", analyze_waveform(capture).format_summary(), "\n")

    packets = PacketSniffer(fs, threshold=0.65).sniff(capture)
    print(f"The spy detected {len(packets)} frames:")
    for p in packets:
        t_ms = p.sample_offset / fs * 1e3
        if p.decoded.crc_ok:
            desc = f"DECODED {p.decoded.payload[:24]!r}"
        elif p.decoded.mcs is not None:
            desc = (f"header parsed ({p.decoded.mcs.name}, {p.decoded.length} B) "
                    "but payload unreadable - beamformed away from the spy")
        else:
            desc = "preamble only (sounding / unparseable)"
        print(f"  t={t_ms:6.3f} ms  cfo={p.cfo_hz:+7.0f} Hz  {desc}")

    decoded_payloads = [p.decoded.payload for p in packets if p.decoded.crc_ok]
    leaked = [pl for pl in payloads if pl in decoded_payloads]
    print(
        f"\nClient payloads leaked to the spy: {len(leaked)}/2 — beamforming"
        "\nnulls are not a security mechanism, but off-axis SINR is usually"
        "\ntoo low for the spy to decode what the clients decode cleanly."
    )
    for r, pl in zip(report.receptions, payloads):
        assert r.decoded.payload == pl, "clients themselves must decode"


if __name__ == "__main__":
    main()
