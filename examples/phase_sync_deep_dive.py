#!/usr/bin/env python3
"""Why distributed phase sync is hard — and how MegaMIMO solves it (§4-§5).

Walks through the paper's argument numerically:

1. independent oscillators drift apart (the §1 numeric examples);
2. one-shot CFO extrapolation accumulates unbounded phase error;
3. MegaMIMO's per-packet direct measurement keeps error flat forever;
4. decoupled measurements (§7): a client joining later doesn't force
   re-measuring everyone.

    python examples/phase_sync_deep_dive.py
"""

import numpy as np

from repro import MegaMimoSystem, SystemConfig
from repro.channel.models import RicianChannel
from repro.core.decoupled import DecoupledChannelBook
from repro.core.narrowband import NarrowbandNetwork
from repro.core.phasesync import NaiveCfoExtrapolator
from repro.core.sounding import REFERENCE_OFFSET
from repro.phy.preamble import sync_header, sync_header_length
from repro.utils.units import wrap_phase


def part1_drift():
    print("1. Oscillator drift (§1)")
    print("   a 10 Hz CFO estimation error accumulates "
          f"{np.rad2deg(2 * np.pi * 10 * 5.5e-3):.0f} degrees in 5.5 ms;")
    print("   a 100 Hz error accumulates "
          f"{2 * np.pi * 100 * 20e-3 / np.pi:.0f}*pi radians in 20 ms —")
    print("   beamforming needs < 0.1 rad, so extrapolation cannot last.\n")


def part2_extrapolation():
    print("2. One-shot CFO extrapolation (the §5.2b strawman)")
    naive = NaiveCfoExtrapolator(true_cfo_hz=5_000.0, cfo_error_hz=25.0)
    print("   elapsed(ms)  accumulated phase error (rad)")
    for t in (1e-3, 5e-3, 20e-3, 100e-3, 250e-3):
        err = naive.phase_error(np.array([t]))[0]
        print(f"   {t * 1e3:10.0f}  {err:12.2f}")
    print()


def part3_direct_measurement():
    print("3. MegaMIMO: direct per-packet phase measurement")
    config = SystemConfig(n_aps=2, n_clients=1, seed=5)
    system = MegaMimoSystem.create(
        config, client_snr_db=25.0, channel_model=RicianChannel(k_factor=8.0)
    )
    system.run_sounding(0.0)
    slave = system.ap_ids[1]
    sync = system.synchronizers[slave]
    fs = config.sample_rate
    header_len = sync_header_length()
    lead_osc = system.medium.oscillator(system.lead_id)
    slave_osc = system.medium.oscillator(slave)
    tref = system.reference_time

    print("   elapsed(ms)  measured-correction error (rad)")
    for t_ms in (1, 5, 20, 100, 250):
        t0 = round(t_ms * 1e-3 * fs) / fs
        system.medium.clear()
        system.medium.transmit(system.lead_id, sync_header(), t0)
        rx = system.medium.receive(slave, t0, header_len)
        obs = sync.observe_header(rx, t0 + REFERENCE_OFFSET / fs)
        ideal = (
            lead_osc.phase_at([obs.header_time])[0]
            - slave_osc.phase_at([obs.header_time])[0]
            - lead_osc.phase_at([tref])[0]
            + slave_osc.phase_at([tref])[0]
        )
        err = abs(wrap_phase(float(np.angle(obs.rotation)) - ideal))
        print(f"   {t_ms:10d}  {err:12.4f}")
    system.medium.clear()
    print("   -> flat in elapsed time: re-measuring beats predicting.\n")


def part4_decoupled():
    print("4. Decoupled measurements (§7): clients join at different times")
    net = NarrowbandNetwork(rng=6)
    aps = ["ap0", "ap1", "ap2"]
    clients = ["alice", "bob", "carol"]
    for ap in aps:
        net.add_device(ap, [ap])
    for c in clients:
        net.add_device(c, [c])
    net.randomize_channels(aps, clients + aps[1:])

    book = DecoupledChannelBook(net, aps, client_snr_db=32.0, ap_snr_db=35.0)
    book.record_measurement("alice", 0.0)
    book.record_measurement("bob", 40e-3)     # joins 40 ms later
    book.record_measurement("carol", 95e-3)   # joins 95 ms later

    good = book.interference_leakage_db(t=120e-3)
    bad = book.interference_leakage_db(t=120e-3, matrix=book.naive_matrix())
    print(f"   leakage with lead-reference correction: {good:7.1f} dB")
    print(f"   leakage without correction:             {bad:7.1f} dB")
    print("   -> the lead->slave channels are the shared clock reference;"
          "\n      nobody re-measures when a client joins.")


if __name__ == "__main__":
    part1_drift()
    part2_extrapolation()
    part3_direct_measurement()
    part4_decoupled()
