#!/usr/bin/env python3
"""Link-layer time simulation: MegaMIMO under real traffic (§9 + §5).

Runs the event-driven downlink simulator — shared queue, lead election,
joint scheduling, rate selection, ARQ — over Clarke-fading channels with
periodic re-sounding, and shows three trade-offs the static experiments
can't:

1. goodput vs. offered load (saturation behaviour),
2. the re-sounding interval sweet spot for a given coherence time,
3. loss-driven rate adaptation under fast fading.

    python examples/link_layer_sim.py
"""


from repro.mac.simulator import DownlinkSimulator, LinkLayerConfig


def saturation_sweep():
    print("1. Goodput vs. offered load (4 APs x 4 clients, Tc = 250 ms)\n")
    print("   offered(Mbps)  delivered(Mbps)  mean latency(ms)")
    for rate_pps in (100, 300, 600, 1200):
        trace = DownlinkSimulator(
            LinkLayerConfig(
                n_aps=4, n_clients=4, duration_s=0.4,
                arrival_rate_pps=float(rate_pps), seed=1,
            )
        ).run()
        offered = 4 * rate_pps * 1500 * 8 / 1e6
        print(
            f"   {offered:13.1f}  {trace.total_goodput_bps / 1e6:15.1f}"
            f"  {trace.mean_latency_s * 1e3:16.2f}"
        )
    print("   -> delivery tracks load until the channel saturates;"
          " latency explodes past saturation.\n")


def resound_sweep():
    print("2. Re-sounding interval vs. goodput (Tc = 100 ms, backlogged)\n")
    print("   interval(ms)  goodput(Mbps)  loss rate  soundings")
    for interval_ms in (5, 15, 40, 100):
        trace = DownlinkSimulator(
            LinkLayerConfig(
                n_aps=4, n_clients=4, duration_s=0.4,
                coherence_time_s=0.1,
                resound_interval_s=interval_ms * 1e-3, seed=2,
            )
        ).run()
        print(
            f"   {interval_ms:12d}  {trace.total_goodput_bps / 1e6:13.1f}"
            f"  {trace.loss_rate:9.1%}  {trace.n_soundings:9d}"
        )
    print("   -> sound too often and airtime drowns in overhead;"
          " too rarely and stale CSI loses packets.\n")


def adaptation_demo():
    print("3. Rate adaptation under fast fading (Tc = 40 ms, sparse sounding)\n")
    base = dict(
        n_aps=3, n_clients=3, duration_s=0.3,
        coherence_time_s=0.04, resound_interval_s=60e-3, seed=3,
    )
    for adapt in (False, True):
        trace = DownlinkSimulator(
            LinkLayerConfig(rate_adaptation=adapt, **base)
        ).run()
        label = "adaptive" if adapt else "fixed   "
        print(
            f"   {label}: goodput {trace.total_goodput_bps / 1e6:5.1f} Mbps, "
            f"loss {trace.loss_rate:5.1%}"
        )
    print("   -> widening the MCS margin on loss bursts trades peak rate"
          "\n      for far fewer retransmissions.")


if __name__ == "__main__":
    saturation_sweep()
    resound_sweep()
    adaptation_demo()
