#!/usr/bin/env python3
"""CI smoke test for the watchdog + crash-forensics pipeline (ISSUE 9).

Runs a quick figure sweep with a deliberately hung chunk
(``REPRO_FAULT_HANG_CHUNK``) under a tight watchdog deadline
(``REPRO_WATCHDOG_TIMEOUT_S``) and asserts the whole black-box story
end-to-end:

* the sweep does **not** hang — the watchdog declares the stall and the
  run still exits 0 because the abandoned chunk is re-run through the
  serial-retry path;
* the stall leaves a ``runs/crash-<runid>/`` forensics bundle whose
  manifest names the ``watchdog_stall`` reason;
* ``repro obs blackbox list`` sees the bundle and ``repro obs blackbox
  show --json`` round-trips it (flight-recorder records, all-thread
  stacks and the last progress snapshot included);
* the run's ledger record links the bundle as a critical alarm.

    python scripts/blackbox_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

RUNS_DIR = Path("blackbox_runs")
SWEEP = [
    "figure", "6", "--scale", "0.2", "--workers", "2", "--backend", "thread",
    "--ledger", str(RUNS_DIR),
]

#: Hang the chunk of cell 0 holding trial 0 for far longer than the run;
#: only the watchdog can get the sweep past it.
HANG_SPEC = "0:0:300"
WATCHDOG_DEADLINE_S = "2"

#: Hard cap on the faulted run: generous against slow CI runners, but a
#: fraction of the injected hang, so a dead watchdog fails loudly here.
RUN_TIMEOUT_S = 180


def run(args: list, env: dict | None = None) -> subprocess.CompletedProcess:
    cmd = [sys.executable, "-m", "repro", *args]
    print("+", " ".join(cmd), flush=True)
    return subprocess.run(
        cmd, env=env, capture_output=True, text=True, timeout=RUN_TIMEOUT_S,
    )


def main() -> int:
    failures = []
    env = dict(os.environ)
    env["REPRO_FAULT_HANG_CHUNK"] = HANG_SPEC
    env["REPRO_WATCHDOG_TIMEOUT_S"] = WATCHDOG_DEADLINE_S

    try:
        sweep = run(SWEEP, env=env)
    except subprocess.TimeoutExpired:
        print(f"FAIL: faulted sweep still running after {RUN_TIMEOUT_S}s — "
              "the watchdog never recovered the hung chunk")
        return 1
    if sweep.returncode != 0:
        sys.stderr.write(sweep.stderr)
        failures.append(f"faulted sweep exited {sweep.returncode}, want 0")
    if "watchdog" not in sweep.stderr:
        failures.append("run stderr never mentioned the watchdog stall")
    else:
        print("sweep completed despite the injected hang (watchdog fired)")

    bundles = sorted(RUNS_DIR.glob("crash-*")) if RUNS_DIR.is_dir() else []
    if len(bundles) != 1:
        failures.append(f"want exactly 1 crash bundle, found "
                        f"{[b.name for b in bundles]}")
    else:
        manifest = json.loads((bundles[0] / "bundle.json").read_text())
        if manifest.get("reason") != "watchdog_stall":
            failures.append(f"bundle reason {manifest.get('reason')!r}, "
                            "want 'watchdog_stall'")
        print(f"bundle {bundles[0].name}: reason={manifest.get('reason')}, "
              f"{len(manifest.get('files', []))} files")

    listing = run(["obs", "blackbox", "list", "--ledger", str(RUNS_DIR)])
    if listing.returncode != 0 or "watchdog_stall" not in listing.stdout:
        failures.append("`repro obs blackbox list` did not show the bundle")

    show = run(["obs", "blackbox", "show", "--json",
                "--ledger", str(RUNS_DIR)])
    if show.returncode != 0:
        failures.append(f"`repro obs blackbox show` exited {show.returncode}")
    else:
        doc = json.loads(show.stdout)
        if doc.get("detail", {}).get("stalled_chunks", 0) < 1:
            failures.append("bundle detail records no stalled chunks")
        if not doc.get("flightrec", {}).get("records"):
            failures.append("bundle flight recorder is empty")
        if "Current thread" not in doc.get("stacks", ""):
            failures.append("bundle stacks.txt captured no threads")
        progress = doc.get("progress") or {}
        print(f"blackbox show: run {doc.get('run_id')}, "
              f"{len(doc['flightrec']['records'])} flight records, "
              f"last progress {((progress.get('data') or {}).get('done_chunks'))}"
              f"/{((progress.get('data') or {}).get('total_chunks'))} chunks")

        ledger_path = RUNS_DIR / "ledger.jsonl"
        records = [json.loads(line) for line in
                   ledger_path.read_text().splitlines() if line.strip()]
        crash_alarms = [a for r in records for a in r.get("alarms", [])
                        if a.get("kind") == "crash_bundle"]
        if not crash_alarms:
            failures.append("no ledger record links the crash bundle")
        elif crash_alarms[0].get("bundle_id") != doc.get("bundle_id"):
            failures.append("ledger alarm names a different bundle than "
                            "`blackbox show` resolved")
        else:
            print(f"ledger links the bundle: {crash_alarms[0]['bundle_id']}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("blackbox smoke OK: stall declared, chunk recovered serially, "
          "bundle round-trips")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
