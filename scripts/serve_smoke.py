#!/usr/bin/env python3
"""CI smoke test for the live telemetry endpoint (``--serve-port``).

Launches a quick figure sweep serving live telemetry, probes every
endpoint *while the sweep is still running*, and asserts:

* ``/metrics`` is valid OpenMetrics (HELP/TYPE metadata, ``# EOF``) per
  :func:`repro.obs.export.validate_openmetrics` — a python stand-in for
  ``promtool check metrics``;
* ``/timeseries`` carries the sweep's live progress series;
* ``/alerts`` answers with the rule states;
* ``/events`` delivers at least one SSE frame;
* the run shuts the server down cleanly and exits 0.

The sweep is fig9 at half scale (a few seconds of wall clock) rather
than the sub-second fig6: the probe window is the sweep's own runtime,
and a sub-second window is a CI flake waiting to happen.  ``--serve-port
0`` binds an ephemeral port; the script reads the announced URL from the
run's stderr, so nothing races for a fixed port number.

    python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
import urllib.request

from repro.obs.export import validate_openmetrics

SWEEP = ["figure", "9", "--scale", "0.5", "--workers", "2"]
ANNOUNCE = "serving live telemetry on "
STARTUP_TIMEOUT_S = 60.0


def probe(url: str, results: dict, key: str, proc: subprocess.Popen,
          until=None) -> None:
    """GET ``url`` into ``results[key]``, retrying while the run lives.

    With ``until``, keeps re-fetching (and keeping the latest body) until
    the predicate accepts it — e.g. until the sweep has published its
    first progress sample — or the run exits.
    """
    while True:
        try:
            with urllib.request.urlopen(url, timeout=2.0) as resp:
                results[key] = resp.read().decode()
                results[key + ".content_type"] = resp.headers["Content-Type"]
                if until is None or until(results[key]):
                    return
        except OSError as exc:
            if proc.poll() is not None:
                if key not in results:
                    results[key + ".error"] = f"{url}: {exc} (run already over)"
                return
        if proc.poll() is not None:
            return
        time.sleep(0.02)


def probe_sse(url: str, results: dict, proc: subprocess.Popen) -> None:
    """Read SSE frames from ``/events`` until the server closes the stream."""
    frames = []
    try:
        with urllib.request.urlopen(url, timeout=30.0) as resp:
            results["sse.content_type"] = resp.headers["Content-Type"]
            while True:
                line = resp.readline().decode()
                if not line:
                    break  # clean shutdown closes the stream
                if line.startswith("event: "):
                    kind = line[len("event: "):].strip()
                    data = resp.readline().decode()
                    frames.append((kind, data[len("data: "):].strip()))
    except OSError as exc:
        if not frames:
            results["sse.error"] = f"{url}: {exc}"
    results["sse.frames"] = frames


def main() -> int:
    cmd = [sys.executable, "-m", "repro", *SWEEP, "--serve-port", "0"]
    print("+", " ".join(cmd), flush=True)
    proc = subprocess.Popen(
        cmd, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    url = None
    stderr_tail = []
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        stderr_tail.append(line)
        if ANNOUNCE in line:
            url = line.split(ANNOUNCE, 1)[1].strip()
            break
    if url is None:
        proc.kill()
        sys.stderr.writelines(stderr_tail)
        print("FAIL: the run never announced its telemetry URL")
        return 1
    print(f"serving on {url}")

    # probe every endpoint concurrently, starting inside the run's window
    results: dict = {}
    threads = [
        threading.Thread(target=probe_sse, args=(url + "/events", results, proc)),
        threading.Thread(target=probe, args=(url + "/metrics", results, "metrics", proc)),
        threading.Thread(target=probe, args=(url + "/timeseries", results, "timeseries", proc),
                         kwargs={"until": lambda body: '"runtime.' in body}),
        threading.Thread(target=probe, args=(url + "/alerts", results, "alerts", proc)),
    ]
    for t in threads:
        t.start()
    # drain stderr so the run can't block on a full pipe, then reap it
    drained = proc.stderr.read()
    code = proc.wait()
    for t in threads:
        t.join(timeout=30.0)

    failures = []
    for key in ("metrics", "timeseries", "alerts"):
        if key not in results:
            failures.append(results.get(f"{key}.error", f"/{key}: no response"))
    if "metrics" in results:
        problems = validate_openmetrics(results["metrics"])
        if problems:
            failures += [f"/metrics invalid OpenMetrics: {p}" for p in problems]
        if not results["metrics.content_type"].startswith(
            "application/openmetrics-text"
        ):
            failures.append(
                f"/metrics content type: {results['metrics.content_type']}"
            )
        n_families = results["metrics"].count("# TYPE ")
        print(f"/metrics: valid OpenMetrics, {n_families} families")
    if "timeseries" in results:
        series = json.loads(results["timeseries"])["series"]
        live = [s for s in series if s.startswith("runtime.")]
        if not live:
            failures.append(f"/timeseries has no runtime.* series: {sorted(series)}")
        print(f"/timeseries: {len(series)} series ({len(live)} runtime.*)")
    if "alerts" in results:
        alerts = json.loads(results["alerts"])
        if "rules" not in alerts or "firing" not in alerts:
            failures.append(f"/alerts malformed: {sorted(alerts)}")
        else:
            print(f"/alerts: {len(alerts['rules'])} rules, "
                  f"{len(alerts['firing'])} firing")
    frames = results.get("sse.frames", [])
    if not frames:
        failures.append(results.get("sse.error", "/events: no SSE frame seen"))
    else:
        kinds = [k for k, _ in frames]
        print(f"/events: {len(frames)} SSE frames ({', '.join(sorted(set(kinds)))})")
        if kinds[0] != "hello":
            failures.append(f"/events: first frame was {kinds[0]!r}, not 'hello'")
    if code != 0:
        sys.stderr.write(drained)
        failures.append(f"run exited {code}, want 0 (clean shutdown)")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"serve smoke OK: run exited {code} after a clean shutdown")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
