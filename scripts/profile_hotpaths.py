#!/usr/bin/env python3
"""Profile the stack's hot stages through the repro.obs tracer.

Runs representative workloads with tracing enabled into a scratch JSONL
file, then ranks span names by self time — the quickest way to see where a
joint transmission or a link-layer simulation actually spends its wall
clock (OFDM mod/demod, precoding, channel apply, Viterbi decode, ...).
The report path is :mod:`repro.obs.profile` (same engine as ``repro obs
profile``), so sweep workloads additionally get the per-worker
compute/dispatch/serialization/idle attribution table, and ``--folded``
exports flamegraph input.

    python scripts/profile_hotpaths.py                  # all workloads
    python scripts/profile_hotpaths.py joint --repeat 5
    python scripts/profile_hotpaths.py --trace prof.jsonl --top 8
    python scripts/profile_hotpaths.py sweep --folded prof.folded
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

from repro.obs import setup_logging, trace
from repro.obs.profile import folded_stacks, format_attribution, profile_trace
from repro.obs.summary import format_table


def run_joint(repeat: int) -> None:
    """Sample-level sounding + joint transmissions (the PHY hot path)."""
    from repro import MegaMimoSystem, SystemConfig, get_mcs
    from repro.channel.models import RicianChannel

    system = MegaMimoSystem.create(
        SystemConfig(n_aps=2, n_clients=2, seed=7),
        client_snr_db=25.0,
        channel_model=RicianChannel(k_factor=8.0),
    )
    system.run_sounding(0.0)
    payload = bytes(range(256))
    for k in range(repeat):
        system.joint_transmit(
            [payload, payload], get_mcs(2), start_time=1e-3 + k * 2e-3
        )


def run_simulate(repeat: int) -> None:
    """Event-driven link-layer simulation (the MAC/fastsim hot path)."""
    from repro.mac.simulator import DownlinkSimulator, LinkLayerConfig

    for k in range(repeat):
        DownlinkSimulator(
            LinkLayerConfig(n_aps=4, n_clients=4, duration_s=0.1, seed=1 + k)
        ).run()


def run_sweep(repeat: int) -> None:
    """A small frequency-domain figure sweep (experiment.cell spans)."""
    from repro.sim.experiments import run_fig9

    for k in range(repeat):
        run_fig9(seed=4 + k, n_aps=(2, 4), n_topologies=3)


WORKLOADS = {"joint": run_joint, "simulate": run_simulate, "sweep": run_sweep}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Rank the stack's hottest traced stages by self time."
    )
    parser.add_argument("workload", nargs="?",
                        choices=sorted(WORKLOADS) + ["all"], default="all")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per workload (default 3)")
    parser.add_argument("--top", type=int, default=12, metavar="K",
                        help="rows to show (default 12)")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="keep the JSONL trace at FILE (default: scratch)")
    parser.add_argument("--folded", metavar="FILE", default=None,
                        help="write folded flamegraph stacks to FILE")
    args = parser.parse_args(argv)
    setup_logging(verbosity=1)

    if args.trace is None:
        fd, path = tempfile.mkstemp(suffix=".jsonl", prefix="repro-prof-")
        os.close(fd)
        cleanup = True
    else:
        path, cleanup = args.trace, False

    names = sorted(WORKLOADS) if args.workload == "all" else [args.workload]
    trace.configure(path, tool="profile_hotpaths", workloads=names)
    try:
        for name in names:
            print(f"running workload {name!r} x{args.repeat} ...", file=sys.stderr)
            with trace.span(f"workload.{name}", repeat=args.repeat):
                WORKLOADS[name](args.repeat)
    finally:
        trace.close()

    prof = profile_trace(path)
    print(format_table(prof.summary, top_k=args.top, sort="self"))
    for attribution in prof.attributions:
        print()
        print(format_attribution(attribution))
    if args.folded:
        lines = folded_stacks(prof.records)
        with open(args.folded, "w") as f:
            f.write("\n".join(lines) + ("\n" if lines else ""))
        print(f"{len(lines)} folded stacks written to {args.folded}",
              file=sys.stderr)
    if cleanup:
        os.unlink(path)
    else:
        print(f"\ntrace kept at {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
