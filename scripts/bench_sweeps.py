#!/usr/bin/env python3
"""Benchmark the parallel sweep engine: serial vs. process-pool wall clock.

Runs canned Monte-Carlo workloads (fig6, fig9, fastsim SINR grid) once with
``workers=1`` and once with ``--workers N``, verifies the two runs produce
bit-identical aggregates (SHA-256 over the canonical JSON of the results),
and appends a machine-readable record to ``BENCH_sweeps.json``:

    {"schema": 1, "runs": [{"ts": ..., "cpu_count": ..., "workloads": [...]}]}

Each run also lands in the run ledger (``runs/ledger.jsonl``; see
``docs/observability.md``) as a ``command="bench"`` record whose headline
metrics are ``bench.<workload>.{serial_s,parallel_s,speedup}`` — which is
what ``python -m repro obs bench trend`` tabulates.  ``--no-ledger``
skips that.

Every workload with a registered batched kernel twin is additionally run
through the in-parent ``batched`` backend; its timing, digest (checked
equal to serial) and overhead breakdown land in the same record as
``batched_s`` / ``batched_speedup`` / ``batched_overhead``.

    python scripts/bench_sweeps.py                    # full workloads
    python scripts/bench_sweeps.py --quick --workers 4
    python scripts/bench_sweeps.py --quick --check-speedup --min-speedup 1.5
    python scripts/bench_sweeps.py --quick --skip-parallel --repeats 2 \
        --workloads fastsim_grid --check-batched-speedup

``--check-speedup`` exits non-zero when the fig9 parallel speedup falls
below ``--min-speedup`` — but only on machines with at least 2 usable
cores; on a single-core box it records the timings and warns instead,
because a real speedup is physically impossible there (CI enforces the
floor on multi-core runners).

``--check-batched-speedup`` exits non-zero when the fastsim SINR-grid
*batched* speedup falls below ``--min-batched-speedup`` (default 5).  The
batched backend runs in-process, so this gate is cores-independent and is
enforced everywhere, single-core CI included.  ``--repeats N`` times each
leg N times and keeps the fastest (de-noises the gate); ``--skip-parallel``
drops the process-pool leg entirely (pointless on one core).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import setup_logging  # noqa: E402
from repro.obs.events import jsonable  # noqa: E402
from repro.runtime import drain_overheads  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_sweeps.json"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def digest(result) -> str:
    """Canonical SHA-256 of a result payload — equality check across runs."""
    blob = json.dumps(jsonable(result), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Workloads: name -> (callable(workers) -> digestable result, params dict)
# ---------------------------------------------------------------------------


def workload_fig6(quick: bool):
    from repro.sim.experiments import run_fig6

    n_channels = 24 if quick else 100

    def run(workers: int, backend: str | None = None):
        r = run_fig6(seed=1, n_channels=n_channels, workers=workers,
                     backend=backend)
        return {str(snr): list(curve) for snr, curve in r.reduction_db.items()}

    return run, {"n_channels": n_channels}


def workload_fig9(quick: bool):
    from repro.sim.experiments import run_fig9

    n_aps = (2, 4, 6) if quick else (2, 4, 6, 8, 10)
    n_topologies = 4 if quick else 10

    def run(workers: int, backend: str | None = None):
        r = run_fig9(seed=4, n_aps=n_aps, n_topologies=n_topologies,
                     workers=workers, backend=backend)
        return {
            f"{band}/{n}": {
                "megamimo_bps": list(cell.megamimo_bps),
                "baseline_bps": list(cell.baseline_bps),
                "gains": list(cell.per_client_gains),
            }
            for (band, n), cell in sorted(r.cells.items())
        }

    return run, {"n_aps": list(n_aps), "n_topologies": n_topologies}


def workload_fastsim_grid(quick: bool):
    from repro.sim.fastsim import run_sinr_grid

    sizes = (2, 4) if quick else (2, 4, 8)
    n_trials = 48 if quick else 64

    def run(workers: int, backend: str | None = None):
        return run_sinr_grid(seed=12, sizes=sizes, n_trials=n_trials,
                             workers=workers, backend=backend)

    return run, {"sizes": list(sizes), "n_trials": n_trials}


WORKLOADS = {
    "fig6": workload_fig6,
    "fig9": workload_fig9,
    "fastsim_grid": workload_fastsim_grid,
}


def _workload_kernel(name: str):
    """The scalar sweep kernel behind a workload (for batched-twin lookup)."""
    from repro.sim.experiments import fig6_kernel, fig9_kernel
    from repro.sim.fastsim import sinr_grid_kernel

    return {
        "fig6": fig6_kernel,
        "fig9": fig9_kernel,
        "fastsim_grid": sinr_grid_kernel,
    }.get(name)


def summarize_overheads(overheads: list) -> dict | None:
    """Aggregate per-sweep overhead breakdowns into one workload summary.

    A workload may run several sweeps (one per grid size); totals are
    worker-second weighted so the fractions stay shares of pool capacity.
    """
    if not overheads:
        return None
    capacity = sum(o["workers"] * o["wall_s"] for o in overheads)
    totals = {
        key: sum(o[key] for o in overheads)
        for key in ("wall_s", "compute_s", "dispatch_s", "serialization_s",
                    "idle_s")
    }
    return {
        "sweeps": len(overheads),
        **{key: round(value, 4) for key, value in totals.items()},
        "utilization": round(totals["compute_s"] / capacity, 4) if capacity else 0.0,
        "dispatch_frac": round(totals["dispatch_s"] / capacity, 4)
        if capacity else 0.0,
        "serialization_frac": round(totals["serialization_s"] / capacity, 4)
        if capacity else 0.0,
    }


def _timed(fn, repeats: int):
    """Run ``fn`` ``repeats`` times; keep the fastest leg's timing/overheads.

    Min-of-N suppresses one-off noise (first-touch allocator and BLAS
    warm-up, scheduler hiccups on shared CI runners) that would otherwise
    make a hard speedup gate flaky.  The result is taken from the fastest
    repetition — every repetition is bit-identical anyway.
    """
    best_s, overhead, result = None, None, None
    for _ in range(max(repeats, 1)):
        drain_overheads()  # discard breakdowns from earlier runs
        t0 = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - t0
        if best_s is None or elapsed < best_s:
            best_s = elapsed
            overhead = summarize_overheads(drain_overheads())
            result = out
    return result, best_s, overhead


def _require_equal(name: str, what: str, serial_digest: str, other: str) -> None:
    if serial_digest != other:
        raise SystemExit(
            f"{name}: serial and {what} results differ "
            f"({serial_digest[:12]} != {other[:12]}) — determinism regression"
        )


def bench_workload(name: str, quick: bool, workers: int, repeats: int = 1,
                   skip_parallel: bool = False) -> dict:
    from repro.runtime import batched_kernel_for

    run, params = WORKLOADS[name](quick)
    serial, serial_s, serial_overhead = _timed(lambda: run(1), repeats)
    serial_digest = digest(serial)

    entry = {
        "workload": name,
        "params": params,
        "workers": workers,
        "repeats": repeats,
        "serial_s": round(serial_s, 4),
        "parallel_s": None,
        "speedup": None,
        "result_sha256": serial_digest,
        # the parallel/batched breakdowns are what explain the speedup
        # numbers; the serial one is the compute-only baseline they are
        # judged against
        "overhead": None,
        "serial_overhead": serial_overhead,
    }

    if not skip_parallel:
        parallel, parallel_s, parallel_overhead = _timed(
            lambda: run(workers), repeats
        )
        _require_equal(name, f"{workers}-worker", serial_digest, digest(parallel))
        entry["parallel_s"] = round(parallel_s, 4)
        entry["speedup"] = (
            round(serial_s / parallel_s, 3) if parallel_s > 0 else None
        )
        entry["overhead"] = parallel_overhead

    kernel = _workload_kernel(name)
    if kernel is not None and batched_kernel_for(kernel) is not None:
        batched, batched_s, batched_overhead = _timed(
            lambda: run(1, backend="batched"), repeats
        )
        _require_equal(name, "batched", serial_digest, digest(batched))
        entry["batched_s"] = round(batched_s, 4)
        entry["batched_speedup"] = (
            round(serial_s / batched_s, 3) if batched_s > 0 else None
        )
        entry["batched_overhead"] = batched_overhead
    return entry


def ledger_metrics(record: dict) -> dict:
    """Flatten a bench record's workloads into ledger headline metrics."""
    out = {}
    for entry in record["workloads"]:
        name = entry["workload"]
        out[f"bench.{name}.serial_s"] = entry["serial_s"]
        if entry["parallel_s"] is not None:
            out[f"bench.{name}.parallel_s"] = entry["parallel_s"]
        if entry["speedup"] is not None:
            out[f"bench.{name}.speedup"] = entry["speedup"]
        overhead = entry.get("overhead")
        if overhead:
            out[f"bench.{name}.utilization"] = overhead["utilization"]
            out[f"bench.{name}.dispatch_frac"] = overhead["dispatch_frac"]
            out[f"bench.{name}.serialization_frac"] = (
                overhead["serialization_frac"]
            )
        if entry.get("batched_s") is not None:
            out[f"bench.{name}.batched_s"] = entry["batched_s"]
        if entry.get("batched_speedup") is not None:
            out[f"bench.{name}.batched_speedup"] = entry["batched_speedup"]
        batched_overhead = entry.get("batched_overhead")
        if batched_overhead:
            out[f"bench.{name}.batched_utilization"] = (
                batched_overhead["utilization"]
            )
            out[f"bench.{name}.batched_dispatch_frac"] = (
                batched_overhead["dispatch_frac"]
            )
    return out


def append_ledger_record(args, record: dict, started: float,
                         duration_s: float) -> None:
    """Best-effort append of this bench run to the run ledger."""
    from repro.obs import ledger as L
    from repro.obs import provenance

    config = {
        "workers": args.workers,
        "quick": args.quick,
        "workloads": list(args.workloads),
    }
    prov = provenance.collect(config)
    run = L.RunRecord(
        run_id=L.new_run_id(started),
        ts=started,
        command="bench",
        argv=sys.argv[1:],
        duration_s=duration_s,
        git_sha=prov["git_sha"],
        git_dirty=prov["git_dirty"],
        config_hash=prov["config_hash"],
        config=config,
        platform={
            k: prov[k]
            for k in ("platform", "python", "numpy", "cpu_count", "hostname")
        },
        metrics=ledger_metrics(record),
        artifacts={"bench": str(args.output)},
    )
    try:
        path = L.Ledger(args.ledger).append(run)
    except OSError as exc:
        print(f"warning: could not append ledger record: {exc}",
              file=sys.stderr)
        return
    print(f"run {run.run_id} appended to {path}")


def append_record(output: Path, record: dict) -> None:
    doc = {"schema": 1, "runs": []}
    if output.exists():
        try:
            loaded = json.loads(output.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                doc = loaded
        except json.JSONDecodeError:
            print(f"warning: {output} is corrupt; starting fresh", file=sys.stderr)
    doc["runs"].append(record)
    output.write_text(json.dumps(doc, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for the parallel runs (default 4)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced problem sizes (CI smoke)")
    parser.add_argument("--workloads", nargs="+", choices=sorted(WORKLOADS),
                        default=sorted(WORKLOADS),
                        help="subset of workloads to run")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"results file (default {DEFAULT_OUTPUT.name})")
    parser.add_argument("--repeats", type=int, default=1,
                        help="time each leg N times, keep the fastest "
                             "(default 1; the CI gate uses 2)")
    parser.add_argument("--skip-parallel", action="store_true",
                        help="skip the process-pool leg (e.g. on single-core "
                             "machines where it cannot win)")
    parser.add_argument("--check-speedup", action="store_true",
                        help="fail if the fig9 speedup is below --min-speedup "
                             "(skipped on single-core machines)")
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--check-batched-speedup", action="store_true",
                        help="fail if the fastsim_grid batched speedup is "
                             "below --min-batched-speedup (cores-independent)")
    parser.add_argument("--min-batched-speedup", type=float, default=5.0)
    parser.add_argument("--ledger", metavar="DIR", default=None,
                        help="runs directory for the ledger record "
                             "(default: $REPRO_RUNS_DIR or ./runs)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not append this run to the run ledger")
    args = parser.parse_args(argv)
    setup_logging(verbosity=0)

    started = time.time()
    t0 = time.perf_counter()
    cpu_count = _usable_cpus()
    record = {
        "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": cpu_count,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "quick": args.quick,
        "workloads": [],
    }
    for name in args.workloads:
        print(f"benchmarking {name} (workers={args.workers}, "
              f"quick={args.quick}, repeats={args.repeats}) ...", flush=True)
        entry = bench_workload(name, args.quick, args.workers,
                               repeats=args.repeats,
                               skip_parallel=args.skip_parallel)
        record["workloads"].append(entry)
        line = f"  serial {entry['serial_s']:.2f}s"
        if entry["parallel_s"] is not None:
            line += (f"  parallel {entry['parallel_s']:.2f}s  "
                     f"speedup {entry['speedup']}x")
        if entry.get("batched_s") is not None:
            line += (f"  batched {entry['batched_s']:.2f}s  "
                     f"batched speedup {entry['batched_speedup']}x")
        print(line + "  (results identical)")
        if entry["overhead"]:
            o = entry["overhead"]
            print(f"  parallel breakdown: utilization {o['utilization']:.0%}  "
                  f"dispatch {o['dispatch_frac']:.1%}  "
                  f"serialization {o['serialization_frac']:.1%}")
        if entry.get("batched_overhead"):
            o = entry["batched_overhead"]
            print(f"  batched breakdown: utilization {o['utilization']:.0%}  "
                  f"dispatch {o['dispatch_frac']:.1%}  "
                  f"serialization {o['serialization_frac']:.1%}")

    append_record(args.output, record)
    print(f"appended run record to {args.output}")
    if not args.no_ledger:
        append_ledger_record(args, record, started,
                             time.perf_counter() - t0)

    if args.check_speedup:
        fig9 = next((w for w in record["workloads"] if w["workload"] == "fig9"),
                    None)
        if fig9 is None:
            print("--check-speedup: fig9 workload not run", file=sys.stderr)
            return 2
        if cpu_count < 2:
            print(f"--check-speedup: only {cpu_count} usable core(s); "
                  f"recorded speedup {fig9['speedup']}x but skipping the "
                  f">= {args.min_speedup}x gate (needs a multi-core machine)",
                  file=sys.stderr)
        elif fig9["speedup"] is None or fig9["speedup"] < args.min_speedup:
            print(f"--check-speedup: fig9 speedup {fig9['speedup']}x is below "
                  f"the {args.min_speedup}x floor", file=sys.stderr)
            return 1
        else:
            print(f"--check-speedup: fig9 speedup {fig9['speedup']}x >= "
                  f"{args.min_speedup}x")

    if args.check_batched_speedup:
        grid = next((w for w in record["workloads"]
                     if w["workload"] == "fastsim_grid"), None)
        if grid is None:
            print("--check-batched-speedup: fastsim_grid workload not run",
                  file=sys.stderr)
            return 2
        batched = grid.get("batched_speedup")
        if batched is None or batched < args.min_batched_speedup:
            print(f"--check-batched-speedup: fastsim_grid batched speedup "
                  f"{batched}x is below the {args.min_batched_speedup}x floor",
                  file=sys.stderr)
            return 1
        print(f"--check-batched-speedup: fastsim_grid batched speedup "
              f"{batched}x >= {args.min_batched_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
