#!/usr/bin/env python3
"""Benchmark the parallel sweep engine: serial vs. process-pool wall clock.

Runs canned Monte-Carlo workloads (fig6, fig9, fastsim SINR grid) once with
``workers=1`` and once with ``--workers N``, verifies the two runs produce
bit-identical aggregates (SHA-256 over the canonical JSON of the results),
and appends a machine-readable record to ``BENCH_sweeps.json``:

    {"schema": 1, "runs": [{"ts": ..., "cpu_count": ..., "workloads": [...]}]}

Each run also lands in the run ledger (``runs/ledger.jsonl``; see
``docs/observability.md``) as a ``command="bench"`` record whose headline
metrics are ``bench.<workload>.{serial_s,parallel_s,speedup}`` — which is
what ``python -m repro obs bench trend`` tabulates.  ``--no-ledger``
skips that.

    python scripts/bench_sweeps.py                    # full workloads
    python scripts/bench_sweeps.py --quick --workers 4
    python scripts/bench_sweeps.py --quick --check-speedup --min-speedup 1.5

``--check-speedup`` exits non-zero when the fig9 parallel speedup falls
below ``--min-speedup`` — but only on machines with at least 2 usable
cores; on a single-core box it records the timings and warns instead,
because a real speedup is physically impossible there (CI enforces the
floor on multi-core runners).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import setup_logging  # noqa: E402
from repro.obs.events import jsonable  # noqa: E402
from repro.runtime import drain_overheads  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_sweeps.json"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def digest(result) -> str:
    """Canonical SHA-256 of a result payload — equality check across runs."""
    blob = json.dumps(jsonable(result), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Workloads: name -> (callable(workers) -> digestable result, params dict)
# ---------------------------------------------------------------------------


def workload_fig6(quick: bool):
    from repro.sim.experiments import run_fig6

    n_channels = 24 if quick else 100

    def run(workers: int):
        r = run_fig6(seed=1, n_channels=n_channels, workers=workers)
        return {str(snr): list(curve) for snr, curve in r.reduction_db.items()}

    return run, {"n_channels": n_channels}


def workload_fig9(quick: bool):
    from repro.sim.experiments import run_fig9

    n_aps = (2, 4, 6) if quick else (2, 4, 6, 8, 10)
    n_topologies = 4 if quick else 10

    def run(workers: int):
        r = run_fig9(seed=4, n_aps=n_aps, n_topologies=n_topologies,
                     workers=workers)
        return {
            f"{band}/{n}": {
                "megamimo_bps": list(cell.megamimo_bps),
                "baseline_bps": list(cell.baseline_bps),
                "gains": list(cell.per_client_gains),
            }
            for (band, n), cell in sorted(r.cells.items())
        }

    return run, {"n_aps": list(n_aps), "n_topologies": n_topologies}


def workload_fastsim_grid(quick: bool):
    from repro.sim.fastsim import run_sinr_grid

    sizes = (2, 4) if quick else (2, 4, 8)
    n_trials = 24 if quick else 64

    def run(workers: int):
        return run_sinr_grid(seed=12, sizes=sizes, n_trials=n_trials,
                             workers=workers)

    return run, {"sizes": list(sizes), "n_trials": n_trials}


WORKLOADS = {
    "fig6": workload_fig6,
    "fig9": workload_fig9,
    "fastsim_grid": workload_fastsim_grid,
}


def summarize_overheads(overheads: list) -> dict | None:
    """Aggregate per-sweep overhead breakdowns into one workload summary.

    A workload may run several sweeps (one per grid size); totals are
    worker-second weighted so the fractions stay shares of pool capacity.
    """
    if not overheads:
        return None
    capacity = sum(o["workers"] * o["wall_s"] for o in overheads)
    totals = {
        key: sum(o[key] for o in overheads)
        for key in ("wall_s", "compute_s", "dispatch_s", "serialization_s",
                    "idle_s")
    }
    return {
        "sweeps": len(overheads),
        **{key: round(value, 4) for key, value in totals.items()},
        "utilization": round(totals["compute_s"] / capacity, 4) if capacity else 0.0,
        "dispatch_frac": round(totals["dispatch_s"] / capacity, 4)
        if capacity else 0.0,
        "serialization_frac": round(totals["serialization_s"] / capacity, 4)
        if capacity else 0.0,
    }


def bench_workload(name: str, quick: bool, workers: int) -> dict:
    run, params = WORKLOADS[name](quick)

    drain_overheads()  # discard breakdowns from earlier workloads
    t0 = time.perf_counter()
    serial = run(1)
    serial_s = time.perf_counter() - t0
    serial_overhead = summarize_overheads(drain_overheads())

    t0 = time.perf_counter()
    parallel = run(workers)
    parallel_s = time.perf_counter() - t0
    parallel_overhead = summarize_overheads(drain_overheads())

    serial_digest = digest(serial)
    parallel_digest = digest(parallel)
    if serial_digest != parallel_digest:
        raise SystemExit(
            f"{name}: serial and {workers}-worker results differ "
            f"({serial_digest[:12]} != {parallel_digest[:12]}) — "
            "determinism regression"
        )
    return {
        "workload": name,
        "params": params,
        "workers": workers,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        "result_sha256": serial_digest,
        # the parallel run's breakdown is what explains the speedup number;
        # the serial one is the compute-only baseline it is judged against
        "overhead": parallel_overhead,
        "serial_overhead": serial_overhead,
    }


def ledger_metrics(record: dict) -> dict:
    """Flatten a bench record's workloads into ledger headline metrics."""
    out = {}
    for entry in record["workloads"]:
        name = entry["workload"]
        out[f"bench.{name}.serial_s"] = entry["serial_s"]
        out[f"bench.{name}.parallel_s"] = entry["parallel_s"]
        if entry["speedup"] is not None:
            out[f"bench.{name}.speedup"] = entry["speedup"]
        overhead = entry.get("overhead")
        if overhead:
            out[f"bench.{name}.utilization"] = overhead["utilization"]
            out[f"bench.{name}.dispatch_frac"] = overhead["dispatch_frac"]
            out[f"bench.{name}.serialization_frac"] = (
                overhead["serialization_frac"]
            )
    return out


def append_ledger_record(args, record: dict, started: float,
                         duration_s: float) -> None:
    """Best-effort append of this bench run to the run ledger."""
    from repro.obs import ledger as L
    from repro.obs import provenance

    config = {
        "workers": args.workers,
        "quick": args.quick,
        "workloads": list(args.workloads),
    }
    prov = provenance.collect(config)
    run = L.RunRecord(
        run_id=L.new_run_id(started),
        ts=started,
        command="bench",
        argv=sys.argv[1:],
        duration_s=duration_s,
        git_sha=prov["git_sha"],
        git_dirty=prov["git_dirty"],
        config_hash=prov["config_hash"],
        config=config,
        platform={
            k: prov[k]
            for k in ("platform", "python", "numpy", "cpu_count", "hostname")
        },
        metrics=ledger_metrics(record),
        artifacts={"bench": str(args.output)},
    )
    try:
        path = L.Ledger(args.ledger).append(run)
    except OSError as exc:
        print(f"warning: could not append ledger record: {exc}",
              file=sys.stderr)
        return
    print(f"run {run.run_id} appended to {path}")


def append_record(output: Path, record: dict) -> None:
    doc = {"schema": 1, "runs": []}
    if output.exists():
        try:
            loaded = json.loads(output.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                doc = loaded
        except json.JSONDecodeError:
            print(f"warning: {output} is corrupt; starting fresh", file=sys.stderr)
    doc["runs"].append(record)
    output.write_text(json.dumps(doc, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for the parallel runs (default 4)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced problem sizes (CI smoke)")
    parser.add_argument("--workloads", nargs="+", choices=sorted(WORKLOADS),
                        default=sorted(WORKLOADS),
                        help="subset of workloads to run")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"results file (default {DEFAULT_OUTPUT.name})")
    parser.add_argument("--check-speedup", action="store_true",
                        help="fail if the fig9 speedup is below --min-speedup "
                             "(skipped on single-core machines)")
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--ledger", metavar="DIR", default=None,
                        help="runs directory for the ledger record "
                             "(default: $REPRO_RUNS_DIR or ./runs)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not append this run to the run ledger")
    args = parser.parse_args(argv)
    setup_logging(verbosity=0)

    started = time.time()
    t0 = time.perf_counter()
    cpu_count = _usable_cpus()
    record = {
        "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": cpu_count,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "quick": args.quick,
        "workloads": [],
    }
    for name in args.workloads:
        print(f"benchmarking {name} (workers={args.workers}, "
              f"quick={args.quick}) ...", flush=True)
        entry = bench_workload(name, args.quick, args.workers)
        record["workloads"].append(entry)
        print(f"  serial {entry['serial_s']:.2f}s  "
              f"parallel {entry['parallel_s']:.2f}s  "
              f"speedup {entry['speedup']}x  (results identical)")
        if entry["overhead"]:
            o = entry["overhead"]
            print(f"  parallel breakdown: utilization {o['utilization']:.0%}  "
                  f"dispatch {o['dispatch_frac']:.1%}  "
                  f"serialization {o['serialization_frac']:.1%}")

    append_record(args.output, record)
    print(f"appended run record to {args.output}")
    if not args.no_ledger:
        append_ledger_record(args, record, started,
                             time.perf_counter() - t0)

    if args.check_speedup:
        fig9 = next((w for w in record["workloads"] if w["workload"] == "fig9"),
                    None)
        if fig9 is None:
            print("--check-speedup: fig9 workload not run", file=sys.stderr)
            return 2
        if cpu_count < 2:
            print(f"--check-speedup: only {cpu_count} usable core(s); "
                  f"recorded speedup {fig9['speedup']}x but skipping the "
                  f">= {args.min_speedup}x gate (needs a multi-core machine)",
                  file=sys.stderr)
        elif fig9["speedup"] is None or fig9["speedup"] < args.min_speedup:
            print(f"--check-speedup: fig9 speedup {fig9['speedup']}x is below "
                  f"the {args.min_speedup}x floor", file=sys.stderr)
            return 1
        else:
            print(f"--check-speedup: fig9 speedup {fig9['speedup']}x >= "
                  f"{args.min_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
