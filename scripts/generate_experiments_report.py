#!/usr/bin/env python3
"""Regenerate the measured numbers recorded in EXPERIMENTS.md.

Thin wrapper kept for muscle memory; the logic lives in
:mod:`repro.sim.report` so ``python -m repro report`` works from an
installed package too.

    python scripts/generate_experiments_report.py
"""

from repro.obs import setup_logging
from repro.sim.report import generate_report

if __name__ == "__main__":
    setup_logging(verbosity=1)
    generate_report()
