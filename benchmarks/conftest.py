"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's evaluation figures and
prints the same rows/series the paper plots, alongside the paper's reported
values, so a run of ``pytest benchmarks/ --benchmark-only`` doubles as the
full reproduction report.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-scale",
        action="store_true",
        default=False,
        help="run the experiments at the paper's full scale (slower)",
    )


@pytest.fixture(scope="session")
def full_scale(request):
    return request.config.getoption("--full-scale")


def report(title: str, paper: str, table: str) -> None:
    """Print one figure's reproduction block."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n  paper reports: {paper}\n{bar}\n{table}\n")
