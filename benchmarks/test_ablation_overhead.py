"""Ablation — sounding overhead vs. channel staleness (§5, §5.2b).

The paper amortizes one sounding phase over many packets because indoor
channels stay coherent for hundreds of milliseconds; conversely it warns
that without per-packet phase re-anchoring the system "would force ...
measuring H every few milliseconds".  This bench sweeps the re-sounding
interval for several coherence times: net throughput peaks at an interval
that scales with the coherence time, and collapses for intervals beyond it.
"""

from benchmarks.conftest import report
from repro.sim.overhead import run_overhead_experiment


def test_sounding_interval_ablation(benchmark, full_scale):
    n_topologies = 12 if full_scale else 6
    result = benchmark.pedantic(
        lambda: run_overhead_experiment(seed=11, n_topologies=n_topologies),
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation: net throughput vs. re-sounding interval (6 APs, 22 dB)",
        "optimum interval scales with coherence time; beyond it ZF collapses",
        result.format_table(),
    )
    best = result.best_interval_s
    coherences = sorted(best)
    # optimum grows (weakly) with coherence time
    assert best[coherences[-1]] >= best[coherences[0]]
    # intervals far beyond the coherence time lose most throughput
    for tc, curve in result.net_throughput_bps.items():
        assert curve[-1] < max(curve) / 2
