"""Figure 9 — network throughput scaling with the number of APs.

Paper (Figs. 9a-c): MegaMIMO throughput grows linearly with AP count while
802.11 stays flat; median gain at 10 APs is 9.4x (high SNR), 9.1x (medium)
and 8.1x (low); 802.11 baselines are ~23.6 / 14.9 / 7.75 Mbps.
"""

import numpy as np

from benchmarks.conftest import report
from repro.sim.experiments import run_fig9


def test_fig9_throughput_scaling(benchmark, full_scale):
    n_topologies = 20 if full_scale else 8
    result = benchmark.pedantic(
        lambda: run_fig9(seed=4, n_topologies=n_topologies),
        rounds=1,
        iterations=1,
    )
    report(
        "Figure 9: throughput vs. number of APs (USRP testbed)",
        "linear scaling; gains 9.4x/9.1x/8.1x at 10 APs; flat 802.11",
        result.format_table(),
    )
    # linear-ish scaling: 10-AP throughput >= 3.5x the 2-AP throughput
    for band in ("high", "medium", "low"):
        mm = result.mean_megamimo_mbps(band)
        assert mm[-1] > 3.5 * mm[0]
    assert 7.0 < result.median_gain("high", 10) < 11.0
    assert result.mean_baseline_mbps("high").mean() == np.clip(
        result.mean_baseline_mbps("high").mean(), 20.0, 26.0
    )
