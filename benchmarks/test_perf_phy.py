"""Performance benchmarks of the PHY substrate itself.

Unlike the figure benches (one-shot experiment regenerations), these run
multiple rounds and report real ops/sec — useful when optimizing the hot
paths (Viterbi dominates; the medium's receive synthesis is second).
"""

import numpy as np
import pytest

from repro.channel.medium import Medium
from repro.channel.models import LinkChannel
from repro.channel.oscillator import Oscillator, OscillatorConfig
from repro.phy.coding import ConvolutionalCode
from repro.phy.frame import FrameConfig, PhyFrameDecoder, PhyFrameEncoder
from repro.phy.mcs import get_mcs
from repro.phy.ofdm import OfdmDemodulator, OfdmModulator


@pytest.fixture(scope="module")
def payload():
    return bytes(range(256)) * 2  # 512 B


def test_perf_convolutional_encode(benchmark):
    code = ConvolutionalCode()
    bits = np.random.default_rng(0).integers(0, 2, 4096).astype(np.uint8)
    out = benchmark(code.encode, bits)
    assert out.size == 2 * (4096 + 6)


def test_perf_viterbi_decode(benchmark):
    code = ConvolutionalCode()
    bits = np.random.default_rng(1).integers(0, 2, 1024).astype(np.uint8)
    llrs = 1.0 - 2.0 * code.encode(bits).astype(float)
    decoded = benchmark(code.decode, llrs, 1024)
    assert np.array_equal(decoded, bits)


def test_perf_frame_encode(benchmark, payload):
    encoder = PhyFrameEncoder(FrameConfig(sample_rate=10e6))
    mcs = get_mcs(7)
    frame = benchmark(encoder.encode_time_domain, payload, mcs)
    assert frame.size > 0


def test_perf_frame_decode(benchmark, payload):
    config = FrameConfig(sample_rate=10e6)
    encoder, decoder = PhyFrameEncoder(config), PhyFrameDecoder(config)
    mcs = get_mcs(7)
    symbols = encoder.encode(payload, mcs)
    result = benchmark(decoder.decode, symbols, 0.01)
    assert result.crc_ok


def test_perf_ofdm_symbol_roundtrip(benchmark):
    mod, demod = OfdmModulator(), OfdmDemodulator()
    rng = np.random.default_rng(2)
    data = np.exp(2j * np.pi * rng.uniform(size=48))
    channel = np.ones(64, dtype=complex)

    def roundtrip():
        samples = mod.modulate_symbol(data, symbol_index=3)
        return demod.demodulate_symbol(samples, channel, symbol_index=3)

    eq = benchmark(roundtrip)
    assert np.allclose(eq.data, data, atol=1e-9)


def test_perf_medium_receive(benchmark):
    m = Medium(10e6, noise_power=1.0, rng=3)
    for i in range(6):
        m.register_node(
            f"tx{i}", Oscillator(OscillatorConfig(ppm_offset=0.5 * i), rng=i)
        )
    m.register_node("rx", Oscillator(OscillatorConfig(), rng=99))
    rng = np.random.default_rng(4)
    for i in range(6):
        m.set_link(f"tx{i}", "rx", LinkChannel(taps=np.array([1.0 + 0.1j * i])))
        samples = rng.normal(size=4000) + 1j * rng.normal(size=4000)
        m.transmit(f"tx{i}", samples, 0.0)

    rx = benchmark(m.receive, "rx", 0.0, 4000)
    assert rx.size == 4000
