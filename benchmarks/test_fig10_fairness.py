"""Figure 10 — fairness: CDFs of per-client throughput gain.

Paper: all clients see roughly the same gain as the aggregate (MegaMIMO is
fair); the CDF is wider at low SNR due to measurement noise.
"""

import numpy as np

from benchmarks.conftest import report
from repro.sim.experiments import run_fig9, run_fig10


def test_fig10_per_client_gain_cdfs(benchmark, full_scale):
    n_topologies = 20 if full_scale else 8

    def run():
        fig9 = run_fig9(seed=4, n_aps=(2, 6, 10), n_topologies=n_topologies)
        return run_fig10(fig9, n_aps=(2, 6, 10))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Figure 10: CDFs of per-client throughput gain (2/6/10 APs)",
        "per-client gains track the aggregate gain; wider CDF at low SNR",
        result.format_table(),
    )
    # fairness: the middle 80% of clients at 10 APs/high SNR spans a
    # bounded range around the median
    g = result.gains[("high", 10)]
    p10, p50, p90 = np.percentile(g, [10, 50, 90])
    assert p90 / max(p10, 1e-9) < 4.0
    assert 6.0 < p50 < 12.0
    # CDF is wider at low SNR (relative spread)
    g_low = result.gains[("low", 10)]
    def spread(x):
        return np.percentile(x, 90) - np.percentile(x, 10)

    assert spread(g_low) / np.median(g_low) > 0.5 * spread(g) / np.median(g)
