"""Ablation — the Fig. 9 placement-conditioning screen.

The paper's placement procedure implicitly selected well-conditioned
topologies (its own gain model implies K ~ 1.5-2 dB).  This bench shows
what the screen buys: without it, i.i.d. fading draws keep the linear
scaling but at a lower slope.
"""

from benchmarks.conftest import report
from repro.sim.ablations import run_screening_ablation


def test_placement_screening_ablation(benchmark, full_scale):
    n_topologies = 15 if full_scale else 6
    result = benchmark.pedantic(
        lambda: run_screening_ablation(seed=14, n_topologies=n_topologies),
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation: Fig. 9 high-SNR gains with/without placement screening",
        "screening reproduces the paper's near-N gains; without it the"
        " slope drops but scaling stays linear",
        result.format_table(),
    )
    for n in result.n_aps:
        assert result.screened[n] >= result.unscreened[n] - 0.5
    # scaling survives either way
    n_lo, n_hi = result.n_aps[0], result.n_aps[-1]
    assert result.unscreened[n_hi] > 1.3 * result.unscreened[n_lo]
