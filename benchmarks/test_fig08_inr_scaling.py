"""Figure 8 — INR at nulled clients vs. number of AP-client pairs.

Paper: INR stays below ~1.5 dB across SNRs even with 10 receivers and grows
only ~0.13 dB per added AP-client pair at high SNR; higher SNR bands show
higher INR.
"""

from benchmarks.conftest import report
from repro.sim.experiments import run_fig8


def test_fig8_inr_vs_receivers(benchmark, full_scale):
    n_topologies = 20 if full_scale else 8
    result = benchmark.pedantic(
        lambda: run_fig8(seed=3, n_topologies=n_topologies, n_packets=5),
        rounds=1,
        iterations=1,
    )
    slopes = "  ".join(
        f"{band}: {result.slope_db_per_pair(band):+.3f} dB/pair"
        for band in ("high", "medium", "low")
    )
    report(
        "Figure 8: INR vs. number of receivers (nulling experiment)",
        "INR < 1.5 dB at 10 receivers; ~0.13 dB per added pair (high SNR)",
        result.format_table() + "\nslopes: " + slopes,
    )
    assert result.inr_db["high"][-1] < 2.0
    assert 0.05 < result.slope_db_per_pair("high") < 0.25
