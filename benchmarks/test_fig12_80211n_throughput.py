"""Figure 12 — throughput with off-the-shelf 802.11n cards.

Paper: two 2-antenna MegaMIMO APs jointly serving two 2-antenna 802.11n
clients deliver an average gain of 1.67-1.83x over 802.11n across high,
medium and low SNR; high-SNR gains exceed low-SNR gains.
"""

from benchmarks.conftest import report
from repro.sim.experiments import run_fig12


def test_fig12_80211n_throughput(benchmark, full_scale):
    n_topologies = 40 if full_scale else 20
    result = benchmark.pedantic(
        lambda: run_fig12(seed=6, n_topologies=n_topologies), rounds=1, iterations=1
    )
    report(
        "Figure 12: 802.11n-compat throughput (2x 2-ant APs -> 2x 2-ant clients)",
        "average gain 1.67-1.83x across SNR bands; high > low",
        result.format_table(),
    )
    for band in ("high", "medium", "low"):
        assert 1.3 < result.mean_gain(band) < 2.3
    assert result.mean_gain("high") > result.mean_gain("low") - 0.1
