"""Ablation — long-term CFO averaging window (§5.2b).

"MegaMIMO APs maintain a continuously averaged estimate of their offset
with the lead transmitter across multiple transmissions to obtain a robust
estimate."  Sweeping the EWMA coefficient shows the bias-variance
trade-off: no averaging (alpha = 1) keeps the raw per-header noise; too
small a coefficient has not converged after a bounded number of headers.
"""


from benchmarks.conftest import report
from repro.sim.ablations import run_cfo_averaging_ablation


def test_cfo_averaging_ablation(benchmark, full_scale):
    n_systems = 10 if full_scale else 5
    result = benchmark.pedantic(
        lambda: run_cfo_averaging_ablation(seed=10, n_systems=n_systems),
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation: steady-state CFO error vs. EWMA coefficient (20 headers)",
        "averaging beats raw per-header estimates (~100 Hz noise)",
        result.format_table(),
    )
    raw = result.cfo_error_hz[result.alphas == 1.0][0]
    best = result.cfo_error_hz.min()
    assert best < raw / 2
