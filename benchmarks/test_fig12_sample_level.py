"""Figure 12, sample-level verification.

Unlike the calibrated fast-path bench, every packet here is modulated,
transmitted through oscillators and channels, and decoded: §6 stitched
sounding (legacy preamble + HT-LTF packets), a 4-stream joint
transmission with rate adaptation, and a single-AP 2-stream baseline.
"""

from benchmarks.conftest import report
from repro.sim.experiments import run_fig12_sample_level


def test_fig12_sample_level(benchmark, full_scale):
    n_topologies = 10 if full_scale else 5
    result = benchmark.pedantic(
        lambda: run_fig12_sample_level(seed=15, n_topologies=n_topologies),
        rounds=1,
        iterations=1,
    )
    report(
        "Figure 12 (sample level): measured 802.11n-compat gains, real waveforms",
        "average gain 1.67-1.83x",
        result.format_table(),
    )
    assert 1.2 < result.mean_gain < 2.8
    assert result.gains.size >= n_topologies - 1
