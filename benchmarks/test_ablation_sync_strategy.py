"""Ablation — phase-synchronization strategy (§5.2b, §5.3).

MegaMIMO's per-packet direct phase measurement keeps misalignment flat in
elapsed time; one-shot CFO extrapolation (the strawman) accumulates error
linearly until it wraps; no correction drifts immediately.  Also isolates
§5.3 principle 1: the within-packet CFO ramp.
"""

import numpy as np

from benchmarks.conftest import report
from repro.sim.ablations import run_sync_strategy_ablation, run_tracking_ablation


def test_sync_strategy_ablation(benchmark, full_scale):
    n_systems = 8 if full_scale else 4
    result = benchmark.pedantic(
        lambda: run_sync_strategy_ablation(seed=7, n_systems=n_systems),
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation: slave misalignment vs. time since sounding, per strategy",
        "direct measurement flat (~0.02 rad); extrapolation/none blow up",
        result.format_table(),
    )
    mm = result.misalignment_rad["megamimo"]
    naive = result.misalignment_rad["naive"]
    # MegaMIMO stays flat and small at every elapsed time
    assert np.all(mm < 0.06)
    # the strawman is at least an order of magnitude worse past 10 ms
    assert np.all(naive[1:] > 10 * mm[1:])


def test_inpacket_tracking_ablation(benchmark, full_scale):
    n_systems = 8 if full_scale else 4
    result = benchmark.pedantic(
        lambda: run_tracking_ablation(seed=8, n_systems=n_systems),
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation: end-of-packet misalignment with/without in-packet CFO ramp",
        "tracked error stays ~0.01-0.03 rad through 2 ms packets",
        result.format_table(),
    )
    assert np.all(result.with_tracking < 0.1)
    assert np.all(result.without_tracking > 5 * result.with_tracking)
