"""Figure 6 — degradation of SNR due to phase misalignment.

Paper: "even a phase misalignment as small as 0.35 radians can cause an SNR
reduction of almost 8 dB at an SNR of 20 dB"; loss grows with misalignment
and is worse at higher SNR.
"""

from benchmarks.conftest import report
from repro.sim.experiments import run_fig6


def test_fig6_snr_reduction(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig6(seed=1, n_channels=100), rounds=1, iterations=1
    )
    report(
        "Figure 6: SNR reduction vs. phase misalignment (2x2, 100 channels)",
        "~8 dB loss at 0.35 rad / 20 dB SNR; higher SNR hurts more",
        result.format_table(),
    )
    loss = result.reduction_at(20.0, 0.35)
    assert 6.0 < loss < 10.0
    assert result.reduction_at(20.0, 0.35) > result.reduction_at(10.0, 0.35)
