"""Ablation — interleaved vs. sequential sounding (§5.1a).

"They are interleaved because we want the channels to be measured as if
they were measured at the same time" — block-sequential measurement
stretches the reference-time correction over longer spans and degrades the
snapshot's cross-AP phase consistency.
"""

from benchmarks.conftest import report
from repro.sim.ablations import run_sounding_ablation


def test_sounding_layout_ablation(benchmark, full_scale):
    n_trials = 20 if full_scale else 8
    result = benchmark.pedantic(
        lambda: run_sounding_ablation(seed=9, n_trials=n_trials),
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation: snapshot phase consistency, interleaved vs. sequential",
        "interleaving keeps per-AP measurements close in time",
        result.format_table(),
    )
    assert result.interleaved_rad < result.sequential_rad
    assert result.interleaved_rad < 0.05
