"""Ablation — CSI feedback precision (§5.1b / §9's feedback channel).

Sweeps the per-component quantization width of the clients' channel
reports against post-beamforming SINR and feedback airtime: 8-bit CSI
(the 802.11n-class default) is indistinguishable from ideal feedback,
while very coarse reports create self-interference faster than they save
airtime.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core.feedback import CsiFeedbackCodec, apply_feedback_quantization
from repro.sim.fastsim import SyncErrorModel, build_channel_tensor, joint_zf_sinr_db
from repro.utils.rng import ensure_rng


def run_feedback_sweep(seed: int, n_topologies: int, bits=(3, 4, 6, 8, 12)):
    rng = ensure_rng(seed)
    error_model = SyncErrorModel()
    rows = []
    for b in bits:
        sinrs, airtimes = [], []
        codec = CsiFeedbackCodec(bits_per_component=b)
        for _ in range(n_topologies):
            ch = build_channel_tensor(np.full((4, 4), 20.0), rng)
            est = error_model.corrupt_estimate(ch, 20.0, rng)
            quantized = apply_feedback_quantization(est, b)
            sinrs.append(float(np.mean(joint_zf_sinr_db(ch, est_channels=quantized))))
            airtimes.append(4 * codec.airtime_s(52, 4))
        rows.append((b, float(np.mean(sinrs)), float(np.mean(airtimes))))
    return rows


def test_feedback_precision_ablation(benchmark, full_scale):
    n_topologies = 20 if full_scale else 8
    rows = benchmark.pedantic(
        lambda: run_feedback_sweep(seed=13, n_topologies=n_topologies),
        rounds=1,
        iterations=1,
    )
    table = "bits/component  mean SINR (dB)  feedback airtime (ms)\n" + "\n".join(
        f"{b:14d}  {sinr:14.1f}  {airtime * 1e3:21.2f}" for b, sinr, airtime in rows
    )
    report(
        "Ablation: CSI feedback quantization vs. beamforming SINR (4x4, 20 dB)",
        "8-bit reports are ~ideal; coarse reports self-interfere",
        table,
    )
    by_bits = {b: sinr for b, sinr, _ in rows}
    assert by_bits[8] > by_bits[3] + 2.0
    assert abs(by_bits[12] - by_bits[8]) < 1.0
