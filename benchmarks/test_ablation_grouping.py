"""Ablation — joint-transmission grouping heuristic (§9's future work).

"The lead AP then chooses additional packets for joint transmission ...
to maximize the network throughput.  There are a variety of heuristics
[43, 33, 42] ... we leave the exact algorithm for future work."

Compares FIFO admission against greedy sum-rate maximization on topologies
containing a near-collinear client pair (the case where admitting everyone
collapses the ZF power scalar for all streams).
"""

import numpy as np

from benchmarks.conftest import report
from repro.constants import MAC_EFFICIENCY, SAMPLE_RATE_USRP
from repro.mac.grouping import ThroughputAwareGrouping
from repro.mac.queue import DownlinkQueue
from repro.mac.rate import EffectiveSnrRateSelector
from repro.mac.scheduler import JointScheduler
from repro.sim.fastsim import build_channel_tensor


def run_grouping_comparison(seed: int, n_trials: int):
    rng = np.random.default_rng(seed)
    selector = EffectiveSnrRateSelector(SAMPLE_RATE_USRP, mac_efficiency=MAC_EFFICIENCY)
    fifo_rates, smart_rates = [], []
    for _ in range(n_trials):
        channels = build_channel_tensor(np.full((5, 5), 20.0), rng)
        # inject one near-collinear pair (e.g. two laptops side by side)
        channels[:, 4, :] = channels[:, 2, :] * (1.0 + 0.03j)
        grouping = ThroughputAwareGrouping(channels, selector)
        q = DownlinkQueue(rng.uniform(15, 25, (5, 5)))
        for c in range(5):
            q.enqueue(c)
        smart = JointScheduler(q, max_streams=5, grouping=grouping).next_group()
        smart_rates.append(grouping.group_sum_rate(smart.clients))
        fifo_rates.append(grouping.group_sum_rate([0, 1, 2, 3, 4]))
    return np.asarray(fifo_rates), np.asarray(smart_rates)


def test_grouping_heuristic_ablation(benchmark, full_scale):
    n_trials = 40 if full_scale else 15
    fifo, smart = benchmark.pedantic(
        lambda: run_grouping_comparison(seed=12, n_trials=n_trials),
        rounds=1,
        iterations=1,
    )
    table = (
        "heuristic          mean sum rate (Mbps)\n"
        f"FIFO (all 5)       {np.mean(fifo) / 1e6:20.1f}\n"
        f"throughput-aware   {np.mean(smart) / 1e6:20.1f}"
    )
    report(
        "Ablation: joint-transmission grouping on collinear-pair topologies",
        "greedy sum-rate admission avoids conditioning collapse",
        table,
    )
    assert np.mean(smart) > np.mean(fifo)
    assert np.all(smart >= fifo - 1e-9)
