"""Figure 7 — CDF of observed phase misalignment (sample-level protocol).

Paper: median misalignment 0.017 rad, 95th percentile 0.05 rad.
"""

from benchmarks.conftest import report
from repro.sim.experiments import run_fig7


def test_fig7_misalignment_cdf(benchmark, full_scale):
    n_systems = 12 if full_scale else 6
    n_rounds = 40 if full_scale else 20
    result = benchmark.pedantic(
        lambda: run_fig7(seed=2, n_systems=n_systems, n_rounds=n_rounds),
        rounds=1,
        iterations=1,
    )
    report(
        "Figure 7: CDF of observed phase misalignment (2 APs + 1 receiver)",
        "median 0.017 rad, p95 0.05 rad",
        result.format_table(),
    )
    assert result.median_rad < 0.04
    assert result.p95_rad < 0.12
