"""Figure 13 — fairness of the 802.11n-compat gains.

Paper: every node's gain falls between 1.65x and 2x with a median of 1.8x.
"""

from benchmarks.conftest import report
from repro.sim.experiments import run_fig12, run_fig13


def test_fig13_per_node_gain_cdf(benchmark, full_scale):
    n_topologies = 40 if full_scale else 20

    def run():
        return run_fig13(run_fig12(seed=6, n_topologies=n_topologies))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Figure 13: CDF of per-node 802.11n-compat throughput gain",
        "gains 1.65-2x for all nodes, median 1.8x",
        result.format_table(),
    )
    assert 1.4 < result.median < 2.2
