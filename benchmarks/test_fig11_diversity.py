"""Figure 11 — diversity throughput vs. SNR.

Paper: with 10 APs a client with 0 dB channels (no 802.11 throughput at
all) achieves ~21 Mbps; diversity gains are largest at low SNR and expand
the coverage range / eliminate dead spots.
"""

from benchmarks.conftest import report
from repro.sim.experiments import run_fig11


def test_fig11_diversity_throughput(benchmark, full_scale):
    n_draws = 40 if full_scale else 15
    result = benchmark.pedantic(
        lambda: run_fig11(seed=5, n_draws=n_draws), rounds=1, iterations=1
    )
    report(
        "Figure 11: diversity throughput vs. SNR (1 client, 2-10 APs)",
        "0 dB client: 0 Mbps with 802.11 -> ~21 Mbps with 10 APs",
        result.format_table(),
    )
    zero_db_idx = int(abs(result.snr_db - 0.0).argmin())
    assert result.throughput_mbps[1][zero_db_idx] < 2.0
    assert 14.0 < result.throughput_mbps[10][zero_db_idx] < 26.0
    # more APs never hurt
    for lo, hi in ((2, 4), (4, 6), (6, 8), (8, 10)):
        assert (
            result.throughput_mbps[hi][zero_db_idx]
            >= result.throughput_mbps[lo][zero_db_idx] - 1.0
        )
