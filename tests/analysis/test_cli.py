"""Exit codes, baseline flow, output formats, and main-CLI wiring."""

import io
import json

import pytest

from repro.analysis.cli import (
    EXIT_OK,
    EXIT_USAGE,
    EXIT_VIOLATIONS,
    build_parser,
    run_lint_command,
)
from repro.cli import main as repro_main


def _run(argv, stream=None):
    args = build_parser().parse_args(argv)
    return run_lint_command(args, stream=stream)


def _write(tmp_path, relative, body):
    target = tmp_path / relative
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(body)
    return target


@pytest.fixture
def workdir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_clean_tree_exits_zero(workdir):
    _write(workdir, "src/repro/core/mod.py", "ok = True\n")
    assert _run(["src"]) == EXIT_OK


def test_new_error_exits_one(workdir):
    _write(workdir, "src/repro/core/mod.py", "ok = x == 0.5\n")
    assert _run(["src"]) == EXIT_VIOLATIONS


def test_missing_path_exits_two(workdir):
    assert _run(["no/such/dir"]) == EXIT_USAGE


def test_corrupt_baseline_exits_two(workdir):
    _write(workdir, "src/repro/core/mod.py", "ok = True\n")
    _write(workdir, "base.json", "{not json")
    assert _run(["src", "--baseline", "base.json"]) == EXIT_USAGE


def test_update_baseline_then_gate_passes(workdir):
    _write(workdir, "src/repro/core/mod.py", "ok = x == 0.5\n")
    assert _run(["src"]) == EXIT_VIOLATIONS
    assert (
        _run(["src", "--baseline", "base.json", "--update-baseline"])
        == EXIT_OK
    )
    assert _run(["src", "--baseline", "base.json"]) == EXIT_OK

    # A *second* violation still fails: the baseline froze only the first.
    _write(
        workdir, "src/repro/core/mod.py", "ok = x == 0.5\nbad = y != 0.25\n"
    )
    assert _run(["src", "--baseline", "base.json"]) == EXIT_VIOLATIONS


def test_update_baseline_subset_preserves_other_files(workdir):
    _write(workdir, "src/repro/core/a.py", "ok = x == 0.5\n")
    _write(workdir, "src/repro/core/b.py", "bad = y != 0.25\n")
    args = ["--baseline", "base.json"]
    assert _run(["src", *args, "--update-baseline"]) == EXIT_OK
    assert _run(["src", *args]) == EXIT_OK

    # Refreshing only a.py (now clean) must keep b.py's frozen debt, so
    # the next full run still passes.
    _write(workdir, "src/repro/core/a.py", "ok = True\n")
    assert _run(["src/repro/core/a.py", *args, "--update-baseline"]) == EXIT_OK
    assert _run(["src", *args]) == EXIT_OK


def test_path_outside_root_exits_two(workdir, tmp_path_factory, capsys):
    outside = tmp_path_factory.mktemp("elsewhere") / "mod.py"
    outside.write_text("ok = True\n")
    assert _run([str(outside)]) == EXIT_USAGE
    assert "outside the lint root" in capsys.readouterr().err


def test_no_baseline_ignores_frozen_debt(workdir):
    _write(workdir, "src/repro/core/mod.py", "ok = x == 0.5\n")
    _run(["src", "--baseline", "base.json", "--update-baseline"])
    assert (
        _run(["src", "--baseline", "base.json", "--no-baseline"])
        == EXIT_VIOLATIONS
    )


def test_advice_never_gates_even_under_strict(workdir):
    # NUM003 (complex->real cast) is an ADVICE-level name heuristic: it is
    # reported but must not fail CI, where --strict is the standing flag —
    # otherwise legitimate real-valued names like `weights` block merges.
    _write(workdir, "src/repro/core/mod.py", "def f(h):\n    return h.real\n")
    stream = io.StringIO()
    assert _run(["src"], stream=stream) == EXIT_OK
    assert "NUM003" in stream.getvalue()
    assert _run(["src", "--strict"]) == EXIT_OK


def test_gating_violations_by_severity():
    """ERROR always gates, WARNING gates under --strict, ADVICE never."""
    from repro.analysis.cli import gating_violations
    from repro.analysis.violations import Severity, Violation

    def make(severity):
        return Violation(
            rule="X", severity=severity, path="p.py", line=1, col=0,
            message="m", text="t",
        )

    error, warning, advice = (
        make(Severity.ERROR), make(Severity.WARNING), make(Severity.ADVICE)
    )
    hits = [error, warning, advice]
    assert gating_violations(hits, strict=False) == [error]
    assert gating_violations(hits, strict=True) == [error, warning]


def test_json_report_shape(workdir):
    _write(workdir, "src/repro/core/mod.py", "ok = x == 0.5\n")
    stream = io.StringIO()
    code = _run(["src", "--format", "json"], stream=stream)
    assert code == EXIT_VIOLATIONS
    payload = json.loads(stream.getvalue())
    assert payload["files_checked"] == 1
    assert payload["counts"] == {"new": 1, "accepted": 0, "stale": 0}
    (violation,) = payload["violations"]
    assert violation["rule"] == "NUM001"
    assert violation["new"] is True
    assert len(violation["fingerprint"]) == 16


def test_text_report_mentions_stale_entries(workdir):
    _write(workdir, "src/repro/core/mod.py", "ok = x == 0.5\n")
    _run(["src", "--baseline", "base.json", "--update-baseline"])
    _write(workdir, "src/repro/core/mod.py", "ok = True\n")
    stream = io.StringIO()
    assert _run(["src", "--baseline", "base.json"], stream=stream) == EXIT_OK
    assert "stale" in stream.getvalue()


def test_list_rules(workdir):
    stream = io.StringIO()
    assert _run(["--list-rules"], stream=stream) == EXIT_OK
    out = stream.getvalue()
    for rule_id in ("DET001", "RNG001", "NUM001", "OBS001"):
        assert rule_id in out


def test_repro_cli_lint_subcommand(workdir, capsys):
    """`repro lint` routes through the main CLI to the same implementation."""
    _write(workdir, "src/repro/core/mod.py", "ok = x == 0.5\n")
    assert repro_main(["lint", "--list-rules"]) == EXIT_OK
    assert "DET001" in capsys.readouterr().out
    assert repro_main(["lint", "src"]) == EXIT_VIOLATIONS
    _write(workdir, "src/repro/core/mod.py", "ok = True\n")
    assert repro_main(["lint", "src"]) == EXIT_OK
