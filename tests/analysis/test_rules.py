"""Fixture-driven rule tests: every rule has a flagged and a clean snippet."""

import pytest

from repro.analysis import all_rules, parse_snippet, rule_ids, run_lint
from tests.analysis.conftest import FIXTURE_DEST

RULES = {rule.id: rule for rule in all_rules()}


def _rules_hit(tree):
    report = run_lint([tree], root=tree)
    return sorted({v.rule for v in report.violations})


@pytest.mark.parametrize("rule_id", sorted(FIXTURE_DEST))
def test_flagged_fixture_fires(install_fixture, rule_id):
    tree = install_fixture(rule_id, "flagged")
    assert rule_id in _rules_hit(tree)


@pytest.mark.parametrize("rule_id", sorted(FIXTURE_DEST))
def test_clean_fixture_is_silent(install_fixture, rule_id):
    tree = install_fixture(rule_id, "clean")
    report = run_lint([tree], root=tree)
    assert report.violations == []


def test_every_registered_rule_is_fixture_covered():
    """Meta-test: shipping a rule without fixtures fails the suite."""
    assert sorted(FIXTURE_DEST) == rule_ids()


def _check(rule_id, text, module="repro.core.snippet"):
    src = parse_snippet(text, module=module)
    return list(RULES[rule_id].check(src))


class TestAliasResolution:
    """Rules match semantic targets, not surface spellings."""

    def test_det001_through_plain_import(self):
        assert _check("DET001", "import numpy\nnumpy.random.shuffle([1])\n")

    def test_det001_through_submodule_alias(self):
        assert _check("DET001", "import numpy.random as nr\nnr.rand(3)\n")

    def test_det001_through_from_import(self):
        assert _check("DET001", "from numpy import random\nrandom.seed(0)\n")

    def test_det003_not_confused_by_numpy_random(self):
        # `from numpy import random` resolves to numpy.random, which is
        # DET001 territory, never stdlib-random (DET003).
        text = "from numpy import random\nrandom.seed(0)\n"
        assert not _check("DET003", text, module="repro.phy.snippet")

    def test_generator_methods_not_flagged(self):
        assert not _check("DET001", "def f(rng):\n    return rng.normal(3)\n")


class TestScoping:
    """Path-scoped rules only fire inside the packages they guard."""

    def test_det003_allowlists_obs(self, install_fixture):
        tree = install_fixture("DET003", "flagged", dest="src/repro/obs/mod.py")
        assert "DET003" not in _rules_hit(tree)

    def test_det004_allowlists_obs(self, install_fixture):
        tree = install_fixture("DET004", "flagged", dest="src/repro/obs/mod.py")
        assert "DET004" not in _rules_hit(tree)

    def test_det004_allowlists_cli(self, install_fixture):
        tree = install_fixture("DET004", "flagged", dest="src/repro/cli.py")
        assert "DET004" not in _rules_hit(tree)

    def test_det002_allowlists_rng_plumbing(self, install_fixture):
        tree = install_fixture("DET002", "flagged", dest="src/repro/utils/rng.py")
        assert "DET002" not in _rules_hit(tree)

    def test_rng001_allowlists_seeding(self, install_fixture):
        tree = install_fixture(
            "RNG001", "flagged", dest="src/repro/runtime/seeding.py"
        )
        assert "RNG001" not in _rules_hit(tree)

    def test_det001_applies_outside_repro_packages(self, install_fixture):
        tree = install_fixture("DET001", "flagged", dest="scripts/tool.py")
        assert "DET001" in _rules_hit(tree)


class TestRuleDetails:
    def test_det002_seeded_via_keyword_is_clean(self):
        text = "import numpy as np\nrng = np.random.default_rng(seed=7)\n"
        assert not _check("DET002", text)

    def test_num001_one_report_per_comparison_chain(self):
        hits = _check("NUM001", "ok = 1.0 == x == 2.0\n")
        assert len(hits) == 1

    def test_num003_unpaired_real_read_is_flagged(self):
        assert _check("NUM003", "def f(h):\n    return h.real\n")

    def test_num003_paired_iq_split_is_clean(self):
        text = "def f(h):\n    return (h.real, h.imag)\n"
        assert not _check("NUM003", text)

    def test_obs001_span_in_with_is_clean(self):
        text = (
            "from repro.obs import trace\n"
            "with trace.span('a.b') as sp:\n    sp.record(x=1)\n"
        )
        assert not _check("OBS001", text)

    def test_obs004_keyword_name_is_flagged(self):
        text = (
            "from repro.obs.alerts import AlertRule\n"
            "r = AlertRule(name='BadName', series='a.b', threshold=1.0)\n"
        )
        (v,) = _check("OBS004", text)
        assert "BadName" in v.message

    def test_obs004_dynamic_names_are_skipped(self):
        # f-string / variable names are validated at construction time
        # (AlertRule.__post_init__ warns), not by the static rule
        text = (
            "from repro.obs.alerts import AlertRule\n"
            "for d in ('a', 'b'):\n"
            "    AlertRule(name=f'{d}.p95', series='a.b', threshold=1.0)\n"
        )
        assert not _check("OBS004", text)

    def test_obs004_unrelated_calls_ignored(self):
        assert not _check("OBS004", "def AlertRuleFactory(name):\n    pass\n")

    def test_obs002_dynamic_names_are_skipped(self):
        text = (
            "from repro.obs import metrics\n"
            "def f(name):\n    return metrics.counter(name)\n"
        )
        assert not _check("OBS002", text)

    def test_syntax_error_becomes_violation(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        report = run_lint([tmp_path], root=tmp_path)
        assert [v.rule for v in report.violations] == ["SYN001"]

    def test_non_utf8_file_becomes_violation(self, tmp_path):
        # Unreadable bytes are reported per-file, like a syntax error,
        # instead of aborting the whole run with a traceback.
        bad = tmp_path / "src" / "repro" / "core" / "mojibake.py"
        bad.parent.mkdir(parents=True)
        bad.write_bytes(b"x = 1\n\xff\xfe ok\n")
        report = run_lint([tmp_path], root=tmp_path)
        assert [v.rule for v in report.violations] == ["SYN001"]
        assert "cannot be read" in report.violations[0].message
        assert report.files_checked == 1

    def test_path_outside_root_raises(self, tmp_path):
        from repro.analysis import LintRootError

        inside = tmp_path / "root"
        outside = tmp_path / "elsewhere" / "mod.py"
        inside.mkdir()
        outside.parent.mkdir()
        outside.write_text("ok = True\n")
        with pytest.raises(LintRootError):
            run_lint([outside], root=inside)


class TestNoqa:
    def test_targeted_noqa_suppresses(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "core" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("ok = x == 0.5  # repro: noqa[NUM001]\n")
        report = run_lint([tmp_path], root=tmp_path)
        assert report.violations == []
        assert report.suppressed == 1

    def test_bare_noqa_suppresses_everything(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "core" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "import numpy as np\nnp.random.seed(0)  # repro: noqa\n"
        )
        report = run_lint([tmp_path], root=tmp_path)
        assert report.violations == []
        assert report.suppressed == 1

    def test_mismatched_noqa_does_not_suppress(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "core" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("ok = x == 0.5  # repro: noqa[DET001]\n")
        report = run_lint([tmp_path], root=tmp_path)
        assert [v.rule for v in report.violations] == ["NUM001"]

    def test_noqa_inside_string_literal_is_inert(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "core" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text('msg = "# repro: noqa[NUM001]"\nok = x == 0.5\n')
        report = run_lint([tmp_path], root=tmp_path)
        assert [v.rule for v in report.violations] == ["NUM001"]
