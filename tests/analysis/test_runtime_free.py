"""The analyzer must run without the simulation's runtime dependencies.

CI's lint job installs only ruff and runs ``python -m repro.analysis``, so
importing ``repro.analysis`` — including the parent ``repro`` package
``__init__`` it triggers — must never pull in numpy or scipy.  This test
blocks both in a subprocess and runs the gate end to end (regression test
for the eager package ``__init__`` that once dragged numpy into the lint
job and failed every CI run).
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

DRIVER = """\
import sys


class BlockRuntimeDeps:
    def find_spec(self, name, path=None, target=None):
        if name.partition(".")[0] in ("numpy", "scipy"):
            raise ImportError(f"repro lint must be runtime-free, imported {name}")
        return None


sys.meta_path.insert(0, BlockRuntimeDeps())

from repro.analysis.cli import main

sys.exit(main(["src", "--strict", "--format", "json"]))
"""


def test_lint_runs_with_numpy_and_scipy_blocked(tmp_path):
    mod = tmp_path / "src" / "repro" / "core" / "mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text("ok = True\n")
    proc = subprocess.run(
        [sys.executable, "-c", DRIVER],
        cwd=tmp_path,
        env={**os.environ, "PYTHONPATH": SRC},
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
