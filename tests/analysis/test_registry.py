"""Registry invariants: ids, severities, and duplicate rejection."""

import pytest

from repro.analysis.registry import Rule, all_rules, register, rule_ids
from repro.analysis.violations import Severity
from tests.analysis.conftest import fixture_source


def test_rule_ids_unique_and_sorted():
    ids = rule_ids()
    assert ids == sorted(ids)
    assert len(ids) == len(set(ids))


def test_every_rule_is_well_formed():
    for rule in all_rules():
        assert rule.id.isalnum() and rule.id.isupper()
        assert isinstance(rule.severity, Severity)
        assert rule.family
        assert rule.summary


def test_every_rule_has_both_fixtures_on_disk():
    for rule_id in rule_ids():
        for kind in ("flagged", "clean"):
            path = fixture_source(rule_id, kind)
            assert path.is_file(), f"missing fixture {path}"
            assert path.read_text().strip(), f"empty fixture {path}"


def test_register_rejects_duplicate_id():
    existing = rule_ids()[0]
    with pytest.raises(ValueError):

        @register
        class Duplicate(Rule):  # pragma: no cover - never instantiated
            id = existing
            family = "test"
            severity = Severity.ERROR
            summary = "duplicate id for the registry test"


def test_register_rejects_malformed_id():
    with pytest.raises(ValueError):

        @register
        class BadId(Rule):  # pragma: no cover - never instantiated
            id = "not-an-id!"
            family = "test"
            severity = Severity.ERROR
            summary = "malformed id for the registry test"
