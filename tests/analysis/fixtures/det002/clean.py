"""Seed-derived generator construction (clean for DET002)."""

import numpy as np

from repro.runtime.seeding import seed_sequence


def sample_noise(seed: int, n: int):
    rng = np.random.default_rng(seed_sequence(seed, "noise", 0, 0))
    return rng.normal(size=n)
