"""Unseeded generator construction (flagged: DET002)."""

import numpy as np


def sample_noise(n: int):
    rng = np.random.default_rng()
    return rng.normal(size=n)
