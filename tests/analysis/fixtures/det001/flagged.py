"""Legacy global-state numpy RNG calls (flagged: DET001)."""

import numpy as np


def draw_channel_taps(n: int):
    np.random.seed(1234)
    return np.random.randn(n)
