"""Generator-API RNG threading (clean for DET001)."""

import numpy as np


def draw_channel_taps(rng: np.random.Generator, n: int):
    return rng.normal(size=n)


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)
