"""Wall-clock reads inside a kernel package (flagged: DET004)."""

import time
from datetime import datetime


def stamp_frame(payload: bytes):
    return {"payload": payload, "t": time.time(), "day": datetime.now()}
