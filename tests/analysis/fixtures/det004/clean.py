"""Monotonic duration timing (clean for DET004)."""

import time


def measure(fn):
    # raw stopwatch on purpose: this fixture demonstrates the DET004-clean
    # duration clock, not the obs timing API
    t0 = time.perf_counter()  # repro: noqa[OBS003] deliberate raw stopwatch
    fn()
    return time.perf_counter() - t0  # repro: noqa[OBS003] deliberate raw stopwatch
