"""Stdlib random inside a kernel package (flagged: DET003)."""

import random


def pick_pilot_symbol(symbols):
    return random.choice(symbols)
