"""Threaded generator draws (clean for DET003)."""


def pick_pilot_symbol(rng, symbols):
    return symbols[rng.integers(0, len(symbols))]
