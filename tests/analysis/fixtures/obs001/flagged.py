"""Span opened outside `with` (flagged: OBS001)."""

from repro.obs import trace


def run_step():
    span = trace.span("sim.step")
    span.record(ok=True)
