"""Context-managed spans (clean for OBS001)."""

from repro.obs import trace


def run_step():
    with trace.span("sim.step", n=1) as sp:
        sp.record(ok=True)
