"""Convention-following alert-rule names (clean for OBS004)."""

from repro.obs.alerts import AlertRule

BUDGET = AlertRule(
    name="sim.phase_error_p95", series="sim.phase_error_rad", threshold=0.05,
)
FLOOR = AlertRule(
    name="sim.worker_utilization_floor",
    series="sim.worker_utilization",
    op="below",
    threshold=0.5,
)
