"""Alert-rule names off the domain.metric convention (flagged: OBS004)."""

from repro.obs.alerts import AlertRule

BAD_POSITIONAL = AlertRule(
    "PhaseBudget", series="sim.phase_error_rad", threshold=0.05,
)
BAD_KEYWORD = AlertRule(
    name="phase error p95", series="sim.phase_error_rad", threshold=0.05,
)
