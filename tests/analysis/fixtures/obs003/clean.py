"""Timing routed through repro.obs (clean for OBS003)."""

from repro.obs import metrics, trace

STEP_TIMER = metrics.histogram("sim.step_s")


def timed_step():
    with trace.span("sim.step"):
        with metrics.timer("sim.step_s"):
            return sum(range(64))
