"""Ad-hoc perf_counter stopwatch pair (flagged: OBS003)."""

import time


def timed_step():
    t0 = time.perf_counter()
    total = sum(range(64))
    return total, time.perf_counter() - t0
