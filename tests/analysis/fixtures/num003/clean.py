"""Explicit magnitude/phase reads and paired I/Q splits (clean for NUM003)."""

import numpy as np


def channel_power(channels: np.ndarray) -> float:
    return float(np.sum(np.abs(channels) ** 2))


def channel_phase(h: np.ndarray) -> np.ndarray:
    return np.angle(h)


def serialize_iq(precoder: np.ndarray) -> np.ndarray:
    return np.stack([precoder.real, precoder.imag])
