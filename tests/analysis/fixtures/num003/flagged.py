"""Silent complex->real casts on channel values (flagged: NUM003)."""

import numpy as np


def channel_power(channels: np.ndarray) -> float:
    return float(np.sum(channels.real ** 2))


def precoder_gain(precoder: np.ndarray):
    return np.real(precoder).sum()


def first_tap(h: np.ndarray) -> float:
    return float(h[0])
