"""Metric names off the dotted.name convention (flagged: OBS002)."""

from repro.obs import metrics

RETRIES = metrics.counter("Retries")
DEPTH = metrics.gauge("queue depth")
