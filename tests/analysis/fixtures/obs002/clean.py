"""Convention-following metric names (clean for OBS002)."""

from repro.obs import metrics

RETRIES = metrics.counter("sim.arq.retries")
DEPTH = metrics.gauge("sim.queue_depth")
LATENCY = metrics.histogram("sim.latency_s")
