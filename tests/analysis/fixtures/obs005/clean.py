"""Handlers that log, re-raise or are deliberately waived (clean for OBS005)."""

import logging

logger = logging.getLogger("repro.obs.fixture")


def publish(bus, payload):
    try:
        bus.put_nowait(payload)
    except Exception as exc:
        logger.debug("event dropped: %s", exc)


def read_snapshot(path):
    try:
        return path.read_text()
    except FileNotFoundError:
        raise
    except OSError:
        return None


def close_quietly(stream):
    try:
        stream.close()
    except Exception:
        pass  # repro: noqa[OBS005]
