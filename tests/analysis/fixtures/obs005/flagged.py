"""Silently swallowed exceptions in obs plumbing (flagged by OBS005)."""


def publish(bus, payload):
    try:
        bus.put_nowait(payload)
    except Exception:
        pass


def read_snapshot(path):
    try:
        return path.read_text()
    except OSError:
        "best effort"
