"""Threaded rng discipline (clean for RNG001)."""

from repro.utils.rng import ensure_rng


def corrupt_estimates(rng, n: int):
    rng = ensure_rng(rng)
    return rng.normal(size=n)
