"""Re-derived generator despite an rng parameter (flagged: RNG001)."""

import numpy as np


def corrupt_estimates(rng: np.random.Generator, n: int):
    local = np.random.default_rng(42)
    return local.normal(size=n) + rng.normal(size=n)
