"""ndarray matmul (clean for NUM002)."""

import numpy as np


def gram(h):
    h2 = np.asarray(h)
    return h2.conj().T @ h2
