"""Deprecated np.matrix (flagged: NUM002)."""

import numpy as np


def gram(h):
    m = np.matrix(h)
    return m.H * m
