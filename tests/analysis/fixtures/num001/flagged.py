"""Exact float equality (flagged: NUM001)."""


def gains_converged(gain_db: float, previous_db: float) -> bool:
    return gain_db - previous_db == 0.0


def off_nominal(snr_db: float) -> bool:
    return snr_db != 25.0
