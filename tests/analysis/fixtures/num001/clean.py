"""Tolerance-based comparison, plus a noqa'd sentinel (clean for NUM001)."""

import numpy as np


def gains_converged(gain_db: float, previous_db: float) -> bool:
    return bool(np.isclose(gain_db, previous_db, atol=1e-9))


def queue_drained(n_packets: int) -> bool:
    return n_packets == 0  # integer equality is fine


def noise_disabled(sigma: float) -> bool:
    return sigma == 0.0  # repro: noqa[NUM001] exact zero = disabled path
