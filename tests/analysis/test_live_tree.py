"""Meta-test: the real src/ tree stays clean modulo the committed baseline.

This is the same gate CI runs (``repro lint --strict``); keeping it in the
test suite means a plain ``pytest`` run catches new determinism/numerics
violations even before the lint job does.
"""

import json

from repro.analysis import run_lint
from repro.analysis.baseline import compare, load_baseline
from repro.analysis.cli import DEFAULT_BASELINE, EXIT_OK, main

from tests.analysis.conftest import REPO_ROOT

BASELINE_PATH = REPO_ROOT / DEFAULT_BASELINE


def test_live_src_tree_clean_modulo_baseline():
    report = run_lint([REPO_ROOT / "src"], root=REPO_ROOT)
    assert report.files_checked > 50  # sanity: we really scanned the tree
    result = compare(report, load_baseline(BASELINE_PATH))
    new = [v.format() for v in result.new]
    assert new == [], "new lint violations in src/:\n" + "\n".join(new)
    stale = [e["fingerprint"] for e in result.stale]
    assert stale == [], (
        "stale baseline entries (run `repro lint --update-baseline`): "
        f"{stale}"
    )


def test_committed_baseline_is_valid_and_current_format():
    data = json.loads(BASELINE_PATH.read_text())
    assert data["version"] == 1
    assert isinstance(data["entries"], dict)


def test_cli_default_invocation_from_repo_root(monkeypatch, capsys):
    """`python -m repro.analysis` with no args exits 0 at the repo root."""
    monkeypatch.chdir(REPO_ROOT)
    assert main(["--strict"]) == EXIT_OK
    assert "0 new" in capsys.readouterr().out
