"""Baseline round-trip, gating, and fingerprint-stability tests."""

import json

import pytest

from repro.analysis import run_lint
from repro.analysis.baseline import (
    Baseline,
    BaselineError,
    compare,
    load_baseline,
    write_baseline,
)


def _tree(tmp_path, body):
    mod = tmp_path / "src" / "repro" / "core" / "mod.py"
    mod.parent.mkdir(parents=True, exist_ok=True)
    mod.write_text(body)
    return tmp_path


def test_missing_baseline_is_empty(tmp_path):
    baseline = load_baseline(tmp_path / "absent.json")
    assert len(baseline) == 0


def test_round_trip(tmp_path):
    tree = _tree(tmp_path, "ok = x == 0.5\n")
    report = run_lint([tree], root=tree)
    path = tmp_path / "baseline.json"
    write_baseline(path, report)
    baseline = load_baseline(path)
    assert len(baseline) == 1
    result = compare(report, baseline)
    assert result.new == []
    assert len(result.accepted) == 1
    assert result.stale == []


def test_new_violation_detected_against_baseline(tmp_path):
    tree = _tree(tmp_path, "ok = x == 0.5\n")
    path = tmp_path / "baseline.json"
    write_baseline(path, run_lint([tree], root=tree))

    _tree(tmp_path, "ok = x == 0.5\nbad = y != 0.25\n")
    result = compare(run_lint([tree], root=tree), load_baseline(path))
    assert len(result.new) == 1
    assert result.new[0].line == 2


def test_stale_entries_reported(tmp_path):
    tree = _tree(tmp_path, "ok = x == 0.5\n")
    path = tmp_path / "baseline.json"
    write_baseline(path, run_lint([tree], root=tree))

    _tree(tmp_path, "ok = True\n")
    result = compare(run_lint([tree], root=tree), load_baseline(path))
    assert result.new == []
    assert len(result.stale) == 1


def test_fingerprint_stable_across_line_shift(tmp_path):
    tree = _tree(tmp_path, "ok = x == 0.5\n")
    path = tmp_path / "baseline.json"
    write_baseline(path, run_lint([tree], root=tree))

    # Same violation text, pushed down by unrelated edits above it.
    _tree(tmp_path, "import numpy\n\n\nok = x == 0.5\n")
    result = compare(run_lint([tree], root=tree), load_baseline(path))
    assert result.new == []
    assert len(result.accepted) == 1


def test_duplicate_lines_get_occurrence_indices(tmp_path):
    tree = _tree(tmp_path, "ok = x == 0.5\nok = x == 0.5\n")
    report = run_lint([tree], root=tree)
    fingerprints = [fp for _, fp in report.fingerprints()]
    assert len(fingerprints) == 2
    assert len(set(fingerprints)) == 2

    path = tmp_path / "baseline.json"
    write_baseline(path, report)
    result = compare(run_lint([tree], root=tree), load_baseline(path))
    assert result.new == []
    assert len(result.accepted) == 2


def test_write_with_preserve_keeps_unlinted_files(tmp_path):
    a = tmp_path / "src" / "repro" / "core" / "a.py"
    b = tmp_path / "src" / "repro" / "core" / "b.py"
    a.parent.mkdir(parents=True)
    a.write_text("ok = x == 0.5\n")
    b.write_text("bad = y != 0.25\n")
    path = tmp_path / "baseline.json"
    write_baseline(path, run_lint([tmp_path / "src"], root=tmp_path))

    # Re-freeze from a report covering only a.py (now clean): b.py's frozen
    # debt must be carried over, not silently discarded.
    a.write_text("ok = True\n")
    subset = run_lint([a], root=tmp_path)
    merged = write_baseline(path, subset, preserve=load_baseline(path))
    assert len(merged) == 1
    (entry,) = merged.entries.values()
    assert entry["path"] == "src/repro/core/b.py"

    full = compare(run_lint([tmp_path / "src"], root=tmp_path), load_baseline(path))
    assert full.new == []
    assert len(full.accepted) == 1


def test_write_without_preserve_rewrites_everything(tmp_path):
    tree = _tree(tmp_path, "ok = x == 0.5\n")
    path = tmp_path / "baseline.json"
    write_baseline(path, run_lint([tree], root=tree))
    _tree(tmp_path, "ok = True\n")
    rewritten = write_baseline(path, run_lint([tree], root=tree))
    assert len(rewritten) == 0


def test_rejects_wrong_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": {}}))
    with pytest.raises(BaselineError):
        load_baseline(path)


def test_rejects_malformed_shape(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 1, "entries": ["nope"]}))
    with pytest.raises(BaselineError):
        load_baseline(path)


def test_rejects_invalid_json(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{not json")
    with pytest.raises(BaselineError):
        load_baseline(path)


def test_empty_baseline_accepts_clean_report(tmp_path):
    tree = _tree(tmp_path, "ok = True\n")
    result = compare(run_lint([tree], root=tree), Baseline())
    assert result.new == []
    assert result.stale == []
