"""Shared helpers for the repro-lint analyzer tests.

Fixture snippets live flat under ``fixtures/<rule>/{flagged,clean}.py``;
:func:`install_fixture` copies one into a temporary tree at the package
location where the rule applies (path-scoped rules like DET003 only fire
inside kernel packages), so tests exercise the real module-name scoping
logic rather than bypassing it.
"""

from pathlib import Path

import pytest

FIXTURES_DIR = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

#: Where each rule's fixture is installed inside the synthetic tree — the
#: package the rule is scoped to (or any kernel package when unscoped).
FIXTURE_DEST = {
    "DET001": "src/repro/core/fixture_mod.py",
    "DET002": "src/repro/channel/fixture_mod.py",
    "DET003": "src/repro/phy/fixture_mod.py",
    "DET004": "src/repro/phy/fixture_mod.py",
    "RNG001": "src/repro/mac/fixture_mod.py",
    "NUM001": "src/repro/core/fixture_mod.py",
    "NUM002": "src/repro/core/fixture_mod.py",
    "NUM003": "src/repro/core/fixture_mod.py",
    "OBS001": "src/repro/sim/fixture_mod.py",
    "OBS002": "src/repro/sim/fixture_mod.py",
    "OBS003": "src/repro/sim/fixture_mod.py",
    "OBS004": "src/repro/sim/fixture_mod.py",
    "OBS005": "src/repro/obs/fixture_mod.py",
}


def fixture_source(rule_id: str, kind: str) -> Path:
    """Path of the committed fixture snippet for one rule."""
    return FIXTURES_DIR / rule_id.lower() / f"{kind}.py"


@pytest.fixture
def install_fixture(tmp_path):
    """Copy a rule fixture into a synthetic tree; returns the tree root."""

    def _install(rule_id: str, kind: str, dest: str = None) -> Path:
        relative = dest or FIXTURE_DEST[rule_id]
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(fixture_source(rule_id, kind).read_text())
        return tmp_path

    return _install
