"""Property-based tests of the beamforming invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.channel.models import random_channel_matrix
from repro.core.beamforming import (
    diversity_precoder,
    effective_channel,
    sinr_after_beamforming,
    zero_forcing_precoder,
    zero_forcing_precoder_wideband,
)


def well_conditioned_matrix(n, seed):
    rng = np.random.default_rng(seed)
    for _ in range(50):
        h = random_channel_matrix(n, n, rng=rng)
        if np.linalg.cond(h) < 50:
            return h
    return h


class TestZfInvariants:
    @given(n=st.integers(2, 6), seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_diagonalization(self, n, seed):
        h = well_conditioned_matrix(n, seed)
        w, k = zero_forcing_precoder(h)
        eff = effective_channel(h, w)
        assert np.allclose(eff, k * np.eye(n), atol=1e-8 * abs(k) + 1e-10)

    @given(n=st.integers(2, 6), seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_power_constraint_binding(self, n, seed):
        h = well_conditioned_matrix(n, seed)
        w, _ = zero_forcing_precoder(h, max_power_per_antenna=1.0)
        row_power = np.sum(np.abs(w) ** 2, axis=1)
        assert np.all(row_power <= 1.0 + 1e-9)
        assert np.max(row_power) == pytest.approx(1.0, rel=1e-9)

    @given(n=st.integers(2, 5), seed=st.integers(0, 2**31), scale=st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_k_scales_linearly_with_channel(self, n, seed, scale):
        """Scaling the channel by a scales k by a (SNR by a^2)."""
        h = well_conditioned_matrix(n, seed)
        _, k1 = zero_forcing_precoder(h)
        _, k2 = zero_forcing_precoder(scale * h)
        assert k2 == pytest.approx(scale * k1, rel=1e-9)

    @given(
        n=st.integers(2, 4),
        seed=st.integers(0, 2**31),
        errs=st.lists(st.floats(0.05, 0.5), min_size=4, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_differential_misalignment_creates_interference(self, n, seed, errs):
        """Perfect alignment has exactly zero inter-stream interference;
        any *differential* phase error leaks nonzero interference power."""
        h = well_conditioned_matrix(n, seed)
        w, _ = zero_forcing_precoder(h)
        clean_eff = effective_channel(h, w)
        off = clean_eff - np.diag(np.diag(clean_eff))
        assert np.allclose(off, 0.0, atol=1e-9)
        # alternate signs so errors are differential, never common
        errors = np.array(errs[:n]) * np.array([(-1) ** i for i in range(n)])
        dirty_eff = effective_channel(h, w, errors)
        off = dirty_eff - np.diag(np.diag(dirty_eff))
        assert np.sum(np.abs(off) ** 2) > 1e-12

    @given(n=st.integers(2, 4), seed=st.integers(0, 2**31), phi=st.floats(-3, 3))
    @settings(max_examples=30, deadline=None)
    def test_common_rotation_harmless(self, n, seed, phi):
        """Rotating *all* antennas together is invisible to every client."""
        h = well_conditioned_matrix(n, seed)
        w, k = zero_forcing_precoder(h)
        noise = k**2 / 50
        clean = sinr_after_beamforming(h, w, noise)
        rotated = sinr_after_beamforming(h, w, noise, np.full(n, phi))
        assert np.allclose(rotated, clean, rtol=1e-9)


class TestWidebandInvariants:
    @given(n=st.integers(2, 4), n_bins=st.integers(2, 8), seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_flat_effective_channel(self, n, n_bins, seed):
        channels = np.stack(
            [well_conditioned_matrix(n, seed + b) for b in range(n_bins)]
        )
        precoders, k = zero_forcing_precoder_wideband(channels)
        for b in range(n_bins):
            eff = channels[b] @ precoders[b]
            assert np.allclose(eff, k * np.eye(n), atol=1e-7 * abs(k) + 1e-10)


class TestDiversityInvariants:
    @given(n=st.integers(1, 12), seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_received_amplitude_is_sum_of_magnitudes(self, n, seed):
        rng = np.random.default_rng(seed)
        row = rng.normal(size=n) + 1j * rng.normal(size=n)
        assume(np.all(np.abs(row) > 1e-9))
        combined = row @ diversity_precoder(row)
        assert combined.real == pytest.approx(np.sum(np.abs(row)), rel=1e-9)

    @given(n=st.integers(2, 12), seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_coherent_beats_any_single_antenna(self, n, seed):
        rng = np.random.default_rng(seed)
        row = rng.normal(size=n) + 1j * rng.normal(size=n)
        assume(np.all(np.abs(row) > 1e-9))
        combined = abs(row @ diversity_precoder(row))
        assert combined >= np.max(np.abs(row)) - 1e-12
