"""Property-based tests of the phase-sync and sounding invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.phasesync import (
    PhaseSynchronizer,
    estimate_header_cfo,
    estimate_header_channel,
)
from repro.core.sounding import SoundingPlan
from repro.phy.cfo import apply_cfo
from repro.phy.preamble import lts_grid, sync_header

FS = 10e6


def header_through_channel(cfo_hz, channel, start_time=0.0):
    return channel * apply_cfo(sync_header(), cfo_hz, FS, start_time=start_time)


class TestHeaderInvariants:
    @given(cfo=st.floats(-40e3, 40e3))
    @settings(max_examples=40, deadline=None)
    def test_cfo_estimator_unbiased(self, cfo):
        rx = header_through_channel(cfo, 1.0 + 0j)
        assert estimate_header_cfo(rx, FS) == pytest.approx(cfo, abs=0.5)

    @given(
        cfo=st.floats(-20e3, 20e3),
        mag=st.floats(0.1, 5.0),
        phase=st.floats(-3.0, 3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_channel_estimate_scales(self, cfo, mag, phase):
        h = mag * np.exp(1j * phase)
        rx = header_through_channel(cfo, h)
        est = estimate_header_channel(rx)
        occupied = np.abs(lts_grid()) > 0
        # the averaged estimate carries the mid-header CFO rotation; its
        # magnitude must match the channel up to the (physical) coherent
        # combining loss cos(pi*df*T) of averaging two rotated copies
        loss = abs(np.cos(np.pi * cfo * 64 / FS))
        assert np.mean(np.abs(est[occupied])) == pytest.approx(
            mag * loss, rel=0.05
        )

    @given(
        cfo=st.floats(-15e3, 15e3),
        t=st.floats(1e-4, 0.2),
    )
    @settings(max_examples=40, deadline=None)
    def test_rotation_equals_elapsed_phase(self, cfo, t):
        """The §5.2b identity h(t)/h(0) = e^{j 2 pi df t}, for any offset
        and any elapsed time — the reason error does not accumulate."""
        sync = PhaseSynchronizer(FS)
        sync.set_reference(header_through_channel(cfo, 0.8 + 0.3j), 0.0)
        obs = sync.observe_header(
            header_through_channel(cfo, 0.8 + 0.3j, start_time=t), t
        )
        expected = np.exp(2j * np.pi * cfo * t)
        assert np.angle(obs.rotation * np.conj(expected)) == pytest.approx(
            0.0, abs=5e-3
        )


class TestSoundingPlanInvariants:
    @given(n_aps=st.integers(1, 12), rounds=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_slots_disjoint_and_ordered(self, n_aps, rounds):
        plan = SoundingPlan(n_aps=n_aps, n_rounds=rounds, sample_rate=FS)
        starts = sorted(
            plan.slot_start(a, r) for a in range(n_aps) for r in range(rounds)
        )
        # all distinct, non-overlapping, inside the frame
        assert len(set(starts)) == n_aps * rounds
        for a, b in zip(starts, starts[1:]):
            assert b - a >= 80
        assert starts[0] >= plan.header_length
        assert starts[-1] + 80 <= plan.frame_length

    @given(n_aps=st.integers(2, 12))
    @settings(max_examples=30, deadline=None)
    def test_round_period(self, n_aps):
        plan = SoundingPlan(n_aps=n_aps, n_rounds=3, sample_rate=FS)
        assert (
            plan.slot_start(0, 1) - plan.slot_start(0, 0)
            == plan.round_period_samples
        )


class TestFeedbackSerializationProperties:

    @given(
        n_bins=st.integers(1, 64),
        n_tx=st.integers(1, 12),
        scale=st.floats(1e-3, 1e3),
        noise=st.floats(0.0, 1e3),
        bits=st.sampled_from([8, 16]),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_shape(self, n_bins, n_tx, scale, noise, bits, seed):
        from repro.core.feedback import deserialize_report, serialize_report

        rng = np.random.default_rng(seed)
        ch = scale * (
            rng.normal(size=(n_bins, n_tx)) + 1j * rng.normal(size=(n_bins, n_tx))
        )
        recon, got_noise = deserialize_report(serialize_report(ch, noise, bits))
        assert recon.shape == ch.shape
        assert got_noise == pytest.approx(noise, rel=1e-5, abs=1e-30)
        levels = (1 << (bits - 1)) - 1
        max_abs = np.max(np.abs(np.concatenate([ch.real.ravel(), ch.imag.ravel()])))
        tolerance = 2.5 * max_abs / levels  # one quantization step per axis
        assert np.max(np.abs(recon - ch)) <= tolerance

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_quantization_idempotent(self, seed):
        """Quantizing an already-quantized report changes nothing."""
        from repro.core.feedback import quantize_csi

        rng = np.random.default_rng(seed)
        ch = rng.normal(size=(16, 3)) + 1j * rng.normal(size=(16, 3))
        once = quantize_csi(ch, 6)
        twice = quantize_csi(once, 6)
        assert np.allclose(once, twice, atol=1e-12)
