"""Property-based tests of the PHY chain invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.coding import BlockInterleaver, ConvolutionalCode, Puncturer, Scrambler
from repro.phy.frame import bits_to_bytes, bytes_to_bits
from repro.phy.modulation import get_modulation
from repro.phy.ofdm import OfdmDemodulator, OfdmModulator

_code = ConvolutionalCode()
_mod = OfdmModulator()
_demod = OfdmDemodulator()

bit_arrays = st.lists(st.integers(0, 1), min_size=1, max_size=256).map(
    lambda bits: np.array(bits, dtype=np.uint8)
)


class TestCodingProperties:
    @given(bits=bit_arrays)
    @settings(max_examples=40, deadline=None)
    def test_conv_roundtrip(self, bits):
        assert np.array_equal(_code.decode_hard(_code.encode(bits), bits.size), bits)

    @given(bits=bit_arrays)
    @settings(max_examples=25, deadline=None)
    def test_conv_code_is_linear(self, bits):
        zero = np.zeros_like(bits)
        assert np.array_equal(_code.encode(zero), np.zeros(2 * (bits.size + 6), dtype=np.uint8))

    @given(
        bits=bit_arrays,
        rate=st.sampled_from([(1, 2), (2, 3), (3, 4)]),
    )
    @settings(max_examples=30, deadline=None)
    def test_puncture_roundtrip(self, bits, rate):
        coded = _code.encode(bits)
        p = Puncturer(rate)
        tx = p.puncture(coded)
        assert tx.size == p.punctured_length(coded.size)
        rx = p.depuncture(1.0 - 2.0 * tx.astype(float), coded.size)
        assert np.array_equal(_code.decode(rx, bits.size), bits)

    @given(bits=bit_arrays, seed=st.integers(1, 127))
    @settings(max_examples=30, deadline=None)
    def test_scrambler_involution(self, bits, seed):
        s = Scrambler(seed)
        assert np.array_equal(Scrambler(seed).descramble(s.scramble(bits)), bits)

    @given(
        n_blocks=st.integers(1, 4),
        bits_per_sc=st.sampled_from([1, 2, 4, 6]),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_interleaver_bijection(self, n_blocks, bits_per_sc, seed):
        n_cbps = 48 * bits_per_sc
        il = BlockInterleaver(n_cbps, bits_per_sc)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, n_cbps * n_blocks).astype(np.uint8)
        out = il.interleave(data)
        assert sorted(out.tolist()) == sorted(data.tolist())  # permutation
        assert np.array_equal(il.deinterleave(out), data)


class TestModulationProperties:
    @given(
        name=st.sampled_from(["BPSK", "QPSK", "16QAM", "64QAM"]),
        seed=st.integers(0, 2**31),
        n=st.integers(1, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, name, seed, n):
        mod = get_modulation(name)
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, n * mod.bits_per_symbol).astype(np.uint8)
        assert np.array_equal(mod.demodulate_hard(mod.modulate(bits)), bits)

    @given(name=st.sampled_from(["BPSK", "QPSK", "16QAM", "64QAM"]))
    @settings(max_examples=10, deadline=None)
    def test_unit_energy(self, name):
        mod = get_modulation(name)
        assert np.mean(np.abs(mod.points) ** 2) == pytest.approx(1.0)


class TestOfdmProperties:
    @given(seed=st.integers(0, 2**31), symbol_index=st.integers(0, 126))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_pilot_index(self, seed, symbol_index):
        rng = np.random.default_rng(seed)
        qpsk = get_modulation("QPSK")
        data = qpsk.modulate(rng.integers(0, 2, 96).astype(np.uint8))
        samples = _mod.modulate_symbol(data, symbol_index)
        eq = _demod.demodulate_symbol(samples, np.ones(64), symbol_index)
        assert np.allclose(eq.data, data, atol=1e-9)

    @given(seed=st.integers(0, 2**31), phase=st.floats(-3.0, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_common_phase_invariance(self, seed, phase):
        """Pilot tracking removes any common rotation exactly."""
        rng = np.random.default_rng(seed)
        qpsk = get_modulation("QPSK")
        data = qpsk.modulate(rng.integers(0, 2, 96).astype(np.uint8))
        samples = _mod.modulate_symbol(data) * np.exp(1j * phase)
        eq = _demod.demodulate_symbol(samples, np.ones(64))
        assert np.allclose(eq.data, data, atol=1e-8)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_parseval_energy(self, seed):
        """Time-domain energy of the body equals frequency-domain energy."""
        rng = np.random.default_rng(seed)
        qpsk = get_modulation("QPSK")
        data = qpsk.modulate(rng.integers(0, 2, 96).astype(np.uint8))
        grid = _mod.symbol_grid(data)
        samples = _mod.modulate_symbol(data)
        body = samples[16:]
        assert np.sum(np.abs(body) ** 2) == pytest.approx(
            np.sum(np.abs(grid) ** 2), rel=1e-9
        )


class TestByteHelpers:
    @given(data=st.binary(min_size=0, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_bytes_bits_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data
