"""Property-based tests of the link-layer invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mac.queue import DownlinkQueue
from repro.mac.rate import EffectiveSnrRateSelector, select_mcs_for_snr
from repro.mac.scheduler import JointScheduler
from repro.phy.mcs import ALL_MCS

client_sequences = st.lists(st.integers(0, 5), min_size=1, max_size=20)


def fresh_queue(n_clients=6, n_aps=4, seed=0):
    rng = np.random.default_rng(seed)
    return DownlinkQueue(rng.uniform(5, 25, (n_clients, n_aps)))


class TestQueueInvariants:
    @given(clients=client_sequences)
    @settings(max_examples=40, deadline=None)
    def test_fifo_head_is_first_enqueued(self, clients):
        q = fresh_queue()
        packets = [q.enqueue(c) for c in clients]
        assert q.head() is packets[0]

    @given(clients=client_sequences)
    @settings(max_examples=40, deadline=None)
    def test_designation_always_strongest(self, clients):
        q = fresh_queue(seed=3)
        for c in clients:
            p = q.enqueue(c)
            assert p.designated_ap == int(np.argmax(q.client_ap_snr_db[c]))

    @given(clients=client_sequences)
    @settings(max_examples=40, deadline=None)
    def test_length_bookkeeping(self, clients):
        q = fresh_queue()
        packets = [q.enqueue(c) for c in clients]
        assert len(q) == len(clients)
        for p in packets:
            q.remove(p)
        assert len(q) == 0


class TestSchedulerInvariants:
    @given(clients=client_sequences, budget=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_group_structure(self, clients, budget):
        """Every group: head first, one packet per client, within budget,
        and repeated scheduling drains the queue completely."""
        q = fresh_queue(seed=1)
        for c in clients:
            q.enqueue(c)
        scheduler = JointScheduler(q, max_streams=budget)
        total = 0
        while True:
            before_head = q.head()
            group = scheduler.next_group()
            if group is None:
                break
            assert group.packets[0] is before_head
            assert len(group.packets) <= budget
            assert len({p.client for p in group.packets}) == len(group.packets)
            assert group.lead_ap == before_head.designated_ap
            total += len(group.packets)
        assert total == len(clients)
        assert len(q) == 0


class TestRateSelectorInvariants:
    @given(snr=st.floats(-10.0, 40.0))
    @settings(max_examples=60, deadline=None)
    def test_selected_mcs_threshold_respected(self, snr):
        mcs = select_mcs_for_snr(snr)
        if mcs is None:
            assert snr < ALL_MCS[0].min_snr_db
        else:
            assert snr >= mcs.min_snr_db
            # and nothing faster qualifies
            if mcs.index < 7:
                assert snr < ALL_MCS[mcs.index + 1].min_snr_db

    @given(
        seed=st.integers(0, 2**31),
        shift_db=st.floats(0.5, 6.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_rate_monotone_under_uniform_improvement(self, seed, shift_db):
        """Raising every subcarrier's SNR can never lower the chosen rate."""
        rng = np.random.default_rng(seed)
        sel = EffectiveSnrRateSelector(10e6)
        snrs = rng.uniform(0.0, 25.0, 48)
        base = sel.select(snrs).bitrate
        better = sel.select(snrs + shift_db).bitrate
        assert better >= base
