"""Property-based tests of the sweep runtime's invariants.

Three properties carry the engine's determinism guarantee:

* seed derivation is injective over ``(sweep, cell, trial)`` — no two
  tasks ever share an RNG stream;
* chunking covers every trial exactly once, for any ``(n_trials,
  chunk_size)``;
* result assembly is invariant under permutation of chunk completion
  order.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import CellSpec, assemble_results, iter_chunks, spawn_key
from repro.runtime.seeding import seed_sequence

names = st.text(min_size=1, max_size=12)
indices = st.integers(min_value=0, max_value=2**31)


class TestSpawnKeyInjective:
    @given(
        a=st.tuples(names, indices, indices),
        b=st.tuples(names, indices, indices),
    )
    @settings(max_examples=200, deadline=None)
    def test_distinct_tasks_distinct_keys(self, a, b):
        """spawn_key is uniquely decodable: equal keys imply equal tasks."""
        if a != b:
            assert spawn_key(*a) != spawn_key(*b)
        else:
            assert spawn_key(*a) == spawn_key(*b)

    def test_name_boundary_cases(self):
        """Length-prefixing defeats concatenation collisions like
        ("ab", cell=1) vs ("a", ...) — plain utf-8 keys would alias."""
        assert spawn_key("ab", 1, 0) != spawn_key("a", ord("b"), 0)
        with pytest.raises(ValueError):
            spawn_key("", 0, 0)
        with pytest.raises(ValueError):
            spawn_key("x", -1, 0)

    @given(name=names, cell=indices, trial=indices, seed=st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_streams_differ_from_master(self, name, cell, trial, seed):
        """A derived stream never collides with the master seed's own."""
        derived = np.random.default_rng(seed_sequence(seed, name, cell, trial))
        master = np.random.default_rng(seed)
        assert derived.integers(2**63) != master.integers(2**63)


class TestChunkCoverage:
    @given(n_trials=st.integers(0, 500), chunk_size=st.integers(1, 64))
    @settings(max_examples=200, deadline=None)
    def test_every_trial_exactly_once(self, n_trials, chunk_size):
        seen = []
        last_chunk = -1
        for chunk_index, start, stop in iter_chunks(n_trials, chunk_size):
            assert chunk_index == last_chunk + 1
            assert 0 < stop - start <= chunk_size
            seen.extend(range(start, stop))
            last_chunk = chunk_index
        assert seen == list(range(n_trials))


class TestAssemblyPermutationInvariant:
    @given(
        n_trials=st.lists(st.integers(1, 20), min_size=1, max_size=4),
        chunk_size=st.integers(1, 7),
        order_seed=st.integers(0, 2**31),
    )
    @settings(max_examples=100, deadline=None)
    def test_completion_order_invisible(self, n_trials, chunk_size, order_seed):
        cells = [
            CellSpec(key=i, params=None, n_trials=n) for i, n in enumerate(n_trials)
        ]
        items = [
            ((ci, chunk_index), [[t, t * 1000 + ci] for t in range(start, stop)])
            for ci, cell in enumerate(cells)
            for chunk_index, start, stop in iter_chunks(cell.n_trials, chunk_size)
        ]
        reference = assemble_results(cells, dict(items))

        perm = np.random.default_rng(order_seed).permutation(len(items))
        shuffled = dict(items[i] for i in perm)
        assert assemble_results(cells, shuffled) == reference
        assert reference == [
            [t * 1000 + ci for t in range(cell.n_trials)]
            for ci, cell in enumerate(cells)
        ]
