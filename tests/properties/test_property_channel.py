"""Property-based tests of the channel/oscillator substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.medium import fractional_delay
from repro.channel.oscillator import Oscillator, OscillatorConfig
from repro.mac.rate import ber_for_modulation, effective_snr_db
from repro.utils.units import db_to_linear, linear_to_db, wrap_phase


class TestOscillatorProperties:
    @given(seed=st.integers(0, 2**31), t=st.floats(0.0, 0.05))
    @settings(max_examples=40, deadline=None)
    def test_phase_query_idempotent(self, seed, t):
        osc = Oscillator(OscillatorConfig(ppm_offset=1.0, phase_noise_rad2_per_s=0.5), rng=seed)
        assert osc.phase_at([t])[0] == osc.phase_at([t])[0]

    @given(seed=st.integers(0, 2**31), ppm=st.floats(-20.0, 20.0))
    @settings(max_examples=30, deadline=None)
    def test_deterministic_part_linear_in_time(self, seed, ppm):
        osc = Oscillator(OscillatorConfig(ppm_offset=ppm, phase_noise_rad2_per_s=0.0))
        t = np.array([1e-3, 2e-3, 3e-3])
        phases = osc.phase_at(t) - osc.config.initial_phase
        diffs = np.diff(phases)
        assert diffs[0] == pytest.approx(diffs[1], rel=1e-9, abs=1e-12)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_query_order_does_not_matter(self, seed):
        a = Oscillator(OscillatorConfig(phase_noise_rad2_per_s=1.0), rng=seed)
        b = Oscillator(OscillatorConfig(phase_noise_rad2_per_s=1.0), rng=seed)
        times = np.array([5e-3, 1e-3, 3e-3])
        fwd = a.phase_noise_at(np.sort(times))
        mixed = b.phase_noise_at(times)
        assert np.allclose(np.sort(fwd), np.sort(mixed))


class TestFractionalDelayProperties:
    @given(
        seed=st.integers(0, 2**31),
        frac=st.floats(0.0, 0.99),
    )
    @settings(max_examples=30, deadline=None)
    def test_energy_approximately_preserved(self, seed, frac):
        rng = np.random.default_rng(seed)
        # band-limited signal (smooth) so sinc interpolation is benign
        x = np.convolve(
            rng.normal(size=256) + 1j * rng.normal(size=256), np.ones(8) / 8, "same"
        )
        y = fractional_delay(x, frac)
        assert np.sum(np.abs(y) ** 2) == pytest.approx(
            np.sum(np.abs(x) ** 2), rel=0.1
        )

    @given(n=st.integers(0, 10))
    @settings(max_examples=11, deadline=None)
    def test_integer_delay_exact(self, n):
        x = np.arange(20, dtype=complex)
        y = fractional_delay(x, float(n))
        assert np.allclose(y[n : n + 20], x)


class TestUnitProperties:
    @given(v=st.floats(1e-6, 1e6))
    @settings(max_examples=40, deadline=None)
    def test_db_roundtrip(self, v):
        assert db_to_linear(linear_to_db(v)) == pytest.approx(v, rel=1e-9)

    @given(phase=st.floats(-100.0, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_wrap_phase_range_and_equivalence(self, phase):
        w = wrap_phase(phase)
        assert -np.pi <= w <= np.pi
        assert np.exp(1j * w) == pytest.approx(np.exp(1j * phase), abs=1e-9)


class TestRateProperties:
    @given(bits=st.sampled_from([1, 2, 4, 6]), snr_db=st.floats(-5.0, 35.0))
    @settings(max_examples=40, deadline=None)
    def test_ber_in_unit_interval(self, bits, snr_db):
        ber = float(ber_for_modulation(db_to_linear(snr_db), bits))
        assert 0.0 <= ber <= 1.0

    @given(bits=st.sampled_from([1, 2, 4, 6]), snr_db=st.floats(0.0, 28.0))
    @settings(max_examples=40, deadline=None)
    def test_effective_snr_of_flat_channel_is_identity(self, bits, snr_db):
        flat = np.full(48, snr_db)
        assert effective_snr_db(flat, bits) == pytest.approx(snr_db, abs=0.05)

    @given(
        bits=st.sampled_from([1, 2, 4, 6]),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_effective_snr_bounded_by_extremes(self, bits, seed):
        rng = np.random.default_rng(seed)
        snrs = rng.uniform(0.0, 25.0, 48)
        eff = effective_snr_db(snrs, bits)
        assert snrs.min() - 0.1 <= eff <= snrs.max() + 0.1


class TestMediumLinearityProperties:
    @given(seed=st.integers(0, 2**31), n_tx=st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_superposition_is_linear(self, seed, n_tx):
        """What a receiver hears from N concurrent transmitters equals the
        sum of what it would hear from each alone (noise off)."""
        from repro.channel.medium import Medium
        from repro.channel.models import LinkChannel
        from repro.channel.oscillator import Oscillator, OscillatorConfig

        rng = np.random.default_rng(seed)

        def build():
            m = Medium(10e6, noise_power=0.0, rng=0)
            for i in range(n_tx):
                m.register_node(
                    f"tx{i}",
                    Oscillator(
                        OscillatorConfig(
                            ppm_offset=float(i) - 1.0, phase_noise_rad2_per_s=0.0
                        )
                    ),
                )
            m.register_node(
                "rx", Oscillator(OscillatorConfig(phase_noise_rad2_per_s=0.0))
            )
            for i in range(n_tx):
                m.set_link(
                    f"tx{i}", "rx",
                    LinkChannel(taps=np.array([0.5 + 0.1j * i, 0.1 + 0j])),
                )
            return m

        signals = [
            rng.normal(size=64) + 1j * rng.normal(size=64) for _ in range(n_tx)
        ]

        combined = build()
        for i, x in enumerate(signals):
            combined.transmit(f"tx{i}", x, 0.0)
        together = combined.receive("rx", 0.0, 80)

        alone_sum = np.zeros(80, dtype=complex)
        for i, x in enumerate(signals):
            m = build()
            m.transmit(f"tx{i}", x, 0.0)
            alone_sum += m.receive("rx", 0.0, 80)

        assert np.allclose(together, alone_sum, atol=1e-9)
