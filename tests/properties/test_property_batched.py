"""Property-based tests of the batched (vectorized) kernel paths.

The batched execution backend rests on three families of invariants:

* **batch-of-1 equivalence** — feeding a kernel a stack of trials yields,
  per trial slice, exactly what the scalar (3-D) reference path produces.
  Everything except :func:`nulling_inr_db` is bitwise; nulling swaps a
  gemv for a batched gemm and is pinned at tight tolerance instead;
* **shape/dtype invariants** — batch axes pass through untouched and
  outputs are real float arrays whatever the topology dimensions;
* **permutation invariance** — trials own independent seed streams, so
  permuting the seed list permutes the per-trial results (and leaves any
  aggregate over trials unchanged).
"""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.beamforming import (
    snr_reduction_from_misalignment,
    snr_reduction_grid,
    zero_forcing_precoder_wideband,
)
from repro.mac.rate import EffectiveSnrRateSelector
from repro.sim.fastsim import (
    SyncErrorModel,
    diversity_snr_db,
    joint_zf_sinr_db,
    mmse_stream_sinr_db,
    nulling_inr_db,
    sinr_grid_kernel,
    sinr_grid_kernel_batch,
)

dims = st.integers(min_value=2, max_value=4)
batch_sizes = st.integers(min_value=1, max_value=3)
bins = st.integers(min_value=2, max_value=5)
seeds = st.integers(min_value=0, max_value=2**31)


def _complex(rng, shape):
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


def _stack(seed, batch, n_bins, n_rx, n_tx):
    rng = np.random.default_rng(seed)
    channels = _complex(rng, (batch, n_bins, n_rx, n_tx))
    phases = rng.uniform(-np.pi, np.pi, n_tx)
    return channels, phases


class TestBatchOfOneMatchesScalar:
    @given(seed=seeds, batch=batch_sizes, n=dims, n_bins=bins)
    @settings(max_examples=25, deadline=None)
    def test_joint_zf_bitwise(self, seed, batch, n, n_bins):
        channels, phases = _stack(seed, batch, n_bins, n, n)
        est = channels + 0.01 * _complex(np.random.default_rng(seed + 1),
                                         channels.shape)
        batched = joint_zf_sinr_db(channels, phase_errors=phases,
                                   est_channels=est)
        for t in range(batch):
            scalar = joint_zf_sinr_db(channels[t], phase_errors=phases,
                                      est_channels=est[t])
            np.testing.assert_array_equal(batched[t], scalar)

    @given(seed=seeds, batch=batch_sizes, n=dims, n_bins=bins)
    @settings(max_examples=25, deadline=None)
    def test_nulling_tight_tolerance(self, seed, batch, n, n_bins):
        channels, phases = _stack(seed, batch, n_bins, n, n)
        nulled = seed % n
        batched = nulling_inr_db(channels, nulled, phase_errors=phases)
        assert np.shape(batched) == (batch,)
        for t in range(batch):
            scalar = nulling_inr_db(channels[t], nulled, phase_errors=phases)
            np.testing.assert_allclose(batched[t], scalar,
                                       rtol=1e-12, atol=1e-12)

    @given(seed=seeds, batch=batch_sizes, n=dims, n_bins=bins)
    @settings(max_examples=25, deadline=None)
    def test_mmse_bitwise(self, seed, batch, n, n_bins):
        channels, _ = _stack(seed, batch, n_bins, n, n)
        batched = mmse_stream_sinr_db(channels, noise_power=0.5)
        for t in range(batch):
            scalar = mmse_stream_sinr_db(channels[t], noise_power=0.5)
            np.testing.assert_array_equal(batched[t], scalar)

    @given(seed=seeds, batch=batch_sizes, n_aps=dims, n_bins=bins)
    @settings(max_examples=25, deadline=None)
    def test_diversity_bitwise(self, seed, batch, n_aps, n_bins):
        rng = np.random.default_rng(seed)
        channels = _complex(rng, (batch, n_bins, n_aps))
        phases = rng.uniform(-np.pi, np.pi, n_aps)
        batched = diversity_snr_db(channels, phase_errors=phases)
        for t in range(batch):
            scalar = diversity_snr_db(channels[t], phase_errors=phases)
            np.testing.assert_array_equal(batched[t], scalar)

    @given(seed=seeds, batch=batch_sizes, n=dims, n_bins=bins)
    @settings(max_examples=25, deadline=None)
    def test_wideband_precoder_bitwise(self, seed, batch, n, n_bins):
        channels, _ = _stack(seed, batch, n_bins, n, n)
        precoders, scale = zero_forcing_precoder_wideband(channels)
        for t in range(batch):
            ref_p, ref_k = zero_forcing_precoder_wideband(channels[t])
            np.testing.assert_array_equal(precoders[t], ref_p)
            np.testing.assert_array_equal(np.asarray(scale)[t], ref_k)

    @given(seed=seeds, batch=batch_sizes, n=dims)
    @settings(max_examples=25, deadline=None)
    def test_snr_reduction_grid_bitwise(self, seed, batch, n):
        rng = np.random.default_rng(seed)
        channels = _complex(rng, (batch, n, n))
        misalignments = rng.uniform(0.0, 0.5, 3)
        snrs_db = np.array([10.0, 20.0])
        grid = snr_reduction_grid(channels, misalignments, snrs_db)
        assert grid.shape == (batch, 2, 3, n)
        for t in range(batch):
            for s, snr in enumerate(snrs_db):
                for m, mis in enumerate(misalignments):
                    ref = snr_reduction_from_misalignment(channels[t], mis, snr)
                    np.testing.assert_array_equal(grid[t, s, m], ref)

    @given(seed=seeds, batch=batch_sizes, n_bins=bins)
    @settings(max_examples=25, deadline=None)
    def test_goodput_batch_bitwise(self, seed, batch, n_bins):
        rng = np.random.default_rng(seed)
        rows = rng.uniform(-10.0, 40.0, (batch, n_bins))
        selector = EffectiveSnrRateSelector(10e6, mac_efficiency=0.75)
        batched = selector.goodput_batch(rows)
        assert batched.shape == (batch,)
        for t in range(batch):
            np.testing.assert_array_equal(batched[t], selector.goodput(rows[t]))


class TestShapeDtypeInvariants:
    @given(seed=seeds, batch=batch_sizes, n_rx=dims,
           extra_tx=st.integers(0, 2), n_bins=bins)
    @settings(max_examples=25, deadline=None)
    def test_joint_zf_shapes(self, seed, batch, n_rx, extra_tx, n_bins):
        n_tx = n_rx + extra_tx  # ZF needs at least as many antennas as clients
        rng = np.random.default_rng(seed)
        channels = _complex(rng, (batch, n_bins, n_rx, n_tx))
        out = joint_zf_sinr_db(channels)
        assert out.shape == (batch, n_rx, n_bins)
        assert out.dtype == np.float64
        assert np.all(np.isfinite(out))

    @given(seed=seeds, batch=batch_sizes, n=dims, n_bins=bins)
    @settings(max_examples=25, deadline=None)
    def test_mmse_shapes(self, seed, batch, n, n_bins):
        rng = np.random.default_rng(seed)
        channels = _complex(rng, (batch, n_bins, n, n))
        out = mmse_stream_sinr_db(channels)
        assert out.shape == (batch, n, n_bins)
        assert out.dtype == np.float64

    @given(seed=seeds, batch=batch_sizes, n_aps=dims, n_bins=bins)
    @settings(max_examples=25, deadline=None)
    def test_diversity_shapes(self, seed, batch, n_aps, n_bins):
        rng = np.random.default_rng(seed)
        channels = _complex(rng, (batch, n_bins, n_aps))
        out = diversity_snr_db(channels)
        assert out.shape == (batch, n_bins)
        assert out.dtype == np.float64


class TestTrialPermutationInvariance:
    PARAMS = {
        "n": 2,
        "band": (18.0, 22.0),
        "error_model": SyncErrorModel(),
    }

    @given(master=seeds, order_seed=seeds, n_trials=st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_permuting_seeds_permutes_results(self, master, order_seed,
                                              n_trials):
        trial_seeds = [master + i for i in range(n_trials)]
        results = sinr_grid_kernel_batch(self.PARAMS, trial_seeds)
        perm = np.random.default_rng(order_seed).permutation(n_trials)
        permuted = sinr_grid_kernel_batch(
            self.PARAMS, [trial_seeds[i] for i in perm]
        )
        assert permuted == [results[i] for i in perm]
        # fsum is correctly rounded, hence order-invariant — the aggregate
        # over trials is untouched by the permutation, bit for bit.
        agg = math.fsum(r["mean_sinr_db"] for r in results) / n_trials
        assert math.fsum(r["mean_sinr_db"] for r in permuted) / n_trials == agg

    @given(master=seeds, n_trials=st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_batch_matches_scalar_map(self, master, n_trials):
        trial_seeds = [master + i for i in range(n_trials)]
        batched = sinr_grid_kernel_batch(self.PARAMS, trial_seeds)
        assert batched == [
            sinr_grid_kernel(self.PARAMS, s) for s in trial_seeds
        ]
