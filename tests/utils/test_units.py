"""Unit conversions."""

import numpy as np
import pytest

from repro.utils.units import (
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    ppm_to_hz,
    watts_to_dbm,
    wrap_phase,
)


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_roundtrip(self):
        for v in (0.1, 1.0, 3.7, 100.0):
            assert db_to_linear(linear_to_db(v)) == pytest.approx(v)

    def test_linear_to_db_of_zero_is_neg_inf(self):
        assert linear_to_db(0.0) == -np.inf

    def test_array_input(self):
        out = db_to_linear(np.array([0.0, 10.0, 20.0]))
        assert np.allclose(out, [1.0, 10.0, 100.0])


class TestDbm:
    def test_zero_dbm_is_one_milliwatt(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_roundtrip(self):
        assert watts_to_dbm(dbm_to_watts(17.0)) == pytest.approx(17.0)


class TestWrapPhase:
    def test_identity_in_range(self):
        assert wrap_phase(1.0) == pytest.approx(1.0)

    def test_wraps_positive(self):
        assert wrap_phase(2 * np.pi + 0.5) == pytest.approx(0.5)

    def test_wraps_negative(self):
        assert wrap_phase(-2 * np.pi - 0.5) == pytest.approx(-0.5)

    def test_scalar_returns_float(self):
        assert isinstance(wrap_phase(5.0), float)

    def test_array(self):
        out = wrap_phase(np.array([0.0, 3 * np.pi]))
        assert np.allclose(out, [0.0, np.pi])


class TestPpm:
    def test_80211_tolerance_at_2_4ghz(self):
        # the paper's §1: 20 ppm at 2.4 GHz is 48 kHz
        assert ppm_to_hz(20.0, 2.4e9) == pytest.approx(48_000.0)

    def test_sign_preserved(self):
        assert ppm_to_hz(-2.0, 1e9) == pytest.approx(-2000.0)
