"""RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import complex_normal, ensure_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, 10)
        b = ensure_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passes_through(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestComplexNormal:
    def test_unit_power(self):
        rng = np.random.default_rng(7)
        x = complex_normal(rng, 100_000, scale=1.0)
        assert np.mean(np.abs(x) ** 2) == pytest.approx(1.0, rel=0.02)

    def test_scale_squares_power(self):
        rng = np.random.default_rng(7)
        x = complex_normal(rng, 100_000, scale=3.0)
        assert np.mean(np.abs(x) ** 2) == pytest.approx(9.0, rel=0.02)

    def test_circular_symmetry(self):
        rng = np.random.default_rng(7)
        x = complex_normal(rng, 100_000)
        # real and imaginary parts carry equal power, zero correlation
        assert np.var(x.real) == pytest.approx(np.var(x.imag), rel=0.05)
        assert abs(np.mean(x.real * x.imag)) < 0.01

    def test_scalar_shape(self):
        rng = np.random.default_rng(7)
        x = complex_normal(rng, ())
        assert np.ndim(x) == 0
