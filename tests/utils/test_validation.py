"""Argument validation helper."""

import pytest

from repro.utils.validation import require


def test_passes_on_true():
    require(True, "never raised")


def test_raises_on_false():
    with pytest.raises(ValueError, match="must be positive"):
        require(False, "value must be positive")


def test_message_is_preserved():
    with pytest.raises(ValueError) as excinfo:
        require(1 > 2, "one is not greater than two")
    assert "one is not greater than two" in str(excinfo.value)
