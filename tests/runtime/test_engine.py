"""Unit tests of the sweep engine: chunking, assembly, checkpointing,
backend resolution and the batched/thread execution paths."""

import json

import numpy as np
import pytest

from repro.runtime import (
    POOL_MIN_TRIALS,
    CellSpec,
    CheckpointMismatch,
    SweepError,
    assemble_results,
    batched_kernel_for,
    iter_chunks,
    load_completed,
    register_batched_kernel,
    resolve_backend,
    run_chunk,
    run_chunk_batched,
    run_sweep,
    sweep_header,
)
from repro.runtime import engine


def mean_kernel(params, seed):
    """Picklable toy kernel: a seeded draw scaled by the cell's params."""
    rng = np.random.default_rng(seed)
    return float(params["scale"] * rng.standard_normal())


CELLS = [
    CellSpec(key="a", params={"scale": 1.0}, n_trials=7),
    CellSpec(key=("b", 2), params={"scale": 2.0}, n_trials=5),
]


class TestChunking:
    def test_iter_chunks_covers_exactly_once(self):
        chunks = list(iter_chunks(10, 4))
        assert chunks == [(0, 0, 4), (1, 4, 8), (2, 8, 10)]

    def test_zero_trials(self):
        assert list(iter_chunks(0, 4)) == []

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            list(iter_chunks(-1, 4))
        with pytest.raises(ValueError):
            list(iter_chunks(4, 0))


class TestAssembly:
    def _chunks(self):
        out = {}
        for cell_index, cell in enumerate(CELLS):
            for chunk_index, start, stop in iter_chunks(cell.n_trials, 3):
                out[(cell_index, chunk_index)] = run_chunk(
                    mean_kernel, "unit", 0, cell.params, cell_index, start, stop
                )
        return out

    def test_duplicate_trial_rejected(self):
        chunks = self._chunks()
        chunks[(0, 99)] = [[0, 0.0]]  # trial 0 of cell 0 again
        with pytest.raises(SweepError, match="twice"):
            assemble_results(CELLS, chunks)

    def test_missing_trial_rejected(self):
        chunks = self._chunks()
        del chunks[(1, 0)]
        with pytest.raises(SweepError, match="missing"):
            assemble_results(CELLS, chunks)

    def test_cell_results_lookup(self):
        r = run_sweep("unit", mean_kernel, CELLS, master_seed=0)
        assert r.cell_results("a") == r.results[0]
        assert r.cell_results(("b", 2)) == r.results[1]
        # keys are compared after jsonable-normalization: lists match tuples
        assert r.cell_results(["b", 2]) == r.results[1]
        with pytest.raises(KeyError):
            r.cell_results("nope")


class TestCheckpoint:
    def test_checkpoint_roundtrip(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        r = run_sweep("unit", mean_kernel, CELLS, master_seed=3,
                      chunk_size=3, checkpoint=str(ck))
        header = sweep_header("unit", 3, 3, CELLS)
        completed = load_completed(str(ck), header)
        assert assemble_results(CELLS, completed) == r.results

    def test_resume_skips_completed_chunks(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        run_sweep("unit", mean_kernel, CELLS, master_seed=3,
                  chunk_size=3, checkpoint=str(ck))
        r = run_sweep("unit", mean_kernel, CELLS, master_seed=3,
                      chunk_size=3, checkpoint=str(ck), resume=True)
        assert r.resumed_chunks == len(
            [c for cell in CELLS for c in iter_chunks(cell.n_trials, 3)]
        )

    def test_truncated_trailing_line_dropped(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        run_sweep("unit", mean_kernel, CELLS, master_seed=3,
                  chunk_size=3, checkpoint=str(ck))
        lines = ck.read_text().splitlines()
        ck.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        header = sweep_header("unit", 3, 3, CELLS)
        completed = load_completed(str(ck), header)
        assert len(completed) == len(lines) - 2  # header + dropped tail

    def test_header_mismatch_rejected(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        run_sweep("unit", mean_kernel, CELLS, master_seed=3,
                  chunk_size=3, checkpoint=str(ck))
        with pytest.raises(CheckpointMismatch):
            run_sweep("unit", mean_kernel, CELLS, master_seed=4,
                      chunk_size=3, checkpoint=str(ck), resume=True)
        with pytest.raises(CheckpointMismatch):
            run_sweep("other", mean_kernel, CELLS, master_seed=3,
                      chunk_size=3, checkpoint=str(ck), resume=True)

    def test_checkpoint_is_jsonl(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        run_sweep("unit", mean_kernel, CELLS, master_seed=3, checkpoint=str(ck))
        records = [json.loads(line) for line in ck.read_text().splitlines()]
        assert records[0]["type"] == "header"
        assert records[0]["sweep"] == "unit"
        assert all(rec["type"] == "chunk" for rec in records[1:])


def mean_kernel_batch(params, seeds):
    """Faithful batched twin of :func:`mean_kernel`."""
    return [mean_kernel(params, s) for s in seeds]


def broken_batch(params, seeds):
    raise FloatingPointError("stacked matrix went singular")


def short_batch(params, seeds):
    return [mean_kernel(params, s) for s in seeds][:-1]


@pytest.fixture
def mean_batch_registered():
    register_batched_kernel(mean_kernel, mean_kernel_batch)
    yield
    engine._BATCHED_KERNELS.pop(mean_kernel, None)


class TestResolveBackend:
    def test_none_keeps_legacy_semantics(self):
        assert resolve_backend(None, mean_kernel, 1, 1000) == "serial"
        assert resolve_backend(None, mean_kernel, 4, 1) == "process"

    def test_literal_backends_pass_through(self):
        for mode in ("serial", "thread", "process"):
            assert resolve_backend(mode, mean_kernel, 2, 10) == mode

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu", mean_kernel, 1, 10)

    def test_batched_without_twin_rejected(self):
        assert batched_kernel_for(mean_kernel) is None
        with pytest.raises(SweepError, match="register_batched_kernel"):
            resolve_backend("batched", mean_kernel, 1, 10)

    def test_auto_prefers_batched_twin(self, mean_batch_registered):
        # a registered twin wins even on one core with one worker
        assert resolve_backend("auto", mean_kernel, 1, 1) == "batched"
        assert resolve_backend("auto", mean_kernel, 8, 10**6) == "batched"

    def test_auto_pool_needs_cores_and_trials(self, monkeypatch):
        monkeypatch.setattr(engine, "_usable_cpus", lambda: 4)
        assert (
            resolve_backend("auto", mean_kernel, 4, POOL_MIN_TRIALS)
            == "process"
        )
        # too few trials to amortize dispatch envelopes
        assert (
            resolve_backend("auto", mean_kernel, 4, POOL_MIN_TRIALS - 1)
            == "serial"
        )
        assert resolve_backend("auto", mean_kernel, 1, 10**6) == "serial"
        monkeypatch.setattr(engine, "_usable_cpus", lambda: 1)
        assert resolve_backend("auto", mean_kernel, 4, 10**6) == "serial"


class TestBatchedExecution:
    def test_matches_serial(self, mean_batch_registered):
        serial = run_sweep("unit", mean_kernel, CELLS, master_seed=5)
        batched = run_sweep("unit", mean_kernel, CELLS, master_seed=5,
                            backend="batched")
        assert batched.results == serial.results
        assert batched.chunk_failures == 0

    def test_run_sweep_rejects_unregistered_batched(self):
        with pytest.raises(SweepError, match="batched"):
            run_sweep("unit", mean_kernel, CELLS, master_seed=5,
                      backend="batched")

    def test_length_mismatch_rejected(self):
        with pytest.raises(SweepError, match="3 results for 4 seeds"):
            run_chunk_batched(short_batch, "unit", 0, {"scale": 1.0}, 0, 0, 4)

    def test_failed_chunk_retries_serially(self):
        register_batched_kernel(mean_kernel, broken_batch)
        try:
            serial = run_sweep("unit", mean_kernel, CELLS, master_seed=5)
            degraded = run_sweep("unit", mean_kernel, CELLS, master_seed=5,
                                 chunk_size=4, backend="batched")
        finally:
            engine._BATCHED_KERNELS.pop(mean_kernel, None)
        assert degraded.results == serial.results
        assert degraded.chunk_failures == len(
            [c for cell in CELLS for c in iter_chunks(cell.n_trials, 4)]
        )


class TestThreadBackend:
    def test_matches_serial(self):
        serial = run_sweep("unit", mean_kernel, CELLS, master_seed=5)
        threaded = run_sweep("unit", mean_kernel, CELLS, master_seed=5,
                             workers=2, backend="thread")
        assert threaded.results == serial.results
        assert threaded.chunk_failures == 0


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            run_sweep("unit", mean_kernel, CELLS, master_seed=0, workers=0)

    def test_resume_without_checkpoint_is_fresh_run(self):
        r = run_sweep("unit", mean_kernel, CELLS, master_seed=0, resume=True)
        assert r.resumed_chunks == 0
        assert r.results == run_sweep("unit", mean_kernel, CELLS,
                                      master_seed=0).results
