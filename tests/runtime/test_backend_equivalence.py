"""Differential harness: every sweep kernel under every execution backend.

Each workload below is a tiny configuration of one of the registered sweep
runners.  For each (workload, backend) pair we assert that the backend
reproduces the serial reference **bit for bit** — equality is checked on a
SHA-256 digest of the canonical-JSON rendering of the full result payload,
so a single ULP of drift anywhere fails the pair.

Cross-machine stability is pinned separately: a scalar aggregate of each
serial payload is compared against ``tests/data/golden.json`` at rel=1e-9
(digests themselves are compared only within one process, where BLAS/FFT
bitwise reproducibility is guaranteed).
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.obs.events import jsonable
from repro.runtime import SweepError
from repro.sim.ablations import run_sync_strategy_ablation
from repro.sim.experiments import run_fig6, run_fig8, run_fig9, run_fig11
from repro.sim.fastsim import run_sinr_grid

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "data" / "golden.json").read_text()
)


def digest(payload) -> str:
    """SHA-256 over the canonical JSON rendering of a result payload."""
    canon = json.dumps(jsonable(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def _flatten(obj):
    if isinstance(obj, dict):
        for key in sorted(obj):
            yield from _flatten(obj[key])
    elif isinstance(obj, list):
        for item in obj:
            yield from _flatten(item)
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        yield float(obj)


def aggregate(payload) -> float:
    """Mean of every number in the payload — the cross-machine fingerprint."""
    values = list(_flatten(jsonable(payload)))
    return sum(values) / len(values)


# ---------------------------------------------------------------------------
# Workload registry: name -> runner(**runtime_kwargs) -> jsonable payload.
# Configurations are deliberately tiny; the point is coverage of every
# registered sweep kernel, not statistical power.
# ---------------------------------------------------------------------------


def _sinr_grid(**kw):
    return run_sinr_grid(seed=12, sizes=(2, 3), n_trials=6, **kw)


def _fig6(**kw):
    res = run_fig6(seed=1, n_channels=8, **kw)
    return {str(s): list(curve) for s, curve in res.reduction_db.items()}


def _fig8(**kw):
    res = run_fig8(seed=3, n_receivers=(2, 3), n_topologies=3, n_packets=2, **kw)
    return {band: list(curve) for band, curve in res.inr_db.items()}


def _fig9(**kw):
    res = run_fig9(seed=4, n_aps=(2, 3), n_topologies=4, **kw)
    return {
        f"{band}/{n}": {
            "megamimo_bps": list(cell.megamimo_bps),
            "baseline_bps": list(cell.baseline_bps),
            "gains": list(cell.per_client_gains),
        }
        for (band, n), cell in sorted(res.cells.items())
    }


def _fig11(**kw):
    res = run_fig11(seed=5, n_aps_list=(2,), snr_db=(0.0, 10.0), n_draws=4, **kw)
    return {str(n): list(curve) for n, curve in res.throughput_mbps.items()}


def _sync_ablation(**kw):
    res = run_sync_strategy_ablation(
        seed=7,
        strategies=("megamimo", "none"),
        delays_s=(2e-3, 50e-3),
        n_systems=2,
        **kw,
    )
    return {s: list(curve) for s, curve in res.misalignment_rad.items()}


WORKLOADS = {
    "sinr_grid": _sinr_grid,
    "fig6": _fig6,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig11": _fig11,
    "sync_ablation": _sync_ablation,
}

# Workloads whose kernels have a registered batched twin.
BATCHED_WORKLOADS = ("sinr_grid", "fig6", "fig9")

BACKEND_KWARGS = {
    "thread": {"backend": "thread", "workers": 2},
    "process": {"backend": "process", "workers": 2},
    "auto": {"backend": "auto", "workers": 2},
    "batched": {"backend": "batched"},
}

PAIRS = [
    (workload, backend)
    for workload in WORKLOADS
    for backend in ("thread", "process", "auto")
] + [(workload, "batched") for workload in BATCHED_WORKLOADS]

_serial_cache: dict = {}


def serial_payload(workload: str):
    if workload not in _serial_cache:
        _serial_cache[workload] = WORKLOADS[workload](backend="serial")
    return _serial_cache[workload]


@pytest.mark.parametrize(
    "workload,backend", PAIRS, ids=[f"{w}-{b}" for w, b in PAIRS]
)
def test_backend_reproduces_serial_digest(workload, backend):
    reference = digest(serial_payload(workload))
    result = WORKLOADS[workload](**BACKEND_KWARGS[backend])
    assert digest(result) == reference


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_serial_aggregate_matches_golden(workload):
    expected = GOLDEN["backend_equivalence"][workload]
    assert aggregate(serial_payload(workload)) == pytest.approx(expected, rel=1e-9)


def test_batched_backend_requires_registered_twin():
    with pytest.raises(SweepError, match="batched"):
        run_fig8(
            seed=3,
            n_receivers=(2,),
            n_topologies=2,
            n_packets=1,
            backend="batched",
        )


def test_batched_checkpoint_resume_mid_sweep(tmp_path):
    """Kill a batched sweep mid-flight; the resume must be bit-identical."""
    ck = tmp_path / "grid.jsonl"
    fresh = _sinr_grid(backend="batched", checkpoint=str(ck))
    lines = ck.read_text().splitlines()
    assert len(lines) > 2  # header + at least two chunk records
    ck.write_text("\n".join(lines[:2]) + "\n")
    resumed = _sinr_grid(backend="batched", checkpoint=str(ck), resume=True)
    assert digest(resumed) == digest(fresh) == digest(serial_payload("sinr_grid"))


def test_serial_checkpoint_resumes_under_thread_backend(tmp_path):
    """Chunk geometry matches across serial/thread, so checkpoints transfer."""
    ck = tmp_path / "grid.jsonl"
    _sinr_grid(backend="serial", checkpoint=str(ck))
    lines = ck.read_text().splitlines()
    ck.write_text("\n".join(lines[:2]) + "\n")
    resumed = _sinr_grid(
        backend="thread", workers=2, checkpoint=str(ck), resume=True
    )
    assert digest(resumed) == digest(serial_payload("sinr_grid"))
