"""Dispatch-overhead accounting: envelopes, attribution, worker shards.

The engine promises that instrumentation rides *alongside* results (the
bit-identical guarantee is untouched), that every run yields a wall-time
attribution whose per-worker components reassemble the measured wall, and
that worker trace shards merge back into one coherent parent trace.
"""

import numpy as np
import pytest

from repro.obs import trace
from repro.obs.events import iter_events
from repro.obs.profile import profile_trace
from repro.runtime import (
    CellSpec,
    MEMORY_ENV_FLAG,
    drain_overheads,
    run_chunk_instrumented,
    run_sweep,
)


def mean_kernel(params, seed):
    """Picklable toy kernel: a seeded draw scaled by the cell's params."""
    rng = np.random.default_rng(seed)
    return float(params["scale"] * rng.standard_normal())


CELLS = [
    CellSpec(key="a", params={"scale": 1.0}, n_trials=7),
    CellSpec(key=("b", 2), params={"scale": 2.0}, n_trials=5),
]


def components_sum(worker: dict) -> float:
    return (worker["compute_s"] + worker["dispatch_s"]
            + worker["serialization_s"] + worker["idle_s"])


class TestEnvelope:
    def test_instrumented_chunk_carries_accounting(self):
        env = run_chunk_instrumented(
            mean_kernel, "unit", 0, CELLS[0].params, 0, 0, 0, 4
        )
        assert [t for t, _ in env["pairs"]] == [0, 1, 2, 3]
        assert env["recv_ts"] <= env["done_ts"]
        assert env["wall_s"] >= 0.0 and env["cpu_s"] >= 0.0
        # the result payload was priced by actually pickling it
        assert env["ser_result_bytes"] > 0
        assert env["ser_result_s"] >= 0.0

    def test_measure_ser_false_skips_the_pickle_probe(self):
        env = run_chunk_instrumented(
            mean_kernel, "unit", 0, CELLS[0].params, 0, 0, 0, 4,
            measure_ser=False,
        )
        assert env["ser_result_bytes"] == 0
        assert env["ser_result_s"] == 0.0

    def test_envelope_never_alters_results(self):
        from repro.runtime import run_chunk

        env = run_chunk_instrumented(
            mean_kernel, "unit", 0, CELLS[0].params, 0, 0, 0, 4
        )
        assert env["pairs"] == run_chunk(
            mean_kernel, "unit", 0, CELLS[0].params, 0, 0, 4
        )


class TestSerialAttribution:
    def test_overhead_present_and_reassembles_wall(self):
        drain_overheads()
        r = run_sweep("unit", mean_kernel, CELLS, master_seed=0, chunk_size=3)
        o = r.overhead
        assert o is not None
        assert o["workers"] == 1
        assert set(o["modes"]) == {"serial"}
        assert o["trials"] == sum(c.n_trials for c in CELLS)
        (worker,) = o["per_worker"]
        assert worker["worker"] == "parent"
        assert components_sum(worker) == pytest.approx(o["wall_s"], rel=0.1)

    def test_drain_overheads_returns_and_clears(self):
        drain_overheads()
        run_sweep("unit", mean_kernel, CELLS, master_seed=0)
        run_sweep("unit2", mean_kernel, CELLS, master_seed=1)
        drained = drain_overheads()
        assert [o["sweep"] for o in drained] == ["unit", "unit2"]
        assert drain_overheads() == []

    def test_fully_resumed_run_has_no_overhead(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        run_sweep("unit", mean_kernel, CELLS, master_seed=3, checkpoint=str(ck))
        r = run_sweep("unit", mean_kernel, CELLS, master_seed=3,
                      checkpoint=str(ck), resume=True)
        assert r.resumed_chunks > 0
        assert r.overhead is None

    def test_memory_sampling_via_env_flag(self, monkeypatch):
        import tracemalloc

        monkeypatch.setenv(MEMORY_ENV_FLAG, "1")
        r = run_sweep("unit", mean_kernel, CELLS, master_seed=0)
        (worker,) = r.overhead["per_worker"]
        assert worker["mem_peak_kb"] > 0.0
        # the engine started tracemalloc, so it must also stop it
        assert not tracemalloc.is_tracing()

    def test_no_memory_column_without_the_flag(self, monkeypatch):
        monkeypatch.delenv(MEMORY_ENV_FLAG, raising=False)
        r = run_sweep("unit", mean_kernel, CELLS, master_seed=0)
        (worker,) = r.overhead["per_worker"]
        assert "mem_peak_kb" not in worker


class TestPoolAttributionAndShards:
    """One traced workers=4 run, dissected from every angle."""

    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "sweep.jsonl"
        trace.configure(str(path))
        try:
            result = run_sweep("unit", mean_kernel, CELLS, master_seed=0,
                               workers=4, chunk_size=2)
        finally:
            trace.close()
        return result, path

    def test_results_identical_to_serial(self, traced_run):
        result, _ = traced_run
        serial = run_sweep("unit", mean_kernel, CELLS, master_seed=0,
                           chunk_size=2)
        assert result.results == serial.results

    def test_per_worker_components_reassemble_wall(self, traced_run):
        result, _ = traced_run
        o = result.overhead
        assert o["workers"] == 4
        assert o["chunks"] == 7  # ceil(7/2) + ceil(5/2)
        assert o["per_worker"], "no worker breakdowns recorded"
        for worker in o["per_worker"]:
            assert components_sum(worker) == pytest.approx(
                o["wall_s"], rel=0.1
            ), worker["worker"]

    def test_profiler_reads_the_same_attribution_from_the_trace(
        self, traced_run
    ):
        result, path = traced_run
        (a,) = profile_trace(str(path)).attributions
        assert a.sweep == "unit"
        assert a.workers == 4
        assert a.chunks == 7
        for w in a.per_worker:
            assert w.components_s == pytest.approx(a.wall_s, rel=0.1), w.worker
        d = a.to_dict()
        # trace-derived and engine-stamped attributions agree on the split
        pool_workers = [w for w in result.overhead["per_worker"]
                        if w["worker"].startswith("pid:")]
        assert {w["worker"] for w in d["per_worker"]} >= {
            w["worker"] for w in pool_workers
        }

    def test_worker_spans_merge_with_parent_linkage(self, traced_run):
        _, path = traced_run
        records = list(iter_events(str(path)))
        (sweep,) = [r for r in records if r["type"] == "span"
                    and r["name"] == "runtime.sweep"]
        chunk_spans = [r for r in records if r["type"] == "span"
                       and r["name"] == "runtime.chunk"]
        pool_chunks = [r for r in records if r["type"] == "event"
                       and r["name"] == "runtime.chunk"
                       and r["attrs"]["mode"] == "pool"]
        # every pool chunk's worker-side span survived the process boundary
        assert len(chunk_spans) >= len(pool_chunks) > 0
        for span in chunk_spans:
            assert span["parent_id"] == sweep["span_id"]
            assert span["depth"] == sweep["depth"] + 1
            assert span["attrs"]["worker_pid"] > 0
        ids = [r["span_id"] for r in records if r["type"] == "span"]
        assert len(ids) == len(set(ids))
        (merged,) = [r for r in records if r["type"] == "event"
                     and r["name"] == "runtime.shards_merged"]
        assert merged["attrs"]["spans"] >= len(pool_chunks)
        assert merged["attrs"]["shards"] >= 1

    def test_shard_dir_cleaned_up(self, traced_run):
        from repro.obs.shards import shard_dir_for

        _, path = traced_run
        assert not (path.parent / shard_dir_for(path.name)).exists()

    def test_sweep_span_records_overhead_fractions(self, traced_run):
        _, path = traced_run
        (sweep,) = [r for r in iter_events(str(path))
                    if r["type"] == "span" and r["name"] == "runtime.sweep"]
        attrs = sweep["attrs"]
        assert attrs["workers"] == 4
        for key in ("utilization", "dispatch_frac", "serialization_frac"):
            assert 0.0 <= attrs[key] <= 1.0
