"""Worker watchdog: deadlines, hang-fault injection, stall recovery.

The integration tests arm ``REPRO_FAULT_HANG_CHUNK`` (a cooperative hang
inside one chunk) with a sub-second ``REPRO_WATCHDOG_TIMEOUT_S`` and
assert the contract end-to-end on each backend: the sweep terminates,
the stalled chunk is recovered through the serial-retry path with
bit-identical results, and a ``runs/crash-<runid>/`` forensics bundle
plus the ``runtime.watchdog_stall`` critical alert document the event.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.obs import blackbox
from repro.obs.alerts import AlertEngine, builtin_rules
from repro.obs.flightrec import get_recorder
from repro.obs.timeseries import get_store
from repro.runtime import CellSpec, run_sweep
from repro.runtime import faults, watchdog
from repro.runtime.faults import HANG_CHUNK_ENV, parse_hang_spec
from repro.runtime.watchdog import (
    DEFAULT_FLOOR_S,
    TIMEOUT_ENV,
    WATCHDOG_ENV,
    ChunkWatchdog,
    duration_percentile,
    timeout_override_s,
    watchdog_enabled,
)


@pytest.fixture(autouse=True)
def _fault_hygiene():
    """Re-arm the fault machinery and drain forensics state around each test."""
    faults.reset()
    get_recorder().clear()
    blackbox.drain_bundles()
    yield
    faults.reset()
    get_recorder().clear()
    blackbox.drain_bundles()


def mean_kernel(params, seed):
    """Picklable toy kernel: a seeded draw scaled by the cell's params."""
    rng = np.random.default_rng(seed)
    return float(params["scale"] * rng.standard_normal())


CELLS = [
    CellSpec(key="a", params={"scale": 1.0}, n_trials=6),
    CellSpec(key="b", params={"scale": 2.0}, n_trials=4),
]


class TestKnobs:
    def test_watchdog_enabled_env(self, monkeypatch):
        monkeypatch.delenv(WATCHDOG_ENV, raising=False)
        assert watchdog_enabled()
        monkeypatch.setenv(WATCHDOG_ENV, "0")
        assert not watchdog_enabled()
        assert ChunkWatchdog.create("s", "serial") is None

    def test_timeout_override_parsing(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_ENV, raising=False)
        assert timeout_override_s() is None
        monkeypatch.setenv(TIMEOUT_ENV, "2.5")
        assert timeout_override_s() == 2.5
        monkeypatch.setenv(TIMEOUT_ENV, "forever")
        assert timeout_override_s() is None
        monkeypatch.setenv(TIMEOUT_ENV, "-1")
        assert timeout_override_s() is None


class TestDeadline:
    def test_percentile_interpolates(self):
        assert duration_percentile([1.0], 95.0) == 1.0
        assert duration_percentile([1.0, 3.0], 50.0) == 2.0
        with pytest.raises(ValueError):
            duration_percentile([], 95.0)

    def test_floor_until_enough_samples(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_ENV, raising=False)
        dog = ChunkWatchdog("s", "thread")
        for i in range(watchdog.MIN_DURATION_SAMPLES - 1):
            dog.completed((0, i, 0, 1), wall_s=100.0)
        assert dog.deadline_s == DEFAULT_FLOOR_S

    def test_derived_deadline_tracks_p95(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_ENV, raising=False)
        dog = ChunkWatchdog("s", "thread")
        for i in range(10):
            dog.completed((0, i, 0, 1), wall_s=50.0)
        assert dog.deadline_s == pytest.approx(
            watchdog.DEADLINE_MULTIPLIER * 50.0
        )
        # ...but never below the floor for fast chunks
        fast = ChunkWatchdog("s", "thread")
        for i in range(10):
            fast.completed((0, i, 0, 1), wall_s=0.01)
        assert fast.deadline_s == DEFAULT_FLOOR_S

    def test_override_wins(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "1.5")
        dog = ChunkWatchdog("s", "thread")
        for i in range(10):
            dog.completed((0, i, 0, 1), wall_s=50.0)
        assert dog.deadline_s == 1.5

    def test_accounting_and_abandon(self):
        dog = ChunkWatchdog("s", "thread")
        dog.submitted((0, 0, 0, 2))
        dog.submitted((1, 0, 0, 2))
        dog.completed((0, 0, 0, 2), wall_s=0.1)
        assert dog.abandon_all() == [(1, 0, 0, 2)]
        assert dog.abandon_all() == []


class TestHangFault:
    def test_parse_hang_spec(self):
        assert parse_hang_spec("30") == (None, None, 30.0)
        assert parse_hang_spec(" 0:1:2.5 ") == (0, 1, 2.5)
        assert parse_hang_spec("") is None
        assert parse_hang_spec("a:b:c") is None
        assert parse_hang_spec("1:2") is None

    def test_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(HANG_CHUNK_ENV, raising=False)
        faults.maybe_hang_chunk(0, 0, 4)  # returns immediately

    def test_natural_timeout_returns(self, monkeypatch):
        monkeypatch.setenv(HANG_CHUNK_ENV, "0")
        faults.maybe_hang_chunk(0, 0, 4)  # 0-second hang: just resumes

    def test_cancel_raises_and_disarms(self, monkeypatch):
        monkeypatch.setenv(HANG_CHUNK_ENV, "0:1:60")
        faults.cancel_hangs()
        # cancelled before the hang starts: the retry runs through clean
        faults.maybe_hang_chunk(0, 0, 4)
        faults.reset()
        faults.maybe_hang_chunk(1, 0, 4)  # other cell: not targeted

    def test_targeted_chunk_only(self, monkeypatch):
        monkeypatch.setenv(HANG_CHUNK_ENV, "0:5:60")
        faults.maybe_hang_chunk(0, 0, 4)  # trial 5 not in [0, 4)
        faults.maybe_hang_chunk(1, 4, 8)  # wrong cell


def _assert_recovered(result, reference, runs_dir):
    assert result.results == reference.results
    assert result.watchdog_stalls == 1
    assert result.chunk_failures >= 1
    bundles = [p for p in Path(runs_dir).iterdir()
               if p.name.startswith("crash-")]
    assert len(bundles) == 1
    manifest = blackbox.load_bundle("latest", runs_dir=runs_dir)
    assert manifest["reason"] == "watchdog_stall"
    assert manifest["detail"]["stalled_chunks"] >= 1
    assert "stacks" in manifest and "Thread" in manifest["stacks"]


class TestStallRecovery:
    """End-to-end: injected hang -> watchdog fire -> serial-retry recovery."""

    @pytest.fixture
    def reference(self):
        return run_sweep("wd", mean_kernel, CELLS, master_seed=7, chunk_size=2)

    @pytest.fixture
    def hang(self, monkeypatch):
        monkeypatch.setenv(HANG_CHUNK_ENV, "0:1:60")
        monkeypatch.setenv(TIMEOUT_ENV, "0.6")

    def test_serial_backend_recovers(self, reference, hang):
        r = run_sweep("wd", mean_kernel, CELLS, master_seed=7,
                      chunk_size=2, backend="serial")
        _assert_recovered(r, reference, os.environ["REPRO_RUNS_DIR"])

    def test_thread_backend_recovers(self, reference, hang):
        r = run_sweep("wd", mean_kernel, CELLS, master_seed=7,
                      chunk_size=2, workers=2, backend="thread")
        _assert_recovered(r, reference, os.environ["REPRO_RUNS_DIR"])

    def test_process_backend_recovers(self, reference, hang):
        r = run_sweep("wd", mean_kernel, CELLS, master_seed=7,
                      chunk_size=2, workers=2, backend="process")
        _assert_recovered(r, reference, os.environ["REPRO_RUNS_DIR"])

    def test_stall_telemetry_and_builtin_alert(self, reference, hang):
        run_sweep("wd", mean_kernel, CELLS, master_seed=7,
                  chunk_size=2, workers=2, backend="thread")
        # the monitor thread recorded the stall on the flight recorder...
        (event,) = get_recorder().snapshot(kind="runtime.watchdog")
        assert event["data"]["sweep"] == "wd"
        assert event["data"]["mode"] == "thread"
        # ...and into the time-series store, where the builtin critical
        # rule declares it on the next evaluation pass
        engine = AlertEngine(builtin_rules())
        transitions = engine.evaluate(get_store())
        stall = [t for t in transitions if t["rule"] == "runtime.watchdog_stall"]
        assert stall and stall[0]["status"] == "firing"
        assert stall[0]["severity"] == "critical"

    def test_disabled_watchdog_leaves_hang_alone(self, monkeypatch, reference):
        # short *natural* hang, watchdog off: the chunk is merely slow
        monkeypatch.setenv(HANG_CHUNK_ENV, "0:1:0.4")
        monkeypatch.setenv(WATCHDOG_ENV, "0")
        r = run_sweep("wd", mean_kernel, CELLS, master_seed=7,
                      chunk_size=2, workers=2, backend="thread")
        assert r.results == reference.results
        assert r.watchdog_stalls == 0
        assert r.chunk_failures == 0
