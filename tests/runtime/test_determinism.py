"""Scheduling-independence: the tentpole guarantee of the sweep engine.

For the real experiment kernels (fig6, fig9, sync ablation), the aggregated
results must be *bit-identical* — not approximately equal — across

* ``workers=1`` (pure in-process serial),
* ``workers=4`` (process pool, nondeterministic completion order),
* a run resumed from a partially-complete checkpoint.

That holds because every trial's RNG stream is derived from
``(master_seed, sweep, cell, trial)`` rather than from scheduling; see
docs/parallelism.md.
"""

import numpy as np

from repro.runtime import CellSpec, run_sweep
from repro.sim.ablations import run_sync_strategy_ablation
from repro.sim.experiments import fig6_kernel, run_fig6, run_fig9


def assert_same_arrays(a, b):
    assert set(a) == set(b)
    for k in a:
        assert np.array_equal(np.asarray(a[k]), np.asarray(b[k])), k


class TestFig6:
    def test_parallel_matches_serial_bitwise(self):
        serial = run_fig6(seed=1, n_channels=10)
        pooled = run_fig6(seed=1, n_channels=10, workers=4)
        assert_same_arrays(serial.reduction_db, pooled.reduction_db)

    def test_resumed_matches_fresh_bitwise(self, tmp_path):
        ck = tmp_path / "fig6.jsonl"
        fresh = run_fig6(seed=1, n_channels=10, checkpoint=str(ck))
        # keep only the header + first completed chunk, as if killed early
        lines = ck.read_text().splitlines()
        ck.write_text("\n".join(lines[:2]) + "\n")
        resumed = run_fig6(seed=1, n_channels=10, checkpoint=str(ck),
                           resume=True, workers=2)
        assert_same_arrays(fresh.reduction_db, resumed.reduction_db)


class TestFig9:
    CONFIG = dict(seed=4, n_aps=(2, 3), n_topologies=4)

    def test_parallel_matches_serial_bitwise(self):
        serial = run_fig9(**self.CONFIG)
        pooled = run_fig9(**self.CONFIG, workers=4)
        assert set(serial.cells) == set(pooled.cells)
        for key, cell in serial.cells.items():
            other = pooled.cells[key]
            assert np.array_equal(cell.megamimo_bps, other.megamimo_bps), key
            assert np.array_equal(cell.baseline_bps, other.baseline_bps), key
            assert np.array_equal(cell.per_client_gains, other.per_client_gains)

    def test_resumed_matches_fresh_bitwise(self, tmp_path):
        ck = tmp_path / "fig9.jsonl"
        fresh = run_fig9(**self.CONFIG, checkpoint=str(ck))
        lines = ck.read_text().splitlines()
        assert len(lines) > 3  # header + several chunks
        ck.write_text("\n".join(lines[:3]) + "\n")
        resumed = run_fig9(**self.CONFIG, checkpoint=str(ck), resume=True,
                           workers=2)
        for key, cell in fresh.cells.items():
            other = resumed.cells[key]
            assert np.array_equal(cell.megamimo_bps, other.megamimo_bps), key
            assert np.array_equal(cell.per_client_gains, other.per_client_gains)

    def test_chunk_size_does_not_matter(self):
        """Seeds are per-trial, so even the chunking is invisible."""
        params = {"n_rx": 2, "n_tx": 2, "misalignments": [0.0, 0.2, 0.4],
                  "snrs_db": [10.0, 20.0]}
        cells = [CellSpec(key="channels", params=params, n_trials=9)]
        a = run_sweep("fig6", fig6_kernel, cells, master_seed=1, chunk_size=1)
        b = run_sweep("fig6", fig6_kernel, cells, master_seed=1, chunk_size=5,
                      workers=2)
        assert a.results == b.results


class TestSyncAblation:
    def test_parallel_matches_serial_bitwise(self):
        serial = run_sync_strategy_ablation(seed=7, n_systems=3)
        pooled = run_sync_strategy_ablation(seed=7, n_systems=3, workers=4)
        assert_same_arrays(serial.misalignment_rad, pooled.misalignment_rad)

    def test_resumed_matches_fresh_bitwise(self, tmp_path):
        ck = tmp_path / "sync.jsonl"
        fresh = run_sync_strategy_ablation(seed=7, n_systems=5,
                                           checkpoint=str(ck))
        lines = ck.read_text().splitlines()
        assert len(lines) >= 3  # header + at least two chunks
        ck.write_text("\n".join(lines[:2]) + "\n")
        resumed = run_sync_strategy_ablation(seed=7, n_systems=5,
                                             checkpoint=str(ck), resume=True,
                                             workers=2)
        assert_same_arrays(fresh.misalignment_rad, resumed.misalignment_rad)
