"""Live sweep telemetry: progress events, rendering modes, fault paths."""

import io
import math
import os

import pytest

from repro.obs import timeseries
from repro.obs.events import read_events
from repro.obs.progress import SweepProgress, _progress_mode
from repro.obs.tracer import trace
from repro.runtime import CellSpec, run_sweep
from repro.runtime.engine import WORKER_ENV_FLAG


def steady_kernel(params, seed):
    return float(params["value"])


def fail_in_worker_kernel(params, seed):
    """Raises inside pool workers; succeeds on the parent's serial retry."""
    if os.environ.get(WORKER_ENV_FLAG):
        raise RuntimeError("injected worker failure")
    return float(params["value"])


CELLS = [
    CellSpec(key="a", params={"value": 1.0}, n_trials=5),
    CellSpec(key="b", params={"value": 2.0}, n_trials=7),
]


def progress_events(tmp_path, **sweep_kwargs):
    """Run a sweep with tracing on; return its runtime.progress events."""
    path = tmp_path / "trace.jsonl"
    trace.configure(str(path))
    try:
        result = run_sweep(**sweep_kwargs)
    finally:
        trace.close()
    events = [
        e["attrs"] for e in read_events(str(path))
        if e.get("type") == "event" and e.get("name") == "runtime.progress"
    ]
    return result, events


class TestProgressEvents:
    def test_serial_event_stream_is_monotonic_and_complete(self, tmp_path):
        result, events = progress_events(
            tmp_path, name="unit", kernel=steady_kernel, cells=CELLS,
            master_seed=0, chunk_size=3,
        )
        assert events, "a sweep must emit progress events"
        done = [e["done_chunks"] for e in events]
        assert done == sorted(done)
        trials = [e["done_trials"] for e in events]
        assert trials == sorted(trials)
        final = events[-1]
        assert final["final"] is True
        # cell a: 5 trials -> 2 chunks; cell b: 7 trials -> 3 chunks
        assert final["done_chunks"] == final["total_chunks"] == 5
        assert final["done_trials"] == final["total_trials"] == 12
        assert final["failures"] == 0 and final["retries"] == 0
        assert final["workers_busy"] == 0

    def test_pool_event_ordering_with_injected_failures(self, tmp_path):
        """workers>1 + every chunk failing in the pool: counts stay
        monotonic, every failure is retried, and the final event accounts
        for all work."""
        result, events = progress_events(
            tmp_path, name="unit", kernel=fail_in_worker_kernel, cells=CELLS,
            master_seed=0, chunk_size=3, workers=2,
        )
        done = [e["done_chunks"] for e in events]
        assert done == sorted(done)
        final = events[-1]
        assert final["final"] is True
        assert final["done_chunks"] == final["total_chunks"] == 5
        assert final["done_trials"] == final["total_trials"] == 12
        assert final["failures"] == 5
        assert final["retries"] == 5
        # the sweep still produced the serial-identical result
        assert result.chunk_failures == 5
        serial = run_sweep("unit", steady_kernel, CELLS, master_seed=0,
                           chunk_size=3)
        assert result.results == serial.results

    def test_resumed_work_counts_from_the_start(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        run_sweep("unit", steady_kernel, CELLS, master_seed=0, chunk_size=3,
                  checkpoint=str(ck))
        _, events = progress_events(
            tmp_path, name="unit", kernel=steady_kernel, cells=CELLS,
            master_seed=0, chunk_size=3, checkpoint=str(ck), resume=True,
        )
        assert events[0]["done_chunks"] == 5  # everything resumed


class TestRendering:
    def _tracker(self, monkeypatch, mode_env, **kwargs) -> tuple:
        if mode_env is None:
            monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        else:
            monkeypatch.setenv("REPRO_PROGRESS", mode_env)
        stream = io.StringIO()
        defaults = dict(name="s", total_chunks=4, total_trials=8, workers=2,
                        stream=stream, min_interval_s=0.0,
                        noninteractive_interval_s=0.0)
        defaults.update(kwargs)
        return SweepProgress(**defaults), stream

    def test_off_mode_writes_nothing(self, monkeypatch):
        tracker, stream = self._tracker(monkeypatch, "0")
        tracker.chunk_done(2)
        tracker.close()
        assert stream.getvalue() == ""

    def test_forced_tty_mode_repaints_one_line(self, monkeypatch):
        tracker, stream = self._tracker(monkeypatch, "1")
        for _ in range(4):
            tracker.chunk_done(2)
        tracker.close()
        out = stream.getvalue()
        assert "\r" in out
        assert out.endswith("\n")
        assert "4/4 chunks" in out
        assert "8/8 trials" in out

    def test_plain_mode_writes_full_lines(self, monkeypatch):
        tracker, stream = self._tracker(monkeypatch, None)  # StringIO: no tty
        tracker.chunk_done(2)
        tracker.chunk_failed()
        tracker.retry_done()
        tracker.chunk_done(2)
        tracker.close()
        lines = stream.getvalue().splitlines()
        assert all("\r" not in line for line in lines)
        assert "retries 1/1" in lines[-1]
        assert "done in" in lines[-1]

    def test_mode_detection(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "0")
        assert _progress_mode(io.StringIO()) == "off"
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        assert _progress_mode(io.StringIO()) == "tty"
        monkeypatch.delenv("REPRO_PROGRESS")
        assert _progress_mode(io.StringIO()) == "plain"

    def test_derived_quantities(self, monkeypatch):
        tracker, _ = self._tracker(monkeypatch, "0", resumed_chunks=1,
                                   resumed_trials=2)
        assert tracker.done_chunks == 1
        assert tracker.workers_busy == 2  # 3 chunks left, 2 workers
        tracker.chunk_done(2)
        tracker.chunk_done(2)
        tracker.chunk_done(2)
        assert tracker.workers_busy == 0
        assert tracker.eta_s == pytest.approx(0.0, abs=1e-6)
        assert tracker.trials_per_s > 0


class TestDerivedGuards:
    """Rates and ETAs stay finite in every degenerate corner."""

    def _tracker(self, monkeypatch, **kwargs) -> SweepProgress:
        monkeypatch.setenv("REPRO_PROGRESS", "0")
        defaults = dict(name="s", total_chunks=4, total_trials=8, workers=2,
                        stream=io.StringIO(), min_interval_s=0.0,
                        noninteractive_interval_s=0.0)
        defaults.update(kwargs)
        return SweepProgress(**defaults)

    def test_instant_finish_has_no_inf_or_nan(self, monkeypatch):
        tracker = self._tracker(monkeypatch)
        tracker._t0 = tracker._t0 - 0.0  # zero elapsed is the worst case
        for _ in range(4):
            tracker.chunk_done(2)
        assert math.isfinite(tracker.trials_per_s)
        assert tracker.eta_s == 0.0  # done: ETA is zero even with rate 0
        tracker.close()

    def test_no_fresh_work_reports_zero_rate(self, monkeypatch):
        # everything resumed from a checkpoint: nothing was computed now
        tracker = self._tracker(monkeypatch, resumed_chunks=4,
                                resumed_trials=8)
        assert tracker.trials_per_s == 0.0
        assert tracker.eta_s == 0.0

    def test_unknowable_eta_is_none_not_inf(self, monkeypatch):
        tracker = self._tracker(monkeypatch)
        # work remains but no fresh trial has finished: rate 0, ETA unknown
        assert tracker.trials_per_s == 0.0
        assert tracker.eta_s is None

    def test_zero_workers_utilization_is_zero(self, monkeypatch):
        tracker = self._tracker(monkeypatch, workers=0)
        assert tracker.worker_utilization == 0.0

    def test_utilization_tracks_tail_drain(self, monkeypatch):
        tracker = self._tracker(monkeypatch)
        assert tracker.worker_utilization == 1.0  # 4 chunks, 2 workers
        tracker.chunk_done(2)
        tracker.chunk_done(2)
        tracker.chunk_done(2)
        assert tracker.worker_utilization == 0.5  # 1 chunk left
        tracker.chunk_done(2)
        assert tracker.worker_utilization == 0.0

    def test_rendered_line_never_contains_inf_or_nan(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        stream = io.StringIO()
        tracker = SweepProgress("s", total_chunks=1, total_trials=2,
                                workers=1, stream=stream, min_interval_s=0.0)
        tracker.chunk_done(2)
        tracker.close()
        out = stream.getvalue()
        assert "inf" not in out and "nan" not in out


class TestLivePublication:
    def test_renders_mirror_into_the_timeseries_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "0")
        store = timeseries.get_store()
        store.reset()
        before = {
            name: store.get(name).total
            for name in ("runtime.done_trials", "runtime.trials_per_s",
                         "runtime.workers_busy", "runtime.worker_utilization")
            if store.get(name) is not None
        }
        tracker = SweepProgress("s", total_chunks=2, total_trials=4,
                                workers=2, stream=io.StringIO(),
                                min_interval_s=0.0,
                                noninteractive_interval_s=0.0)
        tracker.chunk_done(2)
        tracker.chunk_done(2)
        tracker.close()
        for name in ("runtime.done_trials", "runtime.trials_per_s",
                     "runtime.workers_busy", "runtime.worker_utilization"):
            series = store.get(name)
            assert series is not None, name
            assert series.total > before.get(name, 0), name
        done = [v for _, v in store.get("runtime.done_trials").points()]
        assert done[-1] == 4.0
        busy = [v for _, v in store.get("runtime.workers_busy").points()]
        assert busy[-1] == 0.0

    def test_serverless_run_never_imports_the_http_layer(self, monkeypatch):
        # the publish path must not drag http.server into plain runs; it
        # only talks to repro.obs.serve when something else loaded it
        import subprocess
        import sys as _sys

        code = (
            "import io, sys\n"
            "from repro.obs.progress import SweepProgress\n"
            "t = SweepProgress('s', 1, 1, stream=io.StringIO(),\n"
            "                  min_interval_s=0.0,\n"
            "                  noninteractive_interval_s=0.0)\n"
            "t.chunk_done(1); t.close()\n"
            "assert 'repro.obs.serve' not in sys.modules\n"
        )
        proc = subprocess.run(
            [_sys.executable, "-c", code], capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": "src"}, cwd=os.getcwd(),
        )
        assert proc.returncode == 0, proc.stderr
