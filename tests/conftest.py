"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro import MegaMimoSystem, SystemConfig
from repro.channel.models import RicianChannel


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def sounded_system():
    """A small, well-conditioned 2x2 system with sounding already run.

    Session-scoped because construction + sounding is the expensive part;
    tests must not mutate its stored channel state.
    """
    config = SystemConfig(n_aps=2, n_clients=2, seed=4)
    system = MegaMimoSystem.create(
        config, client_snr_db=25.0, channel_model=RicianChannel(k_factor=7.0)
    )
    system.run_sounding(0.0)
    return system
