"""Shared fixtures for the test suite."""

import itertools
import zlib

import numpy as np
import pytest

from repro import MegaMimoSystem, SystemConfig
from repro.channel.models import RicianChannel

_REAL_DEFAULT_RNG = np.random.default_rng


@pytest.fixture(autouse=True)
def _pin_unseeded_default_rng(request, monkeypatch):
    """Make ``np.random.default_rng()`` deterministic inside tests.

    Components default to fresh OS entropy when constructed without an
    explicit ``rng`` (e.g. ``Oscillator(config)``), which makes any test
    exercising that path a latent flake.  Pin seedless calls to a stream
    derived from the test's node id (stable across runs and processes,
    different per test and per call) while passing explicit seeds through
    untouched.
    """
    entropy = zlib.crc32(request.node.nodeid.encode("utf-8"))
    calls = itertools.count()

    def pinned(seed=None):
        if seed is None:
            seq = np.random.SeedSequence(entropy=entropy, spawn_key=(next(calls),))
            return _REAL_DEFAULT_RNG(seq)
        return _REAL_DEFAULT_RNG(seed)

    monkeypatch.setattr(np.random, "default_rng", pinned)


@pytest.fixture(autouse=True)
def _isolated_runs_dir(tmp_path, monkeypatch):
    """Point the run ledger at a per-test directory.

    CLI invocations append to ``$REPRO_RUNS_DIR/ledger.jsonl`` by default;
    without this, tests would pollute the repo's ``runs/`` directory and
    see each other's records.
    """
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))


@pytest.fixture(autouse=True)
def _suppress_progress(monkeypatch):
    """Silence the live sweep progress line in test output.

    Individual tests that exercise the renderer re-enable it by setting
    ``REPRO_PROGRESS=1`` or passing an explicit stream.
    """
    monkeypatch.setenv("REPRO_PROGRESS", "0")


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def sounded_system():
    """A small, well-conditioned 2x2 system with sounding already run.

    Session-scoped because construction + sounding is the expensive part;
    tests must not mutate its stored channel state.
    """
    config = SystemConfig(n_aps=2, n_clients=2, seed=4)
    system = MegaMimoSystem.create(
        config, client_snr_db=25.0, channel_model=RicianChannel(k_factor=7.0)
    )
    system.run_sounding(0.0)
    return system
