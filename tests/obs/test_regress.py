"""Regression detection: comparison semantics, exit codes, sync health."""

import json


from repro.cli import main
from repro.core.phasesync import PHASE_ERROR_BUDGET_P95_RAD
from repro.obs.metrics import MetricsRegistry
from repro.obs.regress import (
    EXIT_BREACH,
    EXIT_NO_BASELINE,
    EXIT_OK,
    SYNC_HEALTH_MIN_SAMPLES,
    compare,
    load_baseline,
    make_baseline,
    sync_health_alarms,
    write_baseline,
)


def baseline_doc(**checks) -> dict:
    return {"schema": 1, "checks": checks}


class TestCompare:
    def test_within_tolerance_passes(self):
        report = compare(
            {"a": 1.05}, baseline_doc(a={"value": 1.0, "tol_rel": 0.1})
        )
        assert report.passed
        assert report.checks[0].status == "ok"

    def test_tolerance_is_max_of_abs_and_rel(self):
        base = baseline_doc(a={"value": 10.0, "tol_abs": 0.5, "tol_rel": 0.2})
        assert compare({"a": 11.9}, base).passed  # within 20% rel
        assert not compare({"a": 12.5}, base).passed

    def test_breach_names_the_metric(self):
        report = compare(
            {"a": 2.0}, baseline_doc(a={"value": 1.0, "tol_rel": 0.1})
        )
        assert not report.passed
        assert report.breaches[0].metric == "a"
        assert "FAILED" in report.format_table()
        assert "a" in report.format_table()

    def test_hard_max_breaches_even_within_tolerance(self):
        base = baseline_doc(
            p={"value": 0.03, "tol_rel": 5.0, "max": 0.05}
        )
        assert compare({"p": 0.04}, base).passed
        report = compare({"p": 0.06}, base)
        assert not report.passed
        assert "hard max" in report.breaches[0].detail

    def test_hard_min(self):
        base = baseline_doc(speedup={"value": 2.0, "tol_rel": 5.0, "min": 1.0})
        assert not compare({"speedup": 0.5}, base).passed

    def test_informational_never_breaches(self):
        base = baseline_doc(wall={"value": 1.0, "informational": True})
        report = compare({"wall": 99.0}, base)
        assert report.passed
        assert report.checks[0].status == "info"

    def test_missing_metric_fails_only_when_required(self):
        base = baseline_doc(a={"value": 1.0, "tol_rel": 0.1})
        strict = compare({}, base, require_all=True)
        assert not strict.passed
        assert strict.breaches[0].status == "missing"
        assert compare({}, base, require_all=False).passed

    def test_extra_current_metric_is_informational(self):
        report = compare({"new.metric": 5.0}, baseline_doc())
        assert report.passed
        assert report.checks[0].detail == "not in baseline"


class TestBaselineFiles:
    def test_write_then_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(str(path), {"sim.goodput_mbps": 28.5, "custom": 1.0})
        doc = load_baseline(str(path))
        assert doc["schema"] == 1
        # known metric gets its curated tolerance, unknown the fallback
        assert doc["checks"]["sim.goodput_mbps"]["tol_rel"] == 0.35
        assert doc["checks"]["custom"]["tol_rel"] == 0.25
        assert compare({"sim.goodput_mbps": 28.5, "custom": 1.0}, doc).passed

    def test_load_missing_or_malformed_is_none(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_baseline(str(bad)) is None
        no_checks = tmp_path / "empty.json"
        no_checks.write_text("{}")
        assert load_baseline(str(no_checks)) is None

    def test_phase_budget_is_a_hard_max(self):
        doc = make_baseline({"sync.phase_error_p95_rad": 0.03})
        spec = doc["checks"]["sync.phase_error_p95_rad"]
        assert spec["max"] == PHASE_ERROR_BUDGET_P95_RAD


class TestCliExitCodes:
    """``repro obs regress`` via the real CLI, with --current files (fast)."""

    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_pass_breach_and_missing_baseline(self, tmp_path, capsys):
        baseline = self._write(
            tmp_path, "baseline.json",
            baseline_doc(**{"sim.goodput_mbps": {"value": 28.0, "tol_rel": 0.1}}),
        )
        ok = self._write(tmp_path, "ok.json", {"sim.goodput_mbps": 28.5})
        bad = self._write(tmp_path, "bad.json", {"sim.goodput_mbps": 14.0})

        assert main(["obs", "regress", "--baseline", baseline,
                     "--current", ok]) == EXIT_OK
        assert main(["obs", "regress", "--baseline", baseline,
                     "--current", bad]) == EXIT_BREACH
        out = capsys.readouterr().out
        assert "sim.goodput_mbps" in out  # breached metric named on stdout
        assert main(["obs", "regress",
                     "--baseline", str(tmp_path / "missing.json"),
                     "--current", ok]) == EXIT_NO_BASELINE

    def test_update_baseline_writes_file(self, tmp_path):
        current = self._write(tmp_path, "cur.json", {"a": 1.0})
        baseline = tmp_path / "new_baseline.json"
        assert main(["obs", "regress", "--baseline", str(baseline),
                     "--current", current, "--update-baseline"]) == EXIT_OK
        assert load_baseline(str(baseline))["checks"]["a"]["value"] == 1.0


class TestSyncHealth:
    def _registry_with(self, p95_scale: float) -> MetricsRegistry:
        reg = MetricsRegistry()
        hist = reg.histogram("mac.phase_error_rad")
        for i in range(SYNC_HEALTH_MIN_SAMPLES + 5):
            hist.observe(p95_scale * PHASE_ERROR_BUDGET_P95_RAD)
        return reg

    def test_alarm_on_budget_breach(self):
        alarms = sync_health_alarms(self._registry_with(2.0))
        (alarm,) = alarms
        assert alarm["kind"] == "sync_health"
        assert alarm["metric"] == "mac.phase_error_rad"
        assert alarm["p95_rad"] > alarm["budget_rad"]

    def test_quiet_within_budget(self):
        assert sync_health_alarms(self._registry_with(0.5)) == []

    def test_quiet_with_too_few_samples(self):
        reg = MetricsRegistry()
        hist = reg.histogram("mac.phase_error_rad")
        for _ in range(SYNC_HEALTH_MIN_SAMPLES - 1):
            hist.observe(10 * PHASE_ERROR_BUDGET_P95_RAD)
        assert sync_health_alarms(reg) == []
