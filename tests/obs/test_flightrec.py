"""Flight recorder: ring semantics, env knobs, dumps, taps, overhead bound."""

import json
import time

import pytest

from repro.obs import flightrec
from repro.obs.alerts import AlertEngine, AlertRule
from repro.obs.flightrec import (
    CAPACITY_ENV,
    DEFAULT_CAPACITY,
    DUMP_SCHEMA,
    ENABLE_ENV,
    FlightRecorder,
    get_recorder,
)
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.tracer import Tracer


@pytest.fixture(autouse=True)
def _clean_global_recorder():
    """Taps feed the process-global ring; never leak records across tests."""
    get_recorder().clear()
    yield
    get_recorder().clear()


class TestRing:
    def test_records_kept_oldest_first(self):
        rec = FlightRecorder(capacity=8, enabled=True)
        rec.record("a", {"i": 1}, ts=1.0)
        rec.record("b", {"i": 2}, ts=2.0)
        snap = rec.snapshot()
        assert [r["kind"] for r in snap] == ["a", "b"]
        assert snap[0] == {"ts": 1.0, "kind": "a", "data": {"i": 1}}

    def test_kind_filter_and_last(self):
        rec = FlightRecorder(capacity=8, enabled=True)
        rec.record("tick", {"n": 1})
        rec.record("tock")
        rec.record("tick", {"n": 2})
        assert [r["data"]["n"] for r in rec.snapshot(kind="tick")] == [1, 2]
        assert rec.last("tick")["data"] == {"n": 2}
        assert rec.last("missing") is None

    def test_eviction_counts_total_and_dropped(self):
        rec = FlightRecorder(capacity=3, enabled=True)
        for i in range(10):
            rec.record("k", {"i": i})
        assert len(rec) == 3
        assert rec.total == 10
        assert rec.dropped == 7
        assert [r["data"]["i"] for r in rec.snapshot()] == [7, 8, 9]

    def test_disabled_recorder_is_inert(self):
        rec = FlightRecorder(capacity=8, enabled=False)
        rec.record("k")
        assert len(rec) == 0 and rec.total == 0

    def test_clear_resets_counters(self):
        rec = FlightRecorder(capacity=2, enabled=True)
        for _ in range(5):
            rec.record("k")
        rec.clear()
        assert len(rec) == 0 and rec.total == 0 and rec.dropped == 0

    def test_timestamp_defaults_to_now(self):
        rec = FlightRecorder(capacity=2, enabled=True)
        before = time.time()
        rec.record("k")
        assert before <= rec.last()["ts"] <= time.time()

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestEnvKnobs:
    def test_enable_env_zero_disables(self, monkeypatch):
        monkeypatch.setenv(ENABLE_ENV, "0")
        assert FlightRecorder().enabled is False
        monkeypatch.setenv(ENABLE_ENV, "1")
        assert FlightRecorder().enabled is True
        monkeypatch.delenv(ENABLE_ENV)
        assert FlightRecorder().enabled is True  # on by default

    def test_capacity_env_resizes_ring(self, monkeypatch):
        monkeypatch.setenv(CAPACITY_ENV, "2")
        rec = FlightRecorder(enabled=True)
        assert rec.capacity == 2
        for i in range(4):
            rec.record("k", {"i": i})
        assert len(rec) == 2

    def test_malformed_capacity_falls_back(self, monkeypatch):
        monkeypatch.setenv(CAPACITY_ENV, "lots")
        assert FlightRecorder().capacity == DEFAULT_CAPACITY


class TestDump:
    def test_dump_header_and_records(self):
        rec = FlightRecorder(capacity=2, enabled=True)
        for i in range(3):
            rec.record("k", {"i": i})
        dump = rec.dump()
        assert dump["schema"] == DUMP_SCHEMA
        assert dump["capacity"] == 2
        assert dump["total"] == 3 and dump["dropped"] == 1
        assert [r["data"]["i"] for r in dump["records"]] == [1, 2]

    def test_dump_json_round_trip(self, tmp_path):
        rec = FlightRecorder(capacity=8, enabled=True)
        rec.record("k", {"i": 1}, ts=5.0)
        path = rec.dump_json(tmp_path / "nested" / "flightrec.json")
        with open(path) as f:
            loaded = json.load(f)
        assert loaded["schema"] == DUMP_SCHEMA
        assert loaded["records"] == [{"ts": 5.0, "kind": "k", "data": {"i": 1}}]


class TestTaps:
    """The existing publication points feed the global ring."""

    def test_tracer_spans_and_events_land_on_ring(self, tmp_path):
        t = Tracer()
        t.configure(str(tmp_path / "trace.jsonl"))
        with t.span("unit.work"):
            t.event("unit.tick", v=1)
        t.close()
        kinds = [r["kind"] for r in get_recorder().snapshot()]
        assert "trace.span_open" in kinds
        assert "trace.span" in kinds  # close record through _emit
        assert "trace.event" in kinds
        opened = get_recorder().snapshot(kind="trace.span_open")
        assert opened[0]["data"]["name"] == "unit.work"

    def test_store_samples_land_on_ring(self):
        store = TimeSeriesStore()
        store.record("unit.metric", 2.5, ts=1.0)
        (sample,) = get_recorder().snapshot(kind="series.sample")
        assert sample["data"] == {"name": "unit.metric", "value": 2.5}
        assert sample["ts"] == 1.0

    def test_alert_transitions_land_on_ring(self):
        store = TimeSeriesStore()
        store.record("s.x", 9.0, ts=10.0)
        engine = AlertEngine([
            AlertRule(name="s.high", series="s.x", threshold=1.0),
        ])
        (transition,) = engine.evaluate(store, now=10.0)
        (tap,) = get_recorder().snapshot(kind="obs.alert")
        assert tap["data"] == transition

    def test_bus_frames_land_on_ring(self):
        from repro.obs.serve import EventBus

        EventBus().publish("progress", {"done": 1})
        (tap,) = get_recorder().snapshot(kind="bus.progress")
        assert tap["data"] == {"done": 1}


class TestOverheadBound:
    def test_enabled_recording_is_negligible(self):
        """ISSUE 9 bound: the always-on ring must stay under 5% overhead.

        Mirrors the null-span bound in test_integration: accept either the
        relative bound or a per-record cost so small (<5us) that it cannot
        amount to 5% of any sweep that emits telemetry at sane rates.
        """
        on = FlightRecorder(capacity=DEFAULT_CAPACITY, enabled=True)
        off = FlightRecorder(capacity=DEFAULT_CAPACITY, enabled=False)
        n = 5000
        payload = {"name": "unit.metric", "value": 1.0}

        def pump(rec):
            for _ in range(n):
                rec.record("series.sample", payload, ts=1.0)

        def best_of(fn, rec, reps=5):
            best = float("inf")
            for _ in range(reps):
                rec.clear()
                t0 = time.perf_counter()
                fn(rec)
                best = min(best, time.perf_counter() - t0)
            return best

        pump(on)  # warm caches before timing either variant
        t_off = best_of(pump, off)
        t_on = best_of(pump, on)
        per_record = (t_on - t_off) / n
        assert t_on < t_off * 1.05 or per_record < 5e-6, (
            f"flight-recorder overhead too high: {t_on / t_off:.3f}x "
            f"({per_record * 1e6:.2f} us/record)"
        )


class TestGlobalRecorder:
    def test_module_record_feeds_global_ring(self):
        flightrec.record("unit.kind", {"a": 1})
        assert get_recorder().last("unit.kind")["data"] == {"a": 1}
