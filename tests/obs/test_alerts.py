"""Alert engine: rule validation, state machine, built-ins, TOML overlay."""

import sys

import pytest

from repro.core.phasesync import (
    PHASE_ERROR_BUDGET_MEDIAN_RAD,
    PHASE_ERROR_BUDGET_P95_RAD,
)
from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    builtin_rules,
    load_rules,
)
from repro.obs.timeseries import TimeSeriesStore

HAVE_TOMLLIB = sys.version_info >= (3, 11)


def fill(store, name, values, t0=0.0, dt=1.0):
    for i, v in enumerate(values):
        store.record(name, v, ts=t0 + i * dt)


class TestAlertRule:
    def test_defaults(self):
        r = AlertRule(name="a.b", series="s.x", threshold=1.0)
        assert r.kind == "threshold" and r.stat == "last" and r.op == "above"
        assert r.clear_level() == 1.0  # no hysteresis by default

    def test_explicit_clear_level(self):
        r = AlertRule(name="a.b", series="s.x", threshold=1.0, clear=0.8)
        assert r.clear_level() == 0.8

    @pytest.mark.parametrize("kwargs", [
        {"kind": "nope"},
        {"stat": "p42"},
        {"op": "sideways"},
        {"window_s": 0.0},
        {"min_count": 0},
    ])
    def test_invalid_fields_raise(self, kwargs):
        with pytest.raises(ValueError):
            AlertRule(name="a.b", series="s.x", threshold=1.0, **kwargs)

    def test_unconventional_name_warns_but_constructs(self, caplog):
        import logging

        logging.getLogger("repro").propagate = True
        with caplog.at_level(logging.WARNING, logger="repro.obs.alerts"):
            r = AlertRule(name="BadName", series="s.x", threshold=1.0)
        assert r.name == "BadName"
        assert any("OBS004" in rec.getMessage() for rec in caplog.records)

    def test_to_dict_round_trips_fields(self):
        r = AlertRule(name="a.b", series="s.x", threshold=1.0, for_s=2.0)
        d = r.to_dict()
        assert d["name"] == "a.b" and d["for_s"] == 2.0
        assert AlertRule(**d) == r


class TestStateMachine:
    def _engine(self, **kwargs):
        defaults = dict(name="t.rule", series="s.x", threshold=1.0)
        defaults.update(kwargs)
        return AlertEngine([AlertRule(**defaults)])

    def test_immediate_fire_without_for_duration(self):
        store = TimeSeriesStore()
        engine = self._engine()
        fill(store, "s.x", [2.0], t0=10.0)
        (t,) = engine.evaluate(store, now=10.0)
        assert t["status"] == "firing" and t["previous"] == "ok"
        assert t["value"] == 2.0 and t["threshold"] == 1.0
        assert engine.state("t.rule").status == "firing"
        assert engine.firing()[0]["rule"] == "t.rule"

    def test_no_transition_while_healthy(self):
        store = TimeSeriesStore()
        engine = self._engine()
        fill(store, "s.x", [0.5], t0=10.0)
        assert engine.evaluate(store, now=10.0) == []
        assert engine.firing() == []

    def test_for_duration_debounce(self):
        store = TimeSeriesStore()
        engine = self._engine(for_s=5.0)
        fill(store, "s.x", [2.0], t0=0.0)
        (t,) = engine.evaluate(store, now=0.0)
        assert t["status"] == "pending"  # breached, but not for long enough
        store.record("s.x", 2.0, ts=3.0)
        assert engine.evaluate(store, now=3.0) == []  # still pending
        store.record("s.x", 2.0, ts=6.0)
        (t,) = engine.evaluate(store, now=6.0)
        assert t["status"] == "firing" and t["previous"] == "pending"

    def test_pending_clears_without_firing(self):
        store = TimeSeriesStore()
        engine = self._engine(for_s=5.0)
        fill(store, "s.x", [2.0], t0=0.0)
        engine.evaluate(store, now=0.0)
        store.record("s.x", 0.1, ts=2.0)
        (t,) = engine.evaluate(store, now=2.0)
        assert t["status"] == "ok" and t["previous"] == "pending"
        state = engine.state("t.rule")
        assert state.fired_count == 0

    def test_hysteresis_prevents_strobing(self):
        store = TimeSeriesStore()
        engine = self._engine(clear=0.8)
        store.record("s.x", 2.0, ts=0.0)
        engine.evaluate(store, now=0.0)
        # drops below threshold but above the clear level: stays firing
        store.record("s.x", 0.9, ts=1.0)
        assert engine.evaluate(store, now=1.0) == []
        assert engine.state("t.rule").status == "firing"
        # crosses the clear level: now it clears
        store.record("s.x", 0.7, ts=2.0)
        (t,) = engine.evaluate(store, now=2.0)
        assert t["status"] == "ok" and t["previous"] == "firing"

    def test_below_direction(self):
        store = TimeSeriesStore()
        engine = self._engine(op="below", threshold=0.5)
        store.record("s.x", 0.2, ts=0.0)
        (t,) = engine.evaluate(store, now=0.0)
        assert t["status"] == "firing"

    def test_min_count_holds_judgement(self):
        store = TimeSeriesStore()
        engine = self._engine(min_count=3)
        fill(store, "s.x", [5.0, 5.0], t0=0.0)
        assert engine.evaluate(store, now=1.0) == []  # 2 < min_count
        store.record("s.x", 5.0, ts=2.0)
        (t,) = engine.evaluate(store, now=2.0)
        assert t["status"] == "firing"

    def test_missing_series_reads_as_ok(self):
        engine = self._engine()
        assert engine.evaluate(TimeSeriesStore(), now=0.0) == []

    def test_window_excludes_stale_breaches(self):
        store = TimeSeriesStore()
        engine = self._engine(window_s=10.0, stat="max")
        store.record("s.x", 5.0, ts=0.0)  # old spike
        store.record("s.x", 0.1, ts=100.0)
        assert engine.evaluate(store, now=100.0) == []

    def test_rate_of_change_kind(self):
        store = TimeSeriesStore()
        engine = self._engine(kind="rate_of_change", threshold=0.5,
                              window_s=100.0, min_count=2)
        fill(store, "s.x", [0.0, 2.0], t0=0.0, dt=1.0)  # slope 2.0/s
        (t,) = engine.evaluate(store, now=1.0)
        assert t["status"] == "firing"
        assert t["value"] == pytest.approx(2.0)

    def test_rate_of_change_needs_two_points(self):
        store = TimeSeriesStore()
        engine = self._engine(kind="rate_of_change", threshold=0.5,
                              min_count=1)
        store.record("s.x", 9.0, ts=0.0)
        assert engine.evaluate(store, now=0.0) == []

    def test_fired_alarms_shape_and_worst_value(self):
        store = TimeSeriesStore()
        engine = self._engine(kind="budget", stat="last")
        store.record("s.x", 2.0, ts=0.0)
        engine.evaluate(store, now=0.0)
        store.record("s.x", 3.5, ts=1.0)  # worse while firing
        engine.evaluate(store, now=1.0)
        (alarm,) = engine.fired_alarms()
        assert alarm == {
            "kind": "alert_budget", "rule": "t.rule", "metric": "s.x",
            "stat": "last", "value": 3.5, "threshold": 1.0,
            "severity": "warning", "count": 1,
        }

    def test_no_alarms_when_nothing_fired(self):
        engine = self._engine()
        assert engine.fired_alarms() == []

    def test_refire_increments_count(self):
        store = TimeSeriesStore()
        engine = self._engine(window_s=5.0)
        store.record("s.x", 2.0, ts=0.0)
        engine.evaluate(store, now=0.0)
        store.record("s.x", 0.1, ts=1.0)
        engine.evaluate(store, now=1.0)  # clears
        store.record("s.x", 2.0, ts=2.0)
        engine.evaluate(store, now=2.0)  # fires again
        (alarm,) = engine.fired_alarms()
        assert alarm["count"] == 2

    def test_to_dict_view(self):
        engine = self._engine()
        view = engine.to_dict()
        assert view["t.rule"]["status"] == "ok"
        assert view["t.rule"]["series"] == "s.x"


class TestBuiltinRules:
    def test_phase_budgets_match_the_paper_constants(self):
        rules = {r.name: r for r in builtin_rules()}
        for domain in ("fastsim", "mac"):
            p50 = rules[f"{domain}.phase_error_p50"]
            p95 = rules[f"{domain}.phase_error_p95"]
            assert p50.threshold == PHASE_ERROR_BUDGET_MEDIAN_RAD
            assert p95.threshold == PHASE_ERROR_BUDGET_P95_RAD
            assert p50.kind == p95.kind == "budget"
            assert p95.severity == "critical"
            assert p50.series == p95.series == f"{domain}.phase_error_rad"
        floor = rules["runtime.worker_utilization_floor"]
        assert floor.op == "below" and floor.clear == 0.6

    def test_builtin_p95_budget_fires_on_degraded_sync(self):
        store = TimeSeriesStore()
        engine = AlertEngine(builtin_rules())
        fill(store, "fastsim.phase_error_rad", [0.2] * 10, t0=0.0)
        transitions = engine.evaluate(store, now=9.0)
        fired = {t["rule"] for t in transitions if t["status"] == "firing"}
        assert "fastsim.phase_error_p95" in fired
        assert "fastsim.phase_error_p50" in fired
        assert "mac.phase_error_p50" not in fired  # no mac data

    def test_builtin_budgets_stay_quiet_within_budget(self):
        store = TimeSeriesStore()
        engine = AlertEngine(builtin_rules())
        fill(store, "fastsim.phase_error_rad", [0.005] * 10, t0=0.0)
        assert engine.evaluate(store, now=9.0) == []


class TestLoadRules:
    def test_missing_default_path_yields_builtins(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert load_rules() == builtin_rules()

    def test_missing_explicit_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_rules(str(tmp_path / "nope.toml"))

    def test_repo_default_rules_file_is_all_comments(self, monkeypatch):
        # runs/alerts.toml ships as documented examples only: loading it
        # must not change the built-in behavior
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[2]
        monkeypatch.chdir(repo)
        assert load_rules() == builtin_rules()

    @pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs Python 3.11+")
    def test_toml_overlay_replaces_adds_and_drops(self, tmp_path):
        path = tmp_path / "alerts.toml"
        path.write_text(
            '[[rule]]\n'
            'name = "fastsim.phase_error_p95"\n'
            'series = "fastsim.phase_error_rad"\n'
            'kind = "budget"\nstat = "p95"\n'
            'threshold = 0.03\nclear = 0.02\n'
            '\n'
            '[[rule]]\n'
            'name = "custom.throughput_floor"\n'
            'series = "runtime.trials_per_s"\n'
            'op = "below"\nthreshold = 1.0\n'
            '\n'
            '[[rule]]\n'
            'name = "runtime.worker_utilization_floor"\n'
            'enabled = false\n'
        )
        rules = {r.name: r for r in load_rules(str(path))}
        assert rules["fastsim.phase_error_p95"].threshold == 0.03  # replaced
        assert rules["fastsim.phase_error_p95"].clear == 0.02
        assert rules["custom.throughput_floor"].op == "below"  # added
        assert "runtime.worker_utilization_floor" not in rules  # dropped
        assert "mac.phase_error_p95" in rules  # untouched built-in survives

    @pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs Python 3.11+")
    def test_unknown_keys_raise(self, tmp_path):
        path = tmp_path / "alerts.toml"
        path.write_text(
            '[[rule]]\nname = "a.b"\nseries = "s"\nthreshold = 1.0\n'
            'treshold = 2.0\n'  # typo must not be silently ignored
        )
        with pytest.raises(ValueError, match="treshold"):
            load_rules(str(path))

    @pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs Python 3.11+")
    def test_missing_required_keys_raise(self, tmp_path):
        path = tmp_path / "alerts.toml"
        path.write_text('[[rule]]\nseries = "s"\nthreshold = 1.0\n')
        with pytest.raises(ValueError, match="name"):
            load_rules(str(path))

    @pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs Python 3.11+")
    def test_rule_without_threshold_raises(self, tmp_path):
        path = tmp_path / "alerts.toml"
        path.write_text('[[rule]]\nname = "a.b"\nseries = "s"\n')
        with pytest.raises(ValueError, match="threshold"):
            load_rules(str(path))
