"""Worker trace shards: detach, shard lifecycle, merge-back linkage."""

import io
import json
import logging
import os

from repro.obs.events import iter_events, read_events
from repro.obs.shards import merge_shards, shard_dir_for
from repro.obs.tracer import NULL_SPAN, SHARD_DIR_SUFFIX, Tracer


class TestDetach:
    def test_detach_disables_without_flushing(self):
        buf = io.StringIO()
        t = Tracer()
        t.configure(buf)
        with t.span("before"):
            pass
        written = buf.getvalue()
        t.detach()
        assert not t.enabled
        assert t.span("after") is NULL_SPAN
        t.event("after")  # silently dropped
        # the inherited buffer is walked away from, never touched again
        assert buf.getvalue() == written
        t.close()  # idempotent after detach, no error
        assert buf.getvalue() == written

    def test_detach_resets_span_stack_and_sink_path(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = Tracer()
        t.configure(str(path))
        assert t.sink_path == str(path)
        span = t.span("parent").__enter__()  # left open, as at fork time
        assert t.current_span is span
        t.detach()
        assert t.current_span is None
        assert t.sink_path is None


class TestWorkerContext:
    def test_none_when_disabled(self):
        assert Tracer().worker_context() is None

    def test_none_for_file_object_sinks(self):
        t = Tracer()
        t.configure(io.StringIO())
        assert t.worker_context() is None

    def test_context_creates_shard_dir_and_links_current_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = Tracer()
        t.configure(str(path))
        with t.span("launch") as sp:
            ctx = t.worker_context(sweep="unit")
        assert ctx["shard_dir"] == str(path) + SHARD_DIR_SUFFIX
        assert os.path.isdir(ctx["shard_dir"])
        assert ctx["parent_span_id"] == sp.span_id
        assert ctx["parent_depth"] == sp.depth + 1
        assert ctx["attrs"] == {"sweep": "unit"}
        t.close()

    def test_context_outside_any_span(self, tmp_path):
        t = Tracer()
        t.configure(str(tmp_path / "t.jsonl"))
        ctx = t.worker_context()
        assert ctx["parent_span_id"] is None
        assert ctx["parent_depth"] == 0
        assert ctx["attrs"] == {}
        t.close()


class TestConfigureShard:
    def _context(self, tmp_path, parent_span_id=9, parent_depth=2):
        shard_dir = tmp_path / ("t.jsonl" + SHARD_DIR_SUFFIX)
        shard_dir.mkdir()
        return {
            "shard_dir": str(shard_dir),
            "parent_span_id": parent_span_id,
            "parent_depth": parent_depth,
            "attrs": {"sweep": "unit"},
        }

    def test_shard_file_keyed_on_pid_with_meta_linkage(self, tmp_path):
        t = Tracer()
        path = t.configure_shard(self._context(tmp_path))
        assert path.endswith(f"worker-{os.getpid()}.jsonl")
        assert t.enabled and t.sink_path == path
        with t.span("inner"):
            pass
        t.close()
        records = list(iter_events(path))
        meta = records[0]
        assert meta["type"] == "meta"
        assert meta["worker"] == {
            "pid": os.getpid(), "parent_span_id": 9, "parent_depth": 2,
        }
        assert meta["attrs"] == {"sweep": "unit"}
        # the shard's id sequence restarts: its first span is id 1
        assert records[1]["name"] == "inner"
        assert records[1]["span_id"] == 1


def write_shard(shard_dir, pid, lines):
    shard_dir.mkdir(exist_ok=True)
    path = shard_dir / f"worker-{pid}.jsonl"
    path.write_text("".join(json.dumps(line) + "\n" for line in lines))
    return path


def shard_meta(pid, parent_span_id, parent_depth):
    return {"type": "meta", "schema": 1, "ts": 1.0,
            "worker": {"pid": pid, "parent_span_id": parent_span_id,
                       "parent_depth": parent_depth}}


class TestMergeShards:
    def test_merge_restores_linkage_inside_open_parent_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        parent = Tracer()
        parent.configure(str(path))
        with parent.span("runtime.sweep") as sweep:
            ctx = parent.worker_context()
            # a worker trace: child span under a root span, plus an event
            write_shard(tmp_path / ("t.jsonl" + SHARD_DIR_SUFFIX), 111, [
                shard_meta(111, ctx["parent_span_id"], ctx["parent_depth"]),
                {"type": "event", "name": "tick", "ts": 2.0, "parent_id": 2},
                {"type": "span", "name": "leaf", "ts": 2.0, "wall_s": 0.1,
                 "cpu_s": 0.1, "span_id": 1, "parent_id": 2, "depth": 1},
                {"type": "span", "name": "chunk", "ts": 2.0, "wall_s": 0.2,
                 "cpu_s": 0.2, "span_id": 2, "parent_id": None, "depth": 0},
            ])
            stats = merge_shards(
                parent, ctx["shard_dir"],
                default_parent_id=ctx["parent_span_id"],
                default_depth=ctx["parent_depth"],
            )
            sweep_id, sweep_depth = sweep.span_id, sweep.depth
        parent.close()

        assert stats == {"shards": 1, "spans": 2, "events": 1, "dropped": 0}
        records = list(iter_events(str(path)))
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        # the shard root is re-parented under the launching sweep span
        assert spans["chunk"]["parent_id"] == sweep_id
        assert spans["chunk"]["depth"] == sweep_depth + 1
        assert spans["leaf"]["parent_id"] == spans["chunk"]["span_id"]
        assert spans["leaf"]["depth"] == sweep_depth + 2
        # fresh ids from the parent sequence: unique across the whole file
        ids = [r["span_id"] for r in records if r["type"] == "span"]
        assert len(ids) == len(set(ids))
        # every merged record is stamped with its worker pid
        assert spans["chunk"]["attrs"]["worker_pid"] == 111
        assert spans["leaf"]["attrs"]["worker_pid"] == 111
        (event,) = [r for r in records if r["type"] == "event"]
        assert event["parent_id"] == spans["chunk"]["span_id"]
        assert event["attrs"]["worker_pid"] == 111
        # merged while the sweep span was open: children precede the parent
        order = [r["name"] for r in records if r["type"] == "span"]
        assert order.index("chunk") < order.index("runtime.sweep")
        # one meta only — shard metas are dropped
        assert sum(1 for r in records if r["type"] == "meta") == 1

    def test_merge_cleans_up_shard_files_and_dir(self, tmp_path):
        path = tmp_path / "t.jsonl"
        parent = Tracer()
        parent.configure(str(path))
        shard_dir = tmp_path / ("t.jsonl" + SHARD_DIR_SUFFIX)
        write_shard(shard_dir, 7, [shard_meta(7, None, 0)])
        merge_shards(parent, str(shard_dir))
        parent.close()
        assert not shard_dir.exists()

    def test_cleanup_false_keeps_shards(self, tmp_path):
        path = tmp_path / "t.jsonl"
        parent = Tracer()
        parent.configure(str(path))
        shard_dir = tmp_path / ("t.jsonl" + SHARD_DIR_SUFFIX)
        shard = write_shard(shard_dir, 7, [shard_meta(7, None, 0)])
        merge_shards(parent, str(shard_dir), cleanup=False)
        parent.close()
        assert shard.exists()

    def test_torn_line_and_unknown_type_counted_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        parent = Tracer()
        parent.configure(str(path))
        shard_dir = tmp_path / ("t.jsonl" + SHARD_DIR_SUFFIX)
        shard = write_shard(shard_dir, 7, [
            shard_meta(7, None, 0),
            {"type": "mystery", "name": "?"},
            {"type": "span", "name": "ok", "ts": 1.0, "wall_s": 0.0,
             "cpu_s": 0.0, "span_id": 1, "parent_id": None, "depth": 0},
        ])
        with open(shard, "a") as f:
            f.write('{"type": "span", "name": "torn')  # killed mid-write
        stats = merge_shards(parent, str(shard_dir))
        parent.close()
        assert stats["spans"] == 1
        assert stats["dropped"] == 2
        names = {r["name"] for r in read_events(path.read_text().splitlines())
                 if r["type"] == "span"}
        assert names == {"ok"}

    def test_meta_without_linkage_falls_back_to_defaults(self, tmp_path):
        path = tmp_path / "t.jsonl"
        parent = Tracer()
        parent.configure(str(path))
        shard_dir = tmp_path / ("t.jsonl" + SHARD_DIR_SUFFIX)
        write_shard(shard_dir, 7, [
            {"type": "meta", "schema": 1, "ts": 1.0},  # no worker block
            {"type": "span", "name": "orphan", "ts": 1.0, "wall_s": 0.0,
             "cpu_s": 0.0, "span_id": 1, "parent_id": None, "depth": 0},
        ])
        merge_shards(parent, str(shard_dir), default_parent_id=42,
                     default_depth=3)
        parent.close()
        (span,) = [r for r in iter_events(str(path)) if r["type"] == "span"]
        assert span["parent_id"] == 42
        assert span["depth"] == 3

    def test_shard_dir_for_suffix(self):
        assert shard_dir_for("/x/run.jsonl") == "/x/run.jsonl" + SHARD_DIR_SUFFIX


class TestOrphanShards:
    """Shards left behind by killed pool workers merge with a warning."""

    def _capture(self, caplog, monkeypatch):
        # setup_logging (run by CLI tests) flips propagate off on the
        # ``repro`` root; restore it so caplog's root handler sees records
        # regardless of test ordering.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        return caplog.at_level(logging.WARNING, logger="repro.obs.shards")

    def test_killed_worker_shard_warns_but_merges_intact_records(
        self, tmp_path, caplog, monkeypatch
    ):
        path = tmp_path / "t.jsonl"
        parent = Tracer()
        parent.configure(str(path))
        shard_dir = tmp_path / ("t.jsonl" + SHARD_DIR_SUFFIX)
        shard = write_shard(shard_dir, 314, [
            shard_meta(314, None, 0),
            {"type": "span", "name": "survivor", "ts": 1.0, "wall_s": 0.1,
             "cpu_s": 0.1, "span_id": 1, "parent_id": None, "depth": 0},
        ])
        with open(shard, "a") as f:
            f.write('{"type": "span", "name": "torn')  # killed mid-write
        with self._capture(caplog, monkeypatch):
            stats = merge_shards(parent, str(shard_dir))
        parent.close()

        # the merge neither crashed nor lost the intact records
        assert stats == {"shards": 1, "spans": 1, "events": 0, "dropped": 1}
        spans = [r for r in iter_events(str(path)) if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["survivor"]
        assert spans[0]["attrs"]["worker_pid"] == 314
        # ... and the orphan was called out, with the shard identified
        (record,) = [r for r in caplog.records if "mid-write" in r.message]
        assert "worker-314.jsonl" in record.getMessage()
        assert "dropped 1" in record.getMessage()

    def test_intact_shards_merge_silently(self, tmp_path, caplog, monkeypatch):
        path = tmp_path / "t.jsonl"
        parent = Tracer()
        parent.configure(str(path))
        shard_dir = tmp_path / ("t.jsonl" + SHARD_DIR_SUFFIX)
        write_shard(shard_dir, 7, [
            shard_meta(7, None, 0),
            {"type": "span", "name": "clean", "ts": 1.0, "wall_s": 0.0,
             "cpu_s": 0.0, "span_id": 1, "parent_id": None, "depth": 0},
        ])
        with self._capture(caplog, monkeypatch):
            stats = merge_shards(parent, str(shard_dir))
        parent.close()
        assert stats["dropped"] == 0
        assert caplog.records == []

    def test_shard_reduced_to_torn_meta_still_merges_rest(
        self, tmp_path, caplog, monkeypatch
    ):
        """A worker killed while writing its *meta* record: every record is
        unparseable or orphaned, but the other shards still merge."""
        path = tmp_path / "t.jsonl"
        parent = Tracer()
        parent.configure(str(path))
        shard_dir = tmp_path / ("t.jsonl" + SHARD_DIR_SUFFIX)
        shard_dir.mkdir()
        (shard_dir / "worker-13.jsonl").write_text('{"type": "meta", "sch')
        write_shard(shard_dir, 99, [
            shard_meta(99, None, 0),
            {"type": "span", "name": "other", "ts": 1.0, "wall_s": 0.0,
             "cpu_s": 0.0, "span_id": 1, "parent_id": None, "depth": 0},
        ])
        with self._capture(caplog, monkeypatch):
            stats = merge_shards(parent, str(shard_dir), default_parent_id=5,
                                 default_depth=1)
        parent.close()
        assert stats == {"shards": 2, "spans": 1, "events": 0, "dropped": 1}
        (span,) = [r for r in iter_events(str(path)) if r["type"] == "span"]
        assert span["name"] == "other"
        assert any("worker-13.jsonl" in r.getMessage() for r in caplog.records)
