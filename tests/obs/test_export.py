"""Metric export: OpenMetrics rendering and tidy CSV."""

import csv
import io

from repro.obs.export import (
    ledger_to_csv,
    metrics_to_csv,
    metrics_to_openmetrics,
    openmetrics_name,
)
from repro.obs.ledger import RunRecord
from repro.obs.metrics import MetricsRegistry


class TestOpenMetricsNames:
    def test_dots_fold_to_underscores(self):
        assert openmetrics_name("mac.phase_error_rad") == "mac_phase_error_rad"

    def test_leading_digit_gets_prefix(self):
        assert openmetrics_name("95th.pct") == "_95th_pct"


class TestOpenMetricsText:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("runtime.chunks_run").inc(3)
        reg.gauge("sim.goodput_mbps").set(36.0)
        hist = reg.histogram("mac.phase_error_rad")
        for v in (0.01, 0.02, 0.03, 0.04):
            hist.observe(v)
        return reg

    def test_counter_gauge_histogram_rendering(self):
        text = metrics_to_openmetrics(self._registry())
        assert "# TYPE runtime_chunks_run counter" in text
        assert "runtime_chunks_run_total 3" in text
        assert "sim_goodput_mbps 36" in text
        assert "# TYPE mac_phase_error_rad summary" in text
        assert 'mac_phase_error_rad{quantile="0.95"}' in text
        assert "mac_phase_error_rad_count 4" in text
        assert text.endswith("# EOF\n")

    def test_accepts_snapshot_dict(self):
        # the same shape a --metrics JSON file contains
        snapshot = self._registry().to_dict()
        assert metrics_to_openmetrics(snapshot) == metrics_to_openmetrics(
            self._registry()
        )

    def test_unset_gauge_is_skipped(self):
        reg = MetricsRegistry()
        reg.gauge("never.set")
        text = metrics_to_openmetrics(reg)
        assert "never_set" not in text


class TestLedgerCsv:
    def _records(self):
        return [
            RunRecord(
                run_id="r1", ts=1.75e9, command="figure", duration_s=2.0,
                git_sha="abc", config_hash="h1", master_seed=4,
                metrics={"fig9.gain": 8.0, "fig9.mbps": 220.0},
            ),
            RunRecord(run_id="r2", ts=1.76e9, command="report", duration_s=9.0),
        ]

    def test_one_row_per_run_metric(self):
        rows = list(csv.DictReader(io.StringIO(ledger_to_csv(self._records()))))
        assert len(rows) == 3  # two metrics for r1 + duration fallback for r2
        r1 = [r for r in rows if r["run_id"] == "r1"]
        assert {r["metric"] for r in r1} == {"fig9.gain", "fig9.mbps"}
        (r2,) = [r for r in rows if r["run_id"] == "r2"]
        assert r2["metric"] == "duration_s"
        assert float(r2["value"]) == 9.0
        assert r2["master_seed"] == ""

    def test_metrics_to_csv_tidy_rows(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h").observe(1.0)
        rows = list(csv.DictReader(io.StringIO(metrics_to_csv(reg))))
        counter_rows = [r for r in rows if r["metric"] == "c"]
        assert counter_rows[0]["field"] == "value"
        assert float(counter_rows[0]["value"]) == 2.0
        hist_fields = {r["field"] for r in rows if r["metric"] == "h"}
        assert "count" in hist_fields and "mean" in hist_fields
