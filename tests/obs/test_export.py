"""Metric export: OpenMetrics rendering and tidy CSV."""

import csv
import io

from repro.obs.export import (
    ledger_to_csv,
    metrics_to_csv,
    metrics_to_openmetrics,
    openmetrics_name,
    validate_openmetrics,
)
from repro.obs.ledger import RunRecord
from repro.obs.metrics import MetricsRegistry


class TestOpenMetricsNames:
    def test_dots_fold_to_underscores(self):
        assert openmetrics_name("mac.phase_error_rad") == "mac_phase_error_rad"

    def test_leading_digit_gets_prefix(self):
        assert openmetrics_name("95th.pct") == "_95th_pct"


class TestOpenMetricsText:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("runtime.chunks_run").inc(3)
        reg.gauge("sim.goodput_mbps").set(36.0)
        hist = reg.histogram("mac.phase_error_rad")
        for v in (0.01, 0.02, 0.03, 0.04):
            hist.observe(v)
        return reg

    def test_counter_gauge_histogram_rendering(self):
        text = metrics_to_openmetrics(self._registry())
        assert "# TYPE runtime_chunks_run counter" in text
        assert "runtime_chunks_run_total 3" in text
        assert "sim_goodput_mbps 36" in text
        assert "# TYPE mac_phase_error_rad summary" in text
        assert 'mac_phase_error_rad{quantile="0.95"}' in text
        assert "mac_phase_error_rad_count 4" in text
        assert text.endswith("# EOF\n")

    def test_accepts_snapshot_dict(self):
        # the same shape a --metrics JSON file contains
        snapshot = self._registry().to_dict()
        assert metrics_to_openmetrics(snapshot) == metrics_to_openmetrics(
            self._registry()
        )

    def test_unset_gauge_is_skipped(self):
        reg = MetricsRegistry()
        reg.gauge("never.set")
        text = metrics_to_openmetrics(reg)
        assert "never_set" not in text

    def test_every_family_has_help_metadata(self):
        # scrapers (promtool check metrics) reject families without HELP
        text = metrics_to_openmetrics(self._registry())
        assert "# HELP runtime_chunks_run repro counter runtime.chunks_run" in text
        assert "# HELP sim_goodput_mbps repro gauge sim.goodput_mbps" in text
        assert "# HELP mac_phase_error_rad repro histogram" in text
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                family = line.split(" ")[2]
                assert f"# HELP {family} " in text

    def test_help_precedes_type_for_each_family(self):
        lines = metrics_to_openmetrics(self._registry()).splitlines()
        for i, line in enumerate(lines):
            if line.startswith("# TYPE "):
                family = line.split(" ")[2]
                assert lines[i - 1].startswith(f"# HELP {family} ")


class TestValidateOpenMetrics:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("runtime.chunks_run").inc(3)
        reg.gauge("sim.goodput_mbps").set(36.0)
        reg.histogram("mac.phase_error_rad").observe(0.01)
        return reg

    def test_rendered_exposition_is_valid(self):
        text = metrics_to_openmetrics(self._registry())
        assert validate_openmetrics(text) == []

    def test_empty_registry_exposition_is_valid(self):
        assert validate_openmetrics(metrics_to_openmetrics({})) == []

    def test_missing_eof_is_reported(self):
        problems = validate_openmetrics("# TYPE a gauge\n# HELP a x\na 1\n")
        assert any("# EOF" in p for p in problems)

    def test_content_after_eof_is_reported(self):
        problems = validate_openmetrics("# EOF\nstray 1\n")
        assert any("after" in p for p in problems)

    def test_sample_without_metadata_is_reported(self):
        problems = validate_openmetrics("orphan_metric 1\n# EOF\n")
        assert any("orphan_metric" in p for p in problems)

    def test_missing_help_is_reported(self):
        problems = validate_openmetrics("# TYPE a gauge\na 1\n# EOF\n")
        assert any("HELP" in p for p in problems)

    def test_duplicate_type_is_reported(self):
        text = "# HELP a x\n# TYPE a gauge\n# TYPE a gauge\na 1\n# EOF\n"
        problems = validate_openmetrics(text)
        assert any("duplicate" in p for p in problems)

    def test_non_numeric_value_is_reported(self):
        text = "# HELP a x\n# TYPE a gauge\na oops\n# EOF\n"
        problems = validate_openmetrics(text)
        assert any("non-numeric" in p for p in problems)

    def test_blank_line_is_reported(self):
        problems = validate_openmetrics("\n# EOF\n")
        assert any("blank" in p for p in problems)

    def test_counter_total_suffix_matches_family(self):
        text = (
            "# HELP c repro counter c\n# TYPE c counter\nc_total 2\n# EOF\n"
        )
        assert validate_openmetrics(text) == []


class TestLedgerCsv:
    def _records(self):
        return [
            RunRecord(
                run_id="r1", ts=1.75e9, command="figure", duration_s=2.0,
                git_sha="abc", config_hash="h1", master_seed=4,
                metrics={"fig9.gain": 8.0, "fig9.mbps": 220.0},
            ),
            RunRecord(run_id="r2", ts=1.76e9, command="report", duration_s=9.0),
        ]

    def test_one_row_per_run_metric(self):
        rows = list(csv.DictReader(io.StringIO(ledger_to_csv(self._records()))))
        assert len(rows) == 3  # two metrics for r1 + duration fallback for r2
        r1 = [r for r in rows if r["run_id"] == "r1"]
        assert {r["metric"] for r in r1} == {"fig9.gain", "fig9.mbps"}
        (r2,) = [r for r in rows if r["run_id"] == "r2"]
        assert r2["metric"] == "duration_s"
        assert float(r2["value"]) == 9.0
        assert r2["master_seed"] == ""

    def test_metrics_to_csv_tidy_rows(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h").observe(1.0)
        rows = list(csv.DictReader(io.StringIO(metrics_to_csv(reg))))
        counter_rows = [r for r in rows if r["metric"] == "c"]
        assert counter_rows[0]["field"] == "value"
        assert float(counter_rows[0]["value"]) == 2.0
        hist_fields = {r["field"] for r in rows if r["metric"] == "h"}
        assert "count" in hist_fields and "mean" in hist_fields
