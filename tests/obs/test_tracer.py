"""Span tracer: nesting, exception safety, null backend, JSONL round-trip."""

import io
import json

import numpy as np
import pytest

from repro.obs.events import iter_events, jsonable, read_events
from repro.obs.tracer import NULL_SPAN, Tracer, traced


def fresh_tracer(sink=None):
    t = Tracer()
    if sink is not None:
        t.configure(sink)
    return t


class TestNullBackend:
    def test_disabled_returns_shared_null_span(self):
        t = fresh_tracer()
        assert t.span("anything", k=1) is NULL_SPAN
        assert t.span("other") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as sp:
            sp.record(a=1)  # no-op, no error

    def test_disabled_event_writes_nothing(self):
        t = fresh_tracer()
        t.event("tick", v=1)  # no sink, no error

    def test_exception_passes_through_null_span(self):
        t = fresh_tracer()
        with pytest.raises(ValueError):
            with t.span("x"):
                raise ValueError("boom")


class TestSpans:
    def test_meta_header_first(self):
        buf = io.StringIO()
        t = fresh_tracer(buf)
        with t.span("a"):
            pass
        records = read_events(buf.getvalue().splitlines())
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == 1

    def test_nesting_parent_links_and_depth(self):
        buf = io.StringIO()
        t = fresh_tracer(buf)
        with t.span("outer"):
            with t.span("middle"):
                with t.span("inner"):
                    pass
        spans = {r["name"]: r for r in read_events(buf.getvalue().splitlines())
                 if r["type"] == "span"}
        assert spans["outer"]["parent_id"] is None and spans["outer"]["depth"] == 0
        assert spans["middle"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["inner"]["parent_id"] == spans["middle"]["span_id"]
        assert spans["inner"]["depth"] == 2
        # children emit before parents (spans write on exit)
        order = [r["name"] for r in read_events(buf.getvalue().splitlines())
                 if r["type"] == "span"]
        assert order == ["inner", "middle", "outer"]

    def test_timings_present_and_sane(self):
        buf = io.StringIO()
        t = fresh_tracer(buf)
        with t.span("timed"):
            sum(range(1000))
        (span,) = [r for r in read_events(buf.getvalue().splitlines())
                   if r["type"] == "span"]
        assert span["wall_s"] >= 0.0
        assert span["cpu_s"] >= 0.0
        assert span["ts"] > 0

    def test_record_merges_attrs(self):
        buf = io.StringIO()
        t = fresh_tracer(buf)
        with t.span("s", a=1) as sp:
            sp.record(b=2.5, c="x")
        (span,) = [r for r in read_events(buf.getvalue().splitlines())
                   if r["type"] == "span"]
        assert span["attrs"] == {"a": 1, "b": 2.5, "c": "x"}

    def test_exception_safety(self):
        buf = io.StringIO()
        t = fresh_tracer(buf)
        with pytest.raises(RuntimeError):
            with t.span("outer"):
                with t.span("failing"):
                    raise RuntimeError("boom")
        spans = {r["name"]: r for r in read_events(buf.getvalue().splitlines())
                 if r["type"] == "span"}
        # both spans still emitted, both flagged, stack unwound
        assert spans["failing"]["error"] == "RuntimeError"
        assert spans["outer"]["error"] == "RuntimeError"
        assert t.current_span is None
        with t.span("after"):
            assert t.current_span.depth == 0

    def test_event_attaches_to_current_span(self):
        buf = io.StringIO()
        t = fresh_tracer(buf)
        with t.span("parent") as sp:
            t.event("tick", v=7)
            parent_id = sp.span_id
        records = read_events(buf.getvalue().splitlines())
        (event,) = [r for r in records if r["type"] == "event"]
        assert event["parent_id"] == parent_id
        assert event["attrs"] == {"v": 7}

    def test_numpy_attrs_serialize(self):
        buf = io.StringIO()
        t = fresh_tracer(buf)
        with t.span("np", arr=np.arange(3), x=np.float64(1.5), ok=np.bool_(True)):
            pass
        (span,) = [r for r in read_events(buf.getvalue().splitlines())
                   if r["type"] == "span"]
        assert span["attrs"] == {"arr": [0, 1, 2], "x": 1.5, "ok": True}

    def test_close_disables(self):
        buf = io.StringIO()
        t = fresh_tracer(buf)
        t.close()
        assert not t.enabled
        assert t.span("x") is NULL_SPAN
        t.close()  # idempotent


class TestTraced:
    def test_traced_disabled_passthrough(self):
        t = fresh_tracer()

        @traced(tracer=t)
        def add(a, b):
            return a + b

        assert add(2, 3) == 5

    def test_traced_emits_span(self):
        buf = io.StringIO()
        t = fresh_tracer(buf)

        @traced(name="math.add", tracer=t)
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        (span,) = [r for r in read_events(buf.getvalue().splitlines())
                   if r["type"] == "span"]
        assert span["name"] == "math.add"


class TestJsonl:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = fresh_tracer(str(path))
        with t.span("a", k=1):
            t.event("e")
        t.close()
        records = list(iter_events(str(path)))
        assert [r["type"] for r in records] == ["meta", "event", "span"]
        # every line is independently parseable JSON
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_jsonable_fallback(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert jsonable({"x": Weird()}) == {"x": "<weird>"}
        assert jsonable(1 + 2j) == {"re": 1.0, "im": 2.0}
        assert jsonable((1, {2})) == [1, [2]]
