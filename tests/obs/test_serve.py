"""Live telemetry endpoint: routes, SSE stream, event bus, watch client."""

import io
import json
import queue
import urllib.request

import pytest

from repro.obs.alerts import AlertEngine, AlertRule
from repro.obs.export import validate_openmetrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.serve import (
    EXIT_ALERT,
    OPENMETRICS_CONTENT_TYPE,
    EventBus,
    TelemetryServer,
    _iter_sse_frames,
    fetch_json,
    render_status,
    stream_events,
    watch,
)
from repro.obs.timeseries import TimeSeriesStore


@pytest.fixture
def server():
    """An isolated TelemetryServer on an ephemeral port (no globals)."""
    registry = MetricsRegistry()
    registry.counter("runtime.chunks_run").inc(3)
    registry.gauge("sim.goodput_mbps").set(36.0)
    registry.histogram("mac.phase_error_rad").observe(0.01)
    store = TimeSeriesStore()
    engine = AlertEngine([
        AlertRule(name="test.err_budget", series="sim.err",
                  kind="budget", stat="last", threshold=0.05),
    ])
    srv = TelemetryServer(
        port=0, registry=registry, store=store, engine=engine,
        bus=EventBus(), eval_interval_s=10.0,  # evaluate manually in tests
    )
    srv.start()
    yield srv
    srv.stop()


def get(url, timeout=2.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers, resp.read().decode()


class TestEndpoints:
    def test_ephemeral_port_is_bound(self, server):
        assert server.port != 0
        assert server.url == f"http://127.0.0.1:{server.port}"
        assert server.running

    def test_index_lists_endpoints(self, server):
        body = fetch_json(server.url + "/")
        assert set(body["endpoints"]) == {
            "/metrics", "/timeseries", "/alerts", "/events",
        }

    def test_metrics_is_valid_openmetrics(self, server):
        status, headers, text = get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
        assert validate_openmetrics(text) == []
        assert "runtime_chunks_run_total 3" in text

    def test_timeseries_rollups_and_params(self, server):
        for i in range(4):
            server.store.record("sim.err", 0.01 * i, ts=float(i))
        body = fetch_json(server.url + "/timeseries")
        assert body["series"]["sim.err"]["count"] == 4
        body = fetch_json(server.url + "/timeseries?buckets=2&name=sim.*")
        assert set(body["series"]) == {"sim.err"}
        assert len(body["series"]["sim.err"]["points"]) == 2

    def test_alerts_view_reflects_engine_state(self, server):
        body = fetch_json(server.url + "/alerts")
        assert body["firing"] == []
        assert body["rules"]["test.err_budget"]["status"] == "ok"
        server.store.record("sim.err", 0.2)
        server.evaluate_once()
        body = fetch_json(server.url + "/alerts")
        (firing,) = body["firing"]
        assert firing["rule"] == "test.err_budget"
        assert firing["kind"] == "budget"

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url + "/nope")
        assert err.value.code == 404

    def test_evaluator_samples_registry_into_store(self, server):
        server.evaluate_once()
        view = server.store.to_dict()
        assert view["runtime.chunks_run"]["count"] >= 1
        assert "mac.phase_error_rad.p95" in view

    def test_stop_is_idempotent(self, server):
        server.stop()
        assert not server.running
        server.stop()  # second call is a no-op

    def test_start_twice_is_a_noop(self, server):
        port = server.port
        assert server.start() is server
        assert server.port == port


class TestSse:
    def _read_frames(self, server, n_frames, timeout=5.0):
        """Read SSE frames (event+data line pairs), skipping keep-alives."""
        req = urllib.request.Request(server.url + "/events")
        frames = []
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            assert resp.headers["Content-Type"].startswith("text/event-stream")
            while len(frames) < n_frames:
                line = resp.readline().decode()
                if not line:
                    break  # server closed the stream
                if line.startswith("event: "):
                    kind = line[len("event: "):].strip()
                    data = resp.readline().decode()
                    assert data.startswith("data: ")
                    frames.append((kind, json.loads(data[len("data: "):])))
        return frames

    def test_hello_frame_arrives_first(self, server):
        (frame,) = self._read_frames(server, 1)
        kind, payload = frame
        assert kind == "hello"
        assert "/metrics" in payload["endpoints"]

    def test_alert_transition_streams_as_sse_frame(self, server):
        # breach the budget, then evaluate from a thread while we read
        import threading

        server.store.record("sim.err", 0.2)
        timer = threading.Timer(0.2, server.evaluate_once)
        timer.start()
        try:
            frames = self._read_frames(server, 2)
        finally:
            timer.cancel()
        kinds = [k for k, _ in frames]
        assert kinds == ["hello", "alert"]
        _, alert = frames[1]
        assert alert["rule"] == "test.err_budget"
        assert alert["status"] == "firing" and alert["previous"] == "ok"
        assert alert["value"] == pytest.approx(0.2)

    def test_stopping_closes_the_stream(self, server):
        import threading

        threading.Timer(0.2, server.stop).start()
        # the reader unblocks promptly instead of hanging on keep-alives
        frames = self._read_frames(server, 99, timeout=5.0)
        assert frames[0][0] == "hello"
        assert len(frames) < 99


class TestEventBus:
    def test_fanout_to_all_subscribers(self):
        bus = EventBus()
        a, b = bus.subscribe(), bus.subscribe()
        bus.publish("tick", {"n": 1})
        assert a.get_nowait() == ("tick", {"n": 1})
        assert b.get_nowait() == ("tick", {"n": 1})
        assert bus.published == 1 and bus.dropped == 0

    def test_full_subscriber_drops_without_blocking(self):
        bus = EventBus(maxsize=2)
        q = bus.subscribe()
        for i in range(5):
            bus.publish("tick", {"n": i})
        assert bus.dropped == 3
        assert q.qsize() == 2
        assert q.get_nowait()[1] == {"n": 0}  # oldest frames are kept

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        q = bus.subscribe()
        bus.unsubscribe(q)
        bus.publish("tick", {})
        with pytest.raises(queue.Empty):
            q.get_nowait()

    def test_payload_is_copied_per_subscriber(self):
        bus = EventBus()
        a, b = bus.subscribe(), bus.subscribe()
        payload = {"n": 1}
        bus.publish("tick", payload)
        payload["n"] = 99  # later producer-side mutation must not leak
        frame_a = a.get_nowait()[1]
        assert frame_a == {"n": 1}
        frame_a["n"] = 7  # nor may one subscriber corrupt another's frame
        assert b.get_nowait()[1] == {"n": 1}


class TestWatch:
    def test_healthy_watch_renders_and_exits_zero(self, server):
        server.store.record("sim.err", 0.01)
        out = io.StringIO()
        code = watch(server.url, iterations=1, stream=out)
        assert code == 0
        text = out.getvalue()
        assert "sim.err" in text
        assert "0 firing / 1 rules" in text

    def test_fail_on_alert_exit_code(self, server):
        server.store.record("sim.err", 0.2)
        server.evaluate_once()
        out = io.StringIO()
        code = watch(server.url, iterations=1, fail_on_alert=True, stream=out)
        assert code == EXIT_ALERT
        assert "FIRING" in out.getvalue()
        assert "test.err_budget" in out.getvalue()

    def test_firing_without_flag_still_exits_zero(self, server):
        server.store.record("sim.err", 0.2)
        server.evaluate_once()
        code = watch(server.url, iterations=1, stream=io.StringIO())
        assert code == 0

    def test_unreachable_endpoint_exits_one(self):
        out = io.StringIO()
        code = watch("http://127.0.0.1:9", iterations=1, stream=out,
                     timeout=0.5)
        assert code == 1
        assert "unreachable" in out.getvalue()

    def test_scheme_is_optional(self, server):
        code = watch(f"127.0.0.1:{server.port}", iterations=1,
                     stream=io.StringIO())
        assert code == 0

    def test_name_glob_filters_series(self, server):
        server.store.record("sim.err", 0.01)
        server.store.record("runtime.rate", 5.0)
        out = io.StringIO()
        watch(server.url, iterations=1, name="runtime.*", stream=out)
        text = out.getvalue()
        assert "runtime.rate" in text
        assert "sim.err" not in text


class TestRenderStatus:
    def test_empty_store_renders_header_only(self):
        text = render_status({"series": {}}, {"rules": {}, "firing": []})
        assert "series" in text
        assert "alerts: 0 firing / 0 rules" in text

    def test_firing_rows_show_rule_details(self):
        alerts = {
            "rules": {"a.b": {}},
            "firing": [{
                "rule": "a.b", "series": "s.x", "stat": "p95",
                "value": 0.2, "threshold": 0.05, "op": "above",
                "severity": "critical",
            }],
        }
        text = render_status({"series": {}}, alerts)
        assert "FIRING [critical] a.b" in text
        assert "p95=0.2" in text


class TestDropTelemetry:
    """Satellite: bus drops surface as the obs.events.dropped counter."""

    def test_drops_land_on_metric_and_series(self):
        from repro.obs.serve import _EVENTS_DROPPED
        from repro.obs.timeseries import get_store

        before = _EVENTS_DROPPED.value
        bus = EventBus(maxsize=1)
        bus.subscribe()
        for i in range(4):
            bus.publish("tick", {"n": i})
        assert bus.dropped == 3
        assert _EVENTS_DROPPED.value == before + 3
        series = get_store().get("obs.events.dropped")
        assert series is not None
        assert series.points()[-1][1] == float(_EVENTS_DROPPED.value)

    def test_clean_publish_records_nothing_new(self):
        from repro.obs.serve import _EVENTS_DROPPED

        before = _EVENTS_DROPPED.value
        bus = EventBus(maxsize=4)
        bus.subscribe()
        bus.publish("tick", {"n": 1})
        assert bus.dropped == 0
        assert _EVENTS_DROPPED.value == before


class TestStreamEvents:
    def test_iter_sse_frames_parses_events_keepalives_and_raw(self):
        raw = (b"event: progress\n"
               b'data: {"a": 1}\n'
               b"\n"
               b": keep-alive\n"
               b"data: notjson\n"
               b"\n")
        frames = list(_iter_sse_frames(io.BytesIO(raw)))
        assert frames == [
            ("progress", {"a": 1}),
            (None, None),
            ("message", {"raw": "notjson"}),
        ]

    def test_bounded_stream_exits_zero(self, server):
        out = io.StringIO()
        assert stream_events(server.url, max_events=1, stream=out) == 0
        (line,) = [ln for ln in out.getvalue().splitlines()
                   if ln.startswith("{")]
        doc = json.loads(line)
        assert doc["event"] == "hello"

    def test_no_reconnect_exits_one_on_unreachable(self):
        out = io.StringIO()
        code = stream_events("http://127.0.0.1:9", reconnect=False,
                             timeout=0.5, stream=out)
        assert code == 1
        assert "unreachable" in out.getvalue()

    def test_gives_up_after_retry_budget(self, monkeypatch):
        import repro.obs.serve as serve_mod

        monkeypatch.setattr(serve_mod, "STREAM_BACKOFF_S", 0.01)
        monkeypatch.setattr(serve_mod, "STREAM_BACKOFF_CAP_S", 0.02)
        out = io.StringIO()
        code = stream_events("http://127.0.0.1:9", max_retries=3,
                             timeout=0.3, stream=out)
        assert code == 1
        text = out.getvalue()
        assert text.count("reconnecting") == 3
        assert "giving up after 3" in text

    def test_reconnects_across_drops_and_resets_budget(self, monkeypatch):
        import urllib.request as _request

        import repro.obs.serve as serve_mod

        monkeypatch.setattr(serve_mod, "STREAM_BACKOFF_S", 0.01)
        monkeypatch.setattr(serve_mod, "STREAM_BACKOFF_CAP_S", 0.02)
        responses = [
            io.BytesIO(b'data: {"n": 1}\n\n'),      # one frame, clean close
            urllib.error.URLError("still down"),    # failed reconnect
            io.BytesIO(b'data: {"n": 2}\n\n'),      # back up again
        ]

        def fake_urlopen(url, timeout=None):
            item = responses.pop(0)
            if isinstance(item, Exception):
                raise item
            return item

        monkeypatch.setattr(_request, "urlopen", fake_urlopen)
        out = io.StringIO()
        code = stream_events("http://127.0.0.1:9", max_retries=2,
                             max_events=2, stream=out)
        assert code == 0
        lines = out.getvalue().splitlines()
        payloads = [json.loads(ln)["n"] for ln in lines if ln.startswith("{")]
        assert payloads == [1, 2]
        assert sum("reconnecting" in ln for ln in lines) == 2
