"""Time-series store: ring semantics, rollups, downsampling, registry taps."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    DEFAULT_CAPACITY,
    Series,
    TimeSeriesStore,
    get_store,
)


class TestSeriesRing:
    def test_points_are_ordered_oldest_first(self):
        s = Series("t", capacity=8)
        for i in range(5):
            s.record(float(i), ts=float(i))
        assert s.points() == [(float(i), float(i)) for i in range(5)]
        assert len(s) == 5
        assert s.total == 5

    def test_wraparound_keeps_newest_capacity_points(self):
        s = Series("t", capacity=4)
        for i in range(10):
            s.record(float(i), ts=float(i))
        assert len(s) == 4
        assert s.points() == [(6.0, 6.0), (7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]
        # total still counts everything ever recorded: loss is detectable
        assert s.total == 10

    def test_since_filters_points(self):
        s = Series("t", capacity=8)
        for i in range(6):
            s.record(float(i), ts=float(i))
        assert s.points(since=4.0) == [(4.0, 4.0), (5.0, 5.0)]

    def test_default_timestamp_is_wall_clock(self):
        s = Series("t")
        s.record(1.0)
        ((ts, _),) = s.points()
        assert ts > 1.7e9  # post-2023 epoch seconds

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Series("t", capacity=0)

    def test_reset_in_place_keeps_handle_valid(self):
        s = Series("t", capacity=4)
        s.record(1.0, ts=1.0)
        s.reset()
        assert len(s) == 0 and s.total == 0 and s.points() == []
        s.record(2.0, ts=2.0)  # the cached handle still publishes
        assert s.points() == [(2.0, 2.0)]

    def test_concurrent_appends_lose_nothing(self):
        s = Series("t", capacity=4096)
        def pump():
            for i in range(500):
                s.record(float(i), ts=float(i))
        threads = [threading.Thread(target=pump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert s.total == 2000
        assert len(s) == 2000


class TestRollup:
    def test_empty_series_rolls_up_to_count_zero(self):
        assert Series("t").rollup() == {"count": 0}

    def test_window_statistics(self):
        s = Series("t", capacity=16)
        for i, v in enumerate([1.0, 2.0, 3.0, 4.0, 100.0]):
            s.record(v, ts=float(i))
        r = s.rollup()
        assert r["count"] == 5
        assert r["first_ts"] == 0.0 and r["last_ts"] == 4.0
        assert r["last"] == 100.0
        assert r["min"] == 1.0 and r["max"] == 100.0
        assert r["mean"] == pytest.approx(22.0)
        assert r["p50"] == pytest.approx(3.0)
        assert r["p95"] > 4.0

    def test_since_window_excludes_old_points(self):
        s = Series("t", capacity=16)
        s.record(1000.0, ts=0.0)  # stale spike outside the window
        for i in range(1, 5):
            s.record(1.0, ts=float(i))
        r = s.rollup(since=1.0)
        assert r["count"] == 4
        assert r["max"] == 1.0

    def test_since_beyond_newest_point_is_empty(self):
        s = Series("t")
        s.record(1.0, ts=1.0)
        assert s.rollup(since=2.0) == {"count": 0}


class TestDownsample:
    def test_buckets_partition_the_time_range(self):
        s = Series("t", capacity=64)
        for i in range(40):
            s.record(float(i), ts=float(i))
        out = s.downsample(4)
        assert len(out) == 4
        assert sum(b["count"] for b in out) == 40
        centres = [b["ts"] for b in out]
        assert centres == sorted(centres)
        assert out[0]["min"] == 0.0
        assert out[-1]["max"] == 39.0

    def test_single_point_collapses_to_one_bucket(self):
        s = Series("t")
        s.record(3.0, ts=5.0)
        assert s.downsample(8) == [
            {"ts": 5.0, "count": 1, "min": 3.0, "max": 3.0, "mean": 3.0}
        ]

    def test_empty_series_downsamples_to_nothing(self):
        assert Series("t").downsample(4) == []

    def test_empty_buckets_are_omitted(self):
        s = Series("t", capacity=8)
        s.record(1.0, ts=0.0)
        s.record(2.0, ts=100.0)  # long gap: middle buckets are empty
        out = s.downsample(10)
        assert len(out) == 2
        assert [b["count"] for b in out] == [1, 1]

    def test_bucket_count_must_be_positive(self):
        with pytest.raises(ValueError):
            Series("t").downsample(0)


class TestStore:
    def test_series_is_get_or_create(self):
        store = TimeSeriesStore()
        a = store.series("x.y")
        assert store.series("x.y") is a
        assert store.get("x.y") is a
        assert store.get("missing") is None
        assert store.names() == ["x.y"]

    def test_capacity_applies_on_create_only(self):
        store = TimeSeriesStore(capacity=8)
        assert store.series("a").capacity == 8
        assert store.series("b", capacity=2).capacity == 2
        assert store.series("b", capacity=99).capacity == 2  # already created

    def test_record_convenience(self):
        store = TimeSeriesStore()
        store.record("a.b", 1.5, ts=1.0)
        assert store.get("a.b").points() == [(1.0, 1.5)]

    def test_reset_clears_every_series_in_place(self):
        store = TimeSeriesStore()
        handle = store.series("a")
        handle.record(1.0)
        store.reset()
        assert len(handle) == 0
        assert store.get("a") is handle

    def test_global_store_is_a_singleton(self):
        assert get_store() is get_store()


class TestSampleRegistry:
    def test_counters_gauges_histograms_snapshot(self):
        store = TimeSeriesStore()
        reg = MetricsRegistry()
        reg.counter("runtime.chunks").inc(3)
        reg.gauge("sim.goodput").set(36.0)
        reg.gauge("never.set")
        hist = reg.histogram("mac.err")
        for v in (0.01, 0.02, 0.03):
            hist.observe(v)
        store.sample_registry(reg, ts=10.0)
        assert store.get("runtime.chunks").points() == [(10.0, 3.0)]
        assert store.get("sim.goodput").points() == [(10.0, 36.0)]
        assert store.get("never.set") is None  # unset gauges are skipped
        # histograms become derived sub-series, not raw draws
        assert store.get("mac.err") is None
        assert store.get("mac.err.p50").rollup()["count"] == 1
        assert store.get("mac.err.p95").rollup()["count"] == 1
        assert store.get("mac.err.mean").points() == [(10.0, pytest.approx(0.02))]

    def test_empty_histogram_contributes_nothing(self):
        store = TimeSeriesStore()
        reg = MetricsRegistry()
        reg.histogram("h")
        store.sample_registry(reg, ts=1.0)
        assert store.names() == []

    def test_repeated_samples_grow_history(self):
        store = TimeSeriesStore()
        reg = MetricsRegistry()
        counter = reg.counter("c")
        for i in range(3):
            counter.inc()
            store.sample_registry(reg, ts=float(i))
        assert store.get("c").points() == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]


class TestToDict:
    def _store(self):
        store = TimeSeriesStore()
        for i in range(4):
            store.record("runtime.rate", float(i), ts=float(i))
            store.record("sim.err", 0.01 * i, ts=float(i))
        return store

    def test_rollup_view_with_totals(self):
        view = self._store().to_dict()
        assert set(view) == {"runtime.rate", "sim.err"}
        assert view["runtime.rate"]["count"] == 4
        assert view["runtime.rate"]["total"] == 4
        assert "points" not in view["runtime.rate"]

    def test_glob_filter_selects_series(self):
        view = self._store().to_dict(names="runtime.*")
        assert set(view) == {"runtime.rate"}
        view = self._store().to_dict(names=["sim.*", "runtime.*"])
        assert set(view) == {"runtime.rate", "sim.err"}

    def test_buckets_add_downsampled_points(self):
        view = self._store().to_dict(buckets=2)
        points = view["sim.err"]["points"]
        assert len(points) == 2
        assert sum(b["count"] for b in points) == 4

    def test_default_capacity_sanity(self):
        # the documented footprint bound: two float64 arrays per series
        assert DEFAULT_CAPACITY == 1024
