"""Attribution profiler: chunk math, trace profiling, folded stacks, CLI."""

import json

import pytest

from repro.obs.profile import (
    attribute_chunks,
    folded_stacks,
    format_attribution,
    format_profile,
    profile_trace,
)


def chunk(worker="pid:1", mode="pool", recv_ts=101.0, done_ts=105.0,
          wall_s=3.0, cpu_s=2.9, trials=4, **extra):
    rec = {
        "sweep": "unit", "cell": 0, "chunk": 0, "trials": trials,
        "mode": mode, "worker": worker, "submit_ts": 100.5,
        "recv_ts": recv_ts, "done_ts": done_ts,
        "wall_s": wall_s, "cpu_s": cpu_s,
        "queue_wait_s": max(recv_ts - 100.5, 0.0), "result_wait_s": 0.0,
        "ser_task_bytes": 0, "ser_task_s": 0.0,
        "ser_result_bytes": 0, "ser_result_s": 0.0,
    }
    rec.update(extra)
    return rec


class TestAttributeChunks:
    def test_pool_worker_decomposition(self):
        # busy window 4.0s: 3.0 compute + 0.2 result pickling + 0.8 envelope;
        # first arrival 1.0s after sweep start -> dispatch 0.8 + 1.0
        recs = [chunk(ser_task_s=0.1, ser_task_bytes=64,
                      ser_result_s=0.2, ser_result_bytes=128)]
        a = attribute_chunks(recs, wall_s=10.0, workers=2, start_ts=100.0,
                             sweep="unit")
        (w,) = a.per_worker
        assert w.worker == "pid:1"
        assert w.compute_s == pytest.approx(3.0)
        assert w.serialization_s == pytest.approx(0.3)
        assert w.dispatch_s == pytest.approx(1.8)
        assert w.idle_s == pytest.approx(4.9)
        # the four components reassemble the wall exactly, by construction
        assert w.components_s == pytest.approx(a.wall_s)
        assert w.queue_wait_s == pytest.approx(0.5)
        assert a.modes == {"pool": 1}

    def test_parent_worker_has_no_startup_charge(self):
        # a serial chunk arriving late must not be billed as spawn latency
        recs = [chunk(worker="parent", mode="serial", recv_ts=104.0,
                      done_ts=107.0, wall_s=3.0)]
        a = attribute_chunks(recs, wall_s=10.0, workers=1, start_ts=100.0)
        (w,) = a.per_worker
        assert w.dispatch_s == pytest.approx(0.0)
        assert w.idle_s == pytest.approx(7.0)
        assert w.components_s == pytest.approx(10.0)

    def test_mixed_mode_worker_skips_startup(self):
        recs = [
            chunk(worker="parent", mode="retry", recv_ts=105.0, done_ts=106.0,
                  wall_s=1.0),
            chunk(worker="parent", mode="serial", recv_ts=107.0, done_ts=108.0,
                  wall_s=1.0),
        ]
        a = attribute_chunks(recs, wall_s=10.0, workers=1, start_ts=100.0)
        (w,) = a.per_worker
        assert w.chunks == 2
        assert w.dispatch_s == pytest.approx(0.0)
        assert a.modes == {"retry": 1, "serial": 1}

    def test_capacity_fractions(self):
        recs = [
            chunk(worker="pid:1", recv_ts=100.0, done_ts=104.0, wall_s=4.0),
            chunk(worker="pid:2", recv_ts=100.0, done_ts=102.0, wall_s=2.0),
        ]
        a = attribute_chunks(recs, wall_s=5.0, workers=2, start_ts=100.0)
        assert a.capacity_s == pytest.approx(10.0)
        assert a.utilization == pytest.approx(6.0 / 10.0)
        assert len(a.per_worker) == 2
        for w in a.per_worker:
            assert w.components_s == pytest.approx(a.wall_s)

    def test_mem_peak_is_max_over_chunks(self):
        recs = [chunk(mem_peak_kb=100.0), chunk(mem_peak_kb=250.0), chunk()]
        a = attribute_chunks(recs, wall_s=10.0, workers=1, start_ts=100.0)
        assert a.per_worker[0].mem_peak_kb == pytest.approx(250.0)

    def test_to_dict_shape(self):
        a = attribute_chunks([chunk()], wall_s=10.0, workers=2,
                             start_ts=100.0, sweep="fig9")
        d = a.to_dict()
        assert d["sweep"] == "fig9"
        assert d["workers"] == 2
        assert d["chunks"] == 1 and d["trials"] == 4
        for key in ("compute_s", "dispatch_s", "serialization_s", "idle_s",
                    "queue_wait_s", "utilization", "dispatch_frac",
                    "serialization_frac"):
            assert key in d
        (w,) = d["per_worker"]
        assert w["worker"] == "pid:1"
        assert "mem_peak_kb" not in w


def sweep_records():
    """A minimal merged trace: one sweep span with two chunk events."""
    return [
        {"type": "meta", "schema": 1, "ts": 99.0},
        {"type": "event", "name": "runtime.chunk", "ts": 103.0,
         "parent_id": 7, "attrs": chunk(worker="pid:1")},
        {"type": "event", "name": "runtime.chunk", "ts": 104.0,
         "parent_id": 7, "attrs": chunk(worker="pid:2", recv_ts=102.0,
                                        done_ts=104.0, wall_s=1.5)},
        {"type": "span", "name": "runtime.sweep", "ts": 100.0, "wall_s": 6.0,
         "cpu_s": 0.5, "span_id": 7, "parent_id": None, "depth": 0,
         "attrs": {"sweep": "fig9", "workers": 2}},
    ]


def resumed_sweep_records():
    """A sweep span whose every chunk was loaded from the checkpoint."""
    return [
        {"type": "meta", "schema": 1, "ts": 99.0},
        {"type": "span", "name": "runtime.sweep", "ts": 100.0, "wall_s": 0.2,
         "cpu_s": 0.01, "span_id": 7, "parent_id": None, "depth": 0,
         "attrs": {"sweep": "fig9", "workers": 1, "chunks": 9, "resumed": 9,
                   "backend": "serial"}},
    ]


class TestProfileTrace:
    def test_attribution_from_records(self):
        prof = profile_trace(sweep_records())
        (a,) = prof.attributions
        assert a.sweep == "fig9"
        assert a.workers == 2
        assert a.wall_s == pytest.approx(6.0)
        assert a.chunks == 2
        assert {w.worker for w in a.per_worker} == {"pid:1", "pid:2"}
        # the bundled hot-span summary sees the same records
        assert "runtime.sweep" in prof.summary.spans

    def test_sweep_without_chunk_events_is_skipped(self):
        records = [r for r in sweep_records() if r["type"] != "event"]
        assert profile_trace(records).attributions == []

    def test_fully_resumed_sweep_gets_empty_attribution(self):
        # every chunk came from the checkpoint: no dispatch is legitimate,
        # not an instrumentation regression
        prof = profile_trace(resumed_sweep_records())
        (a,) = prof.attributions
        assert a.sweep == "fig9"
        assert a.chunks == 0
        assert a.per_worker == []

    def test_partially_resumed_sweep_still_skipped(self):
        # resumed < chunks with no envelopes IS an instrumentation hole
        records = resumed_sweep_records()
        records[-1]["attrs"]["resumed"] = 3
        assert profile_trace(records).attributions == []

    def test_batched_chunks_attribute_to_parent(self):
        records = [
            {"type": "event", "name": "runtime.chunk", "ts": 103.0,
             "parent_id": 7,
             "attrs": chunk(worker="parent", mode="batched",
                            recv_ts=101.0, done_ts=104.0)},
            {"type": "span", "name": "runtime.sweep", "ts": 100.0,
             "wall_s": 5.0, "cpu_s": 3.0, "span_id": 7, "parent_id": None,
             "depth": 0, "attrs": {"sweep": "grid", "workers": 1,
                                   "backend": "batched"}},
        ]
        (a,) = profile_trace(records).attributions
        assert a.modes == {"batched": 1}
        (w,) = a.per_worker
        assert w.worker == "parent"
        assert w.dispatch_s == pytest.approx(0.0)  # in-process: no spawn

    def test_reads_from_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in sweep_records())
        )
        prof = profile_trace(str(path))
        assert prof.attributions[0].sweep == "fig9"


class TestFoldedStacks:
    def test_self_time_paths(self):
        records = [
            {"type": "span", "name": "child", "span_id": 2, "parent_id": 1,
             "depth": 1, "wall_s": 0.4},
            {"type": "span", "name": "root", "span_id": 1, "parent_id": None,
             "depth": 0, "wall_s": 1.0},
        ]
        assert folded_stacks(records) == [
            "root 600000",
            "root;child 400000",
        ]

    def test_repeated_paths_aggregate(self):
        records = [
            {"type": "span", "name": "leaf", "span_id": i, "parent_id": None,
             "depth": 0, "wall_s": 0.25}
            for i in (1, 2, 3)
        ]
        assert folded_stacks(records) == ["leaf 750000"]

    def test_missing_parent_truncates_path(self):
        records = [{"type": "span", "name": "stray", "span_id": 5,
                    "parent_id": 99, "depth": 3, "wall_s": 0.1}]
        assert folded_stacks(records) == ["stray 100000"]


class TestFormatting:
    def test_attribution_table(self):
        a = attribute_chunks(
            [chunk(), chunk(worker="pid:2", recv_ts=102.0, done_ts=104.0,
                            wall_s=1.5)],
            wall_s=6.0, workers=2, start_ts=100.0, sweep="fig9",
        )
        text = format_attribution(a)
        assert "sweep 'fig9'" in text
        assert "pid:1" in text and "pid:2" in text
        assert "pool capacity" in text
        assert "mem peak" not in text  # no memory sampling in these chunks

    def test_mem_column_appears_when_sampled(self):
        a = attribute_chunks([chunk(mem_peak_kb=2048.0)], wall_s=6.0,
                             workers=1, start_ts=100.0)
        text = format_attribution(a)
        assert "mem peak" in text and "2.0 MB" in text

    def test_format_profile_empty(self):
        prof = profile_trace([{"type": "meta", "schema": 1, "ts": 1.0}])
        assert "no runtime.chunk dispatch records" in format_profile(prof)


class TestCliProfile:
    def write_trace(self, tmp_path, records):
        path = tmp_path / "t.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return path

    def test_profile_command_prints_attribution(self, tmp_path, capsys):
        from repro.cli import main

        path = self.write_trace(tmp_path, sweep_records())
        assert main(["obs", "profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "sweep 'fig9'" in out and "pool capacity" in out

    def test_profile_json_output(self, tmp_path, capsys):
        from repro.cli import main

        path = self.write_trace(tmp_path, sweep_records())
        assert main(["obs", "profile", str(path), "--json"]) == 0
        (entry,) = json.loads(capsys.readouterr().out)
        assert entry["sweep"] == "fig9"
        assert entry["workers"] == 2

    def test_profile_writes_folded_stacks(self, tmp_path):
        from repro.cli import main

        path = self.write_trace(tmp_path, sweep_records())
        folded = tmp_path / "t.folded"
        assert main(["obs", "profile", str(path),
                     "--folded", str(folded)]) == 0
        lines = folded.read_text().splitlines()
        assert lines == ["runtime.sweep 6000000"]

    def test_profile_without_dispatch_records_fails(self, tmp_path):
        from repro.cli import main

        records = [r for r in sweep_records() if r["type"] != "event"]
        path = self.write_trace(tmp_path, records)
        assert main(["obs", "profile", str(path)]) == 1

    def test_profile_fully_resumed_sweep_succeeds(self, tmp_path, capsys):
        from repro.cli import main

        path = self.write_trace(tmp_path, resumed_sweep_records())
        assert main(["obs", "profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "sweep 'fig9'" in out and "resumed" in out

    def test_profile_sweep_filter(self, tmp_path, capsys):
        from repro.cli import main

        path = self.write_trace(tmp_path, sweep_records())
        assert main(["obs", "profile", str(path), "--sweep", "fig9*"]) == 0
        capsys.readouterr()
        # a non-matching glob filters everything out -> same exit as empty
        assert main(["obs", "profile", str(path), "--sweep", "nope"]) == 1

    def test_profile_missing_file(self, tmp_path):
        from repro.cli import main

        assert main(["obs", "profile", str(tmp_path / "absent.jsonl")]) == 1


class TestBenchTrendColumns:
    def bench_record(self, run_id, metrics):
        from repro.obs.ledger import RunRecord

        return RunRecord(
            run_id=run_id, ts=1.75e9, command="bench", argv=["--quick"],
            duration_s=1.0, git_sha="f" * 40, git_dirty=False,
            config_hash="abc123def456", config={}, metrics=metrics,
        )

    def test_speedup_rows_carry_overhead_shares(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.ledger import Ledger

        ledger = Ledger(tmp_path / "runs")
        ledger.append(self.bench_record("r1", {"bench.fig9.speedup": 1.4}))
        ledger.append(self.bench_record("r2", {
            "bench.fig9.speedup": 1.6,
            "bench.fig9.dispatch_frac": 0.12,
            "bench.fig9.serialization_frac": 0.034,
        }))
        assert main(["obs", "bench", "trend",
                     "--ledger", str(tmp_path / "runs")]) == 0
        out = capsys.readouterr().out
        assert "disp%" in out and "ser%" in out
        (speedup_row,) = [line for line in out.splitlines()
                          if line.startswith("bench.fig9.speedup")]
        assert "12.0%" in speedup_row and "3.4%" in speedup_row
        # non-speedup rows leave the overhead columns blank
        (frac_row,) = [line for line in out.splitlines()
                       if line.startswith("bench.fig9.dispatch_frac")]
        assert frac_row.split()[-2:] == ["-", "-"]
