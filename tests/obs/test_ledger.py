"""Run ledger: append/query round-trips, fault tolerance, diffing."""

import json

import pytest

from repro.obs.ledger import (
    LEDGER_SCHEMA,
    Ledger,
    RunRecord,
    diff_metrics,
    diff_records,
    format_diff,
    format_list,
    format_show,
    new_run_id,
)
from repro.obs.provenance import CONFIG_HASH_LEN, config_hash, platform_snapshot


def make_record(run_id="r20260101-000000-aaaa", **overrides) -> RunRecord:
    base = dict(
        run_id=run_id,
        ts=1.75e9,
        command="figure",
        argv=["figure", "9"],
        duration_s=2.5,
        git_sha="deadbeef" * 5,
        git_dirty=False,
        config_hash="abc123def456",
        config={"figure": 9, "seed": 4},
        master_seed=4,
        metrics={"fig9.median_gain_high_n10": 8.2},
    )
    base.update(overrides)
    return RunRecord(**base)


class TestRoundTrip:
    def test_append_then_read_back(self, tmp_path):
        ledger = Ledger(tmp_path / "runs")
        rec = make_record()
        path = ledger.append(rec)
        assert path.exists()
        (got,) = list(ledger.records())
        assert got.run_id == rec.run_id
        assert got.command == "figure"
        assert got.master_seed == 4
        assert got.metrics == {"fig9.median_gain_high_n10": 8.2}
        assert got.schema == LEDGER_SCHEMA

    def test_records_are_one_json_object_per_line(self, tmp_path):
        ledger = Ledger(tmp_path / "runs")
        ledger.append(make_record("r1"))
        ledger.append(make_record("r2"))
        lines = ledger.path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["schema"] == LEDGER_SCHEMA for line in lines)

    def test_command_filter_and_ordering(self, tmp_path):
        ledger = Ledger(tmp_path / "runs")
        for i, cmd in enumerate(["figure", "simulate", "figure"]):
            ledger.append(make_record(f"r{i}", command=cmd))
        assert [r.run_id for r in ledger.records()] == ["r0", "r1", "r2"]
        assert [r.run_id for r in ledger.records(command="figure")] == ["r0", "r2"]
        assert ledger.latest().run_id == "r2"
        assert ledger.latest(command="simulate").run_id == "r1"
        assert [r.run_id for r in ledger.last(2)] == ["r1", "r2"]

    def test_get_by_id_and_prefix(self, tmp_path):
        ledger = Ledger(tmp_path / "runs")
        ledger.append(make_record("r20260101-000000-aaaa"))
        ledger.append(make_record("r20260102-000000-bbbb"))
        assert ledger.get("r20260101-000000-aaaa").run_id.endswith("aaaa")
        assert ledger.get("r20260102").run_id.endswith("bbbb")
        assert ledger.get("r2026") is None  # ambiguous prefix
        assert ledger.get("nope") is None

    def test_unknown_fields_are_ignored_on_read(self, tmp_path):
        ledger = Ledger(tmp_path / "runs")
        data = make_record().to_dict()
        data["future_field"] = {"from": "a newer schema"}
        ledger.runs_dir.mkdir(parents=True)
        ledger.path.write_text(json.dumps(data) + "\n")
        (got,) = list(ledger.records())
        assert got.run_id == make_record().run_id


class TestFaultTolerance:
    def test_empty_or_missing_ledger(self, tmp_path):
        ledger = Ledger(tmp_path / "runs")
        assert list(ledger.records()) == []
        assert ledger.latest() is None

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        ledger = Ledger(tmp_path / "runs")
        ledger.append(make_record("r1"))
        with open(ledger.path, "a") as f:
            f.write('{"run_id": "r2", "truncat')  # torn mid-append
        assert [r.run_id for r in ledger.records()] == ["r1"]

    def test_corruption_before_the_end_raises(self, tmp_path):
        ledger = Ledger(tmp_path / "runs")
        ledger.append(make_record("r1"))
        with open(ledger.path, "a") as f:
            f.write("not json at all\n")
        ledger.append(make_record("r2"))
        with pytest.raises(ValueError, match="corrupt"):
            list(ledger.records())


class TestDiff:
    def test_diff_metrics_rows(self):
        rows = diff_metrics({"a": 1.0, "b": 2.0}, {"b": 3.0, "c": 4.0})
        by_name = {r["metric"]: r for r in rows}
        assert set(by_name) == {"a", "b", "c"}
        assert by_name["a"]["new"] is None and by_name["a"]["delta"] is None
        assert by_name["b"]["delta"] == pytest.approx(1.0)
        assert by_name["b"]["rel"] == pytest.approx(0.5)
        assert by_name["c"]["old"] is None

    def test_diff_records_identity_changes(self):
        old = make_record("r1")
        new = make_record("r2", config_hash="fff000fff000", master_seed=5,
                          metrics={"fig9.median_gain_high_n10": 9.0})
        diff = diff_records(old, new)
        assert set(diff["identity"]) == {"config_hash", "master_seed"}
        assert diff["old"] == "r1" and diff["new"] == "r2"
        (row,) = diff["metrics"]
        assert row["delta"] == pytest.approx(0.8)
        # identical runs: no identity changes
        assert diff_records(old, old)["identity"] == {}


class TestRendering:
    def test_format_list_and_show_and_diff(self):
        records = [make_record("r1"), make_record("r2", status="error")]
        listing = format_list(records)
        assert "r1" in listing and "error" in listing
        assert format_list([]) == "ledger is empty"
        shown = json.loads(format_show(records[0]))
        assert shown["run_id"] == "r1"
        rendered = format_diff(diff_records(records[0], records[1]))
        assert "r1 -> r2" in rendered


class TestProvenance:
    def test_config_hash_is_canonical(self):
        a = config_hash({"seed": 4, "figure": 9})
        b = config_hash({"figure": 9, "seed": 4})
        assert a == b
        assert len(a) == CONFIG_HASH_LEN
        assert a != config_hash({"figure": 9, "seed": 5})

    def test_platform_snapshot_fields(self):
        snap = platform_snapshot()
        assert snap["cpu_count"] >= 1
        assert snap["python"]
        assert snap["numpy"]

    def test_run_ids_sort_by_time(self):
        assert new_run_id(1000.0)[:16] < new_run_id(2000.0)[:16]
