"""Metrics registry: counters, gauges, reservoir histograms."""

import json

import numpy as np
import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_reset(self):
        c = Counter("c")
        c.inc(7)
        c.reset()
        assert c.value == 0.0


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        assert g.value is None
        g.set(3)
        g.set(5)
        assert g.value == 5.0


class TestHistogram:
    def test_percentile_exact_below_capacity(self):
        h = Histogram("h", capacity=1024)
        data = np.arange(1000, dtype=float)
        for x in data:
            h.observe(x)
        for q in (1, 25, 50, 90, 99):
            assert h.percentile(q) == pytest.approx(np.percentile(data, q))
        assert h.count == 1000
        assert h.mean == pytest.approx(np.mean(data))
        assert h.min == 0.0 and h.max == 999.0

    def test_running_stats_exact_past_capacity(self):
        h = Histogram("h", capacity=64)
        rng = np.random.default_rng(5)
        data = rng.normal(10.0, 2.0, 5000)
        for x in data:
            h.observe(x)
        # count/mean/min/max are exact regardless of reservoir overflow
        assert h.count == 5000
        assert h.mean == pytest.approx(np.mean(data))
        assert h.min == pytest.approx(np.min(data))
        assert h.max == pytest.approx(np.max(data))

    def test_reservoir_percentile_approximates_distribution(self):
        h = Histogram("h", capacity=512)
        rng = np.random.default_rng(6)
        data = rng.uniform(0.0, 1.0, 20000)
        for x in data:
            h.observe(x)
        # a 512-sample uniform reservoir pins the median within a few percent
        assert h.percentile(50) == pytest.approx(0.5, abs=0.08)

    def test_empty(self):
        h = Histogram("h")
        assert np.isnan(h.percentile(50))
        assert np.isnan(h.mean)
        assert h.to_dict() == {"type": "histogram", "count": 0}

    def test_percentile_vector(self):
        h = Histogram("h")
        for x in range(101):
            h.observe(x)
        out = h.percentile([50, 95])
        assert list(out) == [50.0, 95.0]


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_reset_preserves_handles(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        h = reg.histogram("h")
        c.inc(3)
        h.observe(1.0)
        reg.reset()
        assert c.value == 0.0 and h.count == 0
        # the registry still serves the same objects post-reset
        assert reg.counter("a") is c

    def test_to_json_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("mac.retries").inc(2)
        reg.gauge("queue").set(7)
        for x in range(10):
            reg.histogram("snr").observe(float(x))
        path = tmp_path / "m.json"
        reg.write_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["mac.retries"] == {"type": "counter", "value": 2.0}
        assert loaded["queue"]["value"] == 7.0
        assert loaded["snr"]["count"] == 10
        assert loaded["snr"]["p50"] == pytest.approx(4.5)

    def test_global_helpers(self):
        from repro.obs import metrics

        c = metrics.counter("test.global.counter")
        c.reset()
        c.inc()
        assert metrics.get_registry().get("test.global.counter").value == 1.0
        assert "test.global.counter" in metrics.to_dict()
