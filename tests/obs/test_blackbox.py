"""Crash-forensics bundles: write/list/load round-trips, CLI inspection."""

import json
import os
import signal

import pytest

from repro.cli import main
from repro.obs import blackbox
from repro.obs.blackbox import (
    BUNDLE_SCHEMA,
    drain_bundles,
    format_bundle_list,
    format_bundle_show,
    list_bundles,
    load_bundle,
    pending_bundles,
    set_run_context,
    signal_guard,
    write_crash_bundle,
)
from repro.obs.flightrec import get_recorder


@pytest.fixture(autouse=True)
def _clean_state():
    blackbox.clear_run_context()
    drain_bundles()
    get_recorder().clear()
    yield
    blackbox.clear_run_context()
    drain_bundles()
    get_recorder().clear()


class TestWriteBundle:
    def test_bundle_contents(self, tmp_path):
        get_recorder().record("runtime.progress", {"done_chunks": 3,
                                                   "total_chunks": 9})
        path = write_crash_bundle(
            "sweep_error", error=ValueError("boom"), runs_dir=tmp_path,
        )
        assert path is not None and path.name.startswith("crash-")
        names = {p.name for p in path.iterdir()}
        assert names == {"bundle.json", "flightrec.json", "progress.json",
                         "environment.json", "stacks.txt"}
        with open(path / "bundle.json") as f:
            manifest = json.load(f)
        assert manifest["schema"] == BUNDLE_SCHEMA
        assert manifest["reason"] == "sweep_error"
        assert manifest["error"] == {"type": "ValueError", "message": "boom"}
        assert "config_hash" in manifest["provenance"]
        assert sorted(manifest["files"]) == sorted(names)
        with open(path / "progress.json") as f:
            progress = json.load(f)
        assert progress["data"]["done_chunks"] == 3
        assert "Current thread" in (path / "stacks.txt").read_text()

    def test_run_context_names_the_bundle(self, tmp_path):
        set_run_context(run_id="20260807-120000-aaaa", command="figure",
                        argv=["figure", "7"])
        path = write_crash_bundle("unhandled_exception", runs_dir=tmp_path)
        assert path.name == "crash-20260807-120000-aaaa"
        manifest = load_bundle("latest", runs_dir=tmp_path)
        assert manifest["run_id"] == "20260807-120000-aaaa"
        assert manifest["command"] == "figure"

    def test_collision_suffixes(self, tmp_path):
        set_run_context(run_id="rid")
        first = write_crash_bundle("signal", runs_dir=tmp_path)
        second = write_crash_bundle("signal", runs_dir=tmp_path)
        assert first.name == "crash-rid"
        assert second.name == "crash-rid-2"

    def test_never_raises(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the runs dir must go")
        assert write_crash_bundle("signal", runs_dir=target) is None

    def test_drain_and_pending(self, tmp_path):
        assert pending_bundles() == 0
        write_crash_bundle("sweep_error", runs_dir=tmp_path)
        assert pending_bundles() == 1
        (alarm,) = drain_bundles()
        assert alarm["kind"] == "crash_bundle"
        assert alarm["severity"] == "critical"
        assert alarm["reason"] == "sweep_error"
        assert pending_bundles() == 0 and drain_bundles() == []


class TestInspection:
    def _write_two(self, tmp_path):
        set_run_context(run_id="run-aa")
        write_crash_bundle("sweep_error", error=RuntimeError("x"),
                           runs_dir=tmp_path)
        blackbox.clear_run_context()
        set_run_context(run_id="run-bb")
        write_crash_bundle("watchdog_stall", runs_dir=tmp_path,
                           detail={"stalled_chunks": 2})

    def test_list_bundles_sorted(self, tmp_path):
        self._write_two(tmp_path)
        bundles = list_bundles(tmp_path)
        assert [m["run_id"] for m in bundles] == ["run-aa", "run-bb"]
        assert list_bundles(tmp_path / "missing") == []

    def test_load_by_token(self, tmp_path):
        self._write_two(tmp_path)
        assert load_bundle("latest", runs_dir=tmp_path)["run_id"] == "run-bb"
        assert load_bundle("run-aa", runs_dir=tmp_path)["run_id"] == "run-aa"
        assert (load_bundle("crash-run-bb", runs_dir=tmp_path)["run_id"]
                == "run-bb")
        # unambiguous prefix resolves; ambiguous or unknown do not
        assert load_bundle("run-a", runs_dir=tmp_path)["run_id"] == "run-aa"
        assert load_bundle("run-", runs_dir=tmp_path) is None
        assert load_bundle("nope", runs_dir=tmp_path) is None

    def test_load_parses_contents(self, tmp_path):
        get_recorder().record("runtime.progress", {"done_chunks": 1,
                                                   "total_chunks": 2})
        write_crash_bundle("critical_alert", runs_dir=tmp_path)
        manifest = load_bundle("latest", runs_dir=tmp_path)
        assert manifest["flightrec"]["records"]
        assert manifest["progress"]["data"]["total_chunks"] == 2
        assert manifest["environment"]["pid"] == os.getpid()
        assert "stacks" in manifest

    def test_format_helpers(self, tmp_path):
        assert format_bundle_list([]) == "no crash bundles"
        self._write_two(tmp_path)
        listing = format_bundle_list(list_bundles(tmp_path))
        assert "crash-run-aa" in listing and "watchdog_stall" in listing
        shown = format_bundle_show(load_bundle("run-bb", runs_dir=tmp_path))
        assert "detail.stalled_chunks: 2" in shown
        assert "flight recorder:" in shown


class TestSignalGuard:
    def test_sigint_writes_bundle_then_interrupts(self, tmp_path):
        with pytest.raises(KeyboardInterrupt):
            with signal_guard(runs_dir=tmp_path):
                os.kill(os.getpid(), signal.SIGINT)
        (manifest,) = list_bundles(tmp_path)
        assert manifest["reason"] == "signal"
        assert manifest["detail"]["signal"] == "SIGINT"

    def test_handlers_restored_on_exit(self, tmp_path):
        before = signal.getsignal(signal.SIGTERM)
        with signal_guard(runs_dir=tmp_path):
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before


class TestCli:
    def test_blackbox_list_and_show(self, tmp_path, capsys):
        set_run_context(run_id="cli-run")
        write_crash_bundle("sweep_error", error=RuntimeError("bad sweep"),
                           runs_dir=tmp_path)
        drain_bundles()
        assert main(["obs", "blackbox", "list",
                     "--ledger", str(tmp_path)]) == 0
        assert "crash-cli-run" in capsys.readouterr().out
        assert main(["obs", "blackbox", "show", "cli-run",
                     "--ledger", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "reason: sweep_error" in out
        assert "RuntimeError: bad sweep" in out

    def test_blackbox_show_json(self, tmp_path, capsys):
        set_run_context(run_id="cli-run")
        write_crash_bundle("sweep_error", runs_dir=tmp_path)
        drain_bundles()
        assert main(["obs", "blackbox", "show", "--json",
                     "--ledger", str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["run_id"] == "cli-run"

    def test_blackbox_show_missing(self, tmp_path, capsys):
        assert main(["obs", "blackbox", "show", "nope",
                     "--ledger", str(tmp_path)]) == 1

    def test_run_crash_leaves_bundle_and_alarm(self, tmp_path, monkeypatch):
        """A failing run command writes a bundle linked from its ledger row."""
        from repro.obs.ledger import Ledger

        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))

        def explode(args, ctx):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr("repro.cli._run_figure", explode)
        with pytest.raises(RuntimeError):
            main(["figure", "7", "--scale", "0.2"])
        bundles = list_bundles(tmp_path)
        assert [m["reason"] for m in bundles] == ["unhandled_exception"]
        assert bundles[0]["error"]["message"] == "kernel exploded"
        records = list(Ledger(tmp_path).records())
        assert records, "the crashed run must still be recorded"
        alarms = records[-1].alarms
        crash = [a for a in alarms if a.get("kind") == "crash_bundle"]
        assert crash and crash[0]["bundle_id"] == bundles[0]["bundle_id"]
        assert records[-1].run_id == bundles[0]["run_id"]
