"""Shared hygiene for obs tests: the tracer and registry are process-global."""

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _close_global_tracer():
    """Never leak an enabled global tracer into other tests."""
    yield
    trace.close()
