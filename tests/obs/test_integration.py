"""End-to-end observability: instrumented stack, summary, overhead bound."""

import json
import time

import numpy as np
import pytest

from repro.obs import metrics, trace
from repro.obs.events import iter_events
from repro.obs.summary import format_table, summarize


def run_short_sim(duration_s=0.05, **kwargs):
    from repro.mac.simulator import DownlinkSimulator, LinkLayerConfig

    config = LinkLayerConfig(
        n_aps=2, n_clients=2, duration_s=duration_s, seed=3, **kwargs
    )
    return DownlinkSimulator(config).run()


class TestSimulatorTrace:
    def test_jsonl_roundtrip_of_short_run(self, tmp_path):
        path = tmp_path / "sim.jsonl"
        trace.configure(str(path))
        try:
            result = run_short_sim()
        finally:
            trace.close()
        records = list(iter_events(str(path)))
        assert records[0]["type"] == "meta"
        names = {r["name"] for r in records if r["type"] == "span"}
        assert {"mac.run", "mac.sound", "mac.burst", "phase_sync"} <= names
        # one phase_sync span per transmitted stream (per-packet telemetry)
        n_sync = sum(
            1 for r in records if r["type"] == "span" and r["name"] == "phase_sync"
        )
        assert n_sync == result.n_transmissions
        # phase_sync spans nest under bursts and carry the drawn errors
        bursts = {r["span_id"] for r in records
                  if r["type"] == "span" and r["name"] == "mac.burst"}
        syncs = [r for r in records
                 if r["type"] == "span" and r["name"] == "phase_sync"]
        assert all(s["parent_id"] in bursts for s in syncs)
        assert all("phase_errors_rad" in s["attrs"] for s in syncs)

    def test_metrics_counters_populated(self):
        metrics.reset()
        result = run_short_sim()
        snapshot = metrics.to_dict()
        assert snapshot["mac.deliveries"]["value"] == len(result.delivered)
        assert snapshot["mac.stream_failures"]["value"] == result.n_failures
        assert snapshot["mac.soundings"]["value"] == result.n_soundings
        assert snapshot["mac.airtime.data_s"]["value"] == pytest.approx(
            result.airtime["data"]
        )
        assert snapshot["mac.airtime.ap0_s"]["value"] > 0
        assert snapshot["mac.queue_depth"]["count"] > 0
        assert snapshot["mac.arq.retries"]["value"] >= result.n_failures

    def test_summary_of_sim_trace(self, tmp_path):
        path = tmp_path / "sim.jsonl"
        trace.configure(str(path))
        try:
            run_short_sim()
        finally:
            trace.close()
        summary = summarize(str(path))
        assert summary.spans["mac.run"].count == 1
        # self time never exceeds total, totals are positive
        for stats in summary.spans.values():
            assert 0.0 <= stats.total_self_s <= stats.total_wall_s + 1e-12
        table = format_table(summary, top_k=5)
        assert "phase_sync" in table


class TestSampleLevelTrace:
    def test_joint_tx_spans_and_phase_probes(self, tmp_path):
        from repro import MegaMimoSystem, SystemConfig, get_mcs
        from repro.channel.models import RicianChannel

        path = tmp_path / "phy.jsonl"
        metrics.reset()
        trace.configure(str(path))
        try:
            system = MegaMimoSystem.create(
                SystemConfig(n_aps=2, n_clients=2, seed=7),
                client_snr_db=25.0,
                channel_model=RicianChannel(k_factor=8.0),
            )
            system.run_sounding(0.0)
            system.joint_transmit(
                [b"abc", b"def"], get_mcs(2), start_time=1e-3
            )
        finally:
            trace.close()
        records = list(iter_events(str(path)))
        names = {r["name"] for r in records if r["type"] == "span"}
        assert {"sounding", "joint_tx", "precoding", "ofdm_mod",
                "channel_apply", "ofdm_demod", "decode",
                "phase_sync.observe_header"} <= names
        (sync,) = [r for r in records if r["type"] == "span"
                   and r["name"] == "phase_sync.observe_header"]
        assert "phase_offset_rad" in sync["attrs"]
        assert "cfo_residual_hz" in sync["attrs"]
        snapshot = metrics.to_dict()
        assert snapshot["phasesync.headers"]["value"] == 1
        assert snapshot["phasesync.phase_offset_rad"]["count"] == 1
        assert snapshot["system.decode_ok"]["value"] == 2


class TestCliWiring:
    def test_simulate_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro.cli import main

        t_path, m_path = tmp_path / "t.jsonl", tmp_path / "m.json"
        rc = main([
            "simulate", "--n-aps", "2", "--n-clients", "2",
            "--duration", "0.05", "--seed", "3",
            "--trace", str(t_path), "--metrics", str(m_path),
        ])
        assert rc == 0
        assert "goodput" in capsys.readouterr().out
        names = {r.get("name") for r in iter_events(str(t_path))}
        assert "phase_sync" in names and "mac.burst" in names
        snapshot = json.loads(m_path.read_text())
        assert "mac.arq.retries" in snapshot
        assert "mac.airtime.data_s" in snapshot

    def test_obs_summarize_command(self, tmp_path, capsys):
        from repro.cli import main

        t_path = tmp_path / "t.jsonl"
        assert main([
            "simulate", "--n-aps", "2", "--n-clients", "2",
            "--duration", "0.05", "--seed", "3", "--trace", str(t_path),
        ]) == 0
        capsys.readouterr()
        assert main(["obs", "summarize", str(t_path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "span" in out and "phase_sync" in out

    def test_obs_summarize_missing_file(self, tmp_path):
        from repro.cli import main

        assert main(["obs", "summarize", str(tmp_path / "absent.jsonl")]) == 1

    def test_repro_trace_console_entry(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.summary import main as trace_main

        t_path = tmp_path / "t.jsonl"
        main(["simulate", "--n-aps", "2", "--n-clients", "2",
              "--duration", "0.05", "--seed", "3", "--trace", str(t_path)])
        capsys.readouterr()
        assert trace_main([str(t_path), "--top", "3", "--sort", "total"]) == 0
        assert "mac.run" in capsys.readouterr().out


class TestNullOverhead:
    def test_disabled_span_overhead_is_negligible(self):
        """The null backend must cost well under 5% on a PHY microbench.

        Mirrors ``benchmarks/test_perf_phy.py``'s OFDM symbol round-trip:
        compares the bare loop against the same loop wrapped in disabled
        spans, using best-of-N timings to suppress scheduler noise.  The
        absolute-cost bound (< 5 us per disabled span, ~50x the typical
        cost) keeps the assertion robust on a loaded CI machine.
        """
        from repro.phy.ofdm import OfdmDemodulator, OfdmModulator

        assert not trace.enabled
        mod, demod = OfdmModulator(), OfdmDemodulator()
        rng = np.random.default_rng(2)
        data = np.exp(2j * np.pi * rng.uniform(size=48))
        channel = np.ones(64, dtype=complex)
        n = 150

        def bare():
            for _ in range(n):
                samples = mod.modulate_symbol(data, symbol_index=3)
                demod.demodulate_symbol(samples, channel, symbol_index=3)

        def spanned():
            for _ in range(n):
                with trace.span("phy.roundtrip", symbol_index=3):
                    samples = mod.modulate_symbol(data, symbol_index=3)
                    demod.demodulate_symbol(samples, channel, symbol_index=3)

        def best_of(fn, reps=5):
            best = float("inf")
            for _ in range(reps):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        bare()  # warm caches before timing either variant
        t_bare = best_of(bare)
        t_span = best_of(spanned)
        per_span = (t_span - t_bare) / n
        assert t_span < t_bare * 1.05 or per_span < 5e-6, (
            f"null-span overhead too high: {t_span / t_bare:.3f}x "
            f"({per_span * 1e6:.2f} us/span)"
        )
