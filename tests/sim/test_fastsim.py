"""Frequency-domain fast simulation path."""

import numpy as np
import pytest

from repro.sim.fastsim import (
    SyncErrorModel,
    build_channel_tensor,
    diversity_snr_db,
    draw_band_snrs,
    joint_zf_sinr_db,
    mmse_stream_sinr_db,
    nulling_inr_db,
    unicast_snr_db,
)


class TestChannelTensor:
    def test_shape_and_gain(self):
        rng = np.random.default_rng(0)
        snrs = np.full((3, 4), 20.0)
        gains = []
        for _ in range(50):
            ch = build_channel_tensor(snrs, rng)
            gains.append(np.mean(np.abs(ch) ** 2))
        assert build_channel_tensor(snrs, rng).shape == (52, 3, 4)
        assert np.mean(gains) == pytest.approx(100.0, rel=0.15)

    def test_band_draw_within_spread(self):
        rng = np.random.default_rng(1)
        snrs = draw_band_snrs((10.0, 14.0), 6, 6, rng, ap_spread_db=0.0)
        assert np.all(snrs >= 10.0) and np.all(snrs <= 14.0)
        # all APs equal when spread is zero
        assert np.allclose(snrs, snrs[:, :1])


class TestJointZf:
    def test_perfect_sync_gives_flat_sinr(self):
        rng = np.random.default_rng(2)
        ch = build_channel_tensor(np.full((3, 3), 20.0), rng)
        sinr = joint_zf_sinr_db(ch)
        # with shared wideband k the per-bin SINR is k^2/noise everywhere
        assert np.std(sinr) < 0.01

    def test_phase_errors_reduce_sinr(self):
        rng = np.random.default_rng(3)
        ch = build_channel_tensor(np.full((3, 3), 20.0), rng)
        clean = joint_zf_sinr_db(ch)
        dirty = joint_zf_sinr_db(ch, phase_errors=np.array([0.0, 0.3, -0.3]))
        assert np.mean(dirty) < np.mean(clean) - 3.0

    def test_estimation_error_reduces_sinr(self):
        rng = np.random.default_rng(4)
        ch = build_channel_tensor(np.full((3, 3), 20.0), rng)
        noisy_est = SyncErrorModel(estimation_snr_boost_db=0.0).corrupt_estimate(
            ch, 20.0, rng
        )
        clean = joint_zf_sinr_db(ch)
        dirty = joint_zf_sinr_db(ch, est_channels=noisy_est)
        assert np.mean(dirty) < np.mean(clean)

    def test_lead_error_ignored_when_only_lead(self):
        """A global phase rotation (lead included) is invisible to SINR."""
        rng = np.random.default_rng(5)
        ch = build_channel_tensor(np.full((2, 2), 20.0), rng)
        common = joint_zf_sinr_db(ch, phase_errors=np.array([0.2, 0.2]))
        clean = joint_zf_sinr_db(ch)
        assert np.allclose(common, clean, atol=1e-6)


class TestNulling:
    def test_zero_inr_with_perfect_sync(self):
        rng = np.random.default_rng(6)
        ch = build_channel_tensor(np.full((3, 3), 20.0), rng)
        assert nulling_inr_db(ch, nulled_client=0) == pytest.approx(0.0, abs=1e-6)

    def test_inr_grows_with_phase_error(self):
        rng = np.random.default_rng(7)
        ch = build_channel_tensor(np.full((3, 3), 20.0), rng)
        small = nulling_inr_db(ch, 0, phase_errors=np.array([0.0, 0.01, 0.01]))
        large = nulling_inr_db(ch, 0, phase_errors=np.array([0.0, 0.2, 0.2]))
        assert large > small


class TestDiversity:
    def test_n_squared_gain(self):
        ch = np.ones((52, 10))  # 10 equal unit links
        snr = diversity_snr_db(ch)
        assert np.allclose(snr, 20.0)  # 10*log10(100)

    def test_misalignment_erodes_gain(self):
        rng = np.random.default_rng(8)
        ch = np.ones((52, 4))
        clean = diversity_snr_db(ch)
        dirty = diversity_snr_db(ch, phase_errors=np.array([0, 0.8, -0.8, 0.8]))
        assert np.mean(dirty) < np.mean(clean)


class TestMmse:
    def test_orthogonal_channel_no_loss(self):
        ch = np.tile(np.eye(2)[None, :, :], (52, 1, 1)).astype(complex) * 10.0
        sinr = mmse_stream_sinr_db(ch)
        assert np.allclose(sinr, 20.0, atol=0.1)

    def test_correlated_channel_loses(self):
        base = np.array([[1.0, 0.95], [0.95, 1.0]], dtype=complex) * 10.0
        ch = np.tile(base[None, :, :], (52, 1, 1))
        sinr = mmse_stream_sinr_db(ch)
        assert np.mean(sinr) < 15.0

    def test_rx_count_validated(self):
        with pytest.raises(ValueError):
            mmse_stream_sinr_db(np.ones((5, 1, 2), dtype=complex))


class TestSyncErrorModel:
    def test_lead_error_is_zero(self):
        model = SyncErrorModel()
        errors = model.phase_errors(5, np.random.default_rng(9))
        assert errors[0] == 0.0

    def test_shared_device_shares_error(self):
        model = SyncErrorModel()
        errors = model.phase_errors(
            4, np.random.default_rng(10), device_of=[0, 0, 1, 1]
        )
        assert errors[0] == errors[1] == 0.0
        assert errors[2] == errors[3] != 0.0

    def test_sigma_controls_spread(self):
        rng = np.random.default_rng(11)
        small = np.std([SyncErrorModel(0.01).phase_errors(10, rng)[1:] for _ in range(200)])
        large = np.std([SyncErrorModel(0.05).phase_errors(10, rng)[1:] for _ in range(200)])
        assert large > 3 * small

    def test_corrupt_estimate_scales_with_boost(self):
        rng = np.random.default_rng(12)
        ch = build_channel_tensor(np.full((2, 2), 20.0), rng)
        tight = SyncErrorModel(estimation_snr_boost_db=30.0).corrupt_estimate(ch, 20.0, rng)
        loose = SyncErrorModel(estimation_snr_boost_db=0.0).corrupt_estimate(ch, 20.0, rng)
        assert np.mean(np.abs(tight - ch)) < np.mean(np.abs(loose - ch)) / 5


class TestUnicast:
    def test_matches_link_gain(self):
        ch = np.full((52, 2, 2), 3.0, dtype=complex)
        snr = unicast_snr_db(ch, client=0, ap=1)
        assert np.allclose(snr, 10 * np.log10(9.0))
