"""Sounding overhead and CSI staleness."""

import numpy as np
import pytest

from repro.sim.fastsim import build_channel_tensor, joint_zf_sinr_db
from repro.sim.overhead import (
    packet_airtime_s,
    run_overhead_experiment,
    sounding_airtime_s,
    stale_channels,
)


class TestStaleChannels:
    def test_zero_elapsed_identity(self):
        rng = np.random.default_rng(0)
        h = build_channel_tensor(np.full((2, 2), 20.0), rng)
        assert np.allclose(stale_channels(h, 0.0, 0.25, rng), h)

    def test_power_preserved(self):
        rng = np.random.default_rng(1)
        h = build_channel_tensor(np.full((3, 3), 20.0), rng)
        stale = stale_channels(h, 0.1, 0.25, rng)
        assert np.mean(np.abs(stale) ** 2) == pytest.approx(
            np.mean(np.abs(h) ** 2), rel=0.2
        )

    def test_staleness_lowers_zf_sinr(self):
        rng = np.random.default_rng(2)
        drops = []
        for _ in range(5):
            h0 = build_channel_tensor(np.full((3, 3), 20.0), rng)
            fresh = np.mean(joint_zf_sinr_db(h0, est_channels=h0))
            stale = np.mean(
                joint_zf_sinr_db(
                    stale_channels(h0, 0.15, 0.25, rng), est_channels=h0
                )
            )
            drops.append(fresh - stale)
        assert np.mean(drops) > 4.0

    def test_short_lags_benign(self):
        """Clarke correlation is flat near zero: a packet-scale lag (1 ms)
        costs almost nothing even at a 50 ms coherence time."""
        rng = np.random.default_rng(3)
        h0 = build_channel_tensor(np.full((3, 3), 22.0), rng)
        fresh = np.mean(joint_zf_sinr_db(h0, est_channels=h0))
        barely = np.mean(
            joint_zf_sinr_db(
                stale_channels(h0, 1e-3, 0.05, rng), est_channels=h0
            )
        )
        assert barely > fresh - 3.0


class TestAirtime:
    def test_sounding_scales_with_aps(self):
        assert sounding_airtime_s(10, 10) > sounding_airtime_s(2, 2)

    def test_packet_airtime_components(self):
        t = packet_airtime_s(bitrate_bps=12e6, packet_bytes=1500)
        # payload alone is 1 ms at 12 Mbps; header+turnaround adds ~0.2 ms
        assert 1.0e-3 < t < 1.5e-3

    def test_zero_bitrate_rejected(self):
        with pytest.raises(ValueError):
            packet_airtime_s(0.0)


class TestOverheadExperiment:
    def test_optimum_scales_with_coherence(self):
        r = run_overhead_experiment(
            n_topologies=3,
            intervals_s=(2e-3, 10e-3, 25e-3, 50e-3, 100e-3),
            coherence_times_s=(50e-3, 1.0),
        )
        best = r.best_interval_s
        assert best[1.0] >= best[50e-3]

    def test_very_long_intervals_collapse(self):
        r = run_overhead_experiment(
            n_topologies=3,
            intervals_s=(10e-3, 500e-3),
            coherence_times_s=(50e-3,),
        )
        curve = r.net_throughput_bps[50e-3]
        assert curve[-1] < curve[0] / 5

    def test_table_renders(self):
        r = run_overhead_experiment(
            n_topologies=2, intervals_s=(10e-3, 50e-3), coherence_times_s=(0.25,)
        )
        assert "interval(ms)" in r.format_table()
        assert "optimal" in r.format_table()
