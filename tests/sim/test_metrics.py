"""Metrics helpers."""

import numpy as np
import pytest

from repro.sim.metrics import (
    cdf_points,
    jain_fairness,
    median_gain,
    percentile,
    summarize_throughput,
)


class TestCdf:
    def test_sorted_output(self):
        xs, fs = cdf_points([3.0, 1.0, 2.0])
        assert xs.tolist() == [1.0, 2.0, 3.0]
        assert fs.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_points([])


class TestGain:
    def test_median_gain(self):
        assert median_gain([2.0, 4.0, 9.0], [1.0, 2.0, 3.0]) == 2.0

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            median_gain([1.0], [0.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            median_gain([1.0, 2.0], [1.0])


class TestSummary:
    def test_stats(self):
        s = summarize_throughput(np.arange(1, 101) * 1e6)
        assert s.mean_mbps == pytest.approx(50.5)
        assert s.median_mbps == pytest.approx(50.5)
        assert s.p10_mbps < s.median_mbps < s.p90_mbps


class TestFairness:
    def test_equal_allocation_is_one(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_zero_total(self):
        assert jain_fairness([0.0, 0.0]) == 1.0


def test_percentile():
    assert percentile(np.arange(101), 95) == pytest.approx(95.0)
