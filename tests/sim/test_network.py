"""Scenario builder."""

import numpy as np
import pytest

from repro.sim.network import NetworkScenario, ScenarioConfig


@pytest.fixture
def scenario():
    return NetworkScenario(ScenarioConfig(n_aps=4, n_clients=6, seed=3))


class TestScenario:
    def test_snr_map_shape(self, scenario):
        assert scenario.client_ap_snr_db.shape == (6, 4)

    def test_snrs_reasonable_for_room(self, scenario):
        """AP powers and room scale should land links in the operational
        802.11 range, not -40 or +90 dB."""
        snrs = scenario.client_ap_snr_db
        assert np.median(snrs) > 5.0
        assert np.max(snrs) < 80.0

    def test_best_ap(self, scenario):
        best = scenario.best_ap_snr_db()
        assert best.shape == (6,)
        assert np.all(best == scenario.client_ap_snr_db.max(axis=1))

    def test_channel_tensor(self, scenario):
        t = scenario.channel_tensor(n_bins=52)
        assert t.shape == (52, 6, 4)

    def test_seed_reproducible(self):
        a = NetworkScenario(ScenarioConfig(n_aps=3, n_clients=3, seed=9))
        b = NetworkScenario(ScenarioConfig(n_aps=3, n_clients=3, seed=9))
        assert np.allclose(a.client_ap_snr_db, b.client_ap_snr_db)

    def test_clip_to_band(self, scenario):
        scenario.clip_snrs_to_band((12.0, 18.0))
        best = scenario.best_ap_snr_db()
        assert np.all(best >= 12.0 - 1e-9) and np.all(best <= 18.0 + 1e-9)

    def test_sample_level_system_construction(self):
        scenario = NetworkScenario(ScenarioConfig(n_aps=2, n_clients=2, seed=5))
        scenario.clip_snrs_to_band((20.0, 25.0))
        system = scenario.sample_level_system()
        assert system.config.n_aps == 2
        system.run_sounding(0.0)
        assert system._channel_tensor is not None
