"""The paper's §11.2 gain model."""

import pytest

from repro.sim.theory import (
    diversity_snr_gain_db,
    fit_gain_model,
    implied_k_db,
    megamimo_gain_model,
    paper_implied_k_summary,
    shannon_rate_bps,
)


class TestShannon:
    def test_known_point(self):
        # 0 dB over 1 Hz -> 1 bit/s
        assert shannon_rate_bps(0.0, 1.0) == pytest.approx(1.0)

    def test_monotone_in_snr(self):
        rates = [shannon_rate_bps(s, 10e6) for s in (0, 10, 20, 30)]
        assert rates == sorted(rates)


class TestGainModel:
    def test_perfect_conditioning_gives_n(self):
        assert megamimo_gain_model(10, 20.0, k_db=0.0) == pytest.approx(10.0)

    def test_gain_grows_with_snr(self):
        low = megamimo_gain_model(10, 9.0, k_db=2.0)
        high = megamimo_gain_model(10, 22.0, k_db=2.0)
        assert high > low

    def test_paper_asymmetry_reproduced(self):
        """With one K ~ 1.7 dB the model produces the paper's 8.1x (low)
        and ~9.4x (high) spread."""
        k = 1.7
        low = megamimo_gain_model(10, 9.0, k_db=k)
        high = megamimo_gain_model(10, 22.0, k_db=k)
        assert low == pytest.approx(8.1, abs=0.4)
        assert high == pytest.approx(9.2, abs=0.4)

    def test_inversion_roundtrip(self):
        for k in (0.5, 1.5, 3.0):
            gain = megamimo_gain_model(8, 15.0, k_db=k)
            assert implied_k_db(8, 15.0, gain) == pytest.approx(k, abs=1e-9)

    def test_paper_summary_band(self):
        """The paper's own gains imply K ~ 1-2.5 dB across bands — the
        justification for the Fig. 9 placement screen."""
        ks = paper_implied_k_summary()
        for label, k in ks.items():
            assert 0.3 < k < 3.0, label

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            megamimo_gain_model(0, 20.0, 1.0)
        with pytest.raises(ValueError):
            implied_k_db(4, 20.0, 5.0)  # gain > N


class TestDiversityGain:
    def test_n_squared(self):
        assert diversity_snr_gain_db(10) == pytest.approx(20.0)
        assert diversity_snr_gain_db(1) == 0.0


class TestFit:
    def test_fits_synthetic_data_exactly(self):
        k = 1.8
        ns = [2, 4, 6, 8, 10]
        gains = [megamimo_gain_model(n, 18.0, k) for n in ns]
        fit = fit_gain_model(ns, gains, 18.0)
        assert fit.k_db == pytest.approx(k, abs=1e-9)
        assert fit.max_relative_error() < 1e-9

    def test_fits_measured_fig9(self):
        """Our own Fig. 9 measurements follow the paper's model with a
        small K, confirming the linear-scaling mechanism."""
        from repro.sim.experiments import run_fig9

        fig9 = run_fig9(seed=4, n_aps=(4, 6, 8, 10), n_topologies=4)
        gains = [fig9.median_gain("high", n) for n in (4, 6, 8, 10)]
        fit = fit_gain_model([4, 6, 8, 10], gains, 22.0)
        assert 0.0 <= fit.k_db < 4.0
        assert fit.max_relative_error() < 0.35

    def test_table_renders(self):
        fit = fit_gain_model([2, 4], [1.9, 3.7], 20.0)
        assert "fitted conditioning penalty" in fit.format_table()
