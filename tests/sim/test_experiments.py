"""Experiment runners (small configurations — the paper-shape assertions
live in tests/integration/test_paper_claims.py)."""

import numpy as np
import pytest

from repro.sim.experiments import (
    draw_screened_channels,
    run_fig6,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    zf_penalty_db,
)


class TestFig6:
    def test_structure(self):
        r = run_fig6(n_channels=20)
        assert set(r.reduction_db) == {10.0, 20.0}
        assert r.reduction_db[10.0].size == r.misalignments_rad.size
        assert "loss@10dB" in r.format_table()

    def test_zero_misalignment_zero_loss(self):
        r = run_fig6(n_channels=10)
        assert r.reduction_at(20.0, 0.0) == pytest.approx(0.0, abs=1e-9)


class TestFig8:
    def test_structure(self):
        r = run_fig8(n_receivers=(2, 4), n_topologies=3, n_packets=2)
        assert set(r.inr_db) == {"high", "medium", "low"}
        assert r.inr_db["high"].size == 2
        assert "n_receivers" in r.format_table()


class TestFig9And10:
    def test_structure(self):
        r = run_fig9(n_aps=(2, 3), n_topologies=3)
        assert ("high", 2) in r.cells
        assert r.mean_megamimo_mbps("high").size == 2
        assert r.median_gain("high", 2) > 0
        f10 = run_fig10(r, n_aps=(2, 3))
        xs, fs = f10.cdf("high", 2)
        assert xs.size == fs.size > 0
        assert "median" in f10.format_table()

    def test_megamimo_beats_baseline(self):
        r = run_fig9(n_aps=(4,), n_topologies=4)
        for band in ("high", "medium", "low"):
            cell = r.cells[(band, 4)]
            assert np.mean(cell.megamimo_bps) > np.mean(cell.baseline_bps)


class TestFig11:
    def test_structure(self):
        r = run_fig11(n_aps_list=(2, 4), snr_db=(0.0, 10.0, 20.0), n_draws=5)
        assert set(r.throughput_mbps) == {1, 2, 4}
        assert r.throughput_mbps[4].size == 3

    def test_more_aps_more_throughput_at_low_snr(self):
        r = run_fig11(n_aps_list=(2, 8), snr_db=(0.0,), n_draws=10)
        assert r.throughput_mbps[8][0] > r.throughput_mbps[2][0]
        assert r.throughput_mbps[2][0] >= r.throughput_mbps[1][0]


class TestFig12And13:
    def test_structure(self):
        r = run_fig12(n_topologies=4)
        assert set(r.baseline_mbps) == {"high", "medium", "low"}
        assert r.mean_gain("high") > 1.0
        f13 = run_fig13(r)
        assert f13.gains.size > 0
        assert "median" in f13.format_table()


class TestScreening:
    def test_penalty_scale_invariant(self):
        rng = np.random.default_rng(0)
        ch = draw_screened_channels(3, rng, max_penalty_db=None)
        assert zf_penalty_db(ch) == pytest.approx(zf_penalty_db(ch * 7.0), abs=1e-9)

    def test_screening_bounds_penalty(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            ch = draw_screened_channels(4, rng, max_penalty_db=3.0)
            assert zf_penalty_db(ch) <= 3.5  # best-effort fallback allowed

    def test_unscreened_often_worse(self):
        rng = np.random.default_rng(2)
        screened = np.mean(
            [zf_penalty_db(draw_screened_channels(6, rng, 2.0)) for _ in range(10)]
        )
        raw = np.mean(
            [zf_penalty_db(draw_screened_channels(6, rng, None)) for _ in range(10)]
        )
        assert screened < raw
