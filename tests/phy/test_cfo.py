"""CFO estimation, correction and long-term tracking."""

import numpy as np
import pytest

from repro.phy.cfo import (
    CfoTracker,
    apply_cfo,
    combine_cfo,
    estimate_cfo_coarse,
    estimate_cfo_fine,
)
from repro.phy.preamble import long_training_sequence, short_training_sequence

FS = 10e6


class TestEstimators:
    @pytest.mark.parametrize("cfo", [-40e3, -5e3, 300.0, 12e3, 80e3])
    def test_coarse_estimate(self, cfo):
        sts = apply_cfo(short_training_sequence(), cfo, FS)
        assert estimate_cfo_coarse(sts, FS) == pytest.approx(cfo, abs=1.0)

    @pytest.mark.parametrize("cfo", [-30e3, -700.0, 4e3, 40e3])
    def test_fine_estimate(self, cfo):
        lts = apply_cfo(long_training_sequence(cp_length=0), cfo, FS)
        assert estimate_cfo_fine(lts, FS) == pytest.approx(cfo, abs=1.0)

    def test_fine_aliases_beyond_range(self):
        # fine range is +-fs/128 = +-78.125 kHz; 100 kHz wraps
        lts = apply_cfo(long_training_sequence(cp_length=0), 100e3, FS)
        est = estimate_cfo_fine(lts, FS)
        assert est != pytest.approx(100e3, abs=100.0)
        assert combine_cfo(100e3, est, FS) == pytest.approx(100e3, abs=1.0)

    def test_noise_robustness(self):
        rng = np.random.default_rng(0)
        cfo = 7.3e3
        sts = apply_cfo(short_training_sequence(), cfo, FS)
        noisy = sts + 0.05 * (
            rng.normal(size=sts.size) + 1j * rng.normal(size=sts.size)
        )
        assert estimate_cfo_coarse(noisy, FS) == pytest.approx(cfo, abs=300.0)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            estimate_cfo_coarse(np.zeros(10, dtype=complex), FS)
        with pytest.raises(ValueError):
            estimate_cfo_fine(np.zeros(100, dtype=complex), FS)


class TestApplyCfo:
    def test_inverse(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=256) + 1j * rng.normal(size=256)
        y = apply_cfo(apply_cfo(x, 5e3, FS), -5e3, FS)
        assert np.allclose(y, x)

    def test_start_time_continuity(self):
        """Chunked correction with start_time equals whole-stream correction."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=200) + 1j * rng.normal(size=200)
        whole = apply_cfo(x, 3e3, FS)
        chunked = np.concatenate([
            apply_cfo(x[:100], 3e3, FS, start_time=0.0),
            apply_cfo(x[100:], 3e3, FS, start_time=100 / FS),
        ])
        assert np.allclose(whole, chunked)

    def test_preserves_magnitude(self):
        x = np.ones(64, dtype=complex)
        assert np.allclose(np.abs(apply_cfo(x, 9e3, FS)), 1.0)


class TestCfoTracker:
    def test_first_update_sets_estimate(self):
        t = CfoTracker()
        assert t.estimate_hz is None
        t.update(1000.0)
        assert t.estimate_hz == 1000.0

    def test_converges_on_noisy_measurements(self):
        rng = np.random.default_rng(3)
        t = CfoTracker(alpha=0.1)
        for _ in range(300):
            t.update(500.0 + rng.normal(0, 100.0))
        assert t.estimate_hz == pytest.approx(500.0, abs=60.0)

    def test_weight_override(self):
        t = CfoTracker(alpha=0.1)
        t.update(0.0)
        t.update(1000.0, weight=1.0)
        assert t.estimate_hz == 1000.0

    def test_predicted_phase(self):
        t = CfoTracker()
        t.update(100.0)
        # 100 Hz for 5 ms = pi radians — the paper's §5.2b numeric example
        assert t.predicted_phase(5e-3) == pytest.approx(np.pi, rel=1e-9)

    def test_predicted_phase_before_update(self):
        assert CfoTracker().predicted_phase(1.0) == 0.0

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            CfoTracker(alpha=0.0)
        with pytest.raises(ValueError):
            CfoTracker(alpha=1.5)
