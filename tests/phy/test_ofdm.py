"""OFDM modulation, pilots and phase tracking."""

import numpy as np
import pytest

from repro.constants import (
    CP_LENGTH,
    DATA_SUBCARRIERS,
    FFT_SIZE,
    N_DATA_SUBCARRIERS,
    PILOT_SUBCARRIERS,
    SYMBOL_LENGTH,
)
from repro.phy.modulation import get_modulation
from repro.phy.ofdm import OfdmDemodulator, OfdmModulator, subcarrier_to_fft_index


@pytest.fixture
def mod():
    return OfdmModulator()


@pytest.fixture
def demod():
    return OfdmDemodulator()


def random_data_symbols(rng, n=1):
    qpsk = get_modulation("QPSK")
    bits = rng.integers(0, 2, n * N_DATA_SUBCARRIERS * 2).astype(np.uint8)
    return qpsk.modulate(bits).reshape(n, N_DATA_SUBCARRIERS)


class TestGrid:
    def test_subcarrier_mapping(self):
        assert subcarrier_to_fft_index(np.array([1]))[0] == 1
        assert subcarrier_to_fft_index(np.array([-1]))[0] == FFT_SIZE - 1
        assert subcarrier_to_fft_index(np.array([-26]))[0] == 38

    def test_numerology(self):
        assert N_DATA_SUBCARRIERS == 48
        assert len(PILOT_SUBCARRIERS) == 4
        assert set(PILOT_SUBCARRIERS.tolist()) & set(DATA_SUBCARRIERS.tolist()) == set()

    def test_dc_bin_is_empty(self, mod, rng=np.random.default_rng(0)):
        grid = mod.symbol_grid(random_data_symbols(rng)[0])
        assert grid[0] == 0

    def test_guard_bins_empty(self, mod):
        rng = np.random.default_rng(0)
        grid = mod.symbol_grid(random_data_symbols(rng)[0])
        for k in range(27, 38):  # bins for subcarriers 27..31 and -32..-27
            assert grid[k] == 0


class TestCyclicPrefix:
    def test_symbol_length(self, mod):
        rng = np.random.default_rng(1)
        out = mod.modulate_symbol(random_data_symbols(rng)[0])
        assert out.size == SYMBOL_LENGTH

    def test_prefix_copies_tail(self, mod):
        rng = np.random.default_rng(1)
        out = mod.modulate_symbol(random_data_symbols(rng)[0])
        assert np.allclose(out[:CP_LENGTH], out[-CP_LENGTH:])


class TestRoundtrip:
    def test_clean_channel(self, mod, demod):
        rng = np.random.default_rng(2)
        data = random_data_symbols(rng)[0]
        samples = mod.modulate_symbol(data, symbol_index=3)
        eq = demod.demodulate_symbol(samples, np.ones(FFT_SIZE), symbol_index=3)
        assert np.allclose(eq.data, data, atol=1e-9)
        assert eq.common_phase == pytest.approx(0.0, abs=1e-9)

    def test_flat_channel_equalized(self, mod, demod):
        rng = np.random.default_rng(3)
        data = random_data_symbols(rng)[0]
        h = 0.8 * np.exp(1j * 1.1)
        samples = mod.modulate_symbol(data) * h
        eq = demod.demodulate_symbol(samples, np.full(FFT_SIZE, h))
        assert np.allclose(eq.data, data, atol=1e-9)

    def test_pilot_polarity_mismatch_shows_up_as_phase(self, mod, demod):
        """Using the wrong symbol index rotates via the pilot polarity."""
        rng = np.random.default_rng(4)
        data = random_data_symbols(rng)[0]
        samples = mod.modulate_symbol(data, symbol_index=4)  # polarity -1
        eq_right = demod.demodulate_symbol(samples, np.ones(FFT_SIZE), symbol_index=4)
        assert np.allclose(eq_right.data, data, atol=1e-9)

    def test_common_phase_error_removed(self, mod, demod):
        rng = np.random.default_rng(5)
        data = random_data_symbols(rng)[0]
        phase = 0.4
        samples = mod.modulate_symbol(data) * np.exp(1j * phase)
        eq = demod.demodulate_symbol(samples, np.ones(FFT_SIZE))
        assert eq.common_phase == pytest.approx(phase, abs=1e-6)
        assert np.allclose(eq.data, data, atol=1e-9)

    def test_phase_tracking_can_be_disabled(self, mod, demod):
        rng = np.random.default_rng(6)
        data = random_data_symbols(rng)[0]
        samples = mod.modulate_symbol(data) * np.exp(1j * 0.4)
        eq = demod.demodulate_symbol(samples, np.ones(FFT_SIZE), track_phase=False)
        assert not np.allclose(eq.data, data, atol=1e-3)

    def test_frame_roundtrip(self, mod, demod):
        rng = np.random.default_rng(7)
        data = random_data_symbols(rng, n=5)
        frame = mod.modulate_frame(data)
        assert frame.size == 5 * SYMBOL_LENGTH
        for m in range(5):
            eq = demod.demodulate_symbol(
                frame[m * SYMBOL_LENGTH : (m + 1) * SYMBOL_LENGTH],
                np.ones(FFT_SIZE),
                symbol_index=m,
            )
            assert np.allclose(eq.data, data[m], atol=1e-9)


class TestPilotSnr:
    def test_high_snr_reported_clean(self, mod, demod):
        rng = np.random.default_rng(8)
        data = random_data_symbols(rng)[0]
        samples = mod.modulate_symbol(data)
        eq = demod.demodulate_symbol(samples, np.ones(FFT_SIZE))
        assert eq.pilot_snr > 1e6

    def test_noisy_symbol_lower_snr(self, mod, demod):
        rng = np.random.default_rng(9)
        data = random_data_symbols(rng)[0]
        samples = mod.modulate_symbol(data)
        noisy = samples + 0.1 * (
            rng.normal(size=samples.size) + 1j * rng.normal(size=samples.size)
        )
        eq = demod.demodulate_symbol(noisy, np.ones(FFT_SIZE))
        assert 1.0 < eq.pilot_snr < 1e4


class TestValidation:
    def test_wrong_sample_count(self, demod):
        with pytest.raises(ValueError):
            demod.demodulate_symbol(np.zeros(10), np.ones(FFT_SIZE))

    def test_wrong_data_count(self, mod):
        with pytest.raises(ValueError):
            mod.modulate_symbol(np.zeros(10))

    def test_wrong_channel_size(self, mod, demod):
        rng = np.random.default_rng(10)
        samples = mod.modulate_symbol(random_data_symbols(rng)[0])
        with pytest.raises(ValueError):
            demod.demodulate_symbol(samples, np.ones(32))
