"""Channel estimation from LTS symbols."""

import numpy as np
import pytest

from repro.constants import FFT_SIZE
from repro.phy.channel_est import (
    average_channel_estimates,
    channel_phase,
    channel_rotation,
    estimate_channel_lts,
    rotate_channel_to_reference,
)
from repro.phy.preamble import lts_grid


def lts_time():
    grid = lts_grid()
    return np.fft.ifft(grid) * np.sqrt(FFT_SIZE)


class TestLsEstimate:
    def test_identity_channel(self):
        est = estimate_channel_lts(lts_time())
        occupied = np.abs(lts_grid()) > 0
        assert np.allclose(est[occupied], 1.0, atol=1e-9)
        assert np.allclose(est[~occupied], 0.0)

    def test_flat_complex_channel(self):
        h = 0.5 * np.exp(1j * 0.7)
        est = estimate_channel_lts(h * lts_time())
        occupied = np.abs(lts_grid()) > 0
        assert np.allclose(est[occupied], h, atol=1e-9)

    def test_frequency_selective_channel(self):
        taps = np.array([1.0, 0.4 + 0.2j, 0.1j])
        rx = np.convolve(lts_time(), taps)[:FFT_SIZE]
        # circular convolution needs the wrapped tail added back
        tail = np.convolve(lts_time(), taps)[FFT_SIZE:]
        rx[: tail.size] += tail
        est = estimate_channel_lts(rx)
        truth = np.fft.fft(np.concatenate([taps, np.zeros(FFT_SIZE - 3)]))
        occupied = np.abs(lts_grid()) > 0
        assert np.allclose(est[occupied], truth[occupied], atol=1e-9)

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            estimate_channel_lts(np.zeros(32, dtype=complex))


class TestAveraging:
    def test_mean_of_estimates(self):
        a = np.full(FFT_SIZE, 1.0 + 0j)
        b = np.full(FFT_SIZE, 3.0 + 0j)
        assert np.allclose(average_channel_estimates([a, b]), 2.0)

    def test_reduces_noise(self):
        rng = np.random.default_rng(0)
        h = 2.0 * np.exp(1j * 0.3)
        estimates = []
        for _ in range(16):
            noisy = h * lts_time() + 0.2 * (
                rng.normal(size=FFT_SIZE) + 1j * rng.normal(size=FFT_SIZE)
            )
            estimates.append(estimate_channel_lts(noisy))
        avg = average_channel_estimates(estimates)
        occupied = np.abs(lts_grid()) > 0
        err_single = np.mean(np.abs(estimates[0][occupied] - h))
        err_avg = np.mean(np.abs(avg[occupied] - h))
        assert err_avg < err_single / 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_channel_estimates([])


class TestRotation:
    def test_rotate_to_reference_undoes_cfo(self):
        h = np.full(FFT_SIZE, 1.0 + 1j)
        cfo, elapsed = 3e3, 250e-6
        rotated = h * np.exp(2j * np.pi * cfo * elapsed)
        assert np.allclose(rotate_channel_to_reference(rotated, cfo, elapsed), h)

    def test_channel_rotation_recovers_phasor(self):
        rng = np.random.default_rng(1)
        ref = rng.normal(size=FFT_SIZE) + 1j * rng.normal(size=FFT_SIZE)
        phi = 0.9
        current = ref * np.exp(1j * phi)
        r = channel_rotation(ref, current)
        assert np.angle(r) == pytest.approx(phi)
        assert abs(r) == pytest.approx(1.0)

    def test_channel_rotation_is_noise_robust(self):
        rng = np.random.default_rng(2)
        ref = rng.normal(size=FFT_SIZE) + 1j * rng.normal(size=FFT_SIZE)
        current = ref * np.exp(1j * 0.5) + 0.05 * (
            rng.normal(size=FFT_SIZE) + 1j * rng.normal(size=FFT_SIZE)
        )
        assert np.angle(channel_rotation(ref, current)) == pytest.approx(0.5, abs=0.02)

    def test_degenerate_inputs_give_unity(self):
        assert channel_rotation(np.zeros(4), np.zeros(4)) == 1.0 + 0j

    def test_channel_phase_weighted(self):
        ch = np.zeros(FFT_SIZE, dtype=complex)
        ch[1] = 10.0 * np.exp(1j * 0.2)
        ch[2] = 0.01 * np.exp(-1j * 3.0)
        assert channel_phase(ch) == pytest.approx(0.2, abs=0.01)
