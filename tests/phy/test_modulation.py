"""Constellation mapping."""

import numpy as np
import pytest

from repro.phy.modulation import get_modulation

ALL_NAMES = ["BPSK", "QPSK", "16QAM", "64QAM"]


class TestConstellationProperties:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_unit_average_energy(self, name):
        mod = get_modulation(name)
        assert np.mean(np.abs(mod.points) ** 2) == pytest.approx(1.0)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_point_count(self, name):
        mod = get_modulation(name)
        assert len(mod.points) == 2**mod.bits_per_symbol

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_points_distinct(self, name):
        mod = get_modulation(name)
        assert len(set(np.round(mod.points, 9))) == len(mod.points)

    def test_bpsk_is_real(self):
        mod = get_modulation("BPSK")
        assert np.allclose(mod.points.imag, 0.0)

    def test_4qam_alias(self):
        assert get_modulation("4QAM").bits_per_symbol == 2

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_modulation("256QAM")

    @pytest.mark.parametrize("name", ["16QAM", "64QAM"])
    def test_gray_mapping_neighbours_differ_by_one_bit(self, name):
        """Nearest geometric neighbours differ in exactly one bit label."""
        mod = get_modulation(name)
        pts = mod.points
        d_min = mod.min_distance
        n = len(pts)
        for i in range(n):
            for j in range(i + 1, n):
                if abs(pts[i] - pts[j]) < d_min * 1.01:
                    assert bin(i ^ j).count("1") == 1


class TestRoundtrip:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_modulate_demodulate(self, name):
        mod = get_modulation(name)
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 600 * mod.bits_per_symbol).astype(np.uint8)
        symbols = mod.modulate(bits)
        assert np.array_equal(mod.demodulate_hard(symbols), bits)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_roundtrip_with_small_noise(self, name):
        mod = get_modulation(name)
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 120 * mod.bits_per_symbol).astype(np.uint8)
        symbols = mod.modulate(bits)
        noise = rng.normal(size=symbols.size) + 1j * rng.normal(size=symbols.size)
        noisy = symbols + 0.01 * noise
        assert np.array_equal(mod.demodulate_hard(noisy), bits)

    def test_modulate_rejects_ragged_input(self):
        mod = get_modulation("16QAM")
        with pytest.raises(ValueError):
            mod.modulate(np.zeros(7, dtype=np.uint8))


class TestSoftDemod:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_llr_sign_matches_hard_decision(self, name):
        mod = get_modulation(name)
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 90 * mod.bits_per_symbol).astype(np.uint8)
        symbols = mod.modulate(bits)
        llrs = mod.demodulate_soft(symbols, noise_var=0.1)
        # positive LLR means bit 0
        decided = (llrs < 0).astype(np.uint8)
        assert np.array_equal(decided, bits)

    def test_llr_magnitude_scales_inverse_noise(self):
        mod = get_modulation("QPSK")
        sym = mod.modulate(np.array([0, 0], dtype=np.uint8))
        quiet = mod.demodulate_soft(sym, noise_var=0.01)
        loud = mod.demodulate_soft(sym, noise_var=1.0)
        assert np.all(np.abs(quiet) > np.abs(loud))

    def test_ambiguous_symbol_gives_small_llr(self):
        mod = get_modulation("BPSK")
        llr_mid = mod.demodulate_soft(np.array([0.0 + 0j]), noise_var=1.0)
        llr_edge = mod.demodulate_soft(np.array([1.0 + 0j]), noise_var=1.0)
        assert abs(llr_mid[0]) < abs(llr_edge[0])
