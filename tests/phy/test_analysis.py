"""Waveform analysis and PHY sanity checks."""

import numpy as np
import pytest

from repro.phy.analysis import (
    analyze_waveform,
    evm_db,
    occupied_bandwidth_fraction,
    papr_db,
    power_spectrum,
)
from repro.phy.frame import FrameConfig, PhyFrameEncoder
from repro.phy.mcs import get_mcs
from repro.phy.preamble import short_training_sequence, sync_header


def ofdm_waveform(n_bytes=400, mcs_index=2):
    enc = PhyFrameEncoder(FrameConfig(sample_rate=10e6))
    return enc.encode_time_domain(bytes(range(256)) * (n_bytes // 256 + 1), get_mcs(mcs_index))


class TestPapr:
    def test_constant_envelope_is_zero(self):
        tone = np.exp(2j * np.pi * 0.1 * np.arange(1000))
        assert papr_db(tone) == pytest.approx(0.0, abs=1e-9)

    def test_ofdm_in_physical_range(self):
        """Real OFDM waveforms sit around 8-12 dB PAPR."""
        assert 6.0 < papr_db(ofdm_waveform()) < 14.0

    def test_sts_is_low_papr(self):
        """The STS is built from a sparse grid: low PAPR by design, which
        is why it's safe to send at full power for detection."""
        assert papr_db(short_training_sequence()) < papr_db(ofdm_waveform())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            papr_db(np.array([], dtype=complex))


class TestSpectrum:
    def test_tone_concentrates(self):
        tone = np.exp(2j * np.pi * (8 / 64) * np.arange(64 * 16))
        spec = power_spectrum(tone, n_fft=64)
        assert np.argmax(spec) != 32  # not at DC (fftshifted center)
        assert spec.max() / spec.sum() > 0.95

    def test_ofdm_occupies_52_of_64(self):
        frac = occupied_bandwidth_fraction(ofdm_waveform(), n_fft=64)
        assert frac == pytest.approx(52 / 64, abs=0.08)

    def test_sync_header_is_in_band(self):
        frac = occupied_bandwidth_fraction(sync_header(), n_fft=64)
        assert frac <= 54 / 64 + 0.05


class TestEvm:
    def test_identical_is_very_low(self):
        x = np.ones(100, dtype=complex)
        assert evm_db(x, x) < -200.0

    def test_known_error_level(self):
        ref = np.ones(10_000, dtype=complex)
        rng = np.random.default_rng(0)
        rx = ref + 0.1 * (rng.normal(size=ref.size) + 1j * rng.normal(size=ref.size)) / np.sqrt(2)
        assert evm_db(rx, ref) == pytest.approx(-20.0, abs=0.5)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            evm_db(np.ones(3), np.ones(4))


class TestReport:
    def test_summary(self):
        r = analyze_waveform(ofdm_waveform())
        assert "PAPR" in r.format_summary()
        assert r.n_samples > 0
        assert 0.5 < r.mean_power < 1.1  # ~52/64 with unit constellations
