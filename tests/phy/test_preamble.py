"""Training sequences and the MegaMIMO sync header."""

import numpy as np

from repro.constants import CP_LENGTH, FFT_SIZE
from repro.phy.preamble import (
    STS_PERIOD,
    SYNC_HEADER_LTS_REPEATS,
    long_training_sequence,
    lts_grid,
    lts_symbol_offsets,
    short_training_sequence,
    sync_header,
    sync_header_length,
)


class TestSts:
    def test_length(self):
        assert short_training_sequence().size == 10 * STS_PERIOD

    def test_periodicity(self):
        sts = short_training_sequence()
        assert np.allclose(sts[:STS_PERIOD], sts[STS_PERIOD : 2 * STS_PERIOD])

    def test_custom_repeats(self):
        assert short_training_sequence(repeats=4).size == 4 * STS_PERIOD

    def test_nonzero_power(self):
        sts = short_training_sequence()
        assert np.mean(np.abs(sts) ** 2) > 0.1


class TestLts:
    def test_grid_occupies_52_bins(self):
        assert int(np.sum(np.abs(lts_grid()) > 0)) == 52

    def test_grid_is_bpsk(self):
        grid = lts_grid()
        occupied = grid[np.abs(grid) > 0]
        assert np.allclose(np.abs(occupied), 1.0)
        assert np.allclose(occupied.imag, 0.0)

    def test_default_structure(self):
        lts = long_training_sequence()
        assert lts.size == 2 * CP_LENGTH + 2 * FFT_SIZE

    def test_guard_is_cyclic(self):
        lts = long_training_sequence()
        assert np.allclose(lts[: 2 * CP_LENGTH], lts[-2 * CP_LENGTH :])

    def test_copies_identical(self):
        lts = long_training_sequence()
        body = lts[2 * CP_LENGTH :]
        assert np.allclose(body[:FFT_SIZE], body[FFT_SIZE:])


class TestSyncHeader:
    def test_length_matches_helper(self):
        assert sync_header().size == sync_header_length()

    def test_offsets_point_at_identical_copies(self):
        hdr = sync_header()
        offsets = lts_symbol_offsets()
        copies = [hdr[o : o + FFT_SIZE] for o in offsets]
        assert np.allclose(copies[0], copies[1])

    def test_starts_with_sts(self):
        hdr = sync_header()
        assert np.allclose(hdr[:STS_PERIOD], hdr[STS_PERIOD : 2 * STS_PERIOD])

    def test_repeat_count_configurable(self):
        assert sync_header(lts_repeats=3).size == sync_header_length(3)
        assert sync_header_length(3) - sync_header_length(2) == FFT_SIZE

    def test_default_uses_couple_of_symbols(self):
        # "MegaMIMO precedes every data packet with a couple of symbols" (§1)
        assert SYNC_HEADER_LTS_REPEATS == 2
