"""MCS table."""

import pytest

from repro.phy.mcs import ALL_MCS, get_mcs, mcs_by_name


class TestTable:
    def test_eight_entries(self):
        assert len(ALL_MCS) == 8

    def test_indices_consistent(self):
        for i, mcs in enumerate(ALL_MCS):
            assert mcs.index == i
            assert get_mcs(i) is mcs

    def test_80211a_rates_at_20mhz(self):
        expected_mbps = [6, 9, 12, 18, 24, 36, 48, 54]
        for mcs, mbps in zip(ALL_MCS, expected_mbps):
            assert mcs.bitrate(20e6) == pytest.approx(mbps * 1e6)

    def test_usrp_rates_halved_at_10mhz(self):
        for mcs in ALL_MCS:
            assert mcs.bitrate(10e6) == pytest.approx(mcs.bitrate(20e6) / 2)

    def test_thresholds_monotonic(self):
        snrs = [m.min_snr_db for m in ALL_MCS]
        assert snrs == sorted(snrs)

    def test_rates_monotonic(self):
        rates = [m.bitrate(20e6) for m in ALL_MCS]
        assert rates == sorted(rates)

    def test_coded_bits_per_symbol(self):
        assert get_mcs(0).coded_bits_per_symbol == 48
        assert get_mcs(7).coded_bits_per_symbol == 288

    def test_data_bits_per_symbol(self):
        # 802.11-2012 Table 18-4 N_DBPS values
        expected = [24, 36, 48, 72, 96, 144, 192, 216]
        assert [m.data_bits_per_symbol for m in ALL_MCS] == expected

    def test_lookup_by_name(self):
        assert mcs_by_name("QPSK-3/4").index == 3

    def test_bad_lookups(self):
        with pytest.raises(IndexError):
            get_mcs(8)
        with pytest.raises(KeyError):
            mcs_by_name("128QAM-7/8")

    def test_modulation_attached(self):
        assert get_mcs(4).modulation.bits_per_symbol == 4
