"""Convolutional code, puncturing, interleaver, scrambler."""

import numpy as np
import pytest

from repro.phy.coding import (
    PUNCTURE_PATTERNS,
    BlockInterleaver,
    ConvolutionalCode,
    Puncturer,
    Scrambler,
)


@pytest.fixture(scope="module")
def code():
    return ConvolutionalCode()


class TestConvolutionalEncoder:
    def test_rate_half_with_tail(self, code):
        bits = np.zeros(100, dtype=np.uint8)
        assert code.encode(bits).size == 2 * (100 + code.n_tail_bits)

    def test_zero_input_gives_zero_output(self, code):
        assert not np.any(code.encode(np.zeros(50, dtype=np.uint8)))

    def test_impulse_response_weight_matches_generators(self, code):
        """A single 1 walks through both generators exactly once.

        The coded impulse response's g0 (even) positions must carry
        popcount(133o) = 5 ones and the g1 (odd) positions popcount(171o)
        = 5 ones, and the first pair is (1, 1) since both generators tap
        the input bit.
        """
        coded = code.encode(np.array([1], dtype=np.uint8))
        assert coded.size == 14
        assert coded[0] == 1 and coded[1] == 1
        assert int(coded[0::2].sum()) == bin(0o133).count("1")
        assert int(coded[1::2].sum()) == bin(0o171).count("1")

    def test_linearity(self, code):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, 64).astype(np.uint8)
        b = rng.integers(0, 2, 64).astype(np.uint8)
        assert np.array_equal(
            code.encode(a) ^ code.encode(b), code.encode(a ^ b)
        )


class TestViterbi:
    def test_clean_roundtrip(self, code):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 300).astype(np.uint8)
        assert np.array_equal(code.decode_hard(code.encode(bits), 300), bits)

    def test_corrects_scattered_bit_errors(self, code):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 200).astype(np.uint8)
        coded = code.encode(bits)
        corrupted = coded.copy()
        # flip well-separated coded bits (within free-distance correction)
        for pos in range(10, corrupted.size, 40):
            corrupted[pos] ^= 1
        assert np.array_equal(code.decode_hard(corrupted, 200), bits)

    def test_soft_beats_hard_at_same_noise(self, code):
        rng = np.random.default_rng(3)
        n_trials, n_bits = 20, 120
        soft_errors = hard_errors = 0
        for _ in range(n_trials):
            bits = rng.integers(0, 2, n_bits).astype(np.uint8)
            coded = code.encode(bits)
            tx = 1.0 - 2.0 * coded.astype(float)
            noisy = tx + rng.normal(0.0, 0.9, tx.size)
            soft = code.decode(noisy, n_bits)
            hard = code.decode_hard((noisy < 0).astype(np.uint8), n_bits)
            soft_errors += int(np.sum(soft != bits))
            hard_errors += int(np.sum(hard != bits))
        assert soft_errors < hard_errors

    def test_erasures_are_recoverable(self, code):
        rng = np.random.default_rng(4)
        bits = rng.integers(0, 2, 150).astype(np.uint8)
        coded = code.encode(bits)
        llrs = 1.0 - 2.0 * coded.astype(float)
        llrs[::3] = 0.0  # erase a third of positions
        assert np.array_equal(code.decode(llrs, 150), bits)

    def test_rejects_odd_length(self, code):
        with pytest.raises(ValueError):
            code.decode(np.zeros(5), 1)

    def test_empty_payload_edge(self, code):
        coded = code.encode(np.zeros(0, dtype=np.uint8))
        assert coded.size == 2 * code.n_tail_bits
        assert code.decode_hard(coded, 0).size == 0


class TestPuncturing:
    @pytest.mark.parametrize("rate", [(1, 2), (2, 3), (3, 4)])
    def test_roundtrip_through_decoder(self, code, rate):
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, 240).astype(np.uint8)
        coded = code.encode(bits)
        p = Puncturer(rate)
        tx = p.puncture(coded)
        rx = p.depuncture(1.0 - 2.0 * tx.astype(float), coded.size)
        assert np.array_equal(code.decode(rx, 240), bits)

    @pytest.mark.parametrize("rate,frac", [((1, 2), 1.0), ((2, 3), 0.75), ((3, 4), 2 / 3)])
    def test_transmitted_fraction(self, rate, frac):
        p = Puncturer(rate)
        n = 1200
        assert p.punctured_length(n) == pytest.approx(n * frac)

    def test_punctured_length_partial_period(self):
        p = Puncturer((3, 4))
        # pattern 110110: first 4 entries keep 3
        assert p.punctured_length(4) == 3

    def test_depuncture_validates_length(self):
        p = Puncturer((2, 3))
        with pytest.raises(ValueError):
            p.depuncture(np.zeros(5), 100)

    def test_unknown_rate(self):
        with pytest.raises(KeyError):
            Puncturer((5, 6))

    def test_patterns_match_rates(self):
        # kept/total of the mother stream is (1/2) / (num/den)
        for (num, den), pattern in PUNCTURE_PATTERNS.items():
            assert pattern.sum() / pattern.size == pytest.approx((den / num) / 2)


class TestInterleaver:
    @pytest.mark.parametrize("bits_per_sc", [1, 2, 4, 6])
    def test_roundtrip(self, bits_per_sc):
        n_cbps = 48 * bits_per_sc
        il = BlockInterleaver(n_cbps, bits_per_sc)
        rng = np.random.default_rng(6)
        data = rng.integers(0, 2, n_cbps * 4).astype(np.uint8)
        assert np.array_equal(il.deinterleave(il.interleave(data)), data)

    def test_is_permutation(self):
        il = BlockInterleaver(192, 4)
        data = np.arange(192)
        out = il.interleave(data)
        assert sorted(out.tolist()) == data.tolist()

    def test_adjacent_bits_spread_apart(self):
        """Adjacent coded bits land on non-adjacent subcarriers."""
        il = BlockInterleaver(48, 1)
        positions = np.empty(48, dtype=int)
        for k in range(48):
            block = np.zeros(48)
            block[k] = 1
            positions[k] = int(np.argmax(il.interleave(block)))
        gaps = np.abs(np.diff(positions))
        assert np.min(gaps) >= 2

    def test_rejects_partial_blocks(self):
        il = BlockInterleaver(96, 2)
        with pytest.raises(ValueError):
            il.interleave(np.zeros(95))

    def test_works_on_soft_values(self):
        il = BlockInterleaver(96, 2)
        rng = np.random.default_rng(7)
        soft = rng.normal(size=96)
        assert np.allclose(il.deinterleave(il.interleave(soft)), soft)


class TestScrambler:
    def test_roundtrip(self):
        s = Scrambler()
        rng = np.random.default_rng(8)
        bits = rng.integers(0, 2, 500).astype(np.uint8)
        assert np.array_equal(Scrambler().descramble(s.scramble(bits)), bits)

    def test_keystream_period_127(self):
        ks = Scrambler().keystream(254)
        assert np.array_equal(ks[:127], ks[127:])

    def test_keystream_is_balanced(self):
        ks = Scrambler().keystream(127)
        assert ks.sum() == 64  # 64 ones and 63 zeros per period (m-sequence)

    def test_different_seeds_differ(self):
        a = Scrambler(seed=0b1011101).keystream(64)
        b = Scrambler(seed=0b0000001).keystream(64)
        assert not np.array_equal(a, b)

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            Scrambler(seed=0)

    def test_breaks_long_runs(self):
        s = Scrambler()
        out = s.scramble(np.zeros(200, dtype=np.uint8))
        # scrambled all-zeros is the keystream itself: no run longer than 7
        runs, current = [], 1
        for i in range(1, out.size):
            if out[i] == out[i - 1]:
                current += 1
            else:
                runs.append(current)
                current = 1
        assert max(runs + [current]) <= 7
