"""Packet detection and timing recovery."""

import numpy as np
import pytest

from repro.constants import CP_LENGTH
from repro.phy.detection import detect_packet, ideal_lts_offset, sts_autocorrelation
from repro.phy.preamble import STS_PERIOD, sync_header


def noisy_capture(rng, packet_start=500, snr_db=20.0, total=3000):
    hdr = sync_header()
    sig = np.zeros(total, dtype=complex)
    sig[packet_start : packet_start + hdr.size] = hdr
    power = np.mean(np.abs(hdr) ** 2)
    sigma = np.sqrt(power / 10 ** (snr_db / 10) / 2)
    noise = sigma * (rng.normal(size=total) + 1j * rng.normal(size=total))
    return sig + noise


class TestAutocorrelation:
    def test_high_on_sts(self):
        rng = np.random.default_rng(0)
        capture = noisy_capture(rng)
        metric = sts_autocorrelation(capture)
        assert metric[500:560].max() > 0.9

    def test_low_on_noise(self):
        rng = np.random.default_rng(1)
        noise = rng.normal(size=2000) + 1j * rng.normal(size=2000)
        metric = sts_autocorrelation(noise)
        assert np.median(metric) < 0.5

    def test_short_input(self):
        assert sts_autocorrelation(np.zeros(8, dtype=complex)).size == 0


class TestDetectPacket:
    @pytest.mark.parametrize("start", [200, 500, 1100])
    def test_finds_lts_position(self, start):
        rng = np.random.default_rng(2)
        capture = noisy_capture(rng, packet_start=start)
        result = detect_packet(capture)
        assert result is not None
        expected = ideal_lts_offset(start)
        assert abs(result.lts_start - expected) <= 2

    def test_returns_none_on_pure_noise(self):
        rng = np.random.default_rng(3)
        noise = 0.5 * (rng.normal(size=2000) + 1j * rng.normal(size=2000))
        assert detect_packet(noise) is None

    def test_low_snr_still_detects(self):
        rng = np.random.default_rng(4)
        capture = noisy_capture(rng, snr_db=8.0)
        result = detect_packet(capture, threshold=0.6)
        assert result is not None
        assert abs(result.lts_start - ideal_lts_offset(500)) <= 3

    def test_search_start_skips_earlier_packet(self):
        rng = np.random.default_rng(5)
        hdr = sync_header()
        sig = np.zeros(5000, dtype=complex)
        sig[100 : 100 + hdr.size] = hdr
        sig[2500 : 2500 + hdr.size] = hdr
        sig += 0.02 * (rng.normal(size=5000) + 1j * rng.normal(size=5000))
        second = detect_packet(sig, search_start=1500)
        assert second is not None
        assert abs(second.lts_start - ideal_lts_offset(2500)) <= 2

    def test_ideal_offset_layout(self):
        # 10 STS repetitions + double-length LTS guard
        assert ideal_lts_offset(0) == 10 * STS_PERIOD + 2 * CP_LENGTH
