"""Monitor-mode packet sniffer."""

import numpy as np
import pytest

from repro.phy.link import PointToPointLink
from repro.phy.mcs import get_mcs
from repro.phy.sniffer import PacketSniffer

FS = 10e6


def capture_with_packets(payloads, snr_db=25.0, seed=0, gap=800):
    """A noisy capture containing the given frames back to back."""
    rng = np.random.default_rng(seed)
    from repro.channel.medium import Medium  # reuse the link's waveform builder

    link = PointToPointLink(Medium(FS, noise_power=0.0), mcs=get_mcs(2))
    chunks = [np.zeros(gap, dtype=complex)]
    for p in payloads:
        chunks.append(link.waveform(p))
        chunks.append(np.zeros(gap, dtype=complex))
    clean = np.concatenate(chunks)
    power = np.mean(np.abs(clean[np.abs(clean) > 0]) ** 2)
    sigma = np.sqrt(power / 10 ** (snr_db / 10) / 2)
    noise = sigma * (rng.normal(size=clean.size) + 1j * rng.normal(size=clean.size))
    return clean + noise


class TestSniffer:
    def test_single_packet(self):
        capture = capture_with_packets([b"hello monitor mode!"])
        packets = PacketSniffer(FS).sniff(capture)
        assert len(packets) == 1
        assert packets[0].decoded.crc_ok
        assert packets[0].decoded.payload == b"hello monitor mode!"

    def test_multiple_packets_in_order(self):
        payloads = [bytes([i]) * (20 + 5 * i) for i in range(4)]
        capture = capture_with_packets(payloads, seed=1)
        packets = PacketSniffer(FS).sniff(capture)
        assert len(packets) == 4
        assert [p.decoded.payload for p in packets] == payloads
        offsets = [p.sample_offset for p in packets]
        assert offsets == sorted(offsets)

    def test_cfo_reported(self):
        from repro.phy.cfo import apply_cfo

        capture = apply_cfo(capture_with_packets([bytes(40)], seed=2), 4e3, FS)
        packets = PacketSniffer(FS).sniff(capture)
        assert len(packets) == 1
        assert packets[0].cfo_hz == pytest.approx(4e3, abs=200.0)
        assert packets[0].decoded.crc_ok

    def test_pure_noise_finds_nothing(self):
        rng = np.random.default_rng(3)
        noise = rng.normal(size=8000) + 1j * rng.normal(size=8000)
        assert PacketSniffer(FS).sniff(noise) == []

    def test_truncated_final_packet_reported_not_crashed(self):
        capture = capture_with_packets([bytes(300)], seed=4)
        truncated = capture[: capture.size // 2]
        packets = PacketSniffer(FS).sniff(truncated)
        assert all(not p.decoded.crc_ok for p in packets)

    def test_max_packets_cap(self):
        payloads = [bytes(15)] * 5
        capture = capture_with_packets(payloads, seed=5)
        packets = PacketSniffer(FS).sniff(capture, max_packets=2)
        assert len(packets) == 2

    def test_sniffs_a_real_medium_capture(self):
        """Sniff what a bystander node hears while a link exchanges frames."""
        from repro.channel.medium import Medium
        from repro.channel.models import RicianChannel
        from repro.channel.oscillator import Oscillator, OscillatorConfig
        from repro.core.system import OFDM_SIGNAL_POWER
        from repro.utils.units import db_to_linear

        m = Medium(FS, noise_power=1.0, rng=6)
        for name, ppm in (("tx", 1.0), ("spy", -0.5)):
            m.register_node(
                name, Oscillator(OscillatorConfig(ppm_offset=ppm), rng=7)
            )
        gain = db_to_linear(25.0) / OFDM_SIGNAL_POWER
        m.set_link("tx", "spy", RicianChannel(k_factor=8.0).realize(gain, rng=8))

        link = PointToPointLink(m, mcs=get_mcs(2))
        sent = [b"first frame!" * 2, b"second frame!" * 2]
        t = 1e-3
        for p in sent:
            pkt = link.send("tx", p, t)
            t += pkt.n_samples / FS + 500 / FS

        capture = m.receive("spy", 0.5e-3, int((t + 1e-3) * FS - 0.5e-3 * FS))
        packets = PacketSniffer(FS).sniff(capture)
        got = [p.decoded.payload for p in packets if p.decoded.crc_ok]
        assert got == sent
