"""Point-to-point packet transport."""

import numpy as np
import pytest

from repro.channel.medium import Medium
from repro.channel.models import RicianChannel
from repro.channel.oscillator import Oscillator, OscillatorConfig
from repro.phy.link import PointToPointLink
from repro.phy.mcs import get_mcs


def build_medium(snr_db=25.0, noise=1.0, seed=0, ppm=(1.0, -1.5)):
    from repro.core.system import OFDM_SIGNAL_POWER
    from repro.utils.units import db_to_linear

    m = Medium(10e6, noise_power=noise, rng=seed)
    for name, p in zip(("tx", "rx"), ppm):
        m.register_node(
            name,
            Oscillator(OscillatorConfig(ppm_offset=p, phase_noise_rad2_per_s=0.25),
                       rng=seed),
        )
    gain = db_to_linear(snr_db) * noise / OFDM_SIGNAL_POWER
    m.set_link("tx", "rx", RicianChannel(k_factor=8.0).realize(gain, rng=seed))
    return m


class TestRoundtrip:
    def test_payload_delivered(self):
        m = build_medium()
        link = PointToPointLink(m)
        payload = b"control-plane feedback report" * 3
        decoded = link.exchange("tx", "rx", payload, start_time=1e-3)
        assert decoded.crc_ok
        assert decoded.payload == payload

    @pytest.mark.parametrize("mcs_index", [0, 2, 4])
    def test_various_rates(self, mcs_index):
        m = build_medium(snr_db=28.0, seed=2)
        link = PointToPointLink(m, mcs=get_mcs(mcs_index))
        decoded = link.exchange("tx", "rx", bytes(range(100)), start_time=1e-3)
        assert decoded.crc_ok

    def test_cfo_survives(self):
        """kHz-scale oscillator offsets are corrected by the preamble."""
        m = build_medium(seed=3, ppm=(2.0, -2.0))  # ~9.6 kHz relative
        link = PointToPointLink(m)
        decoded = link.exchange("tx", "rx", b"offset tolerant", start_time=1e-3)
        assert decoded.crc_ok

    def test_low_snr_fails_crc(self):
        m = build_medium(snr_db=-5.0, seed=4)
        link = PointToPointLink(m, mcs=get_mcs(4))
        decoded = link.exchange("tx", "rx", bytes(60), start_time=1e-3)
        assert not decoded.crc_ok

    def test_packet_length_helper(self):
        m = build_medium(seed=5)
        link = PointToPointLink(m)
        payload = bytes(77)
        packet = link.send("tx", payload, 1e-3)
        assert packet.n_samples == link.packet_samples(77)


class TestCsiSerialization:
    def test_roundtrip_exact_shape(self):
        from repro.core.feedback import deserialize_report, serialize_report

        rng = np.random.default_rng(0)
        ch = rng.normal(size=(52, 3)) + 1j * rng.normal(size=(52, 3))
        data = serialize_report(ch, noise_power=0.7, bits=8)
        recon, noise = deserialize_report(data)
        assert recon.shape == (52, 3)
        assert noise == pytest.approx(0.7, rel=1e-6)
        # 8-bit fixed point: ~2% worst-case error on a unit-scale report
        assert np.max(np.abs(recon - ch)) < 0.05 * np.max(np.abs(ch))

    def test_16_bit_is_tighter(self):
        from repro.core.feedback import deserialize_report, serialize_report

        rng = np.random.default_rng(1)
        ch = rng.normal(size=(52, 2)) + 1j * rng.normal(size=(52, 2))
        err8 = np.max(np.abs(deserialize_report(serialize_report(ch, 0.1, 8))[0] - ch))
        err16 = np.max(np.abs(deserialize_report(serialize_report(ch, 0.1, 16))[0] - ch))
        assert err16 < err8 / 100

    def test_malformed_rejected(self):
        from repro.core.feedback import deserialize_report

        with pytest.raises(ValueError):
            deserialize_report(b"notacsireport")
        with pytest.raises(ValueError):
            deserialize_report(bytes(5))

    def test_report_size_scales(self):
        from repro.core.feedback import serialize_report

        rng = np.random.default_rng(2)
        small = serialize_report(rng.normal(size=(52, 2)) + 0j, 0.1, 8)
        large = serialize_report(rng.normal(size=(52, 10)) + 0j, 0.1, 8)
        assert len(large) > 4 * len(small)


class TestInBandFeedback:
    def test_sounding_with_over_the_air_reports(self):
        from repro import MegaMimoSystem, SystemConfig, get_mcs

        config = SystemConfig(n_aps=2, n_clients=2, seed=4, in_band_feedback=True)
        system = MegaMimoSystem.create(
            config, client_snr_db=25.0, channel_model=RicianChannel(k_factor=7.0)
        )
        system.run_sounding(0.0)
        assert system.feedback_failures == 0
        payloads = [b"A" * 25, b"B" * 25]
        report = system.joint_transmit(payloads, get_mcs(2), start_time=3e-3)
        assert [r.decoded.payload for r in report.receptions] == payloads

    def test_quantized_feedback_close_to_ideal(self):
        from repro import MegaMimoSystem, SystemConfig

        tensors = {}
        for in_band in (False, True):
            config = SystemConfig(
                n_aps=2, n_clients=2, seed=8, in_band_feedback=in_band
            )
            system = MegaMimoSystem.create(
                config, client_snr_db=25.0, channel_model=RicianChannel(k_factor=7.0)
            )
            system.run_sounding(0.0)
            tensors[in_band] = system._channel_tensor
        scale = np.mean(np.abs(tensors[False]))
        err = np.mean(np.abs(tensors[True] - tensors[False]))
        assert err < 0.05 * scale  # 8-bit quantization only
