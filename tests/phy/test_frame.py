"""PLCP-style framing."""

import numpy as np
import pytest

from repro.phy.frame import (
    FrameConfig,
    PhyFrameDecoder,
    PhyFrameEncoder,
    bits_to_bytes,
    bytes_to_bits,
)
from repro.phy.mcs import ALL_MCS, get_mcs


@pytest.fixture(scope="module")
def codec():
    config = FrameConfig(sample_rate=10e6)
    return PhyFrameEncoder(config), PhyFrameDecoder(config)


class TestBitHelpers:
    def test_roundtrip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_lsb_first(self):
        bits = bytes_to_bits(b"\x01")
        assert bits[0] == 1 and not bits[1:].any()

    def test_partial_byte_dropped(self):
        assert bits_to_bytes(np.ones(10, dtype=np.uint8)) == b"\xff"


class TestSignalField:
    def test_roundtrip_all_mcs(self, codec):
        enc, dec = codec
        for mcs in ALL_MCS:
            symbol = enc.signal_field_symbols(mcs, 777)
            parsed = dec.decode_signal_field(symbol[0])
            assert parsed is not None
            got_mcs, got_len = parsed
            assert got_mcs.index == mcs.index
            assert got_len == 777

    def test_is_one_bpsk_symbol(self, codec):
        enc, _ = codec
        symbol = enc.signal_field_symbols(get_mcs(0), 100)
        assert symbol.shape == (1, 48)
        assert np.allclose(np.abs(symbol.real), 1.0)
        assert np.allclose(symbol.imag, 0.0)

    def test_garbage_symbol_rejected(self, codec):
        _, dec = codec
        # an all-zero symbol decodes to all-zero bits: RATE code 0000 is not
        # a valid 802.11 rate encoding, so the parse must fail
        assert dec.decode_signal_field(np.zeros(48, dtype=complex)) is None

    def test_zero_length_rejected(self, codec):
        enc, dec = codec
        # hand-build a SIGNAL symbol announcing length 0 by bypassing the
        # encoder's validation: shortest route is checking the encoder raises
        with pytest.raises(ValueError):
            enc.signal_field_symbols(get_mcs(3), 0)

    def test_length_bounds(self, codec):
        enc, _ = codec
        with pytest.raises(ValueError):
            enc.signal_field_symbols(get_mcs(0), 0)
        with pytest.raises(ValueError):
            enc.signal_field_symbols(get_mcs(0), 4096)


class TestPayloadRoundtrip:
    @pytest.mark.parametrize("mcs_index", range(8))
    def test_clean(self, codec, mcs_index):
        enc, dec = codec
        mcs = get_mcs(mcs_index)
        payload = bytes(range(120)) * 2
        frame = enc.encode(payload, mcs)
        out = dec.decode(frame, noise_var=0.01)
        assert out.crc_ok
        assert out.payload == payload
        assert out.mcs.index == mcs_index

    def test_noisy_channel_still_decodes(self, codec):
        enc, dec = codec
        rng = np.random.default_rng(0)
        payload = b"The quick brown fox jumps over the lazy dog" * 4
        frame = enc.encode(payload, get_mcs(2))
        sigma = 0.12  # ~18 dB SNR
        noisy = frame + sigma * (
            rng.normal(size=frame.shape) + 1j * rng.normal(size=frame.shape)
        ) / np.sqrt(2)
        out = dec.decode(noisy, noise_var=sigma**2)
        assert out.crc_ok and out.payload == payload

    def test_crc_catches_heavy_corruption(self, codec):
        enc, dec = codec
        rng = np.random.default_rng(1)
        payload = bytes(100)
        frame = enc.encode(payload, get_mcs(7))
        noisy = frame + 1.5 * (
            rng.normal(size=frame.shape) + 1j * rng.normal(size=frame.shape)
        )
        out = dec.decode(noisy, noise_var=2.0)
        # either the SIGNAL parse fails or the CRC rejects the payload
        assert not out.crc_ok
        assert out.payload is None

    def test_symbol_count_helper_matches(self, codec):
        enc, _ = codec
        for mcs in ALL_MCS:
            payload = bytes(333)
            frame = enc.encode(payload, mcs)
            assert frame.shape[0] == 1 + enc.n_payload_symbols(len(payload), mcs)

    def test_single_byte_payload(self, codec):
        enc, dec = codec
        out = dec.decode(enc.encode(b"x", get_mcs(0)), noise_var=0.01)
        assert out.crc_ok and out.payload == b"x"

    def test_evm_reported(self, codec):
        enc, dec = codec
        out = dec.decode(enc.encode(bytes(50), get_mcs(4)), noise_var=0.01)
        assert out.evm_db < -60  # clean channel

    def test_different_scrambler_seeds_fail_cross_decode(self):
        enc = PhyFrameEncoder(FrameConfig(sample_rate=10e6, scrambler_seed=0b1011101))
        dec = PhyFrameDecoder(FrameConfig(sample_rate=10e6, scrambler_seed=0b0000001))
        out = dec.decode(enc.encode(bytes(64), get_mcs(1)), noise_var=0.01)
        assert not out.crc_ok

    def test_too_few_symbols_rejected(self, codec):
        _, dec = codec
        with pytest.raises(ValueError):
            dec.decode_payload(np.zeros((1, 48), dtype=complex), get_mcs(0), 1000)
