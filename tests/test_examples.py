"""Smoke tests: the example scripts must run end to end.

Keeps the documentation honest — an API change that breaks an example
breaks the build, not a future reader's first experience.
(The slower sweep examples are exercised at reduced scale.)
"""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, argv=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "delivered concurrently" in out

    def test_compat_80211n(self, capsys):
        run_example("compat_80211n.py")
        out = capsys.readouterr().out
        assert "stitching phase error" in out
        assert "signal-to-leakage" in out

    def test_phase_sync_deep_dive(self, capsys):
        run_example("phase_sync_deep_dive.py")
        out = capsys.readouterr().out
        assert "re-measuring beats predicting" in out
        assert "shared clock reference" in out

    def test_monitor_mode(self, capsys):
        run_example("monitor_mode.py")
        out = capsys.readouterr().out
        assert "The spy detected" in out

    def test_conference_room_small(self, capsys):
        run_example("conference_room.py", argv=["3"])  # 2..3 APs only
        out = capsys.readouterr().out
        assert "MegaMIMO(Mbps)" in out

    def test_dead_spot_diversity(self, capsys):
        run_example("dead_spot_diversity.py")
        out = capsys.readouterr().out
        assert "rescued from the dead spot" in out

    def test_link_layer_sim(self, capsys):
        run_example("link_layer_sim.py")
        out = capsys.readouterr().out
        assert "Goodput vs. offered load" in out
        assert "adaptive" in out
