"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import timeseries


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_range(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "5"])
        args = build_parser().parse_args(["figure", "6"])
        assert args.number == 6

    def test_ablation_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "nonsense"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.n_aps == 4 and args.arrival_rate is None


class TestCommands:
    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "client0: ok" in out

    def test_figure6(self, capsys):
        assert main(["figure", "6", "--scale", "0.2"]) == 0
        assert "misalignment" in capsys.readouterr().out

    def test_figure7_small(self, capsys):
        assert main(["figure", "7", "--scale", "0.2"]) == 0
        assert "median" in capsys.readouterr().out

    def test_figure11_small(self, capsys):
        assert main(["figure", "11", "--scale", "0.2"]) == 0
        assert "AP(Mbps)" in capsys.readouterr().out

    def test_figure12_small(self, capsys):
        assert main(["figure", "12", "--scale", "0.2"]) == 0
        assert "gain" in capsys.readouterr().out

    def test_ablation_cfo(self, capsys):
        assert main(["ablation", "cfo"]) == 0
        assert "alpha" in capsys.readouterr().out

    def test_ablation_sounding(self, capsys):
        assert main(["ablation", "sounding"]) == 0
        assert "interleaved" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--n-aps", "2",
                    "--n-clients", "2",
                    "--duration", "0.05",
                    "--seed", "3",
                ]
            )
            == 0
        )
        assert "goodput" in capsys.readouterr().out


@pytest.fixture
def clean_store():
    """Empty the process-global time-series store around a live-serve test.

    CLI runs publish into module-global rings with wall-clock timestamps;
    without this, one test's injected sync fault would trip the §7.3
    budget rules of every later test in the same process.
    """
    timeseries.reset()
    yield timeseries.get_store()
    timeseries.reset()


class TestLiveTelemetry:
    def _probe_on_stop(self, monkeypatch, probes: dict):
        """Sample the endpoints at the moment the CLI stops its server.

        ``--serve-port`` runs stop the server right after dispatch, while
        the process is still inside ``main``; hooking stop() observes the
        endpoint exactly as a live scraper would during the run.
        """
        from repro.obs.serve import TelemetryServer, fetch_json

        orig_stop = TelemetryServer.stop

        def probing_stop(self):
            if self.running and not probes:
                import urllib.request

                with urllib.request.urlopen(self.url + "/metrics",
                                            timeout=2.0) as resp:
                    probes["metrics"] = resp.read().decode()
                    probes["content_type"] = resp.headers["Content-Type"]
                probes["timeseries"] = fetch_json(self.url + "/timeseries")
                probes["alerts"] = fetch_json(self.url + "/alerts")
            orig_stop(self)

        monkeypatch.setattr(TelemetryServer, "stop", probing_stop)

    def test_serve_port_exposes_live_endpoints_during_a_run(
        self, clean_store, capsys, monkeypatch
    ):
        from repro.obs.export import validate_openmetrics

        probes: dict = {}
        self._probe_on_stop(monkeypatch, probes)
        assert main(["figure", "6", "--scale", "0.2",
                     "--serve-port", "0"]) == 0
        assert "serving live telemetry on http://127.0.0.1:" in (
            capsys.readouterr().err
        )
        assert validate_openmetrics(probes["metrics"]) == []
        assert probes["content_type"].startswith("application/openmetrics-text")
        # the sweep's progress publications reached the live store
        assert "runtime.done_trials" in probes["timeseries"]["series"]
        assert probes["alerts"]["firing"] == []

    def test_injected_sync_fault_fails_the_run_and_lands_in_the_ledger(
        self, clean_store, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PHASE_SIGMA_SCALE", "40")
        code = main([
            "simulate", "--n-aps", "2", "--n-clients", "2",
            "--duration", "0.05", "--seed", "3",
            "--serve-port", "0", "--fail-on-alert",
        ])
        assert code == 3  # EXIT_ALERT: distinct from regress's 1/2
        # the firing made it into the run ledger as a structured alarm
        ledger = tmp_path / "runs" / "ledger.jsonl"
        record = json.loads(ledger.read_text().splitlines()[-1])
        assert record["status"] == "alert"
        # both vocabularies land side by side: the exit-time sync-health
        # alarms (kind-only) and the live alert-engine firings (rule-keyed)
        rules = {a.get("rule") for a in record["alarms"]}
        assert "mac.phase_error_p95" in rules
        (p95,) = [a for a in record["alarms"]
                  if a.get("rule") == "mac.phase_error_p95"]
        assert p95["kind"] == "alert_budget"
        assert p95["severity"] == "critical"
        assert p95["value"] > p95["threshold"]

    def test_same_fault_without_fail_on_alert_still_exits_zero(
        self, clean_store, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PHASE_SIGMA_SCALE", "40")
        assert main([
            "simulate", "--n-aps", "2", "--n-clients", "2",
            "--duration", "0.05", "--seed", "3", "--serve-port", "0",
        ]) == 0

    def test_obs_serve_runs_for_duration_and_announces(self, capsys):
        assert main(["obs", "serve", "--port", "0", "--duration",
                     "0.05"]) == 0
        err = capsys.readouterr().err
        assert "serving live telemetry on http://127.0.0.1:" in err

    def test_obs_watch_once_against_a_live_server(self, clean_store, capsys):
        from repro.obs.serve import TelemetryServer

        clean_store.record("sim.err", 0.01)
        server = TelemetryServer(port=0, store=clean_store).start()
        try:
            assert main(["obs", "watch", server.url, "--once"]) == 0
        finally:
            server.stop()
        assert "sim.err" in capsys.readouterr().out

    def test_obs_watch_fail_on_alert_exit_code(self, clean_store, capsys):
        from repro.obs.alerts import AlertEngine, AlertRule
        from repro.obs.serve import TelemetryServer

        engine = AlertEngine([AlertRule(
            name="test.err_budget", series="sim.err", threshold=0.05,
        )])
        clean_store.record("sim.err", 0.2)
        server = TelemetryServer(port=0, store=clean_store,
                                 engine=engine).start()
        server.evaluate_once()
        try:
            assert main(["obs", "watch", server.url, "--once",
                         "--fail-on-alert"]) == 3
        finally:
            server.stop()

    def test_obs_watch_unreachable_exits_one(self, capsys):
        assert main(["obs", "watch", "http://127.0.0.1:9", "--once"]) == 1

    def test_obs_watch_events_streams_sse_lines(self, clean_store, capsys):
        from repro.obs.serve import TelemetryServer

        server = TelemetryServer(port=0, store=clean_store).start()
        try:
            assert main(["obs", "watch", server.url, "--events",
                         "--max-events", "1"]) == 0
        finally:
            server.stop()
        out = capsys.readouterr().out
        assert json.loads(out.splitlines()[0])["event"] == "hello"

    def test_obs_watch_events_no_reconnect_exits_one(self, capsys):
        assert main(["obs", "watch", "http://127.0.0.1:9", "--events",
                     "--no-reconnect"]) == 1


class TestBlackboxParser:
    def test_show_defaults_to_latest(self):
        args = build_parser().parse_args(["obs", "blackbox", "show"])
        assert args.bundle == "latest"
        assert args.records == 10 and args.as_json is False

    def test_list_and_show_parse(self):
        args = build_parser().parse_args(["obs", "blackbox", "list"])
        assert args.blackbox_command == "list"
        args = build_parser().parse_args(
            ["obs", "blackbox", "show", "abc", "--records", "3", "--json"])
        assert (args.bundle, args.records, args.as_json) == ("abc", 3, True)

    def test_watch_events_flags(self):
        args = build_parser().parse_args(
            ["obs", "watch", "u", "--events", "--no-reconnect",
             "--max-retries", "2", "--max-events", "5"])
        assert args.events and args.no_reconnect
        assert args.max_retries == 2 and args.max_events == 5
