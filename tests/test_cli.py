"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_range(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "5"])
        args = build_parser().parse_args(["figure", "6"])
        assert args.number == 6

    def test_ablation_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "nonsense"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.n_aps == 4 and args.arrival_rate is None


class TestCommands:
    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "client0: ok" in out

    def test_figure6(self, capsys):
        assert main(["figure", "6", "--scale", "0.2"]) == 0
        assert "misalignment" in capsys.readouterr().out

    def test_figure7_small(self, capsys):
        assert main(["figure", "7", "--scale", "0.2"]) == 0
        assert "median" in capsys.readouterr().out

    def test_figure11_small(self, capsys):
        assert main(["figure", "11", "--scale", "0.2"]) == 0
        assert "AP(Mbps)" in capsys.readouterr().out

    def test_figure12_small(self, capsys):
        assert main(["figure", "12", "--scale", "0.2"]) == 0
        assert "gain" in capsys.readouterr().out

    def test_ablation_cfo(self, capsys):
        assert main(["ablation", "cfo"]) == 0
        assert "alpha" in capsys.readouterr().out

    def test_ablation_sounding(self, capsys):
        assert main(["ablation", "sounding"]) == 0
        assert "interleaved" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--n-aps", "2",
                    "--n-clients", "2",
                    "--duration", "0.05",
                    "--seed", "3",
                ]
            )
            == 0
        )
        assert "goodput" in capsys.readouterr().out
