"""Wired backend model."""

import pytest

from repro.mac.backhaul import BackhaulConfig, EthernetBackhaul


@pytest.fixture
def net():
    return EthernetBackhaul(
        ["ap0", "ap1", "ap2"], BackhaulConfig(bandwidth_bps=1e9, latency_s=50e-6)
    )


class TestBroadcast:
    def test_reaches_all_nodes(self, net):
        net.broadcast(0.0, "pkt", size_bytes=1500)
        deliveries = net.deliveries_until(1.0)
        assert {d[1] for d in deliveries} == {"ap0", "ap1", "ap2"}
        assert all(d[2] == "pkt" for d in deliveries)

    def test_exclude_source(self, net):
        net.broadcast(0.0, "pkt", size_bytes=100, exclude="ap0")
        assert {d[1] for d in net.deliveries_until(1.0)} == {"ap1", "ap2"}

    def test_arrival_time_includes_serialization_and_latency(self, net):
        arrival = net.broadcast(0.0, "pkt", size_bytes=1500)
        assert arrival == pytest.approx(1500 * 8 / 1e9 + 50e-6)

    def test_gige_distribution_is_fast(self, net):
        """A 1500-byte packet reaches every AP in ~62 us — far below packet
        airtime, which is why the paper can treat the wire as free."""
        assert net.distribution_delay_s(1500) < 100e-6


class TestSerialization:
    def test_back_to_back_messages_queue_on_the_link(self, net):
        first = net.broadcast(0.0, "a", size_bytes=125_000)  # 1 ms at 1 Gbps
        second = net.broadcast(0.0, "b", size_bytes=125_000)
        assert second == pytest.approx(first + 1e-3)

    def test_bytes_accounted(self, net):
        net.broadcast(0.0, "a", 100)
        net.unicast(0.0, "ap1", "b", 50)
        assert net.bytes_carried == 150


class TestDelivery:
    def test_nothing_before_arrival(self, net):
        net.unicast(0.0, "ap1", "ctrl", 100)
        assert net.deliveries_until(1e-6) == []
        assert net.pending() == 1

    def test_unicast_single_destination(self, net):
        net.unicast(0.0, "ap2", "ctrl", 100)
        deliveries = net.deliveries_until(1.0)
        assert len(deliveries) == 1
        assert deliveries[0][1] == "ap2"

    def test_unknown_destination_rejected(self, net):
        with pytest.raises(ValueError):
            net.unicast(0.0, "ghost", "x", 10)

    def test_ordered_drain(self, net):
        net.unicast(0.0, "ap1", "first", 10)
        net.unicast(1e-3, "ap1", "second", 10)
        deliveries = net.deliveries_until(1.0)
        assert [d[2] for d in deliveries] == ["first", "second"]
