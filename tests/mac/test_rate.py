"""Effective-SNR rate selection [13]."""

import numpy as np
import pytest

from repro.constants import MAC_EFFICIENCY
from repro.mac.rate import (
    EffectiveSnrRateSelector,
    ber_for_modulation,
    effective_snr_db,
    select_mcs_for_snr,
    snr_for_ber,
)
from repro.phy.mcs import ALL_MCS


class TestBerFormulas:
    @pytest.mark.parametrize("bits", [1, 2, 4, 6])
    def test_ber_decreases_with_snr(self, bits):
        snrs = 10 ** (np.array([0.0, 5.0, 10.0, 15.0, 20.0]) / 10)
        bers = ber_for_modulation(snrs, bits)
        assert np.all(np.diff(bers) < 0)

    @pytest.mark.parametrize("bits", [1, 2, 4, 6])
    def test_inverse_roundtrip(self, bits):
        for snr_db in (3.0, 10.0, 18.0):
            snr = 10 ** (snr_db / 10)
            ber = ber_for_modulation(snr, bits)
            assert snr_for_ber(ber, bits) == pytest.approx(snr, rel=1e-6)

    def test_higher_order_worse_at_same_snr(self):
        snr = 10 ** (12.0 / 10)
        bers = [float(ber_for_modulation(snr, b)) for b in (1, 2, 4, 6)]
        assert bers == sorted(bers)

    def test_bpsk_known_value(self):
        # BER of BPSK at 0 dB: Q(sqrt(2)) ~ 0.0786
        assert float(ber_for_modulation(1.0, 1)) == pytest.approx(0.0786, abs=1e-3)


class TestEffectiveSnr:
    def test_flat_channel_identity(self):
        assert effective_snr_db(np.full(48, 15.0), 2) == pytest.approx(15.0, abs=0.01)

    def test_selective_channel_below_mean(self):
        """Effective SNR of a frequency-selective channel is dominated by
        the weak subcarriers — below the arithmetic dB mean."""
        snrs = np.concatenate([np.full(24, 25.0), np.full(24, 5.0)])
        eff = effective_snr_db(snrs, 4)
        assert eff < np.mean(snrs)

    def test_single_deep_fade_limited_impact(self):
        snrs = np.full(48, 20.0)
        snrs[0] = -5.0
        eff = effective_snr_db(snrs, 2)
        assert 8.0 < eff < 20.0


class TestThresholdSelection:
    def test_below_all_thresholds(self):
        assert select_mcs_for_snr(1.0) is None

    def test_top_rate_at_high_snr(self):
        assert select_mcs_for_snr(30.0).index == 7

    def test_each_threshold_selects_its_mcs(self):
        for mcs in ALL_MCS:
            got = select_mcs_for_snr(mcs.min_snr_db + 0.01)
            assert got.index >= mcs.index


class TestSelector:
    def test_goodput_includes_mac_efficiency(self):
        sel = EffectiveSnrRateSelector(10e6, mac_efficiency=MAC_EFFICIENCY)
        flat = np.full(48, 30.0)
        assert sel.goodput(flat) == pytest.approx(27e6 * MAC_EFFICIENCY)

    def test_high_snr_hits_paper_baseline(self):
        """802.11 at high SNR ~ 23.6 Mbps on the 10 MHz USRP channel (§11.2)."""
        sel = EffectiveSnrRateSelector(10e6, mac_efficiency=MAC_EFFICIENCY)
        assert sel.goodput(np.full(48, 25.0)) == pytest.approx(23.6e6, rel=0.01)

    def test_zero_below_threshold(self):
        sel = EffectiveSnrRateSelector(10e6)
        decision = sel.select(np.full(48, -3.0))
        assert decision.mcs is None and decision.bitrate == 0.0

    def test_rate_monotonic_in_snr(self):
        sel = EffectiveSnrRateSelector(20e6)
        rates = [sel.select(np.full(48, s)).bitrate for s in range(0, 30, 2)]
        assert rates == sorted(rates)

    def test_selective_channel_drops_rate(self):
        sel = EffectiveSnrRateSelector(20e6)
        flat = sel.select(np.full(48, 16.0)).bitrate
        selective = np.full(48, 16.0)
        selective[::3] = 4.0
        assert sel.select(selective).bitrate < flat

    def test_scalar_input(self):
        sel = EffectiveSnrRateSelector(20e6)
        assert sel.select(25.0).mcs is not None

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            EffectiveSnrRateSelector(0.0)
