"""Weighted contention (§9, [29])."""

import pytest

from repro.mac.csma import CsmaSimulator, Station


class TestStation:
    def test_weighted_window_shrinks(self):
        assert Station("lead", weight=4, base_window=32).window == 8

    def test_window_floor(self):
        assert Station("x", weight=100, base_window=32).window == 2

    def test_unit_weight(self):
        assert Station("x", weight=1, base_window=32).window == 32


class TestContention:
    def test_equal_stations_fair_shares(self):
        stations = [Station(f"s{i}") for i in range(4)]
        outcome = CsmaSimulator(stations, rng=0).run(20_000)
        for s in stations:
            assert outcome.share(s.name) == pytest.approx(0.25, abs=0.03)

    def test_weighted_lead_wins_proportionally(self):
        """A lead contending for an n-packet joint transmission should win
        ~n times as often as a single-packet station."""
        stations = [Station("lead", weight=4), Station("legacy", weight=1)]
        outcome = CsmaSimulator(stations, rng=1).run(30_000)
        ratio = outcome.share("lead") / outcome.share("legacy")
        assert 2.5 < ratio < 6.5

    def test_single_station_always_wins(self):
        outcome = CsmaSimulator([Station("only")], rng=2).run(1000)
        assert outcome.wins["only"] + outcome.collisions == 1000

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            CsmaSimulator([Station("a"), Station("a")])


class TestHiddenTerminals:
    def test_hidden_pair_causes_losses(self):
        sim = CsmaSimulator([Station("a"), Station("b"), Station("c")], rng=3)
        sim.set_hidden("a", "b")
        outcome = sim.run(10_000)
        assert sim.loss_counts["a"] + sim.loss_counts["b"] > 0
        assert outcome.collisions > 0

    def test_no_hidden_no_hidden_losses(self):
        sim = CsmaSimulator([Station("a"), Station("b")], rng=4)
        sim.run(5_000)
        assert sim.loss_counts["a"] == 0 and sim.loss_counts["b"] == 0

    def test_blacklisting_persistent_offender(self):
        """§9: APs that trigger hidden-terminal loss above a threshold are
        removed from the joint transmission ([34]-style detection)."""
        sim = CsmaSimulator([Station("a"), Station("b")], rng=5)
        sim.set_hidden("a", "b")
        sim.run(20_000, loss_threshold=50)
        assert sim.blacklisted  # someone got excluded
        # after exclusion the survivor transmits cleanly
        survivors = [s.name for s in sim.active_stations()]
        outcome = sim.run(2_000)
        assert sum(outcome.wins[s] for s in survivors) > 0

    def test_manual_blacklist(self):
        sim = CsmaSimulator([Station("a"), Station("b")], rng=6)
        sim.blacklist("a")
        outcome = sim.run(1000)
        assert outcome.wins["a"] == 0
