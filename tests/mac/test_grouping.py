"""Grouping heuristics (§9 future work)."""

import numpy as np
import pytest

from repro.constants import MAC_EFFICIENCY, SAMPLE_RATE_USRP
from repro.mac.grouping import GreedyFifoGrouping, ThroughputAwareGrouping
from repro.mac.queue import DownlinkQueue
from repro.mac.rate import EffectiveSnrRateSelector
from repro.mac.scheduler import JointScheduler
from repro.sim.fastsim import build_channel_tensor


@pytest.fixture
def selector():
    return EffectiveSnrRateSelector(SAMPLE_RATE_USRP, mac_efficiency=MAC_EFFICIENCY)


def make_queue_with(clients, n_aps=4):
    rng = np.random.default_rng(0)
    n_clients = max(clients) + 1
    q = DownlinkQueue(rng.uniform(15, 25, (n_clients, n_aps)))
    return q, [q.enqueue(c) for c in clients]


class TestGreedyFifo:
    def test_matches_default_scheduler(self):
        q1, _ = make_queue_with([0, 1, 1, 2])
        q2, _ = make_queue_with([0, 1, 1, 2])
        default = JointScheduler(q1, max_streams=4).next_group()
        explicit = JointScheduler(
            q2, max_streams=4, grouping=GreedyFifoGrouping()
        ).next_group()
        assert default.clients == explicit.clients


class TestThroughputAware:
    def test_excludes_collinear_client(self, selector):
        """A client whose channel is nearly collinear with another ruins the
        ZF scalar k for everyone; throughput-aware grouping drops it."""
        rng = np.random.default_rng(1)
        channels = build_channel_tensor(np.full((3, 3), 22.0), rng)
        channels[:, 2, :] = channels[:, 0, :] * 1.01  # client 2 ~ client 0
        grouping = ThroughputAwareGrouping(channels, selector)

        q, packets = make_queue_with([0, 1, 2], n_aps=3)
        group = JointScheduler(q, max_streams=3, grouping=grouping).next_group()
        assert 2 not in group.clients
        assert group.clients[0] == 0  # head always included

    def test_admits_orthogonal_clients(self, selector):
        rng = np.random.default_rng(2)
        # near-orthogonal channels: identity-dominated
        channels = np.tile(
            (np.eye(3) * 12.0 + 0.5)[None, :, :].astype(complex), (8, 1, 1)
        )
        grouping = ThroughputAwareGrouping(channels, selector)
        q, _ = make_queue_with([0, 1, 2], n_aps=3)
        group = JointScheduler(q, max_streams=3, grouping=grouping).next_group()
        assert sorted(group.clients) == [0, 1, 2]

    def test_sum_rate_scoring(self, selector):
        rng = np.random.default_rng(3)
        channels = build_channel_tensor(np.full((2, 2), 25.0), rng)
        grouping = ThroughputAwareGrouping(channels, selector)
        single = grouping.group_sum_rate([0])
        assert single > 0
        assert grouping.group_sum_rate([0, 1]) != single

    def test_over_budget_clients_zero(self, selector):
        rng = np.random.default_rng(4)
        channels = build_channel_tensor(np.full((2, 2), 25.0), rng)
        grouping = ThroughputAwareGrouping(channels, selector)
        assert grouping.group_sum_rate([0, 1, 1]) == 0.0

    def test_beats_fifo_on_adversarial_queue(self, selector):
        """Across adversarial topologies (one collinear pair), the
        throughput-aware rule achieves at least the FIFO rule's sum rate."""
        rng = np.random.default_rng(5)
        wins = 0
        for trial in range(10):
            channels = build_channel_tensor(np.full((4, 4), 20.0), rng)
            channels[:, 3, :] = channels[:, 1, :] * (1.0 + 0.02j)
            grouping = ThroughputAwareGrouping(channels, selector)
            fifo_rate = grouping.group_sum_rate([0, 1, 2, 3])
            q, _ = make_queue_with([0, 1, 2, 3], n_aps=4)
            group = JointScheduler(q, max_streams=4, grouping=grouping).next_group()
            smart_rate = grouping.group_sum_rate(group.clients)
            assert smart_rate >= fifo_rate - 1e-9
            if smart_rate > fifo_rate:
                wins += 1
        assert wins >= 7
