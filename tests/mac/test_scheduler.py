"""Joint-transmission scheduling (§9)."""

import numpy as np
import pytest

from repro.mac.queue import DownlinkQueue
from repro.mac.scheduler import JointScheduler


def make_queue(n_clients=4, n_aps=4, seed=0):
    rng = np.random.default_rng(seed)
    return DownlinkQueue(rng.uniform(5, 25, (n_clients, n_aps)))


class TestGrouping:
    def test_head_elects_lead(self):
        q = make_queue()
        head = q.enqueue(2)
        q.enqueue(0)
        group = JointScheduler(q, max_streams=4).next_group()
        assert group.lead_ap == head.designated_ap
        assert head in group.packets

    def test_one_packet_per_client(self):
        q = make_queue()
        q.enqueue(0)
        q.enqueue(0)  # duplicate client
        q.enqueue(1)
        group = JointScheduler(q, max_streams=4).next_group()
        assert sorted(group.clients) == [0, 1]

    def test_stream_budget_respected(self):
        q = make_queue()
        for c in range(4):
            q.enqueue(c)
        group = JointScheduler(q, max_streams=2).next_group()
        assert group.n_streams == 2

    def test_fifo_order_preferred(self):
        q = make_queue()
        q.enqueue(3)
        q.enqueue(1)
        q.enqueue(2)
        group = JointScheduler(q, max_streams=2).next_group()
        assert group.clients == [3, 1]

    def test_selected_packets_leave_queue(self):
        q = make_queue()
        q.enqueue(0)
        q.enqueue(1)
        JointScheduler(q, max_streams=4).next_group()
        assert len(q) == 0

    def test_empty_queue_gives_none(self):
        q = make_queue()
        assert JointScheduler(q, max_streams=4).next_group() is None

    def test_leftover_duplicate_stays_queued(self):
        q = make_queue()
        q.enqueue(0)
        dup = q.enqueue(0)
        JointScheduler(q, max_streams=4).next_group()
        assert q.head() is dup


class TestCustomGrouping:
    def test_custom_heuristic_used(self):
        q = make_queue()
        head = q.enqueue(0)
        other = q.enqueue(1)

        def singleton(h, candidates, budget):
            return [h]

        group = JointScheduler(q, max_streams=4, grouping=singleton).next_group()
        assert group.packets == [head]
        assert q.head() is other

    def test_custom_heuristic_must_keep_head(self):
        q = make_queue()
        q.enqueue(0)
        q.enqueue(1)

        def drops_head(h, candidates, budget):
            return candidates[:1]

        with pytest.raises(ValueError):
            JointScheduler(q, max_streams=4, grouping=drops_head).next_group()
