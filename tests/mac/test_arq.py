"""Asynchronous ACKs and retransmission (§9)."""

import numpy as np
import pytest

from repro.mac.arq import ArqController, PacketStatus
from repro.mac.queue import DownlinkQueue


@pytest.fixture
def setup():
    q = DownlinkQueue(np.array([[20.0], [15.0]]))
    arq = ArqController(q, ack_timeout_s=10e-3, max_retries=2)
    return q, arq


class TestAckPath:
    def test_ack_delivers(self, setup):
        q, arq = setup
        p = q.enqueue(0)
        q.remove(p)
        arq.on_transmit(p, now=0.0)
        assert arq.status_of(p.seqno) == PacketStatus.IN_FLIGHT
        arq.on_ack(p.seqno)
        assert p in arq.delivered
        assert arq.in_flight_count() == 0

    def test_duplicate_ack_ignored(self, setup):
        q, arq = setup
        p = q.enqueue(0)
        q.remove(p)
        arq.on_transmit(p, now=0.0)
        arq.on_ack(p.seqno)
        arq.on_ack(p.seqno)
        assert arq.delivered.count(p) == 1

    def test_unknown_ack_ignored(self, setup):
        _, arq = setup
        arq.on_ack(999_999)
        assert not arq.delivered


class TestTimeoutPath:
    def test_timeout_requeues(self, setup):
        q, arq = setup
        p = q.enqueue(0)
        q.remove(p)
        arq.on_transmit(p, now=0.0)
        requeued = arq.poll_timeouts(now=20e-3)
        assert requeued == [p]
        assert p.retries == 1
        assert q.head() is p

    def test_no_premature_timeout(self, setup):
        q, arq = setup
        p = q.enqueue(0)
        q.remove(p)
        arq.on_transmit(p, now=0.0)
        assert arq.poll_timeouts(now=5e-3) == []
        assert arq.in_flight_count() == 1

    def test_max_retries_drops(self, setup):
        q, arq = setup
        p = q.enqueue(0)
        q.remove(p)
        p.retries = 2  # already at the limit
        arq.on_transmit(p, now=0.0)
        arq.poll_timeouts(now=20e-3)
        assert p in arq.dropped
        assert len(q) == 0

    def test_losses_decoupled_across_clients(self, setup):
        """§9: 'packet losses at different clients are decoupled' — losing
        client 0's packet must not disturb client 1's delivery."""
        q, arq = setup
        p0 = q.enqueue(0)
        p1 = q.enqueue(1)
        q.remove(p0)
        q.remove(p1)
        arq.on_transmit(p0, now=0.0)
        arq.on_transmit(p1, now=0.0)
        arq.on_ack(p1.seqno)  # client 1 decoded fine
        arq.poll_timeouts(now=20e-3)  # client 0 timed out
        assert p1 in arq.delivered
        assert q.head() is p0
