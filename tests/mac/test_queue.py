"""Shared downlink queue (§9)."""

import numpy as np
import pytest

from repro.mac.queue import DownlinkQueue


@pytest.fixture
def snr_map():
    # 3 clients x 2 APs; client 0 and 1 strongest at AP 1, client 2 at AP 0
    return np.array([[10.0, 20.0], [5.0, 15.0], [22.0, 12.0]])


class TestDesignation:
    def test_strongest_ap(self, snr_map):
        q = DownlinkQueue(snr_map)
        assert q.designated_ap(0) == 1
        assert q.designated_ap(2) == 0

    def test_enqueue_sets_designation(self, snr_map):
        q = DownlinkQueue(snr_map)
        p = q.enqueue(client=2)
        assert p.designated_ap == 0

    def test_unknown_client_rejected(self, snr_map):
        q = DownlinkQueue(snr_map)
        with pytest.raises(ValueError):
            q.enqueue(client=5)


class TestFifo:
    def test_head_is_oldest(self, snr_map):
        q = DownlinkQueue(snr_map)
        first = q.enqueue(0)
        q.enqueue(1)
        assert q.head() is first

    def test_empty_head_is_none(self, snr_map):
        assert DownlinkQueue(snr_map).head() is None

    def test_remove(self, snr_map):
        q = DownlinkQueue(snr_map)
        a = q.enqueue(0)
        b = q.enqueue(1)
        q.remove(a)
        assert q.head() is b
        assert len(q) == 1

    def test_seqnos_increase(self, snr_map):
        q = DownlinkQueue(snr_map)
        a, b = q.enqueue(0), q.enqueue(0)
        assert b.seqno > a.seqno


class TestRetransmission:
    def test_requeue_appends_and_counts(self, snr_map):
        q = DownlinkQueue(snr_map)
        a = q.enqueue(0)
        q.enqueue(1)
        q.remove(a)
        q.requeue(a)
        assert a.retries == 1
        assert q.head().client == 1  # requeued packet goes to the back
        assert q.pending_for(0) == [a]

    def test_pending_filter(self, snr_map):
        q = DownlinkQueue(snr_map)
        q.enqueue(0)
        q.enqueue(1)
        q.enqueue(0)
        assert len(q.pending_for(0)) == 2
        assert len(q.pending_for(2)) == 0
