"""Event-driven downlink simulator."""

import numpy as np
import pytest

from repro.mac.simulator import DownlinkSimulator, LinkLayerConfig


def run(duration=0.15, **kwargs):
    defaults = dict(n_aps=3, n_clients=3, duration_s=duration, seed=5)
    defaults.update(kwargs)
    return DownlinkSimulator(LinkLayerConfig(**defaults)).run()


class TestBacklogged:
    def test_goodput_positive_and_bounded(self):
        trace = run()
        # 3 concurrent streams at <= 27 Mbps PHY each
        assert 3e6 < trace.total_goodput_bps < 3 * 27e6

    def test_all_clients_served(self):
        trace = run()
        assert np.all(trace.per_client_goodput_bps > 0)

    def test_airtime_accounted(self):
        trace = run()
        total = sum(trace.airtime.values())
        assert total == pytest.approx(trace.config.duration_s, rel=0.15)
        assert trace.airtime["data"] > trace.airtime["sounding"]

    def test_periodic_soundings_happen(self):
        trace = run(resound_interval_s=20e-3)
        assert trace.n_soundings >= 5

    def test_failures_requeued_and_retried(self):
        # light load so a requeued packet reaches the head again quickly;
        # short coherence + sparse sounding forces some failures
        trace = run(
            arrival_rate_pps=150.0,
            duration_s=0.4,
            coherence_time_s=0.05,
            resound_interval_s=60e-3,
            seed=21,
        )
        assert trace.n_failures > 0
        retried = [d for d in trace.delivered if d.retries > 0]
        assert retried  # lost packets eventually delivered


class TestScalingWithAps:
    def test_more_aps_more_goodput(self):
        small = run(n_aps=2, n_clients=2, seed=7)
        large = run(n_aps=5, n_clients=5, seed=7)
        assert large.total_goodput_bps > 1.5 * small.total_goodput_bps


class TestStaleness:
    def test_sparser_sounding_more_failures(self):
        fresh = run(resound_interval_s=10e-3, coherence_time_s=0.08, seed=9)
        stale = run(resound_interval_s=80e-3, coherence_time_s=0.08, seed=9)
        assert stale.loss_rate > fresh.loss_rate

    def test_static_channel_rarely_fails(self):
        trace = run(coherence_time_s=10.0, resound_interval_s=50e-3, seed=11)
        assert trace.loss_rate < 0.1


class TestPoissonTraffic:
    def test_light_load_low_latency(self):
        trace = run(arrival_rate_pps=200.0, duration_s=0.3, seed=13)
        assert trace.mean_latency_s < 20e-3
        assert trace.airtime["idle"] > 0

    def test_goodput_matches_offered_load(self):
        cfg_rate = 300.0
        trace = run(arrival_rate_pps=cfg_rate, duration_s=0.4, seed=15)
        offered = 3 * cfg_rate * 1500 * 8  # 3 clients
        assert trace.total_goodput_bps == pytest.approx(offered, rel=0.35)


class TestValidation:
    def test_bad_config(self):
        with pytest.raises(ValueError):
            LinkLayerConfig(n_aps=0, n_clients=1)
        with pytest.raises(ValueError):
            LinkLayerConfig(n_aps=1, n_clients=1, duration_s=0.0)

    def test_summary_renders(self):
        trace = run(duration=0.05)
        text = trace.format_summary()
        assert "goodput" in text and "airtime" in text


class TestGroupingAndFeedbackOptions:
    def test_throughput_grouping_runs(self):
        trace = run(grouping="throughput", duration=0.1, seed=31)
        assert trace.total_goodput_bps > 0

    def test_unknown_grouping_rejected(self):
        with pytest.raises(ValueError):
            LinkLayerConfig(n_aps=2, n_clients=2, grouping="magic")

    def test_coarse_feedback_hurts(self):
        fine = run(feedback_bits=8, duration=0.12, seed=33)
        coarse = run(feedback_bits=3, duration=0.12, seed=33)
        assert coarse.total_goodput_bps < fine.total_goodput_bps

    def test_backhaul_delays_light_traffic(self):
        from repro.mac.backhaul import BackhaulConfig

        fast = run(arrival_rate_pps=150.0, duration=0.2, seed=41)
        slow = run(
            arrival_rate_pps=150.0,
            duration=0.2,
            seed=41,
            backhaul=BackhaulConfig(bandwidth_bps=5e6, latency_s=2e-3),
        )
        assert slow.mean_latency_s > fast.mean_latency_s

    def test_gige_backhaul_negligible(self):
        from repro.mac.backhaul import BackhaulConfig

        ideal = run(arrival_rate_pps=200.0, duration=0.2, seed=43)
        gige = run(
            arrival_rate_pps=200.0,
            duration=0.2,
            seed=43,
            backhaul=BackhaulConfig(),
        )
        assert abs(gige.total_goodput_bps - ideal.total_goodput_bps) < max(
            0.25 * ideal.total_goodput_bps, 2e6
        )


class TestEventTrace:
    def test_events_recorded_in_time_order(self):
        trace = run(duration=0.06, seed=51)
        times = [e.time for e in trace.events]
        assert times == sorted(times)
        kinds = {e.kind for e in trace.events}
        assert "sound" in kinds and "burst" in kinds

    def test_every_burst_has_outcomes(self):
        trace = run(duration=0.06, seed=53)
        bursts = sum(e.kind == "burst" for e in trace.events)
        outcomes = sum(e.kind in ("deliver", "fail") for e in trace.events)
        assert bursts > 0
        assert outcomes >= bursts  # >= one stream outcome per burst

    def test_deliver_fail_counts_match(self):
        trace = run(duration=0.06, seed=55)
        fails = sum(e.kind == "fail" for e in trace.events)
        delivers = sum(e.kind == "deliver" for e in trace.events)
        assert fails == trace.n_failures
        assert delivers == len(trace.delivered)
