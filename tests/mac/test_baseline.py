"""Baseline throughput models."""

import numpy as np
import pytest

from repro.mac.baseline import (
    baseline_80211_throughput,
    baseline_80211n_throughput,
    megamimo_throughput_from_rates,
)
from repro.mac.rate import EffectiveSnrRateSelector


@pytest.fixture
def selector():
    return EffectiveSnrRateSelector(10e6, mac_efficiency=1.0)


class Test80211Baseline:
    def test_equal_share_divides_by_n(self, selector):
        snrs = [np.full(48, 25.0)] * 4
        per_client = baseline_80211_throughput(snrs, selector)
        assert per_client.shape == (4,)
        assert np.allclose(per_client, 27e6 / 4)

    def test_total_independent_of_n_for_identical_clients(self, selector):
        """Fig. 9: 802.11 total throughput stays flat as clients are added."""
        totals = []
        for n in (2, 5, 10):
            snrs = [np.full(48, 25.0)] * n
            totals.append(baseline_80211_throughput(snrs, selector).sum())
        assert np.allclose(totals, totals[0])

    def test_weak_client_drags_only_itself(self, selector):
        snrs = [np.full(48, 25.0), np.full(48, 4.0)]
        out = baseline_80211_throughput(snrs, selector)
        assert out[0] > out[1]

    def test_empty_rejected(self, selector):
        with pytest.raises(ValueError):
            baseline_80211_throughput([], selector)


class Test80211nBaseline:
    def test_streams_sum_then_share(self, selector):
        streams = [[np.full(48, 25.0), np.full(48, 25.0)]] * 2
        out = baseline_80211n_throughput(streams, selector)
        assert np.allclose(out, 2 * 27e6 / 2)

    def test_asymmetric_streams(self, selector):
        # strong stream at top rate (27 Mbps), weak stream at BPSK-1/2 (3)
        streams = [[np.full(48, 25.0), np.full(48, 4.0)]]
        out = baseline_80211n_throughput(streams, selector)
        assert out[0] == pytest.approx(27e6 + 3e6)


class TestMegamimoTotal:
    def test_sums_streams(self):
        assert megamimo_throughput_from_rates([1e6, 2e6, 3e6]) == 6e6

    def test_single_stream(self):
        assert megamimo_throughput_from_rates([5e6]) == 5e6
