"""802.11n compatibility sounding (§6)."""

import numpy as np
import pytest

from repro.core.compat80211n import Compat80211nSounder, stitching_phase_error
from repro.core.narrowband import NarrowbandNetwork


def build_network(seed=0, max_ppm=2.0):
    """The Fig. 4 scenario: lead AP (L1, L2), slave AP (S1, S2), client (R1, R2)."""
    net = NarrowbandNetwork(rng=seed)
    net.add_device("lead", ["L1", "L2"], max_ppm=max_ppm)
    net.add_device("slave", ["S1", "S2"], max_ppm=max_ppm)
    net.add_device("client", ["R1", "R2"], max_ppm=max_ppm)
    net.randomize_channels(["L1", "L2", "S1", "S2"], ["R1", "R2", "S1"])
    return net


TX = ["L1", "L2", "S1", "S2"]
RX = ["R1", "R2"]


class TestStitching:
    def test_noiseless_stitch_matches_genie(self):
        net = build_network(seed=1)
        sounder = Compat80211nSounder(net, "L1", client_snr_db=None, ap_snr_db=None)
        est = sounder.measure(TX, RX, start_time=0.0, packet_spacing_s=2e-3)
        truth = sounder.true_snapshot(TX, RX, est.reference_time)
        errors = stitching_phase_error(est, truth)
        assert np.max(errors) < 1e-6

    def test_noisy_stitch_small_error(self):
        net = build_network(seed=2)
        sounder = Compat80211nSounder(net, "L1", client_snr_db=30.0, ap_snr_db=35.0)
        est = sounder.measure(TX, RX)
        truth = sounder.true_snapshot(TX, RX, est.reference_time)
        errors = stitching_phase_error(est, truth)
        assert np.median(errors) < 0.1

    def test_naive_measurement_drifts(self):
        """Without the reference-antenna trick, oscillator drift between
        packets corrupts the snapshot — the §6.2 motivation."""
        stitched_err, naive_err = [], []
        for seed in range(8):
            net = build_network(seed=seed, max_ppm=2.0)
            sounder = Compat80211nSounder(net, "L1", client_snr_db=None, ap_snr_db=None)
            est = sounder.measure(TX, RX, packet_spacing_s=2e-3)
            naive = sounder.naive_measure(TX, RX, packet_spacing_s=2e-3)
            truth = sounder.true_snapshot(TX, RX, est.reference_time)
            stitched_err.append(np.max(stitching_phase_error(est, truth)))
            naive_err.append(np.max(stitching_phase_error(naive, truth)))
        assert np.median(naive_err) > 10 * max(np.median(stitched_err), 1e-9)

    def test_lead_antennas_need_no_slave_reference(self):
        """L2 shares the lead's oscillator: its correction uses only the
        lead<->client drift."""
        net = build_network(seed=3)
        sounder = Compat80211nSounder(net, "L1", client_snr_db=None, ap_snr_db=None)
        est = sounder.measure(["L1", "L2"], RX)
        truth = sounder.true_snapshot(["L1", "L2"], RX, est.reference_time)
        assert np.max(stitching_phase_error(est, truth)) < 1e-6

    def test_column_accessor(self):
        net = build_network(seed=4)
        sounder = Compat80211nSounder(net, "L1", client_snr_db=None, ap_snr_db=None)
        est = sounder.measure(TX, RX)
        assert est.column("S1").shape == (2,)

    def test_reference_must_be_included(self):
        net = build_network(seed=5)
        sounder = Compat80211nSounder(net, "L1")
        with pytest.raises(ValueError):
            sounder.measure(["L2", "S1"], RX)

    def test_longer_spacing_still_works(self):
        """The whole point: stitching works regardless of elapsed time,
        because drift is measured, not extrapolated."""
        net = build_network(seed=6)
        sounder = Compat80211nSounder(net, "L1", client_snr_db=None, ap_snr_db=None)
        est = sounder.measure(TX, RX, packet_spacing_s=50e-3)
        truth = sounder.true_snapshot(TX, RX, est.reference_time)
        assert np.max(stitching_phase_error(est, truth)) < 1e-6


class TestBeamformingFromStitched:
    def test_zf_from_stitched_estimate_nulls_cross_client(self):
        from repro.core.beamforming import zero_forcing_precoder

        net = build_network(seed=7)
        sounder = Compat80211nSounder(net, "L1", client_snr_db=None, ap_snr_db=None)
        est = sounder.measure(TX, RX)
        w, k = zero_forcing_precoder(est.channel)
        truth = sounder.true_snapshot(TX, RX, est.reference_time)
        eff = truth @ w
        off_diag = np.abs(eff - np.diag(np.diag(eff)))
        assert np.max(off_diag) < 1e-6 * k
