"""CSI feedback quantization."""

import numpy as np
import pytest

from repro.core.feedback import (
    CsiFeedbackCodec,
    apply_feedback_quantization,
    feedback_distortion_db,
    quantize_csi,
)
from repro.sim.fastsim import build_channel_tensor, joint_zf_sinr_db


class TestQuantizeCsi:
    def test_high_precision_is_identity(self):
        rng = np.random.default_rng(0)
        ch = rng.normal(size=(8, 2)) + 1j * rng.normal(size=(8, 2))
        assert np.array_equal(quantize_csi(ch, 16), ch)

    def test_error_shrinks_with_bits(self):
        rng = np.random.default_rng(1)
        ch = rng.normal(size=(52, 4)) + 1j * rng.normal(size=(52, 4))
        errors = [
            np.mean(np.abs(quantize_csi(ch, b) - ch) ** 2) for b in (3, 6, 10)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_distortion_gains_6db_per_bit(self):
        rng = np.random.default_rng(2)
        ch = rng.normal(size=(52, 4)) + 1j * rng.normal(size=(52, 4))
        d6 = feedback_distortion_db(ch, 6)
        d8 = feedback_distortion_db(ch, 8)
        assert d8 - d6 == pytest.approx(12.0, abs=3.0)

    def test_zero_channel(self):
        ch = np.zeros((4, 2), dtype=complex)
        assert np.array_equal(quantize_csi(ch, 4), ch)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_csi(np.ones((2, 2), dtype=complex), 0)


class TestCodec:
    def test_report_size(self):
        codec = CsiFeedbackCodec(bits_per_component=8, header_bits=128)
        # 52 subcarriers x 4 antennas x 16 bits + header
        assert codec.report_bits(52, 4) == 128 + 52 * 4 * 16

    def test_airtime_scales_with_precision(self):
        fine = CsiFeedbackCodec(bits_per_component=10)
        coarse = CsiFeedbackCodec(bits_per_component=4)
        assert fine.airtime_s(52, 4) > coarse.airtime_s(52, 4)

    def test_roundtrip(self):
        rng = np.random.default_rng(3)
        report = rng.normal(size=(52, 4)) + 1j * rng.normal(size=(52, 4))
        codec = CsiFeedbackCodec(bits_per_component=8)
        recon, airtime = codec.roundtrip(report)
        assert recon.shape == report.shape
        assert airtime > 0
        assert feedback_distortion_db(report, 8) > 30.0


class TestBeamformingImpact:
    def test_8bit_feedback_barely_hurts(self):
        """Standard 8-bit CSI keeps quantization ~45 dB below the channel —
        invisible next to estimation noise."""
        rng = np.random.default_rng(4)
        ch = build_channel_tensor(np.full((3, 3), 20.0), rng)
        quantized = apply_feedback_quantization(ch, 8)
        clean = np.mean(joint_zf_sinr_db(ch))
        with_q = np.mean(joint_zf_sinr_db(ch, est_channels=quantized))
        assert abs(clean - with_q) < 1.0

    def test_3bit_feedback_hurts(self):
        rng = np.random.default_rng(5)
        drops = []
        for _ in range(5):
            ch = build_channel_tensor(np.full((3, 3), 20.0), rng)
            quantized = apply_feedback_quantization(ch, 3)
            clean = np.mean(joint_zf_sinr_db(ch))
            with_q = np.mean(joint_zf_sinr_db(ch, est_channels=quantized))
            drops.append(clean - with_q)
        assert np.mean(drops) > 2.0

    def test_quantization_is_per_client_report(self):
        """Each client's report is scaled independently, so a strong client
        doesn't coarsen a weak client's quantization grid."""
        rng = np.random.default_rng(6)
        ch = build_channel_tensor(np.array([[30.0, 30.0], [0.0, 0.0]]), rng)
        quantized = apply_feedback_quantization(ch, 6)
        weak_err = np.mean(np.abs(quantized[:, 1, :] - ch[:, 1, :]) ** 2)
        weak_sig = np.mean(np.abs(ch[:, 1, :]) ** 2)
        # the weak client still gets ~30 dB quantization SNR on its own row
        assert 10 * np.log10(weak_sig / weak_err) > 25.0
