"""Sample-level §6 sounding (HT-LTF packets + stitching)."""

import numpy as np
import pytest

from repro import MegaMimoSystem, SystemConfig, get_mcs
from repro.channel.models import RicianChannel
from repro.core.compat_sampling import (
    SampleLevelCompatSounder,
    stitched_vs_genie_phase_error,
)
from repro.phy.htltf import HTLTF_LENGTH, estimate_two_streams, htltf_waveforms
from repro.phy.preamble import lts_grid


class TestHtLtf:
    def test_waveform_shape(self):
        w = htltf_waveforms()
        assert w.shape == (2, HTLTF_LENGTH)

    def test_streams_separate_cleanly(self):
        w = htltf_waveforms()
        h_true = (0.8 + 0.3j, -0.2 + 1.1j)
        rx = h_true[0] * w[0] + h_true[1] * w[1]
        h0, h1 = estimate_two_streams(rx)
        occupied = np.abs(lts_grid()) > 0
        assert np.allclose(h0[occupied], h_true[0], atol=1e-9)
        assert np.allclose(h1[occupied], h_true[1], atol=1e-9)

    def test_single_stream_leaks_nothing(self):
        w = htltf_waveforms()
        rx = 1.5 * w[0]  # only stream 0 on air
        h0, h1 = estimate_two_streams(rx)
        occupied = np.abs(lts_grid()) > 0
        assert np.allclose(h1[occupied], 0.0, atol=1e-9)

    def test_short_capture_rejected(self):
        with pytest.raises(ValueError):
            estimate_two_streams(np.zeros(10, dtype=complex))


def make_4x4(seed):
    config = SystemConfig(
        n_aps=2, n_clients=2, antennas_per_ap=2, antennas_per_client=2, seed=seed
    )
    return MegaMimoSystem.create(
        config, client_snr_db=28.0, channel_model=RicianChannel(k_factor=10.0)
    )


class TestCompatSounding:
    def test_snapshot_matches_genie(self):
        system = make_4x4(seed=5)
        SampleLevelCompatSounder(system).measure(0.0)
        errors = stitched_vs_genie_phase_error(system)
        assert np.max(errors) < 0.2
        assert np.median(errors[errors > 0]) < 0.1

    def test_four_streams_decode_after_compat_sounding(self):
        """The paper's §6 pitch end to end: stock-format soundings, then a
        4-stream joint transmission that every client antenna decodes."""
        system = make_4x4(seed=9)
        SampleLevelCompatSounder(system).measure(0.0)
        payloads = [bytes([65 + i]) * 25 for i in range(4)]
        report = system.joint_transmit(payloads, get_mcs(1), start_time=8e-3)
        assert [r.decoded.payload for r in report.receptions] == payloads

    def test_repeated_data_packets(self):
        system = make_4x4(seed=13)
        SampleLevelCompatSounder(system).measure(0.0)
        ok = 0
        for p in range(3):
            report = system.joint_transmit(
                [bytes([p * 4 + i]) * 20 for i in range(4)],
                get_mcs(1),
                start_time=8e-3 + p * 2e-3,
            )
            ok += sum(r.decoded.crc_ok for r in report.receptions)
        assert ok >= 11

    def test_packet_count_is_one_per_non_reference_antenna(self):
        system = make_4x4(seed=17)
        report = SampleLevelCompatSounder(system).measure(0.0)
        assert report.n_packets == 3  # L2, S1, S2

    def test_agrees_with_interleaved_sounding(self):
        """§5.1 interleaved sounding and §6 stitched sounding must install
        equivalent snapshots (up to estimation noise)."""
        tensors = {}
        for mode in ("interleaved", "compat"):
            system = make_4x4(seed=21)
            if mode == "interleaved":
                system.run_sounding(0.0)
            else:
                SampleLevelCompatSounder(system).measure(0.0)
            tensors[mode] = system._channel_tensor.copy()
        occupied = np.abs(lts_grid()) > 0
        a = tensors["interleaved"][occupied]
        b = tensors["compat"][occupied]
        # same medium, same seeds -> same true channels; phase epochs differ
        # per row by an unobservable receiver phase, so compare row-relative
        for ri in range(a.shape[1]):
            rel_a = np.angle(np.mean(a[:, ri, :], axis=0) / np.mean(a[:, ri, 0]))
            rel_b = np.angle(np.mean(b[:, ri, :], axis=0) / np.mean(b[:, ri, 0]))
            from repro.utils.units import wrap_phase

            assert np.max(np.abs(wrap_phase(rel_a - rel_b))) < 0.25

    def test_single_antenna_devices_also_work(self):
        # seed 26 draws a well-conditioned 3x3 topology (k^2 ~ 20 dB);
        # ill-conditioned draws legitimately push per-stream SINR below the
        # MCS floor regardless of the sounding scheme
        config = SystemConfig(n_aps=3, n_clients=3, seed=26)
        system = MegaMimoSystem.create(
            config, client_snr_db=28.0, channel_model=RicianChannel(k_factor=10.0)
        )
        SampleLevelCompatSounder(system).measure(0.0)
        payloads = [bytes([i]) * 20 for i in range(3)]
        report = system.joint_transmit(payloads, get_mcs(1), start_time=8e-3)
        assert sum(r.decoded.crc_ok for r in report.receptions) == 3
