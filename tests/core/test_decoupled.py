"""Decoupled per-receiver measurements (§7 + appendix)."""

import numpy as np
import pytest

from repro.core.decoupled import DecoupledChannelBook
from repro.core.narrowband import NarrowbandNetwork

APS = ["ap0", "ap1", "ap2"]
CLIENTS = ["c0", "c1", "c2"]


def build(seed=0, client_snr=None, ap_snr=None):
    net = NarrowbandNetwork(rng=seed)
    for ap in APS:
        net.add_device(ap, [ap])
    for c in CLIENTS:
        net.add_device(c, [c])
    net.randomize_channels(APS, CLIENTS + APS[1:])
    book = DecoupledChannelBook(net, APS, client_snr_db=client_snr, ap_snr_db=ap_snr)
    return net, book


class TestBookkeeping:
    def test_measurements_recorded_in_order(self):
        _, book = build()
        book.record_measurement("c0", 0.0)
        book.record_measurement("c1", 5e-3)
        h = book.time_invariant_matrix()
        assert h.shape == (2, 3)

    def test_no_measurements_raises(self):
        _, book = build()
        with pytest.raises(ValueError):
            book.time_invariant_matrix()

    def test_slave_rotation_needs_recorded_times(self):
        _, book = build()
        book.record_measurement("c0", 0.0)
        with pytest.raises(KeyError):
            book.slave_rotation("ap1", 0.0, 99.0)

    def test_needs_at_least_one_slave(self):
        net, _ = build()
        with pytest.raises(ValueError):
            DecoupledChannelBook(net, ["ap0"])


class TestAppendixMath:
    def test_corrected_matrix_beamforms_cleanly(self):
        """Clients measured at different times; after the appendix Eq. 8
        correction the effective channel at transmission time is diagonal."""
        _, book = build(seed=1)
        book.record_measurement("c0", 0.0)
        book.record_measurement("c1", 20e-3)
        book.record_measurement("c2", 47e-3)
        eff = book.effective_channel_at(t=80e-3)
        diag = np.abs(np.diag(eff))
        off = np.abs(eff - np.diag(np.diag(eff)))
        assert np.max(off) < 1e-6 * np.min(diag)

    def test_leakage_metric_clean_vs_naive(self):
        """The naive (uncorrected) matrix leaks interference; the corrected
        one does not — the §7 claim."""
        _, book = build(seed=2)
        book.record_measurement("c0", 0.0)
        book.record_measurement("c1", 15e-3)
        book.record_measurement("c2", 33e-3)
        good = book.interference_leakage_db(t=60e-3)
        bad = book.interference_leakage_db(t=60e-3, matrix=book.naive_matrix())
        assert good < -80.0
        assert bad > good + 40.0

    def test_same_time_measurements_need_no_correction(self):
        _, book = build(seed=3)
        book.record_measurement("c0", 0.0)
        book.record_measurement("c1", 0.0)
        book.record_measurement("c2", 0.0)
        assert np.allclose(book.time_invariant_matrix(), book.naive_matrix())

    def test_remeasurement_replaces_row(self):
        """A client whose channel is re-measured later keeps one row."""
        _, book = build(seed=4)
        book.record_measurement("c0", 0.0)
        book.record_measurement("c1", 5e-3)
        book.record_measurement("c1", 25e-3)
        assert book.time_invariant_matrix().shape == (2, 3)
        eff = book.effective_channel_at(t=40e-3)
        off = np.abs(eff - np.diag(np.diag(eff)))
        assert np.max(off) < 1e-6

    def test_noisy_observations_small_leakage(self):
        _, book = build(seed=5, client_snr=30.0, ap_snr=35.0)
        book.record_measurement("c0", 0.0)
        book.record_measurement("c1", 10e-3)
        book.record_measurement("c2", 21e-3)
        leakage = book.interference_leakage_db(t=40e-3)
        assert leakage < -10.0

    def test_slave_rotation_is_unit_modulus(self):
        _, book = build(seed=6)
        book.record_measurement("c0", 0.0)
        book.record_measurement("c1", 9e-3)
        r = book.slave_rotation("ap1", 0.0, 9e-3)
        assert abs(r) == pytest.approx(1.0)
