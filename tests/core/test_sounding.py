"""Interleaved channel measurement (§5.1)."""

import numpy as np
import pytest

from repro.constants import FFT_SIZE
from repro.core.sounding import (
    CFO_BLOCK_LENGTH,
    REFERENCE_OFFSET,
    SLOT_LENGTH,
    SoundingPlan,
    estimate_at_client,
    estimate_single_ap,
    interleaved_sounding_frame,
)
from repro.phy.cfo import apply_cfo
from repro.phy.preamble import lts_grid, sync_header_length

FS = 10e6


@pytest.fixture
def plan():
    return SoundingPlan(n_aps=3, n_rounds=4, sample_rate=FS)


class TestPlanGeometry:
    def test_frame_length(self, plan):
        expected = (
            sync_header_length() + 3 * CFO_BLOCK_LENGTH + 4 * 3 * SLOT_LENGTH
        )
        assert plan.frame_length == expected

    def test_slots_interleave_by_ap(self, plan):
        # within one round, consecutive APs take consecutive slots
        assert plan.slot_start(1, 0) - plan.slot_start(0, 0) == SLOT_LENGTH
        # one AP's slots repeat every n_aps slots
        assert plan.slot_start(0, 1) - plan.slot_start(0, 0) == 3 * SLOT_LENGTH

    def test_bad_indices(self, plan):
        with pytest.raises(ValueError):
            plan.slot_start(3, 0)
        with pytest.raises(ValueError):
            plan.slot_start(0, 4)


class TestFrameConstruction:
    def test_only_lead_sends_header(self, plan):
        lead = interleaved_sounding_frame(plan, 0)
        slave = interleaved_sounding_frame(plan, 1)
        hdr_len = sync_header_length()
        assert np.any(lead[:hdr_len] != 0)
        assert np.allclose(slave[:hdr_len], 0)

    def test_slots_do_not_overlap(self, plan):
        frames = [interleaved_sounding_frame(plan, i) for i in range(3)]
        # at most one AP transmits at any sample after the header
        active = np.stack([np.abs(f) > 1e-12 for f in frames])
        hdr_len = sync_header_length()
        assert np.all(active[:, hdr_len:].sum(axis=0) <= 1)

    def test_each_ap_fills_its_slots(self, plan):
        frame = interleaved_sounding_frame(plan, 2)
        for r in range(plan.n_rounds):
            s = plan.slot_start(2, r)
            assert np.any(np.abs(frame[s : s + SLOT_LENGTH]) > 0)


def simulate_reception(plan, cfos_hz, channels, noise_sigma=0.0, rng=None):
    """Superpose per-AP sounding frames with per-AP CFO and flat channels."""
    total = np.zeros(plan.frame_length, dtype=complex)
    for ap in range(plan.n_aps):
        frame = interleaved_sounding_frame(plan, ap)
        total += channels[ap] * apply_cfo(frame, cfos_hz[ap], plan.sample_rate)
    if noise_sigma > 0:
        total = total + noise_sigma * (
            rng.normal(size=total.size) + 1j * rng.normal(size=total.size)
        )
    return total


class TestClientEstimation:
    def test_noiseless_channels_recovered(self, plan):
        cfos = [2e3, -4.5e3, 7e3]
        channels = [1.0 + 0j, 0.6 * np.exp(1j * 1.0), 1.3 * np.exp(-1j * 2.0)]
        rx = simulate_reception(plan, cfos, channels)
        est = estimate_at_client(rx, plan)
        occupied = np.abs(lts_grid()) > 0
        for ap in range(3):
            # channel referred to the reference time: rotate truth forward
            elapsed = REFERENCE_OFFSET / FS
            truth = channels[ap] * np.exp(2j * np.pi * cfos[ap] * elapsed)
            got = est.channels[ap][occupied]
            # per-bin ripple from CFO-induced ICI within the estimation
            # window is a real effect; the estimate must be right to ~5%
            assert np.allclose(got, truth, atol=0.06), f"ap{ap}"
            assert np.mean(got) == pytest.approx(truth, abs=0.02)

    def test_cfos_recovered(self, plan):
        cfos = [2e3, -4.5e3, 7e3]
        channels = [1.0, 1.0, 1.0]
        rx = simulate_reception(plan, cfos, channels)
        est = estimate_at_client(rx, plan)
        assert np.allclose(est.cfos_hz, cfos, atol=5.0)

    def test_noise_estimate_tracks_actual_noise(self, plan):
        rng = np.random.default_rng(0)
        sigma = 0.1
        rx = simulate_reception(plan, [1e3, 2e3, 3e3], [1.0, 1.0, 1.0],
                                noise_sigma=sigma, rng=rng)
        est = estimate_at_client(rx, plan)
        assert est.noise_power == pytest.approx(2 * sigma**2, rel=0.5)

    def test_averaging_beats_single_round(self):
        rng = np.random.default_rng(1)
        errs = {}
        for rounds in (1, 4):
            plan = SoundingPlan(n_aps=2, n_rounds=rounds, sample_rate=FS)
            errors = []
            for _ in range(10):
                rx = simulate_reception(
                    plan, [1.5e3, -2e3], [1.0, 1.0], noise_sigma=0.15, rng=rng
                )
                est = estimate_at_client(rx, plan)
                occupied = np.abs(lts_grid()) > 0
                elapsed = REFERENCE_OFFSET / FS
                truth = np.exp(2j * np.pi * 1.5e3 * elapsed)
                errors.append(np.mean(np.abs(est.channels[0][occupied] - truth)))
            errs[rounds] = np.mean(errors)
        assert errs[4] < errs[1]

    def test_short_capture_rejected(self, plan):
        with pytest.raises(ValueError):
            estimate_at_client(np.zeros(10, dtype=complex), plan)

    def test_single_ap_view_matches_full(self, plan):
        cfos = [2e3, -4.5e3, 7e3]
        channels = [1.0, 0.5 + 0.5j, 1.0j]
        rx = simulate_reception(plan, cfos, channels)
        full = estimate_at_client(rx, plan)
        ch0, cfo0, _ = estimate_single_ap(rx, plan, 0)
        assert np.allclose(ch0, full.channels[0])
        assert cfo0 == pytest.approx(full.cfos_hz[0])


class TestSoundingResultContainer:
    def test_channel_matrix_shape(self, plan):
        from repro.core.sounding import ClientSoundingEstimate, SoundingResult

        ests = [
            ClientSoundingEstimate(
                channels=np.full((3, FFT_SIZE), c + 1.0 + 0j),
                cfos_hz=np.zeros(3),
                noise_power=0.0,
            )
            for c in range(2)
        ]
        result = SoundingResult(client_estimates=ests, reference_time=0.0)
        h = result.channel_matrix(subcarrier_bin=1)
        assert h.shape == (2, 3)
        assert h[0, 0] == 1.0 and h[1, 0] == 2.0
        tensor = result.channel_tensor()
        assert tensor.shape == (FFT_SIZE, 2, 3)
        assert tensor[5, 1, 2] == 2.0
