"""Distributed phase synchronization (§5.2, §5.3)."""

import numpy as np
import pytest

from repro.core.phasesync import (
    NaiveCfoExtrapolator,
    PhaseSynchronizer,
    estimate_header_cfo,
    estimate_header_channel,
)
from repro.phy.cfo import apply_cfo
from repro.phy.preamble import lts_grid, sync_header

FS = 10e6


def received_header(cfo_hz, start_time, channel=1.0 + 0j, noise_sigma=0.0, rng=None):
    """The lead sync header as a slave would receive it."""
    hdr = channel * apply_cfo(sync_header(), cfo_hz, FS, start_time=start_time)
    if noise_sigma > 0:
        hdr = hdr + noise_sigma * (
            rng.normal(size=hdr.size) + 1j * rng.normal(size=hdr.size)
        )
    return hdr


class TestHeaderEstimators:
    def test_channel_estimate_flat(self):
        hdr = received_header(0.0, 0.0, channel=0.7 * np.exp(1j * 0.4))
        est = estimate_header_channel(hdr)
        occupied = np.abs(lts_grid()) > 0
        assert np.allclose(est[occupied], 0.7 * np.exp(1j * 0.4), atol=1e-6)

    def test_cfo_estimate_exact_without_noise(self):
        hdr = received_header(4.2e3, 0.0)
        assert estimate_header_cfo(hdr, FS) == pytest.approx(4.2e3, abs=0.01)

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            estimate_header_channel(np.zeros(100, dtype=complex))


class TestPhaseSynchronizer:
    def test_requires_reference(self):
        sync = PhaseSynchronizer(FS)
        with pytest.raises(ValueError):
            sync.observe_header(received_header(0.0, 0.0), 0.0)

    def test_rotation_tracks_elapsed_phase(self):
        """h_lead(t)/h_lead(0) = e^{j dw t} — the §5.2b direct measurement."""
        cfo = 3.7e3
        sync = PhaseSynchronizer(FS)
        sync.set_reference(received_header(cfo, 0.0), 0.0)
        t = 450e-6
        obs = sync.observe_header(received_header(cfo, t), t)
        expected = 2 * np.pi * cfo * t
        assert np.angle(obs.rotation) == pytest.approx(
            np.angle(np.exp(1j * expected)), abs=1e-3
        )

    def test_no_error_accumulation_across_packets(self):
        """The paper's core claim: direct phase measurement has no error
        that grows with elapsed time.  Measure the rotation error at 1 ms
        and at 100 ms — they must be statistically identical."""
        rng = np.random.default_rng(0)
        cfo = 5.1e3
        errors = {1e-3: [], 100e-3: []}
        for trial in range(30):
            sync = PhaseSynchronizer(FS)
            sync.set_reference(
                received_header(cfo, 0.0, noise_sigma=0.05, rng=rng), 0.0
            )
            for t in errors:
                obs = sync.observe_header(
                    received_header(cfo, t, noise_sigma=0.05, rng=rng), t
                )
                ideal = np.exp(2j * np.pi * cfo * t)
                errors[t].append(abs(np.angle(obs.rotation * np.conj(ideal))))
        short_err = np.mean(errors[1e-3])
        long_err = np.mean(errors[100e-3])
        assert long_err < 3 * short_err  # no growth with elapsed time
        assert long_err < 0.05

    def test_correction_extends_through_packet(self):
        cfo = 2.0e3
        sync = PhaseSynchronizer(FS)
        sync.set_reference(received_header(cfo, 0.0), 0.0)
        t_hdr = 1e-3
        obs = sync.observe_header(received_header(cfo, t_hdr), t_hdr)
        times = t_hdr + np.linspace(0, 2e-3, 50)
        corr = sync.correction(times, obs)
        ideal = np.exp(2j * np.pi * cfo * times)
        err = np.abs(np.angle(corr * np.conj(ideal)))
        assert np.max(err) < 0.05

    def test_no_tracking_variant_is_constant(self):
        sync = PhaseSynchronizer(FS)
        sync.set_reference(received_header(1e3, 0.0), 0.0)
        obs = sync.observe_header(received_header(1e3, 1e-3), 1e-3)
        corr = sync.correction_without_inpacket_tracking(
            np.linspace(1e-3, 3e-3, 10), obs
        )
        assert np.allclose(corr, corr[0])

    def test_cross_header_refinement_converges(self):
        """Long-baseline CFO refinement drives the tracker to ~Hz accuracy."""
        rng = np.random.default_rng(1)
        cfo = 6.3e3
        sync = PhaseSynchronizer(FS)
        sync.set_reference(received_header(cfo, 0.0, noise_sigma=0.03, rng=rng), 0.0)
        for k in range(1, 12):
            t = k * 1e-3
            sync.observe_header(
                received_header(cfo, t, noise_sigma=0.03, rng=rng), t
            )
        assert sync.cfo_tracker.estimate_hz == pytest.approx(cfo, abs=15.0)


class TestNaiveExtrapolator:
    def test_error_grows_linearly(self):
        naive = NaiveCfoExtrapolator(true_cfo_hz=5e3, cfo_error_hz=100.0)
        e1 = naive.phase_error(np.array([1e-3]))[0]
        e10 = naive.phase_error(np.array([10e-3]))[0]
        assert e10 == pytest.approx(10 * e1)

    def test_paper_numeric_example(self):
        """§5.2b: 100 Hz error -> pi radians within 5 ms (phase = 2*pi*f*t)."""
        naive = NaiveCfoExtrapolator(true_cfo_hz=0.0, cfo_error_hz=100.0)
        assert naive.phase_error(np.array([5e-3]))[0] == pytest.approx(np.pi)

    def test_correction_uses_estimated_cfo(self):
        naive = NaiveCfoExtrapolator(true_cfo_hz=1e3, cfo_error_hz=0.0)
        t = np.array([2e-3])
        assert np.angle(naive.correction(t))[0] == pytest.approx(
            np.angle(np.exp(2j * np.pi * 1e3 * t))[0]
        )
