"""Narrowband network abstraction."""

import numpy as np
import pytest

from repro.channel.oscillator import Oscillator, OscillatorConfig
from repro.core.narrowband import NarrowbandNetwork


def fixed_osc(ppm, phase=0.0):
    return Oscillator(
        OscillatorConfig(ppm_offset=ppm, phase_noise_rad2_per_s=0.0, initial_phase=phase)
    )


class TestConstruction:
    def test_antennas_share_device_oscillator(self):
        net = NarrowbandNetwork(rng=0)
        net.add_device("ap", ["a1", "a2"], oscillator=fixed_osc(1.0))
        assert net.device_of("a1") == "ap"
        assert net.oscillator_of_device("ap").ppm_offset == 1.0

    def test_duplicate_device_rejected(self):
        net = NarrowbandNetwork(rng=0)
        net.add_device("ap", ["a1"])
        with pytest.raises(ValueError):
            net.add_device("ap", ["a2"])

    def test_duplicate_antenna_rejected(self):
        net = NarrowbandNetwork(rng=0)
        net.add_device("ap", ["a1"])
        with pytest.raises(ValueError):
            net.add_device("ap2", ["a1"])

    def test_randomize_channels(self):
        net = NarrowbandNetwork(rng=1)
        net.add_device("ap", ["a1", "a2"])
        net.add_device("cl", ["r1"])
        net.randomize_channels(["a1", "a2"], ["r1"], average_gain=4.0)
        assert net.true_channel("a1", "r1", 0.0) != net.true_channel("a2", "r1", 0.0)


class TestPhysics:
    def test_rotation_from_relative_cfo(self):
        net = NarrowbandNetwork(rng=2)
        net.add_device("tx", ["t"], oscillator=fixed_osc(1.0))  # ~2.412 kHz
        net.add_device("rx", ["r"], oscillator=fixed_osc(0.0))
        net.set_channel("t", "r", 1.0 + 0j)
        df = net.oscillator_of_device("tx").frequency_offset_hz
        t = 1e-4
        got = net.true_channel("t", "r", t)
        assert np.angle(got) == pytest.approx(
            np.angle(np.exp(2j * np.pi * df * t)), abs=1e-9
        )

    def test_same_device_antennas_rotate_together(self):
        net = NarrowbandNetwork(rng=3)
        net.add_device("ap", ["a1", "a2"], oscillator=fixed_osc(2.0))
        net.add_device("cl", ["r"], oscillator=fixed_osc(0.0))
        net.set_channel("a1", "r", 1.0 + 0j)
        net.set_channel("a2", "r", 1.0j)
        t = 5e-4
        rel0 = net.true_channel("a2", "r", 0.0) / net.true_channel("a1", "r", 0.0)
        rel_t = net.true_channel("a2", "r", t) / net.true_channel("a1", "r", t)
        assert rel_t == pytest.approx(rel0)

    def test_noiseless_observation_is_truth(self):
        net = NarrowbandNetwork(rng=4)
        net.add_device("tx", ["t"], oscillator=fixed_osc(1.0))
        net.add_device("rx", ["r"], oscillator=fixed_osc(-1.0))
        net.set_channel("t", "r", 0.5 + 0.5j)
        t = 3e-3
        assert net.observe("t", "r", t, snr_db=None) == net.true_channel("t", "r", t)

    def test_noisy_observation_scales_with_snr(self):
        net = NarrowbandNetwork(rng=5)
        net.add_device("tx", ["t"], oscillator=fixed_osc(0.0))
        net.add_device("rx", ["r"], oscillator=fixed_osc(0.0))
        net.set_channel("t", "r", 1.0 + 0j)
        errs_hi = [abs(net.observe("t", "r", 0.0, snr_db=40.0) - 1.0) for _ in range(200)]
        errs_lo = [abs(net.observe("t", "r", 0.0, snr_db=10.0) - 1.0) for _ in range(200)]
        assert np.mean(errs_hi) < np.mean(errs_lo) / 5
