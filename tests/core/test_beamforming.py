"""Zero-forcing and diversity beamforming math (§4, §8)."""

import numpy as np
import pytest

from repro.channel.models import random_channel_matrix
from repro.core.beamforming import (
    diversity_precoder,
    effective_channel,
    interference_to_noise_ratio,
    sinr_after_beamforming,
    snr_reduction_from_misalignment,
    zero_forcing_precoder,
    zero_forcing_precoder_wideband,
)


@pytest.fixture
def channel_2x2():
    return random_channel_matrix(2, 2, rng=5)


class TestZeroForcing:
    def test_effective_channel_is_diagonal(self, channel_2x2):
        w, k = zero_forcing_precoder(channel_2x2)
        eff = effective_channel(channel_2x2, w)
        assert np.allclose(eff, k * np.eye(2), atol=1e-12)

    def test_diagonal_gains_equal_k(self):
        h = random_channel_matrix(4, 4, rng=6)
        w, k = zero_forcing_precoder(h)
        eff = effective_channel(h, w)
        assert np.allclose(np.diag(eff), k)

    def test_per_antenna_power_respected(self):
        h = random_channel_matrix(3, 3, rng=7)
        w, _ = zero_forcing_precoder(h, max_power_per_antenna=1.0)
        row_power = np.sum(np.abs(w) ** 2, axis=1)
        assert np.all(row_power <= 1.0 + 1e-12)
        # the binding antenna transmits at exactly the limit
        assert np.max(row_power) == pytest.approx(1.0)

    def test_power_limit_scales_k(self, channel_2x2):
        _, k1 = zero_forcing_precoder(channel_2x2, max_power_per_antenna=1.0)
        _, k4 = zero_forcing_precoder(channel_2x2, max_power_per_antenna=4.0)
        assert k4 == pytest.approx(2 * k1)

    def test_wide_matrix_pseudo_inverse(self):
        h = random_channel_matrix(2, 4, rng=8)
        w, k = zero_forcing_precoder(h)
        assert w.shape == (4, 2)
        eff = effective_channel(h, w)
        assert np.allclose(eff, k * np.eye(2), atol=1e-12)

    def test_more_clients_than_antennas_rejected(self):
        with pytest.raises(ValueError):
            zero_forcing_precoder(random_channel_matrix(3, 2, rng=9))

    def test_singular_channel_raises(self):
        h = np.array([[1.0, 1.0], [1.0, 1.0]], dtype=complex)
        with pytest.raises(np.linalg.LinAlgError):
            zero_forcing_precoder(h)


class TestWidebandZeroForcing:
    def test_all_bins_share_k(self):
        rng = np.random.default_rng(10)
        channels = np.stack([random_channel_matrix(3, 3, rng=rng) for _ in range(8)])
        precoders, k = zero_forcing_precoder_wideband(channels)
        for b in range(8):
            eff = channels[b] @ precoders[b]
            assert np.allclose(eff, k * np.eye(3), atol=1e-10)

    def test_average_power_constraint(self):
        rng = np.random.default_rng(11)
        channels = np.stack([random_channel_matrix(3, 3, rng=rng) for _ in range(16)])
        precoders, _ = zero_forcing_precoder_wideband(channels, max_power_per_antenna=1.0)
        per_ap = np.mean(np.sum(np.abs(precoders) ** 2, axis=2), axis=0)
        assert np.all(per_ap <= 1.0 + 1e-12)
        assert np.max(per_ap) == pytest.approx(1.0)

    def test_wideband_k_at_least_worst_bin(self):
        """Averaging the constraint across bins can only help vs. the worst
        single bin's normalization."""
        rng = np.random.default_rng(12)
        channels = np.stack([random_channel_matrix(3, 3, rng=rng) for _ in range(8)])
        _, k_wide = zero_forcing_precoder_wideband(channels)
        k_worst = min(zero_forcing_precoder(channels[b])[1] for b in range(8))
        assert k_wide >= k_worst - 1e-12


class TestMisalignment:
    def test_zero_misalignment_no_interference(self, channel_2x2):
        w, k = zero_forcing_precoder(channel_2x2)
        sinr = sinr_after_beamforming(channel_2x2, w, noise_power=k**2 / 100)
        assert np.allclose(sinr, 100.0, rtol=1e-9)

    def test_misalignment_reduces_sinr(self, channel_2x2):
        w, k = zero_forcing_precoder(channel_2x2)
        noise = k**2 / 100
        clean = sinr_after_beamforming(channel_2x2, w, noise)
        dirty = sinr_after_beamforming(
            channel_2x2, w, noise, phase_errors=np.array([0.0, 0.3])
        )
        assert np.all(dirty < clean)

    def test_reduction_grows_with_misalignment(self, channel_2x2):
        losses = [
            np.mean(snr_reduction_from_misalignment(channel_2x2, m, 20.0))
            for m in (0.0, 0.1, 0.3, 0.5)
        ]
        assert losses == sorted(losses)
        assert losses[0] == pytest.approx(0.0, abs=1e-9)

    def test_reduction_worse_at_high_snr(self):
        """Fig. 6: 'phase misalignment causes a greater reduction in SNR when
        the system is at higher SNR'."""
        rng = np.random.default_rng(13)
        loss10 = loss20 = 0.0
        for _ in range(50):
            h = random_channel_matrix(2, 2, rng=rng)
            loss10 += np.mean(snr_reduction_from_misalignment(h, 0.35, 10.0))
            loss20 += np.mean(snr_reduction_from_misalignment(h, 0.35, 20.0))
        assert loss20 > loss10

    def test_paper_fig6_operating_point(self):
        """Fig. 6: 0.35 rad at 20 dB costs ~8 dB."""
        rng = np.random.default_rng(14)
        losses = [
            np.mean(snr_reduction_from_misalignment(
                random_channel_matrix(2, 2, rng=rng), 0.35, 20.0))
            for _ in range(200)
        ]
        assert np.mean(losses) == pytest.approx(8.0, abs=1.5)


class TestDiversity:
    def test_weights_unit_modulus(self):
        rng = np.random.default_rng(15)
        row = rng.normal(size=5) + 1j * rng.normal(size=5)
        w = diversity_precoder(row)
        assert np.allclose(np.abs(w), 1.0)

    def test_coherent_combining(self):
        rng = np.random.default_rng(16)
        row = rng.normal(size=5) + 1j * rng.normal(size=5)
        w = diversity_precoder(row)
        combined = row @ w
        assert combined.imag == pytest.approx(0.0, abs=1e-12)
        assert combined.real == pytest.approx(np.sum(np.abs(row)))

    def test_n_squared_snr_gain_with_equal_links(self):
        """§11.4: coherent diversity gives a multiplicative N^2 SNR gain."""
        n = 10
        row = np.ones(n, dtype=complex)
        w = diversity_precoder(row)
        assert abs(row @ w) ** 2 == pytest.approx(n**2)

    def test_zero_entries_handled(self):
        w = diversity_precoder(np.array([1.0 + 0j, 0.0]))
        assert w[1] == 0.0


class TestNulling:
    def test_perfect_alignment_no_leakage(self):
        h = random_channel_matrix(3, 3, rng=17)
        w, _ = zero_forcing_precoder(h)
        inr = interference_to_noise_ratio(
            h, w, noise_power=1.0, phase_errors=np.zeros(3), nulled_client=1
        )
        assert inr == pytest.approx(0.0, abs=1e-18)

    def test_misalignment_leaks_into_null(self):
        h = random_channel_matrix(3, 3, rng=18)
        w, _ = zero_forcing_precoder(h)
        inr = interference_to_noise_ratio(
            h, w, noise_power=1e-3, phase_errors=np.array([0.0, 0.05, -0.04]),
            nulled_client=0,
        )
        assert inr > 0.1
