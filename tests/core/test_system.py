"""Sample-level end-to-end system (§5)."""

import numpy as np
import pytest

from repro import MegaMimoSystem, SystemConfig, get_mcs
from repro.channel.models import RicianChannel
from repro.constants import FFT_SIZE
from repro.phy.preamble import lts_grid


def make_system(n_aps=2, n_clients=2, seed=4, snr_db=25.0, **overrides):
    config = SystemConfig(n_aps=n_aps, n_clients=n_clients, seed=seed, **overrides)
    return MegaMimoSystem.create(
        config, client_snr_db=snr_db, channel_model=RicianChannel(k_factor=7.0)
    )


class TestConfigValidation:
    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            SystemConfig(n_aps=2, n_clients=2, sync_strategy="magic")

    def test_zero_nodes(self):
        with pytest.raises(ValueError):
            SystemConfig(n_aps=0, n_clients=1)

    def test_snr_shape_validation(self):
        cfg = SystemConfig(n_aps=2, n_clients=2, seed=0)
        with pytest.raises(ValueError):
            MegaMimoSystem.create(cfg, client_snr_db=np.zeros(3))


class TestSounding:
    def test_channel_tensor_shape(self, sounded_system):
        tensor = sounded_system._channel_tensor
        assert tensor.shape == (FFT_SIZE, 2, 2)

    def test_estimates_match_genie(self, sounded_system):
        system = sounded_system
        occupied = np.abs(lts_grid()) > 0
        tref = system.reference_time
        for ci, client in enumerate(system.client_ids):
            for ai, ap in enumerate(system.ap_ids):
                link = system.medium.get_link(ap, client)
                osc_a = system.medium.oscillator(ap)
                osc_c = system.medium.oscillator(client)
                rot = np.exp(
                    1j
                    * (osc_a.phase_at([tref])[0] - osc_c.phase_at([tref])[0])
                )
                genie = link.taps[0] * rot
                est = system._channel_tensor[occupied, ci, ai]
                rel_err = abs(np.mean(est) - genie) / abs(genie)
                assert rel_err < 0.1

    def test_slaves_have_reference(self, sounded_system):
        for slave, sync in sounded_system.synchronizers.items():
            assert sync.reference is not None
            assert sync.cfo_tracker.estimate_hz is not None

    def test_sounding_cfo_seed_accurate(self, sounded_system):
        system = sounded_system
        lead_osc = system.medium.oscillator(system.lead_id)
        for slave, sync in system.synchronizers.items():
            true_cfo = (
                lead_osc.frequency_offset_hz
                - system.medium.oscillator(slave).frequency_offset_hz
            )
            assert sync.cfo_tracker.estimate_hz == pytest.approx(true_cfo, abs=40.0)


class TestJointTransmission:
    def test_both_clients_decode(self, sounded_system):
        payloads = [b"payload for client zero!", b"payload for client one!!"]
        report = sounded_system.joint_transmit(payloads, get_mcs(2), start_time=1e-3)
        for reception, payload in zip(report.receptions, payloads):
            assert reception.decoded.crc_ok
            assert reception.decoded.payload == payload

    def test_concurrent_streams_carry_different_data(self, sounded_system):
        payloads = [bytes([7] * 30), bytes([9] * 30)]
        report = sounded_system.joint_transmit(payloads, get_mcs(1), start_time=3e-3)
        got = [r.decoded.payload for r in report.receptions]
        assert got == payloads

    def test_misalignment_reported_small(self, sounded_system):
        report = sounded_system.joint_transmit(
            [b"A" * 20, b"B" * 20], get_mcs(2), start_time=5e-3
        )
        for mis in report.misalignment_rad.values():
            assert mis < 0.25

    def test_equal_symbol_count_required(self, sounded_system):
        with pytest.raises(ValueError):
            sounded_system.joint_transmit(
                [bytes(10), bytes(500)], get_mcs(2), start_time=7e-3
            )

    def test_transmit_before_sounding_rejected(self):
        system = make_system(seed=11)
        with pytest.raises(ValueError):
            system.joint_transmit([bytes(8), bytes(8)], get_mcs(0), 0.0)

    def test_stream_subset(self):
        system = make_system(n_aps=3, n_clients=3, seed=12)
        system.run_sounding(0.0)
        report = system.joint_transmit(
            [b"just one client stream!!"], get_mcs(2), start_time=1e-3, streams=[1]
        )
        assert len(report.receptions) == 1
        assert report.receptions[0].decoded.crc_ok


class TestSyncStrategies:
    def test_none_strategy_breaks_delivery(self):
        """Without phase correction, clients stop receiving their intended
        streams (they may still see a clean constellation — of a coherent
        mixture dominated by another client's data)."""
        failures = 0
        payloads = [b"A" * 30, b"B" * 30]
        for seed in (13, 23, 33):
            system = make_system(seed=seed, sync_strategy="none")
            system.run_sounding(0.0)
            # transmit far enough after sounding that raw oscillator drift
            # has rotated the slaves well away from the measured snapshot
            report = system.joint_transmit(payloads, get_mcs(3), start_time=5e-3)
            delivered = [
                r.decoded.payload == p for r, p in zip(report.receptions, payloads)
            ]
            failures += delivered.count(False)
        assert failures >= 3  # most intended deliveries fail across seeds

    def test_oracle_strategy_decodes(self):
        system = make_system(seed=14, sync_strategy="oracle")
        system.run_sounding(0.0)
        report = system.joint_transmit(
            [b"A" * 30, b"B" * 30], get_mcs(2), start_time=2e-3
        )
        assert all(r.decoded.crc_ok for r in report.receptions)

    def test_megamimo_close_to_oracle(self):
        results = {}
        for strategy in ("megamimo", "oracle"):
            system = make_system(seed=15, sync_strategy=strategy)
            system.run_sounding(0.0)
            report = system.joint_transmit(
                [b"A" * 30, b"B" * 30], get_mcs(2), start_time=2e-3
            )
            results[strategy] = np.mean(
                [r.effective_snr_db for r in report.receptions]
            )
        assert results["megamimo"] > results["oracle"] - 3.0

    def test_naive_strategy_degrades_over_time(self):
        """§5.2b: CFO extrapolation accumulates misalignment with elapsed
        time (whereas MegaMIMO's per-packet re-measurement does not)."""
        early, late = [], []
        for seed in (16, 17, 18, 19, 20, 21):
            system = make_system(seed=seed, sync_strategy="naive")
            system.run_sounding(0.0)
            r_early = system.joint_transmit(
                [b"A" * 20, b"B" * 20], get_mcs(0), start_time=1e-3
            )
            r_late = system.joint_transmit(
                [b"A" * 20, b"B" * 20], get_mcs(0), start_time=250e-3
            )
            early.extend(r_early.misalignment_rad.values())
            late.extend(r_late.misalignment_rad.values())
        assert np.mean(late) > 2 * np.mean(early)
        assert np.mean(late) > 0.3


class TestDiversityMode:
    def test_single_client_decodes(self):
        system = make_system(n_aps=3, n_clients=1, seed=19, snr_db=12.0)
        system.run_sounding(0.0)
        report = system.diversity_transmit(
            b"diversity payload bytes!", get_mcs(1), client_index=0, start_time=1e-3
        )
        assert report.receptions[0].decoded.crc_ok

    def test_diversity_beats_single_ap_snr(self):
        """§8/§11.4: coherent combining raises SNR above any single link."""
        link_snr = 8.0
        system = make_system(n_aps=4, n_clients=1, seed=20, snr_db=link_snr)
        system.run_sounding(0.0)
        report = system.diversity_transmit(
            bytes(30), get_mcs(1), client_index=0, start_time=1e-3
        )
        assert report.receptions[0].effective_snr_db > link_snr + 3.0


class TestNulling:
    def test_inr_small_with_sync(self):
        system = make_system(n_aps=3, n_clients=3, seed=21)
        system.run_sounding(0.0)
        inr = system.measure_inr(nulled_client=1, start_time=1e-3)
        assert inr < 3.0

    def test_inr_large_without_sync(self):
        system = make_system(n_aps=3, n_clients=3, seed=21, sync_strategy="none")
        system.run_sounding(0.0)
        inr = system.measure_inr(nulled_client=1, start_time=5e-3)
        assert inr > 3.0
