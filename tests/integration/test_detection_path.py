"""Detection-based (non-genie) receive path through the full system."""

import numpy as np

from repro import MegaMimoSystem, SystemConfig, get_mcs
from repro.channel.models import RicianChannel


def make_system(seed=4, use_detection=True, **overrides):
    config = SystemConfig(
        n_aps=2, n_clients=2, seed=seed, use_detection=use_detection, **overrides
    )
    return MegaMimoSystem.create(
        config, client_snr_db=25.0, channel_model=RicianChannel(k_factor=7.0)
    )


class TestDetectionReceivePath:
    def test_decodes_via_detection(self):
        system = make_system()
        system.run_sounding(0.0)
        payloads = [b"A" * 25, b"B" * 25]
        report = system.joint_transmit(payloads, get_mcs(2), start_time=1e-3)
        assert [r.decoded.payload for r in report.receptions] == payloads
        assert system.detection_failures == 0

    def test_matches_genie_timing_results(self):
        """Detection must land on the same sample the genie path uses, so
        SNRs agree closely."""
        results = {}
        for use_detection in (False, True):
            system = make_system(seed=8, use_detection=use_detection)
            system.run_sounding(0.0)
            report = system.joint_transmit(
                [b"A" * 25, b"B" * 25], get_mcs(2), start_time=1e-3
            )
            results[use_detection] = [r.effective_snr_db for r in report.receptions]
        assert np.allclose(results[True], results[False], atol=3.5)

    def test_slave_observation_via_detection(self):
        system = make_system(seed=12)
        system.run_sounding(0.0)
        report = system.joint_transmit(
            [b"A" * 20, b"B" * 20], get_mcs(1), start_time=2e-3
        )
        assert all(m < 0.3 for m in report.misalignment_rad.values())

    def test_repeated_packets(self):
        system = make_system(seed=16)
        system.run_sounding(0.0)
        ok = 0
        for p in range(4):
            report = system.joint_transmit(
                [bytes([65 + p]) * 20, bytes([97 + p]) * 20],
                get_mcs(2),
                start_time=1e-3 + p * 2.5e-3,
            )
            ok += sum(r.decoded.crc_ok for r in report.receptions)
        assert ok >= 7
        assert system.detection_failures == 0

    def test_misdetection_reported_not_crash(self):
        """At absurdly low SNR detection may fail; the system must degrade
        gracefully (fallback + counter) rather than crash."""
        config = SystemConfig(
            n_aps=2, n_clients=2, seed=20, use_detection=True, ap_ap_snr_db=-10.0
        )
        system = MegaMimoSystem.create(config, client_snr_db=-10.0)
        system.run_sounding(0.0)
        report = system.joint_transmit(
            [b"A" * 16, b"B" * 16], get_mcs(0), start_time=1e-3
        )
        assert len(report.receptions) == 2  # completed end to end
