"""Golden-result regression: fixed-seed experiment outputs must not drift.

The experiment runners are fully seeded, so any change to the PHY, channel
models, error calibration or rate tables shows up here as an exact-value
drift — the earliest possible signal that a refactor changed the physics.
Reference values live in tests/data/golden.json; regenerate them
deliberately (with justification in the commit) when behaviour is *meant*
to change.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.sim.experiments import run_fig6, run_fig8, run_fig9, run_fig12

GOLDEN = json.loads((Path(__file__).parent.parent / "data" / "golden.json").read_text())


class TestGolden:
    def test_fig6(self):
        r = run_fig6(seed=1, n_channels=50)
        assert r.reduction_at(20.0, 0.35) == pytest.approx(
            GOLDEN["fig6_loss_035_20db"], rel=1e-9
        )
        assert r.reduction_at(10.0, 0.35) == pytest.approx(
            GOLDEN["fig6_loss_035_10db"], rel=1e-9
        )

    def test_fig8(self):
        r = run_fig8(seed=3, n_receivers=(2, 6, 10), n_topologies=4, n_packets=3)
        assert np.allclose(r.inr_db["high"], GOLDEN["fig8_inr_high"], rtol=1e-9)

    def test_fig9(self):
        r = run_fig9(seed=4, n_aps=(2, 6, 10), n_topologies=4)
        gains = [r.median_gain("high", n) for n in (2, 6, 10)]
        assert np.allclose(gains, GOLDEN["fig9_gain_high"], rtol=1e-9)
        assert np.allclose(
            r.mean_baseline_mbps("high"),
            GOLDEN["fig9_baseline_high_mbps"],
            rtol=1e-9,
        )

    def test_fig12(self):
        r = run_fig12(seed=6, n_topologies=6)
        for band, expected in GOLDEN["fig12_gains"].items():
            assert r.mean_gain(band) == pytest.approx(expected, rel=1e-9)
