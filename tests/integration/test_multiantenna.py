"""Multi-antenna AP devices at sample level (§10b's testbed construction).

"Each AP is built by connecting two USRP2 nodes via an external clock and
making them act as a 2-antenna node ... it can combine two 2x2 MIMO
systems to create a 4x4 MIMO system."
"""

import numpy as np
import pytest

from repro import MegaMimoSystem, SystemConfig, get_mcs
from repro.channel.models import RicianChannel


def make_system(seed=3, n_aps=2, antennas=2, n_clients=4, snr=28.0):
    config = SystemConfig(
        n_aps=n_aps, n_clients=n_clients, antennas_per_ap=antennas, seed=seed
    )
    return MegaMimoSystem.create(
        config, client_snr_db=snr, channel_model=RicianChannel(k_factor=10.0)
    )


class TestConstruction:
    def test_antenna_naming(self):
        system = make_system()
        assert system.antenna_ids == ["ap0.0", "ap0.1", "ap1.0", "ap1.1"]
        assert system.antenna_device == [0, 0, 1, 1]
        assert system.lead_antenna == "ap0.0"

    def test_single_antenna_names_unchanged(self):
        system = MegaMimoSystem.create(
            SystemConfig(n_aps=2, n_clients=2, seed=1), client_snr_db=20.0
        )
        assert system.antenna_ids == ["ap0", "ap1"]

    def test_antennas_share_device_oscillator(self):
        system = make_system()
        assert system.medium.oscillator("ap0.0") is system.medium.oscillator("ap0.1")
        assert system.medium.oscillator("ap0.0") is not system.medium.oscillator(
            "ap1.0"
        )

    def test_one_synchronizer_per_slave_device(self):
        system = make_system(n_aps=3)
        assert set(system.synchronizers) == {"ap1", "ap2"}

    def test_channel_tensor_covers_all_antennas(self):
        system = make_system()
        system.run_sounding(0.0)
        assert system._channel_tensor.shape == (64, 4, 4)


class TestFourStreamDelivery:
    def test_4x4_from_two_devices(self):
        """Two 2-antenna APs deliver 4 concurrent streams — more than either
        device's antenna count — with a single phase synchronization."""
        system = make_system(seed=3)
        system.run_sounding(0.0)
        payloads = [bytes([65 + i]) * 25 for i in range(4)]
        report = system.joint_transmit(payloads, get_mcs(1), start_time=1e-3)
        assert [r.decoded.payload for r in report.receptions] == payloads
        # only the slave *device* needed synchronization
        assert list(report.misalignment_rad) == ["ap1"]
        assert report.misalignment_rad["ap1"] < 0.2

    def test_intra_device_antennas_need_no_sync(self):
        """A single 2-antenna AP beamforms to 2 clients with no slaves at
        all — ordinary MU-MIMO, the Fig. 1(a) baseline."""
        system = make_system(seed=5, n_aps=1, antennas=2, n_clients=2)
        system.run_sounding(0.0)
        payloads = [b"A" * 25, b"B" * 25]
        report = system.joint_transmit(payloads, get_mcs(2), start_time=1e-3)
        assert [r.decoded.payload for r in report.receptions] == payloads
        assert report.misalignment_rad == {}

    def test_stream_subset_on_antennas(self):
        system = make_system(seed=7)
        system.run_sounding(0.0)
        report = system.joint_transmit(
            [b"X" * 25, b"Y" * 25], get_mcs(2), start_time=1e-3, streams=[1, 3]
        )
        assert [r.decoded.payload for r in report.receptions] == [b"X" * 25, b"Y" * 25]


class TestDiversityAcrossAntennas:
    def test_all_four_antennas_combine(self):
        system = make_system(seed=9, n_clients=1, snr=8.0)
        system.run_sounding(0.0)
        report = system.diversity_transmit(
            b"four antennas, one stream", get_mcs(1), client_index=0, start_time=1e-3
        )
        assert report.receptions[0].decoded.crc_ok
        # 4 coherent antennas: ~12 dB array gain over one 8 dB link
        assert report.receptions[0].effective_snr_db > 13.0


class TestMixedModeTiming:
    def test_slaves_join_right_after_legacy_prefix(self):
        """§6.1: with hardware turnaround the joint part starts at the end
        of the lead's legacy preamble."""
        from repro.phy.preamble import sync_header_length

        system_mixed = MegaMimoSystem.create(
            SystemConfig(n_aps=2, n_clients=2, seed=4, mixed_mode=True),
            client_snr_db=25.0,
            channel_model=RicianChannel(k_factor=7.0),
        )
        system_mixed.run_sounding(0.0)
        t0 = 1e-3
        report = system_mixed.joint_transmit(
            [b"A" * 25, b"B" * 25], get_mcs(2), start_time=t0
        )
        fs = system_mixed.config.sample_rate
        expected = round((t0 + sync_header_length() / fs) * fs) / fs
        assert report.joint_start_time == pytest.approx(expected, abs=1e-9)
        assert all(r.decoded.crc_ok for r in report.receptions)

    def test_mixed_mode_reduces_extrapolation_error(self):
        """A shorter header-to-data gap leaves less time for residual CFO
        error to accumulate, so misalignment shrinks (statistically)."""
        mis = {}
        for mixed in (False, True):
            values = []
            for seed in (4, 8, 12, 16):
                system = MegaMimoSystem.create(
                    SystemConfig(n_aps=2, n_clients=2, seed=seed, mixed_mode=mixed),
                    client_snr_db=25.0,
                    channel_model=RicianChannel(k_factor=7.0),
                )
                system.run_sounding(0.0)
                report = system.joint_transmit(
                    [b"A" * 20, b"B" * 20], get_mcs(1), start_time=1e-3
                )
                values.extend(report.misalignment_rad.values())
            mis[mixed] = np.mean(values)
        assert mis[True] <= mis[False] + 0.01
