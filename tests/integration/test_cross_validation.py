"""Cross-validation: the fast frequency-domain path against the
sample-level protocol, and the narrowband abstraction against the medium."""

import numpy as np
import pytest

from repro import MegaMimoSystem, SystemConfig, get_mcs
from repro.channel.models import RicianChannel
from repro.phy.preamble import lts_grid
from repro.sim.fastsim import joint_zf_sinr_db


class TestFastVsSampleLevel:
    def test_post_beamforming_snr_agreement(self):
        """Feed the sample-level system's *measured* channel tensor through
        the fast path; its predicted SINR must match what clients actually
        report from pilots during a real joint transmission."""
        config = SystemConfig(n_aps=2, n_clients=2, seed=41)
        system = MegaMimoSystem.create(
            config, client_snr_db=25.0, channel_model=RicianChannel(k_factor=8.0)
        )
        system.run_sounding(0.0)

        occupied = np.nonzero(np.abs(lts_grid()) > 0)[0]
        channels = system._channel_tensor[occupied]  # (52, 2, 2)
        predicted = joint_zf_sinr_db(channels, noise_power=config.noise_power)
        predicted_mean = np.mean(predicted, axis=1)

        report = system.joint_transmit(
            [b"A" * 40, b"B" * 40], get_mcs(2), start_time=1e-3
        )
        measured = np.array([r.effective_snr_db for r in report.receptions])
        # agreement within a few dB (pilot-based SNR estimation is noisy)
        assert abs(np.mean(measured) - np.mean(predicted_mean)) < 3.0
        assert np.all(np.abs(measured - predicted_mean) < 5.0)

    def test_misalignment_breaks_intended_delivery(self):
        """With no slave correction the fast path predicts the intended
        streams' SINR collapses — and the sample-level clients indeed stop
        receiving *their own* payloads (they may lock onto a coherent
        mixture dominated by another client's stream, which is exactly why
        misalignment destroys multi-user beamforming even when the received
        constellation looks clean)."""
        seed = 42
        config = SystemConfig(n_aps=2, n_clients=2, seed=seed, sync_strategy="none")
        system = MegaMimoSystem.create(
            config, client_snr_db=25.0, channel_model=RicianChannel(k_factor=8.0)
        )
        system.run_sounding(0.0)
        payloads = [b"A" * 40, b"B" * 40]
        report = system.joint_transmit(payloads, get_mcs(0), 4e-3)

        # genie phase error of the uncorrected slave at transmit time
        lead = system.medium.oscillator(system.lead_id)
        slave = system.medium.oscillator(system.ap_ids[1])
        tref = system.reference_time
        t = report.joint_start_time
        err = (
            lead.phase_at([t])[0]
            - slave.phase_at([t])[0]
            - lead.phase_at([tref])[0]
            + slave.phase_at([tref])[0]
        )

        occupied = np.nonzero(np.abs(lts_grid()) > 0)[0]
        channels = system._channel_tensor[occupied]
        predicted = np.mean(
            joint_zf_sinr_db(channels, phase_errors=np.array([0.0, -err]))
        )
        assert predicted < 8.0  # intended-stream SINR collapses

        delivered = [
            r.decoded.payload == p for r, p in zip(report.receptions, payloads)
        ]
        assert not all(delivered)

        # the oracle-corrected system delivers both intended payloads
        oracle = MegaMimoSystem.create(
            SystemConfig(n_aps=2, n_clients=2, seed=seed, sync_strategy="oracle"),
            client_snr_db=25.0,
            channel_model=RicianChannel(k_factor=8.0),
        )
        oracle.run_sounding(0.0)
        oracle_report = oracle.joint_transmit(payloads, get_mcs(0), 4e-3)
        assert [
            r.decoded.payload == p
            for r, p in zip(oracle_report.receptions, payloads)
        ] == [True, True]


class TestNarrowbandVsMedium:
    def test_rotation_convention_matches(self):
        """Both abstractions must rotate the channel by e^{j(theta_tx -
        theta_rx)} — the §6/§7 math depends on it."""
        from repro.channel.medium import Medium
        from repro.channel.models import LinkChannel
        from repro.channel.oscillator import Oscillator, OscillatorConfig
        from repro.core.narrowband import NarrowbandNetwork

        osc_tx = Oscillator(OscillatorConfig(ppm_offset=1.0, phase_noise_rad2_per_s=0.0))
        osc_rx = Oscillator(OscillatorConfig(ppm_offset=-1.0, phase_noise_rad2_per_s=0.0))

        net = NarrowbandNetwork(rng=0)
        net.add_device("tx", ["t"], oscillator=osc_tx)
        net.add_device("rx", ["r"], oscillator=osc_rx)
        net.set_channel("t", "r", 1.0 + 0j)

        medium = Medium(10e6, noise_power=0.0, rng=0)
        medium.register_node("t", osc_tx)
        medium.register_node("r", osc_rx)
        medium.set_link("t", "r", LinkChannel(taps=np.array([1.0 + 0j])))

        t = 2e-4
        medium.transmit("t", np.ones(1, dtype=complex), t)
        sample = medium.receive("r", t, 1)[0]
        narrowband = net.true_channel("t", "r", t)
        assert np.angle(sample) == pytest.approx(np.angle(narrowband), abs=1e-9)


class TestInrCrossValidation:
    def test_sample_level_inr_matches_fast_path_band(self):
        """The sample-level nulling measurement (Fig. 8 methodology) must
        land in the band the fast path predicts from the same measured
        channel snapshot with the calibrated error model."""
        from repro.sim.fastsim import SyncErrorModel, nulling_inr_db

        inrs = []
        predictions = []
        for seed in (44, 45, 46):
            config = SystemConfig(n_aps=3, n_clients=3, seed=seed)
            system = MegaMimoSystem.create(
                config, client_snr_db=22.0, channel_model=RicianChannel(k_factor=8.0)
            )
            system.run_sounding(0.0)
            inrs.append(system.measure_inr(nulled_client=1, start_time=1e-3))

            occupied = np.nonzero(np.abs(lts_grid()) > 0)[0]
            channels = system._channel_tensor[occupied]
            model = SyncErrorModel()
            rng = np.random.default_rng(seed)
            draws = [
                nulling_inr_db(
                    channels, 1, phase_errors=model.phase_errors(3, rng)
                )
                for _ in range(20)
            ]
            predictions.append(np.mean(draws))
        # both paths agree INR is small, and within a few dB of each other
        assert np.mean(inrs) < 3.0
        assert abs(np.mean(inrs) - np.mean(predictions)) < 2.5
