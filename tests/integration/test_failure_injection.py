"""Failure injection: the system's behaviour when things go wrong.

The most important claim exercised here is §9's loss decoupling: "if APs
have stale channel information to a client, only the packet to that client
is affected, and packets at other clients will still be received
correctly."

The sweep-runtime classes inject the other kind of failure — a kernel that
raises, and a worker process that dies mid-chunk — and assert the engine's
degrade-to-serial contract: the sweep still completes with results
bit-identical to a clean serial run, and the recovery is visible in the
``runtime.*`` obs counters.
"""

import os
import signal

import numpy as np

from repro import MegaMimoSystem, SystemConfig, get_mcs
from repro.channel.models import RicianChannel
from repro.mac.simulator import DownlinkSimulator, LinkLayerConfig
from repro.obs import metrics
from repro.phy.preamble import lts_grid
from repro.runtime import WORKER_ENV_FLAG, CellSpec, run_sweep


def make_system(seed, n=3, **overrides):
    config = SystemConfig(n_aps=n, n_clients=n, seed=seed, **overrides)
    return MegaMimoSystem.create(
        config, client_snr_db=25.0, channel_model=RicianChannel(k_factor=8.0)
    )


class TestStaleCsiDecoupling:
    def test_corrupted_feedback_hurts_only_that_client(self):
        """Corrupt one client's fed-back CSI: that client's stream breaks,
        the others keep decoding (§9)."""
        others_ok = 0
        victim_fail = 0
        for seed in (51, 52, 53):
            system = make_system(seed)
            system.run_sounding(0.0)
            # client 0's feedback arrives corrupted: its row of the channel
            # snapshot is replaced by a random (wrong) channel
            rng = np.random.default_rng(seed)
            occupied = np.abs(lts_grid()) > 0
            row = system._channel_tensor[:, 0, :]
            scale = np.mean(np.abs(row[occupied]))
            system._channel_tensor[:, 0, :] = scale * (
                rng.normal(size=row.shape) + 1j * rng.normal(size=row.shape)
            ) / np.sqrt(2)

            payloads = [b"A" * 25, b"B" * 25, b"C" * 25]
            report = system.joint_transmit(payloads, get_mcs(2), start_time=1e-3)
            delivered = [
                r.decoded.payload == p
                for r, p in zip(report.receptions, payloads)
            ]
            victim_fail += int(not delivered[0])
            others_ok += sum(delivered[1:])
        assert victim_fail >= 2  # the victim's stream is (almost) always lost
        assert others_ok >= 5  # the other clients are essentially unaffected


class TestDegradedSlaveLink:
    def test_weak_lead_slave_link_degrades_sync(self):
        """A slave that can barely hear the lead mis-measures its phase."""
        strong = make_system(61, n=2, ap_ap_snr_db=30.0)
        weak = make_system(61, n=2, ap_ap_snr_db=3.0)
        mis = {}
        for name, system in (("strong", strong), ("weak", weak)):
            system.run_sounding(0.0)
            report = system.joint_transmit(
                [b"A" * 20, b"B" * 20], get_mcs(0), start_time=1e-3
            )
            mis[name] = np.mean(list(report.misalignment_rad.values()))
        assert mis["weak"] > 2 * mis["strong"]


class TestInterferer:
    def test_foreign_transmission_corrupts_frames(self):
        """A non-MegaMIMO interferer talking over the joint frame causes CRC
        failures — and a quiet retry succeeds."""
        from repro.channel.models import FlatRayleighChannel
        from repro.channel.oscillator import Oscillator, OscillatorConfig

        system = make_system(71, n=2)
        system.run_sounding(0.0)
        # add a rogue node audible at both clients
        rogue_osc = Oscillator(OscillatorConfig(ppm_offset=1.0), rng=0)
        system.medium.register_node("rogue", rogue_osc)
        for client in system.client_ids:
            system.medium.set_link(
                "rogue", client, FlatRayleighChannel().realize(300.0, rng=1)
            )

        payloads = [b"A" * 25, b"B" * 25]

        # interfered transmission: rogue blasts noise over the data frame
        rng = np.random.default_rng(2)
        jam = 2.0 * (rng.normal(size=4000) + 1j * rng.normal(size=4000)) / np.sqrt(2)

        # transmit jam covering the joint frame window
        t0 = 1e-3
        system.medium.clear()
        # run the protocol manually so the jam overlaps the data:
        # joint_transmit clears the medium first, so inject via a wrapper
        original_transmit = system.medium.transmit

        def transmit_and_jam(node, samples, start):
            original_transmit(node, samples, start)
            if node == system.lead_id and samples.size > 400:
                original_transmit("rogue", jam, start)

        system.medium.transmit = transmit_and_jam
        report = system.joint_transmit(payloads, get_mcs(2), start_time=t0)
        system.medium.transmit = original_transmit
        assert not all(r.decoded.crc_ok for r in report.receptions)

        # clean retry succeeds
        retry = system.joint_transmit(payloads, get_mcs(2), start_time=t0 + 3e-3)
        assert all(r.decoded.crc_ok for r in retry.receptions)


class TestSimulatorUnderStress:
    def test_rate_adaptation_cuts_losses(self):
        """With fast fading and sparse sounding, loss-driven margin
        adaptation trades rate for reliability."""
        base = dict(
            n_aps=3,
            n_clients=3,
            duration_s=0.25,
            coherence_time_s=0.04,
            resound_interval_s=60e-3,
            seed=81,
        )
        fixed = DownlinkSimulator(LinkLayerConfig(rate_adaptation=False, **base)).run()
        adaptive = DownlinkSimulator(LinkLayerConfig(rate_adaptation=True, **base)).run()
        assert adaptive.loss_rate < fixed.loss_rate

    def test_hopeless_channel_no_crash(self):
        trace = DownlinkSimulator(
            LinkLayerConfig(
                n_aps=2,
                n_clients=2,
                duration_s=0.05,
                snr_band=(-10.0, -5.0),
                seed=91,
            )
        ).run()
        assert trace.total_goodput_bps >= 0.0


# ---------------------------------------------------------------------------
# Sweep-runtime fault tolerance
# ---------------------------------------------------------------------------


def draw_kernel(params, seed):
    """Well-behaved picklable kernel for the reference serial runs."""
    rng = np.random.default_rng(seed)
    return float(rng.standard_normal())


def raising_in_worker_kernel(params, seed):
    """Raises inside pool workers only; clean when retried in the parent."""
    if os.environ.get(WORKER_ENV_FLAG):
        raise RuntimeError("injected kernel failure")
    return draw_kernel(params, seed)


def worker_suicide_kernel(params, seed):
    """SIGKILLs the hosting pool worker; clean when retried in the parent.

    Killing -9 breaks the whole ProcessPoolExecutor (BrokenProcessPool on
    every outstanding future), which is exactly the degradation path under
    test.
    """
    if os.environ.get(WORKER_ENV_FLAG):
        os.kill(os.getpid(), signal.SIGKILL)
    return draw_kernel(params, seed)


CELLS = [CellSpec(key=n, params=None, n_trials=6) for n in range(3)]


class TestSweepFaultTolerance:
    def _reference(self):
        return run_sweep("faulty", draw_kernel, CELLS, master_seed=5)

    def test_raising_kernel_retried_serially(self):
        retries = metrics.counter("runtime.serial_retries")
        failures = metrics.counter("runtime.chunk_failures")
        before = (retries.value, failures.value)
        r = run_sweep("faulty", raising_in_worker_kernel, CELLS,
                      master_seed=5, workers=2)
        assert r.results == self._reference().results
        assert r.chunk_failures > 0
        assert retries.value == before[0] + r.chunk_failures
        assert failures.value == before[1] + r.chunk_failures

    def test_killed_worker_degrades_to_serial(self):
        retries = metrics.counter("runtime.serial_retries")
        before = retries.value
        r = run_sweep("faulty", worker_suicide_kernel, CELLS,
                      master_seed=5, workers=2)
        assert r.results == self._reference().results
        assert r.chunk_failures > 0
        assert retries.value > before

    def test_failures_leave_checkpoint_complete(self, tmp_path):
        ck = tmp_path / "faulty.jsonl"
        r = run_sweep("faulty", raising_in_worker_kernel, CELLS,
                      master_seed=5, workers=2, checkpoint=str(ck))
        resumed = run_sweep("faulty", raising_in_worker_kernel, CELLS,
                            master_seed=5, workers=2, checkpoint=str(ck),
                            resume=True)
        assert resumed.resumed_chunks > 0
        assert resumed.chunk_failures == 0  # nothing left to run
        assert resumed.results == r.results
