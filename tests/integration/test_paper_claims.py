"""The paper's headline quantitative claims, asserted end to end.

Each test reproduces a figure at reduced scale and checks the *shape* the
paper reports: who wins, roughly by how much, and in which direction the
trends run.  EXPERIMENTS.md records the full-scale numbers.
"""

import numpy as np
import pytest

from repro.sim.experiments import (
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig11,
    run_fig12,
)


class TestFig6Claims:
    def test_035_rad_costs_8db_at_20db_snr(self):
        r = run_fig6(n_channels=100)
        assert r.reduction_at(20.0, 0.35) == pytest.approx(8.0, abs=1.5)

    def test_loss_monotonic_and_snr_ordering(self):
        r = run_fig6(n_channels=60)
        for snr, curve in r.reduction_db.items():
            assert np.all(np.diff(curve) > 0)
        assert np.all(r.reduction_db[20.0][1:] > r.reduction_db[10.0][1:])


class TestFig7Claims:
    def test_misalignment_distribution(self):
        """Paper: median 0.017 rad, p95 0.05 rad."""
        r = run_fig7(seed=2, n_systems=6, n_rounds=20)
        assert r.median_rad < 0.035
        assert r.p95_rad < 0.10


class TestFig8Claims:
    def test_inr_below_1_5db_and_slope(self):
        """Paper: INR stays below ~1.5 dB even with 10 receivers; ~0.13 dB
        per added AP-client pair at high SNR."""
        r = run_fig8(n_receivers=(2, 4, 6, 8, 10), n_topologies=6, n_packets=4)
        assert r.inr_db["high"][-1] < 2.0
        assert 0.05 < r.slope_db_per_pair("high") < 0.25
        # higher SNR band -> higher INR (§11.1c)
        assert np.mean(r.inr_db["high"]) > np.mean(r.inr_db["low"])


class TestFig9Claims:
    @pytest.fixture(scope="class")
    def fig9(self):
        return run_fig9(seed=3, n_aps=(2, 4, 6, 8, 10), n_topologies=6)

    def test_linear_scaling(self, fig9):
        """Throughput grows ~linearly with AP count at every band."""
        for band in ("high", "medium", "low"):
            mm = fig9.mean_megamimo_mbps(band)
            assert mm[-1] > 3.5 * mm[0]  # 10 APs vs 2 APs
            # monotone growth
            assert np.all(np.diff(mm) > -5.0)

    def test_baseline_flat(self, fig9):
        for band in ("high", "medium", "low"):
            bl = fig9.mean_baseline_mbps(band)
            assert np.std(bl) < 0.25 * np.mean(bl)

    def test_median_gain_at_10_aps(self, fig9):
        """Paper: 8.1-9.4x across bands at 10 APs."""
        g_high = fig9.median_gain("high", 10)
        g_low = fig9.median_gain("low", 10)
        assert 7.0 < g_high < 11.0
        assert 5.0 < g_low <= g_high + 0.5

    def test_baseline_absolute_levels(self, fig9):
        """Paper: 7.75 / 14.9 / 23.6 Mbps at low/medium/high."""
        assert fig9.mean_baseline_mbps("high").mean() == pytest.approx(23.6, abs=2.5)
        assert fig9.mean_baseline_mbps("medium").mean() == pytest.approx(14.9, abs=3.0)
        assert fig9.mean_baseline_mbps("low").mean() == pytest.approx(7.75, abs=2.5)


class TestFig11Claims:
    def test_dead_spot_revival(self):
        """Paper: a client with 0 dB links gets ~21 Mbps from 10 APs while
        802.11 alone delivers (almost) nothing."""
        r = run_fig11(n_aps_list=(10,), snr_db=(0.0,), n_draws=20)
        assert r.throughput_mbps[1][0] < 2.0
        assert r.throughput_mbps[10][0] == pytest.approx(21.0, abs=6.0)

    def test_gain_largest_at_low_snr(self):
        r = run_fig11(n_aps_list=(4,), snr_db=(0.0, 20.0), n_draws=10)
        base = np.maximum(r.throughput_mbps[1], 0.05)
        gains = r.throughput_mbps[4] / base
        assert gains[0] > gains[1]

    def test_more_aps_never_hurt(self):
        r = run_fig11(n_aps_list=(2, 6, 10), snr_db=(5.0,), n_draws=10)
        assert (
            r.throughput_mbps[10][0]
            >= r.throughput_mbps[6][0]
            >= r.throughput_mbps[2][0] - 1.0
        )


class TestFig12Claims:
    def test_80211n_compat_gains(self):
        """Paper: 1.67-1.83x average gain; high SNR gains exceed low."""
        r = run_fig12(n_topologies=12)
        for band in ("high", "medium", "low"):
            assert 1.3 < r.mean_gain(band) < 2.3
        assert r.mean_gain("high") > r.mean_gain("low") - 0.1


class TestFig12SampleLevelClaims:
    def test_real_waveform_gains_in_band(self):
        """§6 end to end with real packets: the measured gain over the
        single-AP baseline lands in the paper's neighbourhood."""
        from repro.sim.experiments import run_fig12_sample_level

        r = run_fig12_sample_level(seed=15, n_topologies=4)
        assert 1.1 < r.mean_gain < 2.9
        # MegaMIMO beats the baseline on most topologies
        assert (r.gains > 1.0).mean() >= 0.5
