"""The paper's 802.11n scenario end to end at sample level (§10b, Fig. 12):
two 2-antenna APs jointly serve two 2-antenna clients with 4 streams.
"""


from repro import MegaMimoSystem, SystemConfig, get_mcs
from repro.channel.models import RicianChannel


def make_4x4(seed=5, snr=28.0):
    config = SystemConfig(
        n_aps=2, n_clients=2, antennas_per_ap=2, antennas_per_client=2, seed=seed
    )
    return MegaMimoSystem.create(
        config, client_snr_db=snr, channel_model=RicianChannel(k_factor=10.0)
    )


class TestConstruction:
    def test_antenna_rosters(self):
        system = make_4x4()
        assert system.antenna_ids == ["ap0.0", "ap0.1", "ap1.0", "ap1.1"]
        assert system.client_antenna_ids == [
            "client0.0", "client0.1", "client1.0", "client1.1",
        ]

    def test_client_antennas_share_oscillator(self):
        system = make_4x4()
        assert system.medium.oscillator("client0.0") is system.medium.oscillator(
            "client0.1"
        )
        assert system.medium.oscillator("client0.0") is not system.medium.oscillator(
            "client1.0"
        )

    def test_tensor_is_4x4(self):
        system = make_4x4()
        system.run_sounding(0.0)
        assert system._channel_tensor.shape == (64, 4, 4)


class TestFourStreams:
    def test_each_antenna_gets_its_stream(self):
        system = make_4x4(seed=5)
        system.run_sounding(0.0)
        payloads = [bytes([65 + i]) * 25 for i in range(4)]
        report = system.joint_transmit(payloads, get_mcs(1), start_time=1e-3)
        assert [r.decoded.payload for r in report.receptions] == payloads

    def test_per_client_aggregation(self):
        """A 2-antenna client's throughput is the sum of its two streams —
        2x what a single-antenna client could get from the same system."""
        system = make_4x4(seed=9)
        system.run_sounding(0.0)
        payloads = [bytes([70 + i]) * 40 for i in range(4)]
        report = system.joint_transmit(payloads, get_mcs(2), start_time=1e-3)
        per_client_streams = {0: 0, 1: 0}
        for row, r in enumerate(report.receptions):
            if r.decoded.crc_ok:
                per_client_streams[system.client_antenna_device[row]] += 1
        assert per_client_streams[0] >= 1 and per_client_streams[1] >= 1
        assert sum(per_client_streams.values()) >= 3

    def test_single_sync_for_four_streams(self):
        system = make_4x4(seed=13)
        system.run_sounding(0.0)
        report = system.joint_transmit(
            [bytes([i]) * 20 for i in range(4)], get_mcs(0), start_time=1e-3
        )
        assert list(report.misalignment_rad) == ["ap1"]

    def test_stream_subset_to_one_client(self):
        """Serve only client 1's two antennas (e.g. client 0 has no traffic)."""
        system = make_4x4(seed=17)
        system.run_sounding(0.0)
        payloads = [b"X" * 25, b"Y" * 25]
        report = system.joint_transmit(
            payloads, get_mcs(2), start_time=1e-3, streams=[2, 3]
        )
        assert [r.decoded.payload for r in report.receptions] == payloads
