"""Full-protocol integration tests on the sample-level simulator."""


from repro import MegaMimoSystem, SystemConfig, get_mcs
from repro.channel.models import MultipathChannel, RicianChannel


class TestMultiApScaling:
    def test_three_by_three_concurrent_streams(self):
        """3 APs deliver 3 distinct packets concurrently — more streams than
        any single (1-antenna) AP could ever send."""
        config = SystemConfig(n_aps=3, n_clients=3, seed=31)
        system = MegaMimoSystem.create(
            config, client_snr_db=25.0, channel_model=RicianChannel(k_factor=10.0)
        )
        system.run_sounding(0.0)
        payloads = [bytes([i] * 40) for i in range(3)]
        report = system.joint_transmit(payloads, get_mcs(2), start_time=1e-3)
        for i, r in enumerate(report.receptions):
            assert r.decoded.crc_ok, f"client {i} failed"
            assert r.decoded.payload == payloads[i]

    def test_repeated_packets_within_coherence_time(self):
        """One sounding phase serves many data packets (§5: channels only
        need re-measuring on the order of the coherence time)."""
        config = SystemConfig(n_aps=2, n_clients=2, seed=32)
        system = MegaMimoSystem.create(
            config, client_snr_db=25.0, channel_model=RicianChannel(k_factor=7.0)
        )
        system.run_sounding(0.0)
        ok = 0
        n_packets = 6
        for p in range(n_packets):
            report = system.joint_transmit(
                [bytes([p] * 25), bytes([p + 100] * 25)],
                get_mcs(2),
                start_time=1e-3 + p * 3e-3,
            )
            ok += sum(r.decoded.crc_ok for r in report.receptions)
        assert ok >= 2 * n_packets - 1  # allow one marginal loss


class TestFrequencySelectiveChannels:
    def test_multipath_beamforming(self):
        """Per-subcarrier precoding handles frequency-selective channels."""
        config = SystemConfig(n_aps=2, n_clients=2, seed=33)
        system = MegaMimoSystem.create(
            config,
            client_snr_db=28.0,
            channel_model=MultipathChannel(n_taps=4, rician_k_first_tap=8.0),
        )
        system.run_sounding(0.0)
        payloads = [b"selective channel A data", b"selective channel B data"]
        report = system.joint_transmit(payloads, get_mcs(1), start_time=1e-3)
        got = [r.decoded.payload for r in report.receptions]
        assert got == payloads


class TestWorstCaseOscillators:
    def test_20ppm_80211_tolerance(self):
        """The protocol must survive worst-case 802.11-legal oscillators
        (+-20 ppm -> up to ~96 kHz relative CFO)."""
        config = SystemConfig(n_aps=2, n_clients=2, seed=34, max_ppm=20.0)
        system = MegaMimoSystem.create(
            config, client_snr_db=28.0, channel_model=RicianChannel(k_factor=10.0)
        )
        system.run_sounding(0.0)
        report = system.joint_transmit(
            [b"A" * 30, b"B" * 30], get_mcs(1), start_time=1e-3
        )
        assert all(r.decoded.crc_ok for r in report.receptions)


class TestHigherOrderModulation:
    def test_64qam_needs_tight_sync(self):
        """64-QAM (0.39 min distance) only decodes because phase sync holds
        misalignment to ~0.02 rad."""
        config = SystemConfig(n_aps=2, n_clients=2, seed=36)
        system = MegaMimoSystem.create(
            config, client_snr_db=32.0, channel_model=RicianChannel(k_factor=12.0)
        )
        system.run_sounding(0.0)
        # give the CFO tracker one packet to converge
        system.joint_transmit([b"A" * 20, b"B" * 20], get_mcs(0), start_time=1e-3)
        report = system.joint_transmit(
            [b"A" * 60, b"B" * 60], get_mcs(7), start_time=4e-3
        )
        assert sum(r.decoded.crc_ok for r in report.receptions) >= 1
