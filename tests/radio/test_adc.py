"""AGC + ADC quantization model."""

import numpy as np
import pytest

from repro.radio.adc import AdcConfig, AdcModel, AutomaticGainControl


def ofdm_like(rng, n=20_000, power=7.3):
    return np.sqrt(power / 2) * (rng.normal(size=n) + 1j * rng.normal(size=n))


class TestAgc:
    def test_gain_places_rms_at_backoff(self):
        rng = np.random.default_rng(0)
        x = ofdm_like(rng)
        agc = AutomaticGainControl(AdcConfig(target_backoff_db=12.0))
        g = agc.gain_for(x)
        rms = np.sqrt(np.mean(np.abs(g * x) ** 2))
        assert 20 * np.log10(rms) == pytest.approx(-12.0, abs=0.1)

    def test_silent_input_rejected(self):
        with pytest.raises(ValueError):
            AutomaticGainControl().gain_for(np.zeros(10, dtype=complex))


class TestAdc:
    def test_output_scale_preserved(self):
        rng = np.random.default_rng(1)
        x = ofdm_like(rng)
        out = AdcModel(AdcConfig(bits=14)).digitize(x)
        assert np.mean(np.abs(out) ** 2) == pytest.approx(
            np.mean(np.abs(x) ** 2), rel=0.01
        )

    def test_quantization_snr_6db_per_bit(self):
        rng = np.random.default_rng(2)
        x = ofdm_like(rng)
        snr8 = AdcModel(AdcConfig(bits=8)).quantization_snr_db(x)
        snr12 = AdcModel(AdcConfig(bits=12)).quantization_snr_db(x)
        assert snr12 - snr8 == pytest.approx(24.0, abs=3.0)

    def test_14_bit_is_transparent(self):
        """USRP2-class ADCs leave >60 dB of quantization headroom — far
        below the channel noise in any of our experiments."""
        rng = np.random.default_rng(3)
        snr = AdcModel(AdcConfig(bits=14)).quantization_snr_db(ofdm_like(rng))
        assert snr > 60.0

    def test_default_backoff_rarely_clips(self):
        rng = np.random.default_rng(4)
        adc = AdcModel(AdcConfig(bits=10, target_backoff_db=12.0))
        adc.digitize(ofdm_like(rng))
        assert adc.last_clip_fraction < 1e-3

    def test_no_backoff_clips_hard(self):
        rng = np.random.default_rng(5)
        adc = AdcModel(AdcConfig(bits=10, target_backoff_db=0.0))
        adc.digitize(ofdm_like(rng))
        assert adc.last_clip_fraction > 0.05

    def test_empty_capture(self):
        out = AdcModel().digitize(np.zeros(0, dtype=complex))
        assert out.size == 0

    def test_bits_validated(self):
        with pytest.raises(ValueError):
            AdcConfig(bits=1)


class TestEndToEndWithAdc:
    def test_protocol_survives_10_bit_adc(self):
        """Digitize everything a client hears through a consumer-grade ADC:
        the joint transmission still decodes."""
        from repro import MegaMimoSystem, SystemConfig, get_mcs
        from repro.channel.models import RicianChannel

        config = SystemConfig(n_aps=2, n_clients=2, seed=4)
        system = MegaMimoSystem.create(
            config, client_snr_db=25.0, channel_model=RicianChannel(k_factor=7.0)
        )
        system.run_sounding(0.0)

        adc = AdcModel(AdcConfig(bits=10))
        original_receive = system.medium.receive

        def digitized_receive(node, start, n, **kwargs):
            rx = original_receive(node, start, n, **kwargs)
            if node.startswith("client") and np.any(rx):
                return adc.digitize(rx)
            return rx

        system.medium.receive = digitized_receive
        report = system.joint_transmit(
            [b"A" * 25, b"B" * 25], get_mcs(2), start_time=1e-3
        )
        system.medium.receive = original_receive
        assert all(r.decoded.crc_ok for r in report.receptions)
