"""Radio front-end."""

import numpy as np
import pytest

from repro.channel.oscillator import Oscillator, OscillatorConfig
from repro.radio.frontend import RadioFrontend, apply_sfo


def make_frontend(ppm=0.0, max_power=1.0, model_sfo=True):
    osc = Oscillator(OscillatorConfig(ppm_offset=ppm, phase_noise_rad2_per_s=0.0))
    return RadioFrontend(node_id="n", oscillator=osc, max_power=max_power, model_sfo=model_sfo)


class TestApplySfo:
    def test_zero_ppm_identity(self):
        x = np.arange(10, dtype=complex)
        assert np.allclose(apply_sfo(x, 0.0), x)

    def test_empty_input(self):
        assert apply_sfo(np.zeros(0, dtype=complex), 5.0).size == 0

    def test_tiny_skew_small_change(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000) + 1j * rng.normal(size=1000)
        y = apply_sfo(x, 2.0)
        # 2 ppm over 1000 samples drifts 0.002 samples: nearly identity
        assert np.max(np.abs(y - x)) < 0.05

    def test_large_skew_shifts_tail(self):
        n = 100_000
        x = np.exp(2j * np.pi * 0.01 * np.arange(n))
        y = apply_sfo(x, 100.0)  # 100 ppm -> ~10 samples drift at the tail
        # head barely moves, tail is visibly time-shifted
        assert np.max(np.abs(y[:100] - x[:100])) < 0.1
        assert np.max(np.abs(y[-5000:-100] - x[-5000:-100])) > 0.5

    def test_preserves_length(self):
        x = np.ones(500, dtype=complex)
        assert apply_sfo(x, 20.0).size == 500


class TestPowerLimit:
    def test_overpowered_signal_scaled(self):
        fe = make_frontend(max_power=1.0, model_sfo=False)
        x = 10.0 * np.ones(100, dtype=complex)
        out = fe.prepare_transmit(x)
        assert np.mean(np.abs(out) ** 2) == pytest.approx(1.0)

    def test_underpowered_signal_untouched(self):
        fe = make_frontend(max_power=1.0, model_sfo=False)
        x = 0.1 * np.ones(100, dtype=complex)
        assert np.allclose(fe.prepare_transmit(x), x)

    def test_enforcement_can_be_disabled(self):
        fe = make_frontend(max_power=1.0, model_sfo=False)
        x = 10.0 * np.ones(100, dtype=complex)
        assert np.allclose(fe.prepare_transmit(x, enforce_power=False), x)

    def test_average_power(self):
        fe = make_frontend()
        assert fe.average_power(2.0 * np.ones(10, dtype=complex)) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            fe.average_power(np.zeros(0))


class TestSfoIntegration:
    def test_sfo_applied_from_oscillator_ppm(self):
        fe = make_frontend(ppm=100.0, model_sfo=True)
        n = 50_000
        x = np.exp(2j * np.pi * 0.01 * np.arange(n))
        out = fe.prepare_transmit(x, enforce_power=False)
        assert not np.allclose(out[-100:], x[-100:], atol=0.1)

    def test_sfo_disabled(self):
        fe = make_frontend(ppm=100.0, model_sfo=False)
        x = np.ones(100, dtype=complex)
        assert np.allclose(fe.prepare_transmit(x, enforce_power=False), x)
