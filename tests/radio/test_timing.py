"""Trigger-based time synchronization."""

import numpy as np
import pytest

from repro.constants import TRIGGER_TURNAROUND_S
from repro.radio.timing import TimingConfig, TriggerTimer


class TestTriggerTimer:
    def test_default_turnaround_matches_paper(self):
        # §10a: "We select t_delta as 150 us"
        assert TRIGGER_TURNAROUND_S == pytest.approx(150e-6)
        timer = TriggerTimer(rng=0)
        assert timer.joint_start_time(1e-3) == pytest.approx(1e-3 + 150e-6)

    def test_node_start_has_jitter(self):
        timer = TriggerTimer(TimingConfig(jitter_std_s=5e-9), rng=0)
        starts = np.array([timer.node_start_time(0.0) for _ in range(2000)])
        assert np.std(starts) == pytest.approx(5e-9, rel=0.1)
        assert np.mean(starts) == pytest.approx(150e-6, abs=1e-9)

    def test_jitter_inside_cyclic_prefix(self):
        """SourceSync residual must sit far inside the 1.6 us CP at 10 MHz
        (§5.2 footnote 3: delay spread smaller than the CP)."""
        timer = TriggerTimer(rng=1)
        cp_duration = 16 / 10e6
        worst = max(
            abs(timer.node_start_time(0.0) - timer.joint_start_time(0.0))
            for _ in range(1000)
        )
        assert worst < cp_duration / 10

    def test_custom_config(self):
        timer = TriggerTimer(TimingConfig(turnaround_s=1e-3, jitter_std_s=0.0), rng=0)
        assert timer.node_start_time(2e-3) == pytest.approx(3e-3)
