"""Fading models."""

import numpy as np
import pytest

from repro.channel.models import (
    FlatRayleighChannel,
    LinkChannel,
    MultipathChannel,
    RicianChannel,
    random_channel_matrix,
)


class TestLinkChannel:
    def test_gain_is_tap_power(self):
        link = LinkChannel(taps=np.array([3.0, 4.0j]))
        assert link.gain == pytest.approx(25.0)

    def test_frequency_response_single_tap_flat(self):
        link = LinkChannel(taps=np.array([2.0 + 1j]))
        h = link.frequency_response()
        assert np.allclose(h, 2.0 + 1j)

    def test_apply_convolves(self):
        link = LinkChannel(taps=np.array([1.0, 0.5]))
        out = link.apply(np.array([1.0, 0.0]))
        assert np.allclose(out, [1.0, 0.5, 0.0])

    def test_response_longer_than_fft_rejected(self):
        link = LinkChannel(taps=np.ones(100))
        with pytest.raises(ValueError):
            link.frequency_response(64)


class TestFlatRayleigh:
    def test_average_gain(self):
        rng = np.random.default_rng(0)
        model = FlatRayleighChannel()
        gains = [model.realize(4.0, rng=rng).gain for _ in range(4000)]
        assert np.mean(gains) == pytest.approx(4.0, rel=0.1)

    def test_single_tap(self):
        assert FlatRayleighChannel().realize(1.0, rng=0).taps.size == 1

    def test_phase_uniform(self):
        rng = np.random.default_rng(1)
        model = FlatRayleighChannel()
        phases = [np.angle(model.realize(1.0, rng=rng).taps[0]) for _ in range(2000)]
        # circular mean should be near zero magnitude for uniform phases
        assert abs(np.mean(np.exp(1j * np.array(phases)))) < 0.1


class TestRician:
    def test_average_gain(self):
        rng = np.random.default_rng(2)
        model = RicianChannel(k_factor=5.0)
        gains = [model.realize(2.0, rng=rng).gain for _ in range(4000)]
        assert np.mean(gains) == pytest.approx(2.0, rel=0.1)

    def test_high_k_concentrates_magnitude(self):
        rng = np.random.default_rng(3)
        spread_low = np.std(
            [RicianChannel(k_factor=0.5).realize(1.0, rng=rng).gain for _ in range(2000)]
        )
        spread_high = np.std(
            [RicianChannel(k_factor=50.0).realize(1.0, rng=rng).gain for _ in range(2000)]
        )
        assert spread_high < spread_low / 2


class TestMultipath:
    def test_tap_count(self):
        link = MultipathChannel(n_taps=6).realize(1.0, rng=0)
        assert link.taps.size == 6

    def test_average_gain(self):
        rng = np.random.default_rng(4)
        model = MultipathChannel(n_taps=4, decay_per_tap_db=3.0)
        gains = [model.realize(3.0, rng=rng).gain for _ in range(4000)]
        assert np.mean(gains) == pytest.approx(3.0, rel=0.1)

    def test_exponential_decay_profile(self):
        rng = np.random.default_rng(5)
        model = MultipathChannel(n_taps=4, decay_per_tap_db=6.0)
        powers = np.zeros(4)
        for _ in range(3000):
            powers += np.abs(model.realize(1.0, rng=rng).taps) ** 2
        ratios = powers[:-1] / powers[1:]
        assert np.all(ratios > 2.0)  # ~4x (6 dB) per tap

    def test_frequency_selectivity(self):
        link = MultipathChannel(n_taps=8, decay_per_tap_db=1.0).realize(1.0, rng=6)
        h = np.abs(link.frequency_response())
        assert h.max() / max(h.min(), 1e-12) > 1.5

    def test_rician_first_tap(self):
        rng = np.random.default_rng(7)
        model = MultipathChannel(n_taps=3, rician_k_first_tap=20.0)
        first_tap_gain = np.mean(
            [abs(model.realize(1.0, rng=rng).taps[0]) ** 2 for _ in range(2000)]
        )
        profile_share = 1.0 / (1 + 10 ** -0.3 + 10 ** -0.6)
        assert first_tap_gain == pytest.approx(profile_share, rel=0.15)

    def test_zero_taps_rejected(self):
        with pytest.raises(ValueError):
            MultipathChannel(n_taps=0).realize(1.0, rng=0)


class TestRandomMatrix:
    def test_shape(self):
        h = random_channel_matrix(3, 5, rng=0)
        assert h.shape == (3, 5)

    def test_unit_average_gain(self):
        rng = np.random.default_rng(8)
        h = random_channel_matrix(40, 40, rng=rng)
        assert np.mean(np.abs(h) ** 2) == pytest.approx(1.0, rel=0.1)
