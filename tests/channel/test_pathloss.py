"""Path-loss model."""

import numpy as np
import pytest

from repro.channel.pathloss import LogDistancePathLoss


class TestLogDistance:
    def test_free_space_reference_at_2_4ghz(self):
        model = LogDistancePathLoss(carrier_frequency=2.4e9)
        # classic number: ~40 dB at 1 m for 2.4 GHz
        assert model.free_space_reference_db() == pytest.approx(40.0, abs=0.5)

    def test_exponent_slope(self):
        model = LogDistancePathLoss(exponent=3.0, shadowing_sigma_db=0.0)
        l1 = model.loss_db(1.0)
        l10 = model.loss_db(10.0)
        assert l10 - l1 == pytest.approx(30.0)

    def test_monotonic_without_shadowing(self):
        model = LogDistancePathLoss(shadowing_sigma_db=0.0)
        d = np.linspace(1.0, 20.0, 50)
        losses = model.loss_db(d)
        assert np.all(np.diff(losses) > 0)

    def test_shadowing_adds_spread(self):
        model = LogDistancePathLoss(shadowing_sigma_db=4.0)
        rng = np.random.default_rng(0)
        losses = model.loss_db(np.full(3000, 5.0), rng=rng)
        assert np.std(losses) == pytest.approx(4.0, rel=0.1)

    def test_shadowing_can_be_disabled_per_call(self):
        model = LogDistancePathLoss(shadowing_sigma_db=4.0)
        a = model.loss_db(5.0, include_shadowing=False)
        b = model.loss_db(5.0, include_shadowing=False)
        assert a == b

    def test_below_reference_clamped(self):
        model = LogDistancePathLoss(shadowing_sigma_db=0.0)
        assert model.loss_db(0.1) == model.loss_db(1.0)

    def test_zero_distance_rejected(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss().loss_db(0.0)

    def test_propagation_delay(self):
        model = LogDistancePathLoss()
        # ~33 ns for 10 m — "tens of nanoseconds" (§5.2 footnote 3)
        assert model.propagation_delay_s(10.0) == pytest.approx(33.4e-9, rel=0.01)
