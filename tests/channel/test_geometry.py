"""Conference-room geometry."""

import numpy as np
import pytest

from repro.channel.geometry import ConferenceRoom, Placement


class TestPlacement:
    def test_distance(self):
        a = Placement(0.0, 0.0, 0.0)
        b = Placement(3.0, 4.0, 0.0)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_includes_height(self):
        a = Placement(0.0, 0.0, 1.0)
        b = Placement(0.0, 0.0, 2.6)
        assert a.distance_to(b) == pytest.approx(1.6)


class TestRoom:
    def test_ap_spots_on_perimeter(self):
        room = ConferenceRoom(width_m=12.0, depth_m=8.0)
        for spot in room.ap_spots:
            on_wall = (
                spot.x in (0.0, 12.0)
                or spot.y in (0.0, 8.0)
                or min(spot.x, 12.0 - spot.x, spot.y, 8.0 - spot.y) < 1e-9
            )
            assert on_wall
            assert spot.z == room.ap_height_m

    def test_client_spots_inside(self):
        room = ConferenceRoom()
        for spot in room.client_spots:
            assert 0 < spot.x < room.width_m
            assert 0 < spot.y < room.depth_m
            assert spot.z == room.client_height_m

    def test_spot_counts(self):
        room = ConferenceRoom(n_ap_spots=14, n_client_spots=24)
        assert len(room.ap_spots) == 14
        assert len(room.client_spots) == 24


class TestSampling:
    def test_topology_sizes(self):
        room = ConferenceRoom()
        topo = room.sample_topology(10, 10, rng=0)
        assert topo.n_aps == 10 and topo.n_clients == 10

    def test_no_duplicate_locations(self):
        room = ConferenceRoom()
        topo = room.sample_topology(10, 10, rng=1)
        ap_coords = {(p.x, p.y) for p in topo.ap_locations}
        assert len(ap_coords) == 10

    def test_distances_shape(self):
        room = ConferenceRoom()
        topo = room.sample_topology(4, 7, rng=2)
        assert topo.distances().shape == (7, 4)

    def test_distances_positive(self):
        room = ConferenceRoom()
        topo = room.sample_topology(5, 5, rng=3)
        assert np.all(topo.distances() > 0)

    def test_runs_are_random(self):
        room = ConferenceRoom()
        a = room.sample_topology(5, 5, rng=4)
        b = room.sample_topology(5, 5, rng=5)
        assert a.ap_locations != b.ap_locations or a.client_locations != b.client_locations

    def test_too_many_nodes_rejected(self):
        room = ConferenceRoom(n_ap_spots=4)
        with pytest.raises(ValueError):
            room.sample_topology(5, 2, rng=0)
