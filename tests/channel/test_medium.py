"""The shared medium: superposition, delays, oscillator rotation."""

import numpy as np
import pytest

from repro.channel.medium import Medium, fractional_delay
from repro.channel.models import LinkChannel
from repro.channel.oscillator import Oscillator, OscillatorConfig

FS = 10e6


def quiet_medium(**kwargs):
    return Medium(FS, noise_power=kwargs.pop("noise_power", 0.0), rng=0)


def ideal_osc(ppm=0.0, phase=0.0):
    return Oscillator(
        OscillatorConfig(ppm_offset=ppm, phase_noise_rad2_per_s=0.0, initial_phase=phase)
    )


class TestFractionalDelay:
    def test_integer_delay(self):
        x = np.array([1.0, 2.0, 3.0], dtype=complex)
        out = fractional_delay(x, 2.0)
        assert np.allclose(out[:2], 0.0)
        assert np.allclose(out[2:5], x)

    def test_zero_delay_identity(self):
        x = np.arange(5, dtype=complex)
        assert np.allclose(fractional_delay(x, 0.0), x)

    def test_half_sample_delay_of_tone(self):
        n = 256
        freq = 5  # cycles over the window
        x = np.exp(2j * np.pi * freq * np.arange(n) / n)
        out = fractional_delay(x, 0.5)
        # interior samples should match the analytically delayed tone
        expected = np.exp(2j * np.pi * freq * (np.arange(n) - 0.5) / n)
        assert np.allclose(out[32:-32], expected[32:-32], atol=0.05)

    def test_negative_integer_advances(self):
        x = np.array([0.0, 0.0, 1.0, 2.0], dtype=complex)
        out = fractional_delay(x, -2.0)
        assert np.allclose(out[:2], [1.0, 2.0])


class TestMediumBasics:
    def test_direct_delivery(self):
        m = quiet_medium()
        m.register_node("tx", ideal_osc())
        m.register_node("rx", ideal_osc())
        m.set_link("tx", "rx", LinkChannel(taps=np.array([0.5 + 0j])))
        x = np.arange(10, dtype=complex)
        m.transmit("tx", x, 0.0)
        y = m.receive("rx", 0.0, 10)
        assert np.allclose(y, 0.5 * x)

    def test_unlinked_node_hears_nothing(self):
        m = quiet_medium()
        m.register_node("tx", ideal_osc())
        m.register_node("rx", ideal_osc())
        m.transmit("tx", np.ones(10, dtype=complex), 0.0)
        assert np.allclose(m.receive("rx", 0.0, 10), 0.0)

    def test_own_transmission_excluded(self):
        m = quiet_medium()
        m.register_node("a", ideal_osc())
        m.set_link("a", "a", LinkChannel(taps=np.array([1.0 + 0j])))
        m.transmit("a", np.ones(10, dtype=complex), 0.0)
        assert np.allclose(m.receive("a", 0.0, 10), 0.0)
        loopback = m.receive("a", 0.0, 10, exclude_own=False)
        assert np.allclose(loopback, 1.0)

    def test_superposition(self):
        m = quiet_medium()
        for node in ("t1", "t2", "rx"):
            m.register_node(node, ideal_osc())
        m.set_link("t1", "rx", LinkChannel(taps=np.array([1.0 + 0j])))
        m.set_link("t2", "rx", LinkChannel(taps=np.array([2.0 + 0j])))
        m.transmit("t1", np.ones(10, dtype=complex), 0.0)
        m.transmit("t2", np.ones(10, dtype=complex), 0.0)
        assert np.allclose(m.receive("rx", 0.0, 10), 3.0)

    def test_window_offsets(self):
        m = quiet_medium()
        m.register_node("tx", ideal_osc())
        m.register_node("rx", ideal_osc())
        m.set_link("tx", "rx", LinkChannel(taps=np.array([1.0 + 0j])))
        x = np.arange(20, dtype=complex)
        m.transmit("tx", x, 100 / FS)
        y = m.receive("rx", 105 / FS, 10)
        assert np.allclose(y, x[5:15])

    def test_clear_drops_traffic(self):
        m = quiet_medium()
        m.register_node("tx", ideal_osc())
        m.register_node("rx", ideal_osc())
        m.set_link("tx", "rx", LinkChannel(taps=np.array([1.0 + 0j])))
        m.transmit("tx", np.ones(5, dtype=complex), 0.0)
        m.clear()
        assert np.allclose(m.receive("rx", 0.0, 5), 0.0)

    def test_unknown_nodes_rejected(self):
        m = quiet_medium()
        with pytest.raises(ValueError):
            m.transmit("ghost", np.ones(4), 0.0)
        with pytest.raises(ValueError):
            m.receive("ghost", 0.0, 4)


class TestOscillatorRotation:
    def test_cfo_between_tx_and_rx(self):
        m = quiet_medium()
        m.register_node("tx", ideal_osc(ppm=1.0))  # 2.412 kHz at 2.412 GHz
        m.register_node("rx", ideal_osc(ppm=0.0))
        m.set_link("tx", "rx", LinkChannel(taps=np.array([1.0 + 0j])))
        n = 1000
        m.transmit("tx", np.ones(n, dtype=complex), 0.0)
        y = m.receive("rx", 0.0, n)
        df = m.oscillator("tx").frequency_offset_hz
        expected = np.exp(2j * np.pi * df * np.arange(n) / FS)
        assert np.allclose(y, expected, atol=1e-6)

    def test_identical_oscillators_cancel(self):
        shared_phase = 1.2
        m = quiet_medium()
        m.register_node("tx", ideal_osc(ppm=3.0, phase=shared_phase))
        m.register_node("rx", ideal_osc(ppm=3.0, phase=shared_phase))
        m.set_link("tx", "rx", LinkChannel(taps=np.array([1.0 + 0j])))
        m.transmit("tx", np.ones(100, dtype=complex), 0.0)
        y = m.receive("rx", 0.0, 100)
        assert np.allclose(y, 1.0, atol=1e-9)


class TestNoise:
    def test_noise_power(self):
        m = Medium(FS, noise_power=2.0, rng=0)
        m.register_node("rx", ideal_osc())
        y = m.receive("rx", 0.0, 50_000)
        assert np.mean(np.abs(y) ** 2) == pytest.approx(2.0, rel=0.05)

    def test_noise_can_be_disabled(self):
        m = Medium(FS, noise_power=2.0, rng=0)
        m.register_node("rx", ideal_osc())
        assert np.allclose(m.receive("rx", 0.0, 100, include_noise=False), 0.0)


class TestMultipathAndDelay:
    def test_two_tap_echo(self):
        m = quiet_medium()
        m.register_node("tx", ideal_osc())
        m.register_node("rx", ideal_osc())
        m.set_link("tx", "rx", LinkChannel(taps=np.array([1.0, 0.25 + 0j])))
        x = np.zeros(10, dtype=complex)
        x[0] = 1.0
        m.transmit("tx", x, 0.0)
        y = m.receive("rx", 0.0, 10)
        assert y[0] == pytest.approx(1.0)
        assert y[1] == pytest.approx(0.25)

    def test_propagation_delay_shifts_arrival(self):
        m = quiet_medium()
        m.register_node("tx", ideal_osc())
        m.register_node("rx", ideal_osc())
        m.set_link("tx", "rx", LinkChannel(taps=np.array([1.0 + 0j]), delay_s=3 / FS))
        x = np.zeros(10, dtype=complex)
        x[0] = 1.0
        m.transmit("tx", x, 0.0)
        y = m.receive("rx", 0.0, 10)
        assert abs(y[3]) == pytest.approx(1.0, abs=1e-6)
        assert abs(y[0]) < 1e-9

    def test_end_time(self):
        m = quiet_medium()
        m.register_node("tx", ideal_osc())
        m.transmit("tx", np.ones(100, dtype=complex), 1e-3)
        assert m.transmission_end_time() == pytest.approx(1e-3 + 100 / FS)
