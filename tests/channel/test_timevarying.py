"""Time-varying fading and coherence."""

import numpy as np
import pytest

from repro.channel.timevarying import (
    GaussMarkovFader,
    JakesFader,
    TimeVaryingLinkChannel,
    channel_correlation,
    doppler_from_coherence,
)


class TestCorrelationModels:
    def test_clarke_half_point(self):
        # Tc is defined as the 50%-coherence time
        assert channel_correlation(0.25, 0.25) == pytest.approx(0.5, abs=0.02)

    def test_clarke_flat_at_origin(self):
        """Physical fading decorrelates quadratically near t = 0 — far
        slower than the exponential model."""
        tc = 0.25
        t = 0.01 * tc
        clarke = channel_correlation(t, tc, model="clarke")
        expo = channel_correlation(t, tc, model="exponential")
        assert 1.0 - clarke < (1.0 - expo) / 10

    def test_zero_lag_is_one(self):
        for model in ("clarke", "exponential"):
            assert channel_correlation(0.0, 0.1, model=model) == pytest.approx(1.0)

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            channel_correlation(0.1, 0.1, model="bessel")

    def test_doppler_scaling(self):
        assert doppler_from_coherence(0.25) == pytest.approx(
            2 * doppler_from_coherence(0.5)
        )


class TestJakesFader:
    def test_unit_average_power(self):
        rng = np.random.default_rng(0)
        powers = []
        for seed in range(100):
            fader = JakesFader(0.25, rng=np.random.default_rng(seed))
            powers.append(abs(fader.value_at(float(rng.uniform(0, 1)))) ** 2)
        assert np.mean(powers) == pytest.approx(1.0, rel=0.2)

    def test_deterministic_in_time(self):
        fader = JakesFader(0.25, rng=1)
        assert fader.value_at(0.123) == fader.value_at(0.123)

    def test_empirical_autocorrelation_matches_clarke(self):
        tc = 0.1
        lags = np.array([0.01, 0.03, 0.05])
        acc = np.zeros(lags.size, dtype=complex)
        n = 400
        for seed in range(n):
            fader = JakesFader(tc, rng=seed)
            h0 = fader.value_at(0.0)
            for i, lag in enumerate(lags):
                acc[i] += fader.value_at(float(lag)) * np.conj(h0)
        empirical = np.abs(acc) / n
        for i, lag in enumerate(lags):
            expected = abs(channel_correlation(float(lag), tc))
            assert empirical[i] == pytest.approx(expected, abs=0.12)

    def test_slow_channel_barely_moves_within_packet(self):
        """Packets (~1 ms) are static relative to a 250 ms coherence time —
        the assumption behind snapshotting links per packet."""
        fader = JakesFader(0.25, rng=2)
        h0, h1 = fader.value_at(0.0), fader.value_at(1e-3)
        assert abs(h1 - h0) < 0.02

    def test_too_few_paths_rejected(self):
        with pytest.raises(ValueError):
            JakesFader(0.25, rng=0, n_paths=2)


class TestGaussMarkovFader:
    def test_repeatable_queries(self):
        fader = GaussMarkovFader(0.25, rng=3)
        t = 0.05
        assert fader.value_at(t) == fader.value_at(t)

    def test_decorrelates_over_coherence_time(self):
        tc = 0.05
        corr = []
        for seed in range(300):
            fader = GaussMarkovFader(tc, rng=seed)
            corr.append(fader.value_at(tc) * np.conj(fader.value_at(0.0)))
        assert abs(np.mean(corr)) == pytest.approx(np.exp(-1.0), abs=0.12)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            GaussMarkovFader(0.25, rng=0).value_at(-1.0)


class TestTimeVaryingLink:
    def test_average_gain(self):
        gains = []
        for seed in range(300):
            link = TimeVaryingLinkChannel.create(4.0, rng=seed, rician_k=3.0)
            gains.append(float(np.sum(np.abs(link.taps_at(0.02)) ** 2)))
        assert np.mean(gains) == pytest.approx(4.0, rel=0.15)

    def test_high_k_breathes_less(self):
        def wobble(k, seed):
            link = TimeVaryingLinkChannel.create(
                1.0, coherence_time_s=0.05, rng=seed, rician_k=k
            )
            vals = [link.taps_at(t)[0] for t in np.linspace(0, 0.2, 9)]
            return np.std(np.abs(vals))

        low = np.mean([wobble(0.0, s) for s in range(40)])
        high = np.mean([wobble(20.0, s) for s in range(40)])
        assert high < low / 2

    def test_snapshot_freezes(self):
        link = TimeVaryingLinkChannel.create(1.0, rng=5)
        snap = link.snapshot(0.1)
        assert np.allclose(snap.taps, link.taps_at(0.1))

    def test_linkchannel_interface(self):
        link = TimeVaryingLinkChannel.create(1.0, rng=6, n_taps=2)
        assert link.frequency_response().shape == (64,)
        out = link.apply_at(np.ones(4, dtype=complex), 0.0)
        assert out.size == 5  # convolution with 2 taps

    def test_medium_integration(self):
        """The medium freezes time-varying links at each packet's start."""
        from repro.channel.medium import Medium
        from repro.channel.oscillator import Oscillator, OscillatorConfig

        m = Medium(10e6, noise_power=0.0, rng=0)
        def osc():
            return Oscillator(OscillatorConfig(phase_noise_rad2_per_s=0.0))

        m.register_node("tx", osc())
        m.register_node("rx", osc())
        link = TimeVaryingLinkChannel.create(1.0, coherence_time_s=0.02, rng=7)
        m.set_link("tx", "rx", link)
        m.transmit("tx", np.ones(4, dtype=complex), 0.0)
        m.transmit("tx", np.ones(4, dtype=complex), 0.05)
        early = m.receive("rx", 0.0, 4)
        late = m.receive("rx", 0.05 + 0.0, 4)
        assert np.allclose(early, link.taps_at(0.0)[0], atol=1e-9)
        assert np.allclose(late, link.taps_at(0.05)[0], atol=1e-9)
        assert not np.allclose(early, late)
