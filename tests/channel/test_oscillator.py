"""Oscillator model: the physics that motivates the paper."""

import numpy as np
import pytest

from repro.channel.oscillator import Oscillator, OscillatorConfig, random_oscillator


class TestDeterministicPhase:
    def test_pure_cfo_phase(self):
        osc = Oscillator(OscillatorConfig(ppm_offset=1.0, phase_noise_rad2_per_s=0.0,
                                          carrier_frequency=1e9))
        # 1 ppm at 1 GHz = 1 kHz
        assert osc.frequency_offset_hz == pytest.approx(1000.0)
        t = 1e-3
        assert osc.phase_at([t])[0] == pytest.approx(2 * np.pi * 1000.0 * t)

    def test_initial_phase(self):
        osc = Oscillator(OscillatorConfig(phase_noise_rad2_per_s=0.0, initial_phase=0.7))
        assert osc.phase_at([0.0])[0] == pytest.approx(0.7)

    def test_sampling_ratio_shares_crystal(self):
        osc = Oscillator(OscillatorConfig(ppm_offset=5.0))
        assert osc.sampling_ratio == pytest.approx(1.0 + 5e-6)

    def test_rotation_is_unit_modulus(self):
        osc = Oscillator(OscillatorConfig(ppm_offset=2.0))
        r = osc.rotation_at(np.linspace(0, 1e-3, 10))
        assert np.allclose(np.abs(r), 1.0)


class TestPhaseNoise:
    def test_repeated_queries_identical(self):
        """The same instant must always return the same phase — one
        transmission is observed by many receivers."""
        osc = Oscillator(OscillatorConfig(phase_noise_rad2_per_s=1.0), rng=0)
        t = np.array([1e-3, 5e-3, 2e-3])  # non-monotonic on purpose
        first = osc.phase_at(t)
        second = osc.phase_at(t)
        assert np.array_equal(first, second)

    def test_variance_grows_linearly(self):
        rate = 1.0
        samples = []
        for seed in range(300):
            osc = Oscillator(OscillatorConfig(phase_noise_rad2_per_s=rate), rng=seed)
            samples.append(osc.phase_noise_at([10e-3])[0])
        var = np.var(samples)
        assert var == pytest.approx(rate * 10e-3, rel=0.3)

    def test_zero_noise_config(self):
        osc = Oscillator(OscillatorConfig(phase_noise_rad2_per_s=0.0))
        assert np.all(osc.phase_noise_at(np.linspace(0, 1e-2, 50)) == 0.0)

    def test_starts_at_zero(self):
        osc = Oscillator(OscillatorConfig(phase_noise_rad2_per_s=1.0), rng=1)
        assert osc.phase_noise_at([0.0])[0] == 0.0

    def test_negative_time_rejected(self):
        osc = Oscillator()
        with pytest.raises(ValueError):
            osc.phase_at([-1.0])


class TestRandomOscillator:
    def test_ppm_within_bounds(self):
        for seed in range(20):
            osc = random_oscillator(rng=seed, max_ppm=2.0)
            assert abs(osc.ppm_offset) <= 2.0

    def test_80211_worst_case(self):
        osc = random_oscillator(rng=3, max_ppm=20.0)
        assert abs(osc.frequency_offset_hz) <= 20e-6 * osc.config.carrier_frequency


class TestPaperNumerology:
    def test_10hz_error_costs_20_degrees_in_5_5ms(self):
        """§1: 'even a small error of, say, 10 Hz ... can lead to a large
        error of 20 degrees (0.35 radians) within ... 5.5 ms'."""
        phase = 2 * np.pi * 10.0 * 5.5e-3
        assert phase == pytest.approx(np.deg2rad(20.0), rel=0.02)
        assert phase == pytest.approx(0.35, abs=0.01)

    def test_100hz_error_costs_pi_in_20ms(self):
        """§5.2b: '100 Hz ... phase error of pi radians in ... 20 ms'.

        (2*pi*100*0.02 = 4pi; the paper counts the worst-case beamforming
        misalignment, which wraps at pi — verify the error exceeds pi.)"""
        assert 2 * np.pi * 100.0 * 20e-3 >= np.pi
