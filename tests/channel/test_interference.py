"""External interference sources."""

import numpy as np
import pytest

from repro.channel.interference import BurstyInterferer, LegacySender, ToneInterferer
from repro.channel.medium import Medium
from repro.channel.models import LinkChannel
from repro.channel.oscillator import Oscillator, OscillatorConfig

FS = 10e6


def quiet_medium():
    m = Medium(FS, noise_power=0.0, rng=0)
    for name in ("jam", "rx"):
        m.register_node(
            name, Oscillator(OscillatorConfig(phase_noise_rad2_per_s=0.0))
        )
    m.set_link("jam", "rx", LinkChannel(taps=np.array([1.0 + 0j])))
    return m


class TestBursty:
    def test_duty_cycle(self):
        m = quiet_medium()
        interferer = BurstyInterferer(burst_s=100e-6, period_s=500e-6, power=4.0)
        n = interferer.schedule(m, "jam", 0.0, 2e-3, rng=1)
        assert n == 4
        rx = m.receive("rx", 0.0, int(2e-3 * FS))
        active = np.abs(rx) ** 2 > 0.1
        assert np.mean(active) == pytest.approx(0.2, abs=0.05)
        assert np.mean(np.abs(rx[active]) ** 2) == pytest.approx(4.0, rel=0.2)

    def test_invalid_duty(self):
        m = quiet_medium()
        with pytest.raises(ValueError):
            BurstyInterferer(burst_s=2e-3, period_s=1e-3).schedule(m, "jam", 0, 1e-3)


class TestTone:
    def test_energy_concentrated_on_one_bin(self):
        m = quiet_medium()
        ToneInterferer(frequency_norm=10 / 64, power=1.0).schedule(m, "jam", 0.0, 1e-3)
        rx = m.receive("rx", 0.0, 64 * 16)
        spectrum = np.abs(np.fft.fft(rx[:64])) ** 2
        assert np.argmax(spectrum) == 10
        assert spectrum[10] / spectrum.sum() > 0.95

    def test_out_of_band_rejected(self):
        m = quiet_medium()
        with pytest.raises(ValueError):
            ToneInterferer(frequency_norm=0.7).schedule(m, "jam", 0, 1e-3)


class TestLegacySender:
    def test_frames_are_decodable_wifi(self):
        """The legacy interferer is real OFDM — a sniffer can decode it."""
        from repro.phy.sniffer import PacketSniffer

        m = quiet_medium()
        sender = LegacySender(frame_bytes=60, inter_frame_s=300e-6)
        n = sender.schedule(m, "jam", 1e-4, 2e-3, rng=2)
        assert n >= 2
        rx = m.receive("rx", 0.0, int(3e-3 * FS))
        rx = rx + 0.01 * (
            np.random.default_rng(0).normal(size=rx.size)
            + 1j * np.random.default_rng(1).normal(size=rx.size)
        )
        packets = PacketSniffer(FS).sniff(rx)
        assert sum(p.decoded.crc_ok for p in packets) >= 2


class TestImpactOnMegamimo:
    def test_tone_degrades_a_subset_of_subcarriers(self):
        """A narrowband interferer hurts only the subcarriers it covers —
        the effective-SNR rate selector then degrades gracefully."""
        from repro import MegaMimoSystem, SystemConfig, get_mcs
        from repro.channel.models import RicianChannel

        config = SystemConfig(n_aps=2, n_clients=2, seed=4)
        system = MegaMimoSystem.create(
            config, client_snr_db=28.0, channel_model=RicianChannel(k_factor=8.0)
        )
        system.run_sounding(0.0)
        # park a strong tone on the band during the data frame
        system.medium.register_node(
            "jam", Oscillator(OscillatorConfig(ppm_offset=0.3), rng=6)
        )
        for client in system.client_antenna_ids:
            system.medium.set_link(
                "jam", client, LinkChannel(taps=np.array([3.0 + 0j]))
            )
        original_transmit = system.medium.transmit

        def transmit_and_jam(node, samples, start):
            original_transmit(node, samples, start)
            if node == system.lead_antenna and samples.size > 400:
                tone = ToneInterferer(frequency_norm=7 / 64, power=2.0)
                tone.schedule(
                    system.medium, "jam", start, samples.size / FS, rng=5
                )

        system.medium.transmit = transmit_and_jam
        report = system.joint_transmit(
            [b"A" * 30, b"B" * 30], get_mcs(1), start_time=1e-3
        )
        system.medium.transmit = original_transmit
        # robust rate + coding survive a single-tone interferer
        assert sum(r.decoded.crc_ok for r in report.receptions) >= 1
