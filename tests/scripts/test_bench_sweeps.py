"""Smoke tests of scripts/bench_sweeps.py, including the batched CI gate.

The ``--check-batched-speedup`` gate is the repo's performance floor for
the vectorized backend: fastsim SINR grid >= 5x over serial, in-process,
on any machine (cores-independent).  Running it here keeps the gate from
silently rotting between CI bench jobs.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_script():
    spec = importlib.util.spec_from_file_location(
        "bench_sweeps", REPO_ROOT / "scripts" / "bench_sweeps.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def script():
    return load_script()


class TestBatchedGate:
    @pytest.fixture(scope="class")
    def gate_run(self, script, tmp_path_factory):
        """One gated quick run of the fastsim grid, shared by the asserts."""
        out = tmp_path_factory.mktemp("bench") / "bench.json"
        rc = script.main([
            "--quick", "--workloads", "fastsim_grid", "--no-ledger",
            "--skip-parallel", "--repeats", "2", "--check-batched-speedup",
            "--output", str(out),
        ])
        doc = json.loads(out.read_text())
        return rc, doc["runs"][-1]["workloads"][0]

    def test_gate_passes(self, gate_run):
        rc, entry = gate_run
        assert rc == 0
        assert entry["batched_speedup"] >= 5.0

    def test_record_fields(self, gate_run):
        _, entry = gate_run
        assert entry["workload"] == "fastsim_grid"
        assert entry["repeats"] == 2
        assert entry["serial_s"] > 0
        assert 0 < entry["batched_s"] < entry["serial_s"]
        # --skip-parallel leaves the pool leg unmeasured, not zeroed
        assert entry["parallel_s"] is None and entry["speedup"] is None
        assert entry["result_sha256"]

    def test_batched_overhead_breakdown(self, gate_run):
        _, entry = gate_run
        overhead = entry["batched_overhead"]
        assert overhead["sweeps"] >= 1
        assert 0 < overhead["utilization"] <= 1.0
        assert 0 <= overhead["dispatch_frac"] < 1.0
        assert 0 <= overhead["serialization_frac"] < 1.0

    def test_ledger_metrics_include_batched(self, script, gate_run):
        _, entry = gate_run
        metrics = script.ledger_metrics({"workloads": [entry]})
        assert metrics["bench.fastsim_grid.batched_s"] == entry["batched_s"]
        assert (metrics["bench.fastsim_grid.batched_speedup"]
                == entry["batched_speedup"])
        assert "bench.fastsim_grid.batched_utilization" in metrics
        assert "bench.fastsim_grid.batched_dispatch_frac" in metrics
        # no parallel leg ran, so no parallel metrics may appear
        assert "bench.fastsim_grid.parallel_s" not in metrics
        assert "bench.fastsim_grid.speedup" not in metrics


class TestGateFailureModes:
    def test_gate_fails_below_floor(self, script, tmp_path):
        rc = script.main([
            "--quick", "--workloads", "fastsim_grid", "--no-ledger",
            "--skip-parallel", "--check-batched-speedup",
            "--min-batched-speedup", "1e9",
            "--output", str(tmp_path / "bench.json"),
        ])
        assert rc == 1

    def test_gate_requires_grid_workload(self, script, tmp_path, capsys):
        rc = script.main([
            "--quick", "--workloads", "fig6", "--no-ledger",
            "--skip-parallel", "--check-batched-speedup",
            "--output", str(tmp_path / "bench.json"),
        ])
        assert rc == 2
        assert "not run" in capsys.readouterr().err
