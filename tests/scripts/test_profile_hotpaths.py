"""Smoke tests of scripts/profile_hotpaths.py against every workload."""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_script():
    spec = importlib.util.spec_from_file_location(
        "profile_hotpaths", REPO_ROOT / "scripts" / "profile_hotpaths.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def script():
    return load_script()


@pytest.fixture(autouse=True)
def _close_global_tracer():
    yield
    from repro.obs import trace

    trace.close()


class TestWorkloads:
    @pytest.mark.parametrize("workload", ["joint", "simulate", "sweep"])
    def test_smoke_and_trace_schema(self, script, workload, tmp_path, capsys):
        path = tmp_path / "prof.jsonl"
        rc = script.main([workload, "--repeat", "1", "--top", "5",
                          "--trace", str(path)])
        assert rc == 0
        assert path.exists()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == 1
        assert records[0]["attrs"]["workloads"] == [workload]
        names = {r.get("name") for r in records if r.get("type") == "span"}
        assert f"workload.{workload}" in names
        for rec in records[1:]:
            assert rec["type"] in ("span", "event")
            if rec["type"] == "span":
                assert {"span_id", "parent_id", "depth", "wall_s",
                        "cpu_s", "ts"} <= set(rec)
        out = capsys.readouterr().out
        assert "span" in out  # the hot-span table header

    def test_sweep_workload_prints_attribution(self, script, tmp_path,
                                               capsys):
        rc = script.main(["sweep", "--repeat", "1",
                          "--trace", str(tmp_path / "prof.jsonl")])
        assert rc == 0
        out = capsys.readouterr().out
        # sweep workloads route through the attribution profiler
        assert "pool capacity" in out
        assert "parent" in out

    def test_folded_export(self, script, tmp_path):
        folded = tmp_path / "prof.folded"
        rc = script.main(["simulate", "--repeat", "1",
                          "--trace", str(tmp_path / "prof.jsonl"),
                          "--folded", str(folded)])
        assert rc == 0
        lines = folded.read_text().splitlines()
        assert lines
        for line in lines:
            path_part, _, value = line.rpartition(" ")
            assert path_part and int(value) >= 0
        # paths are rooted at the workload span the script opened
        assert any(line.startswith("workload.simulate") for line in lines)

    def test_scratch_trace_is_removed(self, script, tmp_path, monkeypatch,
                                      capsys):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        import tempfile

        tempfile.tempdir = None  # re-read TMPDIR
        try:
            assert script.main(["simulate", "--repeat", "1"]) == 0
        finally:
            tempfile.tempdir = None
        capsys.readouterr()
        assert list(tmp_path.glob("repro-prof-*.jsonl")) == []
