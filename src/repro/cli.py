"""Command-line interface: reproduce any figure or run simulations.

    python -m repro figure 9
    python -m repro ablation sync
    python -m repro simulate --n-aps 4 --duration 0.5
    python -m repro quickstart
    python -m repro report
    python -m repro obs summarize out.jsonl
    python -m repro obs runs list
    python -m repro obs regress --baseline tests/data/regress_baseline.json
    python -m repro lint --format json

Every command prints the same tables the benchmark suite reports, so the
CLI is the quickest way to poke at one experiment with custom parameters.

Output policy: result tables go to **stdout**; diagnostics go to **stderr**
through :mod:`repro.obs.logging` (``-v`` for progress, ``-vv`` for debug,
``-q`` for errors only).  Every run command also accepts ``--trace
out.jsonl`` (span/event telemetry, see ``docs/observability.md``) and
``--metrics out.json`` (the metrics-registry snapshot).

Run commands (``figure``/``ablation``/``simulate``/``quickstart``/
``report``) additionally append a :class:`repro.obs.ledger.RunRecord` —
git sha, config hash, master seed, duration, headline metrics, alarms —
to the run ledger (``runs/ledger.jsonl`` by default; ``--ledger DIR`` or
``$REPRO_RUNS_DIR`` to relocate, ``--no-ledger`` to skip).  ``repro obs
runs list/show/diff``, ``repro obs export`` and ``repro obs regress``
query, render and gate on that history.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs import get_logger, metrics, setup_logging, trace
from repro.runtime import BACKENDS

logger = get_logger(__name__)

#: Commands whose invocations land in the run ledger.
RUN_COMMANDS = ("figure", "ablation", "simulate", "quickstart", "report")

#: Default baseline path of ``repro obs regress`` (the committed one).
DEFAULT_BASELINE = "tests/data/regress_baseline.json"


@dataclass
class RunContext:
    """What a run command hands back for its ledger record.

    The ``_run_*`` handlers fill this in as a side channel — exit codes
    stay the CLI contract, the context carries everything the ledger
    wants (normalized config, effective master seed, headline metrics,
    artifact paths, alarms).
    """

    config: Dict = field(default_factory=dict)
    master_seed: Optional[int] = None
    headline: Dict[str, float] = field(default_factory=dict)
    artifacts: Dict[str, str] = field(default_factory=dict)
    alarms: List[dict] = field(default_factory=list)


def _common_options() -> argparse.ArgumentParser:
    """Observability flags shared by every subcommand."""
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("observability")
    group.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a JSONL span/event trace of the run to FILE",
    )
    group.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write the metrics-registry snapshot (JSON) to FILE",
    )
    group.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="runs directory holding ledger.jsonl "
             "(default: $REPRO_RUNS_DIR or ./runs)",
    )
    group.add_argument(
        "--no-ledger", action="store_true",
        help="do not append this run to the ledger",
    )
    group.add_argument(
        "--serve-port", type=int, default=None, metavar="PORT",
        help="serve live telemetry (/metrics /timeseries /alerts /events) "
             "on 127.0.0.1:PORT while the command runs (0 = ephemeral port)",
    )
    group.add_argument(
        "--alerts", metavar="FILE", default=None,
        help="alert-rule TOML overlaying the built-in rules "
             "(default: runs/alerts.toml when present)",
    )
    group.add_argument(
        "--fail-on-alert", action="store_true",
        help="exit 3 when any alert rule fired during the run "
             "(requires --serve-port)",
    )
    group.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress to stderr (-vv for debug)",
    )
    group.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="only log errors to stderr",
    )
    return common


def _add_figure_parser(subparsers, common) -> None:
    p = subparsers.add_parser(
        "figure", parents=[common], help="reproduce one evaluation figure (6-13)"
    )
    p.add_argument("number", type=int, choices=range(6, 14), metavar="6-13")
    p.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    p.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply the default topology/round counts (e.g. 2.0 = paper scale)",
    )
    _add_runtime_options(p)


def _add_runtime_options(p: argparse.ArgumentParser) -> None:
    """Parallel-sweep flags (see docs/parallelism.md)."""
    group = p.add_argument_group("runtime")
    group.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for Monte-Carlo sweeps (default 1 = serial; "
             "results are bit-identical for any N)",
    )
    group.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="sweep execution backend (default: process pool when "
             "--workers > 1, else serial; 'auto' picks the batched kernel "
             "when one is registered — see docs/parallelism.md)",
    )
    group.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="append completed sweep chunks to a JSONL checkpoint FILE",
    )
    group.add_argument(
        "--resume", action="store_true",
        help="skip chunks already recorded in --checkpoint",
    )


def _add_ablation_parser(subparsers, common) -> None:
    p = subparsers.add_parser(
        "ablation", parents=[common], help="run one design-choice ablation"
    )
    p.add_argument(
        "name",
        choices=["sync", "tracking", "sounding", "cfo", "overhead", "screening"],
    )
    p.add_argument("--seed", type=int, default=None)
    _add_runtime_options(p)


def _add_simulate_parser(subparsers, common) -> None:
    p = subparsers.add_parser(
        "simulate", parents=[common],
        help="event-driven link-layer simulation over fading channels",
    )
    p.add_argument("--n-aps", type=int, default=4)
    p.add_argument("--n-clients", type=int, default=4)
    p.add_argument("--duration", type=float, default=0.5, help="seconds")
    p.add_argument(
        "--arrival-rate", type=float, default=None,
        help="Poisson packets/s per client (default: backlogged)",
    )
    p.add_argument("--resound-interval", type=float, default=25e-3, help="seconds")
    p.add_argument("--coherence-time", type=float, default=0.25, help="seconds")
    p.add_argument("--seed", type=int, default=1)


def _add_obs_parser(subparsers, common) -> None:
    p = subparsers.add_parser(
        "obs", parents=[common], help="inspect observability outputs"
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    s = obs_sub.add_parser(
        "summarize", parents=[common],
        help="aggregate a JSONL trace into a hot-span table",
    )
    s.add_argument("trace_file", help="path to a --trace JSONL output")
    s.add_argument("--top", type=int, default=None, metavar="K",
                   help="show only the K hottest spans")
    s.add_argument("--sort", choices=("self", "total", "mean", "count"),
                   default="self", help="ranking key (default: self time)")
    s.add_argument("--name", metavar="GLOB", default=None,
                   help="only spans/events matching this glob (e.g. 'phy.*')")

    pr = obs_sub.add_parser(
        "profile", parents=[common],
        help="attribute sweep wall time (compute/dispatch/serialization/idle)",
    )
    pr.add_argument("trace_file",
                    help="path to a --trace JSONL output of a sweep run")
    pr.add_argument("--sweep", metavar="GLOB", default=None,
                    help="only sweeps matching this glob (e.g. 'fig9*')")
    pr.add_argument("--top", type=int, default=0, metavar="K",
                    help="also print the K hottest spans")
    pr.add_argument("--folded", metavar="FILE", default=None,
                    help="write folded flamegraph stacks to FILE "
                         "(flamegraph.pl input format)")
    pr.add_argument("--json", action="store_true", dest="as_json",
                    help="emit the attribution as JSON instead of tables")

    runs = obs_sub.add_parser(
        "runs", parents=[common], help="query the run ledger"
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    rl = runs_sub.add_parser("list", parents=[common],
                             help="tabulate recent ledger records")
    rl.add_argument("--command", dest="filter_command", default=None,
                    metavar="CMD", help="only runs of this command")
    rl.add_argument("-n", "--limit", type=int, default=20,
                    help="show the last N runs (default 20)")
    rs = runs_sub.add_parser("show", parents=[common],
                             help="print one record as JSON")
    rs.add_argument("run_id", help="run id, unambiguous prefix, or 'latest'")
    rd = runs_sub.add_parser("diff", parents=[common],
                             help="compare two runs (identity + metrics)")
    rd.add_argument("old", help="run id, prefix, or 'latest'")
    rd.add_argument("new", nargs="?", default="latest",
                    help="run id, prefix, or 'latest' (default)")

    e = obs_sub.add_parser(
        "export", parents=[common],
        help="render metrics as OpenMetrics text or tidy CSV",
    )
    e.add_argument("format", choices=("openmetrics", "csv"))
    e.add_argument("--input", metavar="FILE", default=None,
                   help="metrics snapshot JSON (a --metrics output); "
                        "default: the run ledger")
    e.add_argument("--command", dest="filter_command", default=None,
                   metavar="CMD", help="only ledger runs of this command")
    e.add_argument("-o", "--out", metavar="FILE", default=None,
                   help="write to FILE instead of stdout")

    g = obs_sub.add_parser(
        "regress", parents=[common],
        help="compare headline metrics against a committed baseline",
    )
    g.add_argument("--baseline", metavar="FILE", default=DEFAULT_BASELINE,
                   help=f"baseline JSON (default {DEFAULT_BASELINE})")
    g.add_argument("--current", metavar="FILE", default=None,
                   help="flat {metric: value} JSON instead of running probes")
    g.add_argument("--run", metavar="ID", default=None,
                   help="check a ledger record's headline metrics "
                        "(id, prefix, or 'latest')")
    g.add_argument("--update-baseline", action="store_true",
                   help="write the current metrics to --baseline and exit")

    sv = obs_sub.add_parser(
        "serve", parents=[common],
        help="serve live telemetry (OpenMetrics scrape + SSE stream)",
    )
    sv.add_argument("--port", type=int, default=9200,
                    help="TCP port to bind (default 9200; 0 = ephemeral)")
    sv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default 127.0.0.1)")
    sv.add_argument("--duration", type=float, default=None, metavar="S",
                    help="stop after S seconds (default: until interrupted)")

    w = obs_sub.add_parser(
        "watch", parents=[common],
        help="tail a live telemetry endpoint as a terminal status table",
    )
    w.add_argument("url", help="endpoint base URL (e.g. http://127.0.0.1:9200)")
    w.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="seconds between refreshes (default 1.0)")
    w.add_argument("--once", action="store_true",
                   help="render a single frame and exit")
    w.add_argument("--duration", type=float, default=None, metavar="S",
                   help="stop watching after S seconds")
    w.add_argument("--name", metavar="GLOB", default=None,
                   help="only series matching this glob (e.g. 'runtime.*')")
    w.add_argument("--events", action="store_true",
                   help="tail the /events SSE stream as JSON lines instead "
                        "of polling the status table")
    w.add_argument("--no-reconnect", action="store_true",
                   help="with --events: exit 1 on the first dropped "
                        "connection instead of backing off and retrying")
    w.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="with --events: consecutive failed reconnects "
                        "tolerated before exit 1 (default 5)")
    w.add_argument("--max-events", type=int, default=None, metavar="N",
                   help="with --events: exit 0 after N frames")

    bb = obs_sub.add_parser(
        "blackbox", parents=[common],
        help="inspect crash-forensics bundles (runs/crash-<runid>/)",
    )
    bb_sub = bb.add_subparsers(dest="blackbox_command", required=True)
    bb_sub.add_parser("list", parents=[common],
                      help="tabulate crash bundles in the runs dir")
    bshow = bb_sub.add_parser("show", parents=[common],
                              help="print one bundle's forensics")
    bshow.add_argument("bundle", nargs="?", default="latest",
                       help="bundle id, run id, unambiguous prefix, or "
                            "'latest' (default)")
    bshow.add_argument("--records", type=int, default=10, metavar="K",
                       help="flight-recorder records to show (default 10)")
    bshow.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the full bundle as JSON")

    b = obs_sub.add_parser(
        "bench", parents=[common], help="benchmark-history queries"
    )
    bench_sub = b.add_subparsers(dest="bench_command", required=True)
    bt = bench_sub.add_parser("trend", parents=[common],
                              help="per-metric drift across bench ledger runs")
    bt.add_argument("--metric", metavar="GLOB", default=None,
                    help="only metrics matching this glob")
    bt.add_argument("-n", "--limit", type=int, default=20,
                    help="consider the last N bench runs (default 20)")


def _add_lint_parser(subparsers, common) -> None:
    from repro.analysis.cli import add_lint_arguments

    p = subparsers.add_parser(
        "lint", parents=[common],
        help="AST-based determinism/numerics/obs linter (repro lint)",
    )
    add_lint_arguments(p)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MegaMIMO / JMB (SIGCOMM 2012) reproduction toolkit",
    )
    common = _common_options()
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_figure_parser(subparsers, common)
    _add_ablation_parser(subparsers, common)
    _add_simulate_parser(subparsers, common)
    subparsers.add_parser(
        "quickstart", parents=[common], help="2 APs jointly serve 2 clients"
    )
    subparsers.add_parser(
        "report", parents=[common], help="regenerate all EXPERIMENTS.md tables"
    )
    _add_obs_parser(subparsers, common)
    _add_lint_parser(subparsers, common)
    return parser


def _runtime_kwargs(args, supported: bool, what: str) -> dict:
    """Translate --workers/--backend/--checkpoint/--resume into runner kwargs.

    Serial-only targets (``supported=False``) get an empty dict plus a
    warning, so the flags never silently change semantics.  ``--backend``
    is only forwarded when given, keeping config hashes of existing
    invocations stable.
    """
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint")
    if not supported:
        if args.workers != 1 or args.checkpoint or args.backend:
            logger.warning(
                "%s runs serially; ignoring --workers/--backend/"
                "--checkpoint/--resume", what
            )
        return {}
    kwargs = {
        "workers": args.workers,
        "checkpoint": args.checkpoint,
        "resume": args.resume,
    }
    if args.backend is not None:
        kwargs["backend"] = args.backend
    return kwargs


#: Per-figure default RNG seeds (kept stable across releases so ledger
#: records with the same config hash really are the same experiment).
_FIGURE_SEEDS = {6: 1, 7: 2, 8: 3, 9: 4, 10: 4, 11: 5, 12: 6, 13: 6}


def _run_figure(args, ctx: RunContext) -> int:
    from repro.sim import experiments as E

    scale = max(args.scale, 0.1)
    n = args.number
    seed = args.seed if args.seed is not None else _FIGURE_SEEDS[n]
    rt = _runtime_kwargs(args, supported=n in (6, 8, 9, 10, 11), what=f"figure {n}")
    logger.info("running figure %d at scale %.2f", n, scale)

    if n == 6:
        result = E.run_fig6(seed=seed, n_channels=max(int(100 * scale), 10), **rt)
    elif n == 7:
        result = E.run_fig7(
            seed=seed, n_systems=max(int(8 * scale), 2),
            n_rounds=max(int(25 * scale), 5),
        )
    elif n == 8:
        result = E.run_fig8(seed=seed, n_topologies=max(int(10 * scale), 2), **rt)
    elif n == 9:
        result = E.run_fig9(seed=seed, n_topologies=max(int(10 * scale), 2), **rt)
    elif n == 10:
        result = E.run_fig10(seed=seed, n_topologies=max(int(10 * scale), 2), **rt)
    elif n == 11:
        result = E.run_fig11(seed=seed, n_draws=max(int(20 * scale), 4), **rt)
    elif n == 12:
        result = E.run_fig12(seed=seed, n_topologies=max(int(20 * scale), 4))
    else:
        result = E.run_fig13(seed=seed, n_topologies=max(int(20 * scale), 4))
    ctx.config = {"figure": n, "scale": scale, "seed": seed, **rt}
    ctx.master_seed = seed
    if hasattr(result, "headline"):
        ctx.headline = result.headline()
    print(f"=== Figure {n} ===")
    print(result.format_table())
    return 0


_ABLATION_SEEDS = {
    "sync": 7, "tracking": 8, "sounding": 9, "cfo": 10,
    "overhead": 11, "screening": 14,
}


def _run_ablation(args, ctx: RunContext) -> int:
    from repro.sim import ablations as A
    from repro.sim.overhead import run_overhead_experiment

    seed = args.seed if args.seed is not None else _ABLATION_SEEDS[args.name]
    rt = _runtime_kwargs(
        args, supported=args.name in ("sync", "screening"),
        what=f"ablation {args.name!r}",
    )
    if args.name == "screening":
        # two nested fig9 sweeps would fight over one checkpoint file
        if rt.pop("checkpoint", None):
            logger.warning("screening ablation ignores --checkpoint/--resume")
        rt.pop("resume", None)
    logger.info("running ablation %r", args.name)
    runners = {
        "sync": lambda: A.run_sync_strategy_ablation(seed=seed, **rt),
        "tracking": lambda: A.run_tracking_ablation(seed=seed),
        "sounding": lambda: A.run_sounding_ablation(seed=seed),
        "cfo": lambda: A.run_cfo_averaging_ablation(seed=seed),
        "overhead": lambda: run_overhead_experiment(seed=seed),
        "screening": lambda: A.run_screening_ablation(seed=seed, **rt),
    }
    result = runners[args.name]()
    ctx.config = {"ablation": args.name, "seed": seed, **rt}
    ctx.master_seed = seed
    if hasattr(result, "headline"):
        ctx.headline = result.headline()
    print(f"=== Ablation: {args.name} ===")
    print(result.format_table())
    return 0


def _run_simulate(args, ctx: RunContext) -> int:
    from repro.mac.simulator import DownlinkSimulator, LinkLayerConfig
    from repro.obs.regress import sync_health_alarms

    config = LinkLayerConfig(
        n_aps=args.n_aps,
        n_clients=args.n_clients,
        duration_s=args.duration,
        arrival_rate_pps=args.arrival_rate,
        resound_interval_s=args.resound_interval,
        coherence_time_s=args.coherence_time,
        seed=args.seed,
    )
    logger.info(
        "simulating %d APs x %d clients for %.0f ms",
        config.n_aps, config.n_clients, config.duration_s * 1e3,
    )
    sim_trace = DownlinkSimulator(config).run()
    ctx.config = {
        "n_aps": config.n_aps,
        "n_clients": config.n_clients,
        "duration_s": config.duration_s,
        "arrival_rate_pps": config.arrival_rate_pps,
        "resound_interval_s": config.resound_interval_s,
        "coherence_time_s": config.coherence_time_s,
        "seed": config.seed,
    }
    ctx.master_seed = config.seed
    ctx.headline = sim_trace.headline()
    # sync-health monitor: per-slave phase-error p95 vs. the paper's budget
    ctx.alarms = sync_health_alarms()
    print(sim_trace.format_summary())
    return 0


def _run_quickstart(ctx: RunContext) -> int:
    from repro import MegaMimoSystem, SystemConfig, get_mcs
    from repro.channel.models import RicianChannel

    logger.info("quickstart: 2 APs jointly serving 2 clients")
    system = MegaMimoSystem.create(
        SystemConfig(n_aps=2, n_clients=2, seed=7),
        client_snr_db=25.0,
        channel_model=RicianChannel(k_factor=8.0),
    )
    system.run_sounding(0.0)
    payloads = [b"packet for client zero", b"packet for client one!"]
    report = system.joint_transmit(payloads, get_mcs(2), start_time=1e-3)
    for i, r in enumerate(report.receptions):
        status = "ok" if r.decoded.crc_ok else "FAILED"
        print(
            f"client{i}: {status}, SNR {r.effective_snr_db:.1f} dB, "
            f"payload={r.decoded.payload!r}"
        )
    ctx.config = {"n_aps": 2, "n_clients": 2, "seed": 7}
    ctx.master_seed = 7
    ok = [r.decoded.crc_ok for r in report.receptions]
    ctx.headline = {
        "quickstart.crc_ok_frac": sum(ok) / len(ok),
        "quickstart.min_snr_db": min(
            float(r.effective_snr_db) for r in report.receptions
        ),
    }
    return 0 if all(ok) else 1


def _run_report() -> int:
    from repro.sim.report import generate_report

    generate_report()
    return 0


# ---------------------------------------------------------------------------
# obs subcommands
# ---------------------------------------------------------------------------


def _resolve_run(ledger, token: str):
    """A ledger record from an id, unambiguous prefix, or ``latest``."""
    record = ledger.latest() if token == "latest" else ledger.get(token)
    if record is None:
        logger.error("no run %r in %s", token, ledger.path)
    return record


def _run_obs_runs(args) -> int:
    from repro.obs.ledger import (
        Ledger, diff_records, format_diff, format_list, format_show,
    )

    ledger = Ledger(args.ledger)
    if args.runs_command == "list":
        print(format_list(ledger.last(args.limit, command=args.filter_command)))
        return 0
    if args.runs_command == "show":
        record = _resolve_run(ledger, args.run_id)
        if record is None:
            return 1
        print(format_show(record))
        return 0
    # diff
    old = _resolve_run(ledger, args.old)
    new = _resolve_run(ledger, args.new)
    if old is None or new is None:
        return 1
    print(format_diff(diff_records(old, new)))
    return 0


def _run_obs_export(args) -> int:
    from repro.obs import export as X
    from repro.obs.ledger import Ledger

    if args.input:
        try:
            with open(args.input) as f:
                snapshot = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            logger.error("cannot read metrics snapshot %s: %s", args.input, exc)
            return 1
        text = (
            X.metrics_to_openmetrics(snapshot)
            if args.format == "openmetrics"
            else X.metrics_to_csv(snapshot)
        )
    else:
        ledger = Ledger(args.ledger)
        records = list(ledger.records(command=args.filter_command))
        if not records:
            logger.error("ledger %s has no matching runs", ledger.path)
            return 1
        if args.format == "csv":
            text = X.ledger_to_csv(records)
        else:
            # OpenMetrics is a point-in-time format: expose the latest
            # run's headline metrics as gauges.
            latest = records[-1]
            snapshot = {
                name: {"type": "gauge", "value": value}
                for name, value in latest.metrics.items()
            }
            snapshot["run_duration_s"] = {
                "type": "gauge", "value": latest.duration_s,
            }
            text = X.metrics_to_openmetrics(snapshot)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        logger.info("wrote %s export to %s", args.format, args.out)
    else:
        print(text, end="")
    return 0


def _run_obs_regress(args) -> int:
    from repro.obs import regress as R
    from repro.obs.ledger import Ledger

    require_all = True
    if args.current:
        try:
            with open(args.current) as f:
                current = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            logger.error("cannot read current metrics %s: %s", args.current, exc)
            return R.EXIT_NO_BASELINE
    elif args.run:
        record = _resolve_run(Ledger(args.ledger), args.run)
        if record is None:
            return R.EXIT_NO_BASELINE
        current = record.metrics
        # a ledger record only carries its own command's headline metrics
        require_all = False
    else:
        logger.info("running regression probe suite")
        current = R.run_probes()

    if args.update_baseline:
        R.write_baseline(args.baseline, current)
        print(f"baseline written to {args.baseline} ({len(current)} metrics)")
        return R.EXIT_OK

    baseline = R.load_baseline(args.baseline)
    if baseline is None:
        print(
            f"no usable baseline at {args.baseline} "
            f"(create one with --update-baseline)"
        )
        return R.EXIT_NO_BASELINE
    report = R.compare(current, baseline, require_all=require_all)
    print(report.format_table())
    return R.EXIT_OK if report.passed else R.EXIT_BREACH


def _run_obs_bench_trend(args) -> int:
    from fnmatch import fnmatchcase

    from repro.obs.ledger import Ledger

    ledger = Ledger(args.ledger)
    records = list(ledger.records(command="bench"))[-args.limit:]
    if not records:
        logger.error("no bench runs in %s (run scripts/bench_sweeps.py)",
                     ledger.path)
        return 1
    names = sorted({name for r in records for name in r.metrics})
    if args.metric:
        names = [n for n in names if fnmatchcase(n, args.metric)]
    # newest value per metric, for the speedup rows' overhead columns
    latest: dict = {}
    for r in records:
        latest.update(r.metrics)
    print(f"{len(records)} bench runs, {records[0].run_id} .. "
          f"{records[-1].run_id}")
    print(f"{'metric':<36} {'n':>3} {'first':>10} {'last':>10} "
          f"{'delta':>10} {'rel':>8} {'disp%':>7} {'ser%':>7}")
    for name in names:
        series = [r.metrics[name] for r in records if name in r.metrics]
        first, last = series[0], series[-1]
        rel = f"{(last - first) / abs(first):+.1%}" if first else "-"
        # a speedup row explains itself with its workload's latest
        # dispatch/serialization share of pool capacity
        disp = ser = "-"
        if name.endswith(".speedup"):
            base = name[: -len(".speedup")]
            disp_frac = latest.get(base + ".dispatch_frac")
            ser_frac = latest.get(base + ".serialization_frac")
            disp = f"{disp_frac:.1%}" if disp_frac is not None else "-"
            ser = f"{ser_frac:.1%}" if ser_frac is not None else "-"
        print(f"{name:<36} {len(series):>3d} {first:>10.4g} {last:>10.4g} "
              f"{last - first:>+10.4g} {rel:>8} {disp:>7} {ser:>7}")
    return 0


def _run_obs_profile(args) -> int:
    from fnmatch import fnmatchcase

    from repro.obs import profile as P

    try:
        prof = P.profile_trace(args.trace_file)
    except OSError as exc:
        logger.error("cannot read trace: %s", exc)
        return 1
    except ValueError as exc:  # includes JSONDecodeError
        logger.error("malformed trace %s: %s", args.trace_file, exc)
        return 1
    attributions = prof.attributions
    if args.sweep:
        attributions = [a for a in attributions
                        if fnmatchcase(a.sweep, args.sweep)]
    if args.folded:
        lines = P.folded_stacks(prof.records)
        with open(args.folded, "w") as f:
            f.write("\n".join(lines) + ("\n" if lines else ""))
        logger.info("%d folded stacks written to %s", len(lines), args.folded)
    if args.as_json:
        import json

        print(json.dumps([a.to_dict() for a in attributions], indent=2))
    else:
        print(P.format_profile(
            P.TraceProfile(records=prof.records, attributions=attributions,
                           summary=prof.summary),
            top_k=args.top,
        ))
    if not attributions:
        logger.error(
            "no sweep dispatch records in %s — trace a sweep-running command "
            "(e.g. `repro figure 9 --workers 4 --trace out.jsonl`)",
            args.trace_file,
        )
        return 1
    return 0


def _run_obs_serve(args) -> int:
    from repro.obs.serve import TelemetryServer

    try:
        server = TelemetryServer(
            port=args.port, host=args.host, rules_path=args.alerts,
        ).start()
    except OSError as exc:
        logger.error("cannot start telemetry server: %s", exc)
        return 1
    sys.stderr.write(
        f"serving live telemetry on {server.url} (ctrl-c to stop)\n"
    )
    sys.stderr.flush()
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600.0)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _run_obs_watch(args) -> int:
    from repro.obs.serve import DEFAULT_STREAM_RETRIES, stream_events, watch

    if args.events:
        return stream_events(
            args.url,
            reconnect=not args.no_reconnect,
            max_retries=(
                DEFAULT_STREAM_RETRIES if args.max_retries is None
                else args.max_retries
            ),
            max_events=1 if args.once else args.max_events,
            duration_s=args.duration,
        )
    return watch(
        args.url,
        interval_s=args.interval,
        iterations=1 if args.once else None,
        duration_s=args.duration,
        fail_on_alert=args.fail_on_alert,
        name=args.name,
    )


def _run_obs_blackbox(args) -> int:
    from repro.obs import blackbox

    if args.blackbox_command == "list":
        print(blackbox.format_bundle_list(blackbox.list_bundles(args.ledger)))
        return 0
    # show
    bundle = blackbox.load_bundle(args.bundle, runs_dir=args.ledger)
    if bundle is None:
        logger.error("no crash bundle matching %r", args.bundle)
        return 1
    if args.as_json:
        print(json.dumps(bundle, indent=2, sort_keys=True))
    else:
        print(blackbox.format_bundle_show(bundle, records=args.records))
    return 0


def _run_obs(args) -> int:
    if args.obs_command == "summarize":
        from repro.obs.summary import format_table, summarize

        try:
            summary = summarize(args.trace_file)
        except OSError as exc:
            logger.error("cannot read trace: %s", exc)
            return 1
        except ValueError as exc:
            logger.error("malformed trace %s: %s", args.trace_file, exc)
            return 1
        print(format_table(summary, top_k=args.top, sort=args.sort,
                           name=args.name))
        return 0
    if args.obs_command == "profile":
        return _run_obs_profile(args)
    if args.obs_command == "runs":
        return _run_obs_runs(args)
    if args.obs_command == "export":
        return _run_obs_export(args)
    if args.obs_command == "regress":
        return _run_obs_regress(args)
    if args.obs_command == "serve":
        return _run_obs_serve(args)
    if args.obs_command == "watch":
        return _run_obs_watch(args)
    if args.obs_command == "blackbox":
        return _run_obs_blackbox(args)
    if args.obs_command == "bench":
        return _run_obs_bench_trend(args)
    return 2  # unreachable: argparse enforces the choices


def _dispatch(args, ctx: RunContext) -> int:
    from repro.runtime import CheckpointMismatch, SweepError

    try:
        if args.command == "figure":
            return _run_figure(args, ctx)
        if args.command == "ablation":
            return _run_ablation(args, ctx)
    except CheckpointMismatch as exc:
        logger.error("%s", exc)
        logger.error("delete the file or rerun without --resume to start fresh")
        return 1
    except SweepError as exc:
        # e.g. --backend batched on a sweep without a registered batched
        # twin, or trials lost to a stall the retry path could not cover
        from repro.obs import blackbox

        blackbox.write_crash_bundle(
            "sweep_error", error=exc, runs_dir=args.ledger,
        )
        logger.error("%s", exc)
        return 1
    if args.command == "simulate":
        return _run_simulate(args, ctx)
    if args.command == "quickstart":
        return _run_quickstart(ctx)
    if args.command == "report":
        return _run_report()
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "lint":
        from repro.analysis.cli import run_lint_command

        return run_lint_command(args)
    return 2  # unreachable: argparse enforces the choices


def _record_run(
    args, ctx: RunContext, argv: List[str], started: float,
    duration_s: float, status: str, run_id: Optional[str] = None,
) -> None:
    """Append this invocation to the run ledger (best-effort, never raises)."""
    if args.command not in RUN_COMMANDS or args.no_ledger:
        return
    from repro.obs import ledger as L
    from repro.obs import provenance

    for kind in ("trace", "metrics", "checkpoint"):
        path = getattr(args, kind, None)
        if path:
            ctx.artifacts.setdefault(kind, path)
    prov = provenance.collect(ctx.config)
    record = L.RunRecord(
        run_id=run_id if run_id is not None else L.new_run_id(started),
        ts=started,
        command=args.command,
        argv=list(argv),
        status=status,
        duration_s=duration_s,
        git_sha=prov["git_sha"],
        git_dirty=prov["git_dirty"],
        config_hash=prov["config_hash"],
        config=ctx.config,
        master_seed=ctx.master_seed,
        platform={
            k: prov[k]
            for k in ("platform", "python", "numpy", "cpu_count", "hostname")
        },
        metrics=ctx.headline,
        artifacts=ctx.artifacts,
        alarms=ctx.alarms,
    )
    try:
        path = L.Ledger(args.ledger).append(record)
    except OSError as exc:
        logger.warning("could not append run record: %s", exc)
        return
    logger.info("run %s appended to %s", record.run_id, path)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # The stdout reader went away mid-print (e.g. `repro obs runs show
        # | head`).  Point the dangling fd at devnull so interpreter
        # shutdown doesn't raise again while flushing, and exit quietly.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _main(argv: Optional[List[str]]) -> int:
    argv_list = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(argv_list)
    setup_logging(verbosity=args.verbose - args.quiet)
    if args.trace:
        try:
            trace.configure(args.trace, command=args.command, argv=argv_list)
        except OSError as exc:
            logger.error("cannot open trace file: %s", exc)
            return 1
        logger.info("tracing to %s", args.trace)
    server = None
    if args.command in RUN_COMMANDS and args.serve_port is not None:
        from repro.obs.serve import TelemetryServer

        try:
            server = TelemetryServer(
                port=args.serve_port, rules_path=args.alerts,
            ).start()
        except OSError as exc:
            logger.error("cannot start telemetry server: %s", exc)
            return 1
        # the endpoint location is the whole point of the flag: always
        # announce it (stderr, so stdout tables stay clean)
        sys.stderr.write(f"serving live telemetry on {server.url}\n")
        sys.stderr.flush()
    ctx = RunContext()
    started = time.time()
    run_timer = metrics.timer("cli.command_s").start()
    status = "error"
    run_id: Optional[str] = None
    guard = None
    is_run = args.command in RUN_COMMANDS
    if is_run:
        # Crash forensics: mint the ledger run id *now* (not at record
        # time) so any bundle written mid-run — watchdog stall, signal,
        # unhandled exception — lands in runs/crash-<runid>/ with the
        # same id the ledger record will carry.
        from repro.obs import blackbox
        from repro.obs.ledger import new_run_id

        run_id = new_run_id(started)
        blackbox.set_run_context(
            run_id=run_id, command=args.command, argv=argv_list,
            runs_dir=args.ledger,
        )
        guard = blackbox.signal_guard(runs_dir=args.ledger)
        guard.__enter__()
    try:
        try:
            with trace.span("cli.command", command=args.command):
                code = _dispatch(args, ctx)
        except Exception as exc:
            if is_run:
                from repro.obs import blackbox

                blackbox.write_crash_bundle(
                    "unhandled_exception", error=exc, runs_dir=args.ledger,
                )
            raise
        status = "ok" if code == 0 else "error"
        if server is not None:
            server.stop()  # final alert evaluation before judging the run
            fired = server.engine.fired_alarms()
            ctx.alarms.extend(fired)
            critical = [a for a in fired if a.get("severity") == "critical"]
            if critical and is_run:
                from repro.obs import blackbox

                # one bundle per run: a stall/signal/exception already
                # snapshotted the same final seconds
                if blackbox.pending_bundles() == 0:
                    blackbox.write_crash_bundle(
                        "critical_alert", runs_dir=args.ledger,
                        detail={"rules": [a.get("rule") for a in critical]},
                    )
            if fired and args.fail_on_alert and code == 0:
                from repro.obs.serve import EXIT_ALERT

                logger.error(
                    "alert rules fired during the run: %s",
                    ", ".join(a["rule"] for a in fired),
                )
                status = "alert"
                code = EXIT_ALERT
        return code
    finally:
        run_timer.stop()
        if server is not None:
            # exception path: stop (idempotent) while the trace is still
            # open so the engine's final obs.alert events land in it
            server.stop()
            for alarm in server.engine.fired_alarms():
                if alarm not in ctx.alarms:
                    ctx.alarms.append(alarm)
        if guard is not None:
            guard.__exit__(None, None, None)
        if is_run:
            from repro.obs import blackbox

            # crash bundles written anywhere this run become ledger
            # alarms, so `repro obs runs show` links to the forensics
            ctx.alarms.extend(blackbox.drain_bundles())
            blackbox.clear_run_context()
        if args.trace:
            trace.close()
            logger.info("trace written to %s", args.trace)
        if args.metrics:
            metrics.write_json(args.metrics)
            logger.info("metrics written to %s", args.metrics)
        _record_run(args, ctx, argv_list, started, run_timer.wall_s, status,
                    run_id=run_id)


if __name__ == "__main__":
    raise SystemExit(main())
