"""Command-line interface: reproduce any figure or run simulations.

    python -m repro figure 9
    python -m repro ablation sync
    python -m repro simulate --n-aps 4 --duration 0.5
    python -m repro quickstart
    python -m repro report
    python -m repro obs summarize out.jsonl

Every command prints the same tables the benchmark suite reports, so the
CLI is the quickest way to poke at one experiment with custom parameters.

Output policy: result tables go to **stdout**; diagnostics go to **stderr**
through :mod:`repro.obs.logging` (``-v`` for progress, ``-vv`` for debug,
``-q`` for errors only).  Every run command also accepts ``--trace
out.jsonl`` (span/event telemetry, see ``docs/observability.md``) and
``--metrics out.json`` (the metrics-registry snapshot).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs import get_logger, metrics, setup_logging, trace

logger = get_logger(__name__)


def _common_options() -> argparse.ArgumentParser:
    """Observability flags shared by every subcommand."""
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("observability")
    group.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a JSONL span/event trace of the run to FILE",
    )
    group.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write the metrics-registry snapshot (JSON) to FILE",
    )
    group.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress to stderr (-vv for debug)",
    )
    group.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="only log errors to stderr",
    )
    return common


def _add_figure_parser(subparsers, common) -> None:
    p = subparsers.add_parser(
        "figure", parents=[common], help="reproduce one evaluation figure (6-13)"
    )
    p.add_argument("number", type=int, choices=range(6, 14), metavar="6-13")
    p.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    p.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply the default topology/round counts (e.g. 2.0 = paper scale)",
    )
    _add_runtime_options(p)


def _add_runtime_options(p: argparse.ArgumentParser) -> None:
    """Parallel-sweep flags (see docs/parallelism.md)."""
    group = p.add_argument_group("runtime")
    group.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for Monte-Carlo sweeps (default 1 = serial; "
             "results are bit-identical for any N)",
    )
    group.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="append completed sweep chunks to a JSONL checkpoint FILE",
    )
    group.add_argument(
        "--resume", action="store_true",
        help="skip chunks already recorded in --checkpoint",
    )


def _add_ablation_parser(subparsers, common) -> None:
    p = subparsers.add_parser(
        "ablation", parents=[common], help="run one design-choice ablation"
    )
    p.add_argument(
        "name",
        choices=["sync", "tracking", "sounding", "cfo", "overhead", "screening"],
    )
    p.add_argument("--seed", type=int, default=None)
    _add_runtime_options(p)


def _add_simulate_parser(subparsers, common) -> None:
    p = subparsers.add_parser(
        "simulate", parents=[common],
        help="event-driven link-layer simulation over fading channels",
    )
    p.add_argument("--n-aps", type=int, default=4)
    p.add_argument("--n-clients", type=int, default=4)
    p.add_argument("--duration", type=float, default=0.5, help="seconds")
    p.add_argument(
        "--arrival-rate", type=float, default=None,
        help="Poisson packets/s per client (default: backlogged)",
    )
    p.add_argument("--resound-interval", type=float, default=25e-3, help="seconds")
    p.add_argument("--coherence-time", type=float, default=0.25, help="seconds")
    p.add_argument("--seed", type=int, default=1)


def _add_obs_parser(subparsers, common) -> None:
    p = subparsers.add_parser(
        "obs", parents=[common], help="inspect observability outputs"
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    s = obs_sub.add_parser(
        "summarize", parents=[common],
        help="aggregate a JSONL trace into a hot-span table",
    )
    s.add_argument("trace_file", help="path to a --trace JSONL output")
    s.add_argument("--top", type=int, default=None, metavar="K",
                   help="show only the K hottest spans")
    s.add_argument("--sort", choices=("self", "total", "mean", "count"),
                   default="self", help="ranking key (default: self time)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MegaMIMO / JMB (SIGCOMM 2012) reproduction toolkit",
    )
    common = _common_options()
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_figure_parser(subparsers, common)
    _add_ablation_parser(subparsers, common)
    _add_simulate_parser(subparsers, common)
    subparsers.add_parser(
        "quickstart", parents=[common], help="2 APs jointly serve 2 clients"
    )
    subparsers.add_parser(
        "report", parents=[common], help="regenerate all EXPERIMENTS.md tables"
    )
    _add_obs_parser(subparsers, common)
    return parser


def _runtime_kwargs(args, supported: bool, what: str) -> dict:
    """Translate --workers/--checkpoint/--resume into runner kwargs.

    Serial-only targets (``supported=False``) get an empty dict plus a
    warning, so the flags never silently change semantics.
    """
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint")
    if not supported:
        if args.workers != 1 or args.checkpoint:
            logger.warning(
                "%s runs serially; ignoring --workers/--checkpoint/--resume", what
            )
        return {}
    return {
        "workers": args.workers,
        "checkpoint": args.checkpoint,
        "resume": args.resume,
    }


def _run_figure(args) -> int:
    from repro.sim import experiments as E

    scale = max(args.scale, 0.1)
    n = args.number
    seed = args.seed
    rt = _runtime_kwargs(args, supported=n in (6, 8, 9, 10, 11), what=f"figure {n}")
    logger.info("running figure %d at scale %.2f", n, scale)

    def kw(default_seed, **extra):
        out = dict(extra)
        out["seed"] = seed if seed is not None else default_seed
        return out

    if n == 6:
        result = E.run_fig6(**kw(1, n_channels=max(int(100 * scale), 10)), **rt)
    elif n == 7:
        result = E.run_fig7(
            **kw(2, n_systems=max(int(8 * scale), 2), n_rounds=max(int(25 * scale), 5))
        )
    elif n == 8:
        result = E.run_fig8(**kw(3, n_topologies=max(int(10 * scale), 2)), **rt)
    elif n == 9:
        result = E.run_fig9(**kw(4, n_topologies=max(int(10 * scale), 2)), **rt)
    elif n == 10:
        result = E.run_fig10(n_topologies=max(int(10 * scale), 2),
                             **kw(4), **rt)
    elif n == 11:
        result = E.run_fig11(**kw(5, n_draws=max(int(20 * scale), 4)), **rt)
    elif n == 12:
        result = E.run_fig12(**kw(6, n_topologies=max(int(20 * scale), 4)))
    else:
        result = E.run_fig13(n_topologies=max(int(20 * scale), 4), **kw(6))
    print(f"=== Figure {n} ===")
    print(result.format_table())
    return 0


def _run_ablation(args) -> int:
    from repro.sim import ablations as A
    from repro.sim.overhead import run_overhead_experiment

    seed = args.seed
    rt = _runtime_kwargs(
        args, supported=args.name in ("sync", "screening"),
        what=f"ablation {args.name!r}",
    )
    if args.name == "screening":
        # two nested fig9 sweeps would fight over one checkpoint file
        if rt.pop("checkpoint", None):
            logger.warning("screening ablation ignores --checkpoint/--resume")
        rt.pop("resume", None)
    logger.info("running ablation %r", args.name)
    runners = {
        "sync": lambda: A.run_sync_strategy_ablation(
            seed=seed if seed is not None else 7, **rt
        ),
        "tracking": lambda: A.run_tracking_ablation(
            seed=seed if seed is not None else 8
        ),
        "sounding": lambda: A.run_sounding_ablation(
            seed=seed if seed is not None else 9
        ),
        "cfo": lambda: A.run_cfo_averaging_ablation(
            seed=seed if seed is not None else 10
        ),
        "overhead": lambda: run_overhead_experiment(
            seed=seed if seed is not None else 11
        ),
        "screening": lambda: A.run_screening_ablation(
            seed=seed if seed is not None else 14, **rt
        ),
    }
    result = runners[args.name]()
    print(f"=== Ablation: {args.name} ===")
    print(result.format_table())
    return 0


def _run_simulate(args) -> int:
    from repro.mac.simulator import DownlinkSimulator, LinkLayerConfig

    config = LinkLayerConfig(
        n_aps=args.n_aps,
        n_clients=args.n_clients,
        duration_s=args.duration,
        arrival_rate_pps=args.arrival_rate,
        resound_interval_s=args.resound_interval,
        coherence_time_s=args.coherence_time,
        seed=args.seed,
    )
    logger.info(
        "simulating %d APs x %d clients for %.0f ms",
        config.n_aps, config.n_clients, config.duration_s * 1e3,
    )
    sim_trace = DownlinkSimulator(config).run()
    print(sim_trace.format_summary())
    return 0


def _run_quickstart() -> int:
    from repro import MegaMimoSystem, SystemConfig, get_mcs
    from repro.channel.models import RicianChannel

    logger.info("quickstart: 2 APs jointly serving 2 clients")
    system = MegaMimoSystem.create(
        SystemConfig(n_aps=2, n_clients=2, seed=7),
        client_snr_db=25.0,
        channel_model=RicianChannel(k_factor=8.0),
    )
    system.run_sounding(0.0)
    payloads = [b"packet for client zero", b"packet for client one!"]
    report = system.joint_transmit(payloads, get_mcs(2), start_time=1e-3)
    for i, r in enumerate(report.receptions):
        status = "ok" if r.decoded.crc_ok else "FAILED"
        print(
            f"client{i}: {status}, SNR {r.effective_snr_db:.1f} dB, "
            f"payload={r.decoded.payload!r}"
        )
    return 0 if all(r.decoded.crc_ok for r in report.receptions) else 1


def _run_report() -> int:
    from repro.sim.report import generate_report

    generate_report()
    return 0


def _run_obs(args) -> int:
    from repro.obs.summary import format_table, summarize

    try:
        summary = summarize(args.trace_file)
    except OSError as exc:
        logger.error("cannot read trace: %s", exc)
        return 1
    except ValueError as exc:
        logger.error("malformed trace %s: %s", args.trace_file, exc)
        return 1
    print(format_table(summary, top_k=args.top, sort=args.sort))
    return 0


def _dispatch(args) -> int:
    from repro.runtime import CheckpointMismatch

    try:
        if args.command == "figure":
            return _run_figure(args)
        if args.command == "ablation":
            return _run_ablation(args)
    except CheckpointMismatch as exc:
        logger.error("%s", exc)
        logger.error("delete the file or rerun without --resume to start fresh")
        return 1
    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "quickstart":
        return _run_quickstart()
    if args.command == "report":
        return _run_report()
    if args.command == "obs":
        return _run_obs(args)
    return 2  # unreachable: argparse enforces the choices


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    setup_logging(verbosity=args.verbose - args.quiet)
    if args.trace:
        try:
            trace.configure(args.trace, command=args.command, argv=argv or sys.argv[1:])
        except OSError as exc:
            logger.error("cannot open trace file: %s", exc)
            return 1
        logger.info("tracing to %s", args.trace)
    try:
        return _dispatch(args)
    finally:
        if args.trace:
            trace.close()
            logger.info("trace written to %s", args.trace)
        if args.metrics:
            metrics.write_json(args.metrics)
            logger.info("metrics written to %s", args.metrics)


if __name__ == "__main__":
    raise SystemExit(main())
