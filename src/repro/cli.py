"""Command-line interface: reproduce any figure or run simulations.

    python -m repro figure 9
    python -m repro ablation sync
    python -m repro simulate --n-aps 4 --duration 0.5
    python -m repro quickstart
    python -m repro report

Every command prints the same tables the benchmark suite reports, so the
CLI is the quickest way to poke at one experiment with custom parameters.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _add_figure_parser(subparsers) -> None:
    p = subparsers.add_parser("figure", help="reproduce one evaluation figure (6-13)")
    p.add_argument("number", type=int, choices=range(6, 14), metavar="6-13")
    p.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    p.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply the default topology/round counts (e.g. 2.0 = paper scale)",
    )


def _add_ablation_parser(subparsers) -> None:
    p = subparsers.add_parser("ablation", help="run one design-choice ablation")
    p.add_argument(
        "name",
        choices=["sync", "tracking", "sounding", "cfo", "overhead", "screening"],
    )
    p.add_argument("--seed", type=int, default=None)


def _add_simulate_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "simulate", help="event-driven link-layer simulation over fading channels"
    )
    p.add_argument("--n-aps", type=int, default=4)
    p.add_argument("--n-clients", type=int, default=4)
    p.add_argument("--duration", type=float, default=0.5, help="seconds")
    p.add_argument(
        "--arrival-rate", type=float, default=None,
        help="Poisson packets/s per client (default: backlogged)",
    )
    p.add_argument("--resound-interval", type=float, default=25e-3, help="seconds")
    p.add_argument("--coherence-time", type=float, default=0.25, help="seconds")
    p.add_argument("--seed", type=int, default=1)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MegaMIMO / JMB (SIGCOMM 2012) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_figure_parser(subparsers)
    _add_ablation_parser(subparsers)
    _add_simulate_parser(subparsers)
    subparsers.add_parser("quickstart", help="2 APs jointly serve 2 clients")
    subparsers.add_parser("report", help="regenerate all EXPERIMENTS.md tables")
    return parser


def _run_figure(args) -> int:
    from repro.sim import experiments as E

    scale = max(args.scale, 0.1)
    n = args.number
    seed = args.seed

    def kw(default_seed, **extra):
        out = dict(extra)
        out["seed"] = seed if seed is not None else default_seed
        return out

    if n == 6:
        result = E.run_fig6(**kw(1, n_channels=max(int(100 * scale), 10)))
    elif n == 7:
        result = E.run_fig7(
            **kw(2, n_systems=max(int(8 * scale), 2), n_rounds=max(int(25 * scale), 5))
        )
    elif n == 8:
        result = E.run_fig8(**kw(3, n_topologies=max(int(10 * scale), 2)))
    elif n == 9:
        result = E.run_fig9(**kw(4, n_topologies=max(int(10 * scale), 2)))
    elif n == 10:
        result = E.run_fig10(n_topologies=max(int(10 * scale), 2),
                             **kw(4))
    elif n == 11:
        result = E.run_fig11(**kw(5, n_draws=max(int(20 * scale), 4)))
    elif n == 12:
        result = E.run_fig12(**kw(6, n_topologies=max(int(20 * scale), 4)))
    else:
        result = E.run_fig13(n_topologies=max(int(20 * scale), 4), **kw(6))
    print(f"=== Figure {n} ===")
    print(result.format_table())
    return 0


def _run_ablation(args) -> int:
    from repro.sim import ablations as A
    from repro.sim.overhead import run_overhead_experiment

    seed = args.seed
    runners = {
        "sync": lambda: A.run_sync_strategy_ablation(
            seed=seed if seed is not None else 7
        ),
        "tracking": lambda: A.run_tracking_ablation(
            seed=seed if seed is not None else 8
        ),
        "sounding": lambda: A.run_sounding_ablation(
            seed=seed if seed is not None else 9
        ),
        "cfo": lambda: A.run_cfo_averaging_ablation(
            seed=seed if seed is not None else 10
        ),
        "overhead": lambda: run_overhead_experiment(
            seed=seed if seed is not None else 11
        ),
        "screening": lambda: A.run_screening_ablation(
            seed=seed if seed is not None else 14
        ),
    }
    result = runners[args.name]()
    print(f"=== Ablation: {args.name} ===")
    print(result.format_table())
    return 0


def _run_simulate(args) -> int:
    from repro.mac.simulator import DownlinkSimulator, LinkLayerConfig

    config = LinkLayerConfig(
        n_aps=args.n_aps,
        n_clients=args.n_clients,
        duration_s=args.duration,
        arrival_rate_pps=args.arrival_rate,
        resound_interval_s=args.resound_interval,
        coherence_time_s=args.coherence_time,
        seed=args.seed,
    )
    trace = DownlinkSimulator(config).run()
    print(trace.format_summary())
    return 0


def _run_quickstart() -> int:
    from repro import MegaMimoSystem, SystemConfig, get_mcs
    from repro.channel.models import RicianChannel

    system = MegaMimoSystem.create(
        SystemConfig(n_aps=2, n_clients=2, seed=7),
        client_snr_db=25.0,
        channel_model=RicianChannel(k_factor=8.0),
    )
    system.run_sounding(0.0)
    payloads = [b"packet for client zero", b"packet for client one!"]
    report = system.joint_transmit(payloads, get_mcs(2), start_time=1e-3)
    for i, r in enumerate(report.receptions):
        status = "ok" if r.decoded.crc_ok else "FAILED"
        print(
            f"client{i}: {status}, SNR {r.effective_snr_db:.1f} dB, "
            f"payload={r.decoded.payload!r}"
        )
    return 0 if all(r.decoded.crc_ok for r in report.receptions) else 1


def _run_report() -> int:
    import runpy
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "scripts" / "generate_experiments_report.py"
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    print("report script not found; run scripts/generate_experiments_report.py", file=sys.stderr)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "figure":
        return _run_figure(args)
    if args.command == "ablation":
        return _run_ablation(args)
    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "quickstart":
        return _run_quickstart()
    if args.command == "report":
        return _run_report()
    return 2  # unreachable: argparse enforces the choices


if __name__ == "__main__":
    raise SystemExit(main())
