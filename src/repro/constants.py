"""802.11-style numerology, MCS tables and simulation defaults.

The USRP testbed in the paper runs a 10 MHz channel in the 2.4 GHz band
(USRP2 + RFX2400); the 802.11n testbed runs a 20 MHz channel.  Both use the
classic 64-point OFDM numerology of 802.11a/g: 48 data subcarriers, 4 pilot
subcarriers and a 16-sample cyclic prefix.
"""

from __future__ import annotations

import numpy as np

# ---------------------------------------------------------------------------
# OFDM numerology (802.11a/g 64-point grid)
# ---------------------------------------------------------------------------

FFT_SIZE = 64
CP_LENGTH = 16
SYMBOL_LENGTH = FFT_SIZE + CP_LENGTH  # samples per OFDM symbol

#: Data subcarrier indices in FFT order (DC at 0), i.e. -26..-1, 1..26 minus
#: the pilot positions.  Matches IEEE 802.11-2012 Table 18-7.
PILOT_SUBCARRIERS = np.array([-21, -7, 7, 21])
_occupied = [k for k in range(-26, 27) if k != 0]
DATA_SUBCARRIERS = np.array(
    [k for k in _occupied if k not in set(PILOT_SUBCARRIERS.tolist())]
)
N_DATA_SUBCARRIERS = len(DATA_SUBCARRIERS)  # 48
N_PILOT_SUBCARRIERS = len(PILOT_SUBCARRIERS)  # 4
OCCUPIED_SUBCARRIERS = np.array(_occupied)

#: Pilot BPSK values for subcarriers (-21, -7, 7, 21), per 802.11.
PILOT_VALUES = np.array([1.0, 1.0, 1.0, -1.0])

#: Pilot polarity scrambling sequence p_{0..126} (802.11-2012 Eq. 18-25).
PILOT_POLARITY = np.array([
    1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1,
    -1, -1, 1, 1, -1, 1, 1, -1, 1, 1, 1, 1, 1, 1, -1, 1,
    1, 1, -1, 1, 1, -1, -1, 1, 1, 1, -1, 1, -1, -1, -1, 1,
    -1, 1, -1, -1, 1, -1, -1, 1, 1, 1, 1, 1, -1, -1, 1, 1,
    -1, -1, 1, -1, 1, -1, 1, 1, -1, -1, -1, 1, 1, -1, -1, -1,
    -1, 1, -1, -1, 1, -1, 1, 1, 1, 1, -1, 1, -1, 1, -1, 1,
    -1, -1, -1, -1, -1, 1, -1, 1, 1, -1, 1, -1, 1, 1, 1, -1,
    -1, 1, -1, -1, -1, 1, 1, 1, -1, -1, -1, -1, -1, -1, -1,
], dtype=float)

# ---------------------------------------------------------------------------
# Sample rates / band
# ---------------------------------------------------------------------------

#: USRP software-radio testbed: 10 MHz channel (paper §10a).
SAMPLE_RATE_USRP = 10e6
#: 802.11n testbed: 20 MHz channel (paper §10b).
SAMPLE_RATE_80211 = 20e6
#: Carrier frequency, 2.4 GHz ISM band.
CARRIER_FREQUENCY = 2.412e9

#: 802.11 mandates oscillators within +-20 ppm of nominal (paper §1).
MAX_PPM_80211 = 20.0

#: Thermal noise floor for a 10 MHz channel at a typical 6 dB noise figure.
NOISE_FLOOR_DBM_10MHZ = -174 + 10 * np.log10(10e6) + 6  # ~ -98 dBm

# ---------------------------------------------------------------------------
# Convolutional code (K=7, industry standard g0=133, g1=171 octal)
# ---------------------------------------------------------------------------

CONV_K = 7
CONV_G0 = 0o133
CONV_G1 = 0o171

# ---------------------------------------------------------------------------
# MCS table
# ---------------------------------------------------------------------------

#: (name, bits per subcarrier symbol, coding rate) in 802.11a order.  The
#: PHY bitrate at 20 MHz is  48 * bits * rate / 4e-6  (6..54 Mbps); at
#: 10 MHz the symbol time doubles so the rates halve (3..27 Mbps).
MCS_TABLE = (
    ("BPSK-1/2", 1, (1, 2)),
    ("BPSK-3/4", 1, (3, 4)),
    ("QPSK-1/2", 2, (1, 2)),
    ("QPSK-3/4", 2, (3, 4)),
    ("16QAM-1/2", 4, (1, 2)),
    ("16QAM-3/4", 4, (3, 4)),
    ("64QAM-2/3", 6, (2, 3)),
    ("64QAM-3/4", 6, (3, 4)),
)

#: Minimum effective SNR (dB) to sustain each MCS with low packet loss.
#: Calibrated following Halperin et al. [13] ("Predictable 802.11 packet
#: delivery from wireless channel measurements").
MCS_MIN_SNR_DB = (3.0, 5.0, 7.0, 9.0, 12.0, 15.0, 20.0, 23.0)

#: Fraction of airtime carrying data symbols once preamble/SIFS/turnaround
#: overheads are accounted for (1500-byte packets, paper §10c).
MAC_EFFICIENCY = 0.875

#: Paper-reported operational SNR range for 802.11 (§1, §11).
OPERATIONAL_SNR_RANGE_DB = (5.0, 25.0)

#: Effective-SNR bands used throughout the paper's evaluation (§11.1c).
SNR_BANDS_DB = {
    "low": (6.0, 12.0),
    "medium": (12.0, 18.0),
    "high": (18.0, 28.0),
}

#: Default packet payload used in all experiments (paper §10c).
PACKET_SIZE_BYTES = 1500

#: Indoor channel coherence time, several hundred ms (paper §5, [9]).
COHERENCE_TIME_S = 0.25

#: Slave turnaround delay after the lead trigger in the USRP implementation
#: (paper §10a: "We select t_delta as 150 us").
TRIGGER_TURNAROUND_S = 150e-6
