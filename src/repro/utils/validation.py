"""Tiny argument-validation helper used throughout the package."""

from __future__ import annotations


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds.

    Used at public API boundaries so that misuse fails fast with a clear
    message instead of surfacing as a numpy broadcasting error deep inside
    the signal chain.
    """
    if not condition:
        raise ValueError(message)
