"""Unit conversions used across the PHY and channel models."""

from __future__ import annotations

from typing import Union

import numpy as np
import numpy.typing as npt


def db_to_linear(db: npt.ArrayLike) -> np.ndarray:
    """Convert a power ratio from decibels to linear scale."""
    return np.power(10.0, np.asarray(db, dtype=float) / 10.0)


def linear_to_db(linear: npt.ArrayLike) -> np.ndarray:
    """Convert a linear power ratio to decibels.

    Zero or negative inputs map to ``-inf`` rather than raising, matching
    the convention of signal-strength meters.
    """
    values = np.asarray(linear, dtype=float)
    with np.errstate(divide="ignore"):
        return 10.0 * np.log10(values)


def dbm_to_watts(dbm: npt.ArrayLike) -> np.ndarray:
    """Convert power in dBm to watts."""
    return np.power(10.0, (np.asarray(dbm, dtype=float) - 30.0) / 10.0)


def watts_to_dbm(watts: npt.ArrayLike) -> np.ndarray:
    """Convert power in watts to dBm."""
    values = np.asarray(watts, dtype=float)
    with np.errstate(divide="ignore"):
        return 10.0 * np.log10(values) + 30.0


def wrap_phase(phase: npt.ArrayLike) -> Union[float, np.ndarray]:
    """Wrap an angle (radians) into (-pi, pi]."""
    values = np.asarray(phase, dtype=float)
    wrapped = np.angle(np.exp(1j * values))
    if values.ndim == 0:
        return float(wrapped)
    return wrapped


def ppm_to_hz(ppm: float, reference_hz: float) -> float:
    """Convert a parts-per-million clock offset into an absolute Hz offset.

    An 802.11 oscillator at 2.4 GHz with a 20 ppm tolerance may be off by
    up to ``ppm_to_hz(20, 2.4e9) == 48 kHz``.
    """
    return float(ppm) * 1e-6 * float(reference_hz)
