"""Shared helpers: dB conversions, RNG plumbing, validation."""

from repro.utils.rng import ensure_rng
from repro.utils.units import (
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    ppm_to_hz,
    watts_to_dbm,
    wrap_phase,
)
from repro.utils.validation import require

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "wrap_phase",
    "ppm_to_hz",
    "ensure_rng",
    "require",
]
