"""Random-number-generator plumbing.

All stochastic components accept either a seed, an existing
``numpy.random.Generator`` or ``None`` (fresh entropy), so experiments can be
made exactly reproducible by threading a single seed through the stack.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

#: Anything :func:`ensure_rng` can coerce into a ``numpy.random.Generator``.
RngLike = Union[None, int, np.integer, np.random.SeedSequence, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a ``numpy.random.Generator``.

    Accepts ``None`` (new unseeded generator), an integer seed, a
    ``numpy.random.SeedSequence`` (as derived per sweep task by
    :mod:`repro.runtime.seeding`), or an existing generator (returned
    unchanged so callers can share streams).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    raise TypeError(
        f"rng must be None, an int seed, a SeedSequence or a Generator, got {type(rng)!r}"
    )


def complex_normal(
    rng: np.random.Generator,
    shape: Union[int, Tuple[int, ...]],
    scale: float = 1.0,
) -> np.ndarray:
    """Draw circularly-symmetric complex Gaussians with E[|x|^2] = scale**2."""
    sigma = scale / np.sqrt(2.0)
    return rng.normal(0.0, sigma, shape) + 1j * rng.normal(0.0, sigma, shape)
