"""Conference-room geometry mimicking the paper's testbed (Fig. 5).

APs sit on ledges near the ceiling along the walls; clients are scattered
through the seating area.  "In every run, the APs and clients are assigned
randomly to these locations" (§10c) — :meth:`ConferenceRoom.sample_topology`
reproduces that procedure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import require


@dataclass(frozen=True)
class Placement:
    """A candidate node location in room coordinates (meters)."""

    x: float
    y: float
    z: float = 1.0

    def distance_to(self, other: "Placement") -> float:
        return float(
            np.sqrt(
                (self.x - other.x) ** 2
                + (self.y - other.y) ** 2
                + (self.z - other.z) ** 2
            )
        )


@dataclass
class Topology:
    """A sampled experiment topology: chosen AP and client locations."""

    ap_locations: List[Placement]
    client_locations: List[Placement]

    @property
    def n_aps(self) -> int:
        return len(self.ap_locations)

    @property
    def n_clients(self) -> int:
        return len(self.client_locations)

    def distances(self) -> np.ndarray:
        """(n_clients, n_aps) distance matrix in meters."""
        out = np.empty((self.n_clients, self.n_aps))
        for i, c in enumerate(self.client_locations):
            for j, a in enumerate(self.ap_locations):
                out[i, j] = c.distance_to(a)
        return out


class ConferenceRoom:
    """A rectangular room with AP ledge positions and client seat positions.

    Defaults approximate the paper's ~12 m x 8 m space with AP candidate
    spots around the perimeter near the ceiling and a grid of client spots
    through the seating area.
    """

    def __init__(
        self,
        width_m: float = 12.0,
        depth_m: float = 8.0,
        ap_height_m: float = 2.6,
        client_height_m: float = 1.0,
        n_ap_spots: int = 14,
        n_client_spots: int = 24,
    ):
        require(width_m > 0 and depth_m > 0, "room dimensions must be positive")
        self.width_m = width_m
        self.depth_m = depth_m
        self.ap_height_m = ap_height_m
        self.client_height_m = client_height_m
        self.ap_spots = self._perimeter_spots(n_ap_spots)
        self.client_spots = self._grid_spots(n_client_spots)

    def _perimeter_spots(self, n: int) -> List[Placement]:
        """Evenly spaced positions along the walls at ledge height."""
        perimeter = 2 * (self.width_m + self.depth_m)
        spots = []
        for i in range(n):
            s = (i + 0.5) * perimeter / n
            if s < self.width_m:
                x, y = s, 0.0
            elif s < self.width_m + self.depth_m:
                x, y = self.width_m, s - self.width_m
            elif s < 2 * self.width_m + self.depth_m:
                x, y = 2 * self.width_m + self.depth_m - s, self.depth_m
            else:
                x, y = 0.0, perimeter - s
            spots.append(Placement(x, y, self.ap_height_m))
        return spots

    def _grid_spots(self, n: int) -> List[Placement]:
        """A jittered grid of seats inside the room (away from the walls)."""
        cols = int(np.ceil(np.sqrt(n * self.width_m / self.depth_m)))
        rows = int(np.ceil(n / cols))
        margin = 1.0
        xs = np.linspace(margin, self.width_m - margin, cols)
        ys = np.linspace(margin, self.depth_m - margin, rows)
        spots = []
        for y in ys:
            for x in xs:
                if len(spots) < n:
                    spots.append(Placement(float(x), float(y), self.client_height_m))
        return spots

    def sample_topology(self, n_aps: int, n_clients: int, rng=None) -> Topology:
        """Randomly assign APs and clients to candidate spots (paper §10c)."""
        rng = ensure_rng(rng)
        require(n_aps <= len(self.ap_spots), "not enough AP candidate locations")
        require(
            n_clients <= len(self.client_spots), "not enough client candidate locations"
        )
        ap_idx = rng.choice(len(self.ap_spots), size=n_aps, replace=False)
        cl_idx = rng.choice(len(self.client_spots), size=n_clients, replace=False)
        return Topology(
            ap_locations=[self.ap_spots[i] for i in ap_idx],
            client_locations=[self.client_spots[i] for i in cl_idx],
        )
