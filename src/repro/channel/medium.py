"""The shared wireless medium: superposition of concurrent transmissions.

The medium holds scheduled transmissions (complex baseband sample streams
with absolute start times) and synthesizes what any receiver observes over a
time window:

    y_rx(t) = sum_tx  (h_tx,rx * x_tx)(t - d_tx,rx)
                      * exp(j (theta_tx(t) - theta_rx(t)))  +  n(t)

i.e. per-link multipath convolution, sub-sample propagation/trigger delay via
frequency-domain fractional delay, the *relative oscillator rotation* between
transmitter and receiver — the term that breaks naive distributed
beamforming — and additive white Gaussian noise at the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.channel.models import LinkChannel
from repro.channel.oscillator import Oscillator
from repro.utils.rng import complex_normal, ensure_rng
from repro.utils.validation import require


@dataclass
class Transmission:
    """One scheduled transmission on the medium.

    Attributes:
        transmitter: Node identifier of the sender.
        samples: Complex baseband samples at the medium sample rate.
        start_time: Absolute time (seconds) of the first sample as emitted by
            an ideal clock.  Trigger-timing jitter is folded in here.
    """

    transmitter: str
    samples: np.ndarray
    start_time: float

    @property
    def duration(self) -> float:
        return self.samples.size  # in samples; seconds depend on the medium rate


def fractional_delay(samples: np.ndarray, delay_samples: float) -> np.ndarray:
    """Delay a sample stream by a (possibly fractional) number of samples.

    Integer part via zero-prepend, fractional part via a frequency-domain
    linear-phase ramp.  Used for sub-sample propagation delays (tens of ns,
    well inside the cyclic prefix — §5.2 footnote 3).
    """
    samples = np.asarray(samples, dtype=complex)
    n_int = int(np.floor(delay_samples))
    frac = float(delay_samples - n_int)
    if frac > 1e-9:
        original = samples.size
        n = original + 1
        spectrum = np.fft.fft(np.concatenate([samples, [0.0]]))
        freqs = np.fft.fftfreq(n)
        spectrum *= np.exp(-2j * np.pi * freqs * frac)
        samples = np.fft.ifft(spectrum)[:original]
    if n_int > 0:
        samples = np.concatenate([np.zeros(n_int, dtype=complex), samples])
    elif n_int < 0:
        samples = samples[-n_int:]
    return samples


class Medium:
    """Synthesizes received baseband streams from scheduled transmissions.

    Args:
        sample_rate: Channel sample rate in Hz.
        noise_power: AWGN power per complex sample at every receiver (the
            "noise floor"; link gains are chosen relative to it to set SNR).
        rng: Seed/generator for the noise process.
    """

    def __init__(self, sample_rate: float, noise_power: float = 1.0, rng=None):
        require(sample_rate > 0, "sample rate must be positive")
        self.sample_rate = float(sample_rate)
        self.noise_power = float(noise_power)
        self._rng = ensure_rng(rng)
        self._links: Dict[Tuple[str, str], LinkChannel] = {}
        self._oscillators: Dict[str, Oscillator] = {}
        self._transmissions: List[Transmission] = []

    # -- configuration ------------------------------------------------------

    def register_node(self, node_id: str, oscillator: Oscillator) -> None:
        """Attach a node and its oscillator to the medium."""
        self._oscillators[node_id] = oscillator

    def set_link(self, transmitter: str, receiver: str, link: LinkChannel) -> None:
        """Define the propagation channel from ``transmitter`` to ``receiver``."""
        self._links[(transmitter, receiver)] = link

    def get_link(self, transmitter: str, receiver: str) -> Optional[LinkChannel]:
        return self._links.get((transmitter, receiver))

    def oscillator(self, node_id: str) -> Oscillator:
        return self._oscillators[node_id]

    @property
    def nodes(self) -> List[str]:
        return list(self._oscillators)

    # -- traffic ------------------------------------------------------------

    def transmit(self, transmitter: str, samples: np.ndarray, start_time: float) -> None:
        """Schedule a transmission; it becomes audible to all linked receivers."""
        require(transmitter in self._oscillators, f"unknown node {transmitter!r}")
        self._transmissions.append(
            Transmission(
                transmitter=transmitter,
                samples=np.asarray(samples, dtype=complex),
                start_time=float(start_time),
            )
        )

    def clear(self) -> None:
        """Drop all scheduled transmissions (between experiment phases)."""
        self._transmissions.clear()

    # -- reception ----------------------------------------------------------

    def receive(
        self,
        receiver: str,
        start_time: float,
        n_samples: int,
        include_noise: bool = True,
        exclude_own: bool = True,
    ) -> np.ndarray:
        """What ``receiver`` hears over [start_time, start_time + n/fs).

        Applies, per overlapping transmission: multipath convolution,
        propagation delay, and the relative TX-RX oscillator rotation
        evaluated at the receiver's sample instants.
        """
        require(receiver in self._oscillators, f"unknown node {receiver!r}")
        out = np.zeros(n_samples, dtype=complex)
        rx_osc = self._oscillators[receiver]
        window_times = start_time + np.arange(n_samples) / self.sample_rate
        rx_phase = rx_osc.phase_at(window_times)

        for tx in self._transmissions:
            if exclude_own and tx.transmitter == receiver:
                continue
            link = self._links.get((tx.transmitter, receiver))
            if link is None:
                continue
            # convolve and delay at the medium rate; time-varying links are
            # frozen at the packet start (packets are orders of magnitude
            # shorter than the channel coherence time)
            if hasattr(link, "apply_at"):
                convolved = link.apply_at(tx.samples, tx.start_time)
            else:
                convolved = link.apply(tx.samples)
            delay_samples = link.delay_s * self.sample_rate
            arrival_time = tx.start_time
            # split total delay into the stream shift; start_time plus
            # propagation delay positions the first sample
            total_offset = (arrival_time - start_time) * self.sample_rate + delay_samples
            shifted = fractional_delay(convolved, total_offset - np.floor(total_offset))
            first = int(np.floor(total_offset))

            # overlap [first, first + len) with [0, n_samples)
            lo = max(first, 0)
            hi = min(first + shifted.size, n_samples)
            if hi <= lo:
                continue
            segment = shifted[lo - first : hi - first]
            seg_times = window_times[lo:hi]
            tx_phase = self._oscillators[tx.transmitter].phase_at(seg_times)
            rotation = np.exp(1j * (tx_phase - rx_phase[lo:hi]))
            out[lo:hi] += segment * rotation

        if include_noise and self.noise_power > 0:
            out += complex_normal(self._rng, n_samples, scale=np.sqrt(self.noise_power))
        return out

    def transmission_end_time(self) -> float:
        """Absolute time when the last scheduled transmission finishes."""
        if not self._transmissions:
            return 0.0
        return max(
            tx.start_time + tx.samples.size / self.sample_rate
            for tx in self._transmissions
        )
