"""Indoor path-loss models.

Log-distance path loss with lognormal shadowing — the standard indoor model
(Goldsmith, *Wireless Communications* [9]).  The conference-room testbed in
the paper exhibits "significantly diverse SNRs as well as both line-of-sight
and non line-of-sight paths" (§10c); the shadowing term reproduces that
diversity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import CARRIER_FREQUENCY
from repro.utils.rng import ensure_rng
from repro.utils.validation import require

_SPEED_OF_LIGHT = 299_792_458.0


@dataclass
class LogDistancePathLoss:
    """Log-distance path loss: PL(d) = PL(d0) + 10 n log10(d/d0) + X_sigma.

    Attributes:
        exponent: Path-loss exponent ``n`` (~2 free space, 2.5-4 indoors).
        reference_distance_m: ``d0``, where free-space loss anchors the model.
        shadowing_sigma_db: Lognormal shadowing standard deviation.
        carrier_frequency: For the free-space reference loss.
    """

    exponent: float = 3.0
    reference_distance_m: float = 1.0
    shadowing_sigma_db: float = 4.0
    carrier_frequency: float = CARRIER_FREQUENCY

    def free_space_reference_db(self) -> float:
        """Free-space path loss at the reference distance."""
        wavelength = _SPEED_OF_LIGHT / self.carrier_frequency
        return float(
            20.0 * np.log10(4.0 * np.pi * self.reference_distance_m / wavelength)
        )

    def loss_db(self, distance_m, rng=None, include_shadowing: bool = True):
        """Path loss in dB at the given distance(s)."""
        distance_m = np.asarray(distance_m, dtype=float)
        require(bool(np.all(distance_m > 0)), "distance must be positive")
        d = np.maximum(distance_m, self.reference_distance_m)
        loss = self.free_space_reference_db() + 10.0 * self.exponent * np.log10(
            d / self.reference_distance_m
        )
        if include_shadowing and self.shadowing_sigma_db > 0:
            rng = ensure_rng(rng)
            loss = loss + rng.normal(0.0, self.shadowing_sigma_db, size=loss.shape)
        return loss

    def propagation_delay_s(self, distance_m) -> np.ndarray:
        """Line-of-sight propagation delay (tens of ns across a room)."""
        return np.asarray(distance_m, dtype=float) / _SPEED_OF_LIGHT
