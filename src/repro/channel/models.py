"""Static small-scale fading models and per-link channel realizations.

The paper's experiments all run well inside the channel coherence time
("several hundreds of milliseconds in typical indoor scenarios", §5), so a
link's small-scale fading is a static complex response per experiment; the
time variation that matters — oscillator rotation — lives in
:mod:`repro.channel.oscillator`.  Supported models:

* flat Rayleigh (single tap, NLOS),
* Rician-K (single tap with a LOS component),
* multipath with an exponential power-delay profile (frequency selective).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FFT_SIZE
from repro.utils.rng import complex_normal, ensure_rng
from repro.utils.validation import require


@dataclass
class LinkChannel:
    """One realized link: sampled impulse response plus propagation delay.

    Attributes:
        taps: Complex impulse response at the channel sample rate.  The taps
            include large-scale gain (path loss) so that convolving unit-power
            transmit samples yields the received power.
        delay_s: Line-of-sight propagation delay in seconds (sub-sample
            delays are applied by the medium as a fractional delay).
    """

    taps: np.ndarray
    delay_s: float = 0.0

    @property
    def gain(self) -> float:
        """Total power gain of the link, sum |tap|^2."""
        return float(np.sum(np.abs(self.taps) ** 2))

    def frequency_response(self, fft_size: int = FFT_SIZE) -> np.ndarray:
        """Channel frequency response over an OFDM grid (64 bins)."""
        taps = np.asarray(self.taps, dtype=complex)
        require(taps.size <= fft_size, "impulse response longer than FFT")
        padded = np.zeros(fft_size, dtype=complex)
        padded[: taps.size] = taps
        return np.fft.fft(padded)

    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Convolve transmit samples with the impulse response ("full")."""
        return np.convolve(np.asarray(samples, dtype=complex), self.taps)


class ChannelModel:
    """Interface: draw a :class:`LinkChannel` with a target average gain."""

    def realize(self, average_gain: float, rng=None) -> LinkChannel:
        raise NotImplementedError

    def realize_taps(self, average_gains: np.ndarray, rng=None) -> np.ndarray:
        """Vectorized draw: ``(*shape,)`` gains -> ``(*shape, n_taps)`` taps.

        One array-sized RNG draw replaces the per-link scalar draws of
        :meth:`realize`, so a whole link matrix (or a stack of them) costs a
        constant number of generator calls.  The stream consumption differs
        from per-link ``realize`` calls by construction; every consumer of a
        given sweep kernel must pick one of the two APIs and stick to it
        (the batched sweep path uses this one exclusively).
        """
        raise NotImplementedError


@dataclass
class FlatRayleighChannel(ChannelModel):
    """Single-tap Rayleigh fading: h ~ CN(0, average_gain)."""

    def realize(self, average_gain: float, rng=None) -> LinkChannel:
        rng = ensure_rng(rng)
        tap = complex_normal(rng, (), scale=np.sqrt(average_gain))
        return LinkChannel(taps=np.array([tap]))

    def realize_taps(self, average_gains: np.ndarray, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        gains = np.asarray(average_gains, dtype=float)
        taps = complex_normal(rng, gains.shape, scale=1.0) * np.sqrt(gains)
        return taps[..., np.newaxis]


@dataclass
class RicianChannel(ChannelModel):
    """Single-tap Rician fading with K-factor (LOS-to-scatter power ratio)."""

    k_factor: float = 5.0

    def realize(self, average_gain: float, rng=None) -> LinkChannel:
        rng = ensure_rng(rng)
        k = self.k_factor
        los_power = average_gain * k / (k + 1.0)
        nlos_power = average_gain / (k + 1.0)
        los_phase = rng.uniform(-np.pi, np.pi)
        tap = np.sqrt(los_power) * np.exp(1j * los_phase) + complex_normal(
            rng, (), scale=np.sqrt(nlos_power)
        )
        return LinkChannel(taps=np.array([tap]))

    def realize_taps(self, average_gains: np.ndarray, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        gains = np.asarray(average_gains, dtype=float)
        k = self.k_factor
        los_power = gains * k / (k + 1.0)
        nlos_power = gains / (k + 1.0)
        los_phases = rng.uniform(-np.pi, np.pi, gains.shape)
        scatter = complex_normal(rng, gains.shape, scale=1.0) * np.sqrt(nlos_power)
        taps = np.sqrt(los_power) * np.exp(1j * los_phases) + scatter
        return taps[..., np.newaxis]


@dataclass
class MultipathChannel(ChannelModel):
    """Exponential power-delay-profile multipath channel.

    Attributes:
        n_taps: Number of sample-spaced taps.  With a 16-sample cyclic
            prefix, up to 16 taps decode cleanly; indoor channels at 10 MHz
            rarely exceed ~4 resolvable taps (rms delay spread < 100 ns).
        decay_per_tap_db: Power decay per tap of the exponential profile.
        rician_k_first_tap: Optional LOS component on the first tap.
    """

    n_taps: int = 4
    decay_per_tap_db: float = 3.0
    rician_k_first_tap: float = 0.0

    def realize(self, average_gain: float, rng=None) -> LinkChannel:
        rng = ensure_rng(rng)
        require(self.n_taps >= 1, "need at least one tap")
        profile = 10.0 ** (-self.decay_per_tap_db * np.arange(self.n_taps) / 10.0)
        profile = profile / profile.sum() * average_gain
        taps = complex_normal(rng, self.n_taps, scale=1.0) * np.sqrt(profile)
        if self.rician_k_first_tap > 0:
            k = self.rician_k_first_tap
            los = np.sqrt(profile[0] * k / (k + 1.0)) * np.exp(
                1j * rng.uniform(-np.pi, np.pi)
            )
            scatter = complex_normal(rng, (), scale=np.sqrt(profile[0] / (k + 1.0)))
            taps[0] = los + scatter
        return LinkChannel(taps=taps)

    def realize_taps(self, average_gains: np.ndarray, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        require(self.n_taps >= 1, "need at least one tap")
        gains = np.asarray(average_gains, dtype=float)
        profile = 10.0 ** (-self.decay_per_tap_db * np.arange(self.n_taps) / 10.0)
        profile = profile / profile.sum()
        power = profile * gains[..., np.newaxis]
        taps = complex_normal(rng, power.shape, scale=1.0) * np.sqrt(power)
        if self.rician_k_first_tap > 0:
            k = self.rician_k_first_tap
            first = power[..., 0]
            los_phases = rng.uniform(-np.pi, np.pi, gains.shape)
            los = np.sqrt(first * k / (k + 1.0)) * np.exp(1j * los_phases)
            scatter = complex_normal(rng, gains.shape, scale=1.0) * np.sqrt(
                first / (k + 1.0)
            )
            taps[..., 0] = los + scatter
        return taps


def random_channel_matrix(
    n_rx: int,
    n_tx: int,
    rng=None,
    model: ChannelModel = None,
    average_gain: float = 1.0,
) -> np.ndarray:
    """Draw an (n_rx, n_tx) matrix of i.i.d. single-tap channels.

    Convenience for frequency-flat analyses like the Fig. 6 microbenchmark
    (100 random channel matrices).  Draws the whole matrix in one vectorized
    :meth:`ChannelModel.realize_taps` call, so a batched caller looping
    trials consumes the RNG stream identically to this scalar helper.
    """
    rng = ensure_rng(rng)
    model = model or FlatRayleighChannel()
    gains = np.full((n_rx, n_tx), float(average_gain))
    return model.realize_taps(gains, rng=rng)[..., 0]
