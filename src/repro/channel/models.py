"""Static small-scale fading models and per-link channel realizations.

The paper's experiments all run well inside the channel coherence time
("several hundreds of milliseconds in typical indoor scenarios", §5), so a
link's small-scale fading is a static complex response per experiment; the
time variation that matters — oscillator rotation — lives in
:mod:`repro.channel.oscillator`.  Supported models:

* flat Rayleigh (single tap, NLOS),
* Rician-K (single tap with a LOS component),
* multipath with an exponential power-delay profile (frequency selective).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FFT_SIZE
from repro.utils.rng import complex_normal, ensure_rng
from repro.utils.validation import require


@dataclass
class LinkChannel:
    """One realized link: sampled impulse response plus propagation delay.

    Attributes:
        taps: Complex impulse response at the channel sample rate.  The taps
            include large-scale gain (path loss) so that convolving unit-power
            transmit samples yields the received power.
        delay_s: Line-of-sight propagation delay in seconds (sub-sample
            delays are applied by the medium as a fractional delay).
    """

    taps: np.ndarray
    delay_s: float = 0.0

    @property
    def gain(self) -> float:
        """Total power gain of the link, sum |tap|^2."""
        return float(np.sum(np.abs(self.taps) ** 2))

    def frequency_response(self, fft_size: int = FFT_SIZE) -> np.ndarray:
        """Channel frequency response over an OFDM grid (64 bins)."""
        taps = np.asarray(self.taps, dtype=complex)
        require(taps.size <= fft_size, "impulse response longer than FFT")
        padded = np.zeros(fft_size, dtype=complex)
        padded[: taps.size] = taps
        return np.fft.fft(padded)

    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Convolve transmit samples with the impulse response ("full")."""
        return np.convolve(np.asarray(samples, dtype=complex), self.taps)


class ChannelModel:
    """Interface: draw a :class:`LinkChannel` with a target average gain."""

    def realize(self, average_gain: float, rng=None) -> LinkChannel:
        raise NotImplementedError


@dataclass
class FlatRayleighChannel(ChannelModel):
    """Single-tap Rayleigh fading: h ~ CN(0, average_gain)."""

    def realize(self, average_gain: float, rng=None) -> LinkChannel:
        rng = ensure_rng(rng)
        tap = complex_normal(rng, (), scale=np.sqrt(average_gain))
        return LinkChannel(taps=np.array([tap]))


@dataclass
class RicianChannel(ChannelModel):
    """Single-tap Rician fading with K-factor (LOS-to-scatter power ratio)."""

    k_factor: float = 5.0

    def realize(self, average_gain: float, rng=None) -> LinkChannel:
        rng = ensure_rng(rng)
        k = self.k_factor
        los_power = average_gain * k / (k + 1.0)
        nlos_power = average_gain / (k + 1.0)
        los_phase = rng.uniform(-np.pi, np.pi)
        tap = np.sqrt(los_power) * np.exp(1j * los_phase) + complex_normal(
            rng, (), scale=np.sqrt(nlos_power)
        )
        return LinkChannel(taps=np.array([tap]))


@dataclass
class MultipathChannel(ChannelModel):
    """Exponential power-delay-profile multipath channel.

    Attributes:
        n_taps: Number of sample-spaced taps.  With a 16-sample cyclic
            prefix, up to 16 taps decode cleanly; indoor channels at 10 MHz
            rarely exceed ~4 resolvable taps (rms delay spread < 100 ns).
        decay_per_tap_db: Power decay per tap of the exponential profile.
        rician_k_first_tap: Optional LOS component on the first tap.
    """

    n_taps: int = 4
    decay_per_tap_db: float = 3.0
    rician_k_first_tap: float = 0.0

    def realize(self, average_gain: float, rng=None) -> LinkChannel:
        rng = ensure_rng(rng)
        require(self.n_taps >= 1, "need at least one tap")
        profile = 10.0 ** (-self.decay_per_tap_db * np.arange(self.n_taps) / 10.0)
        profile = profile / profile.sum() * average_gain
        taps = complex_normal(rng, self.n_taps, scale=1.0) * np.sqrt(profile)
        if self.rician_k_first_tap > 0:
            k = self.rician_k_first_tap
            los = np.sqrt(profile[0] * k / (k + 1.0)) * np.exp(
                1j * rng.uniform(-np.pi, np.pi)
            )
            scatter = complex_normal(rng, (), scale=np.sqrt(profile[0] / (k + 1.0)))
            taps[0] = los + scatter
        return LinkChannel(taps=taps)


def random_channel_matrix(
    n_rx: int,
    n_tx: int,
    rng=None,
    model: ChannelModel = None,
    average_gain: float = 1.0,
) -> np.ndarray:
    """Draw an (n_rx, n_tx) matrix of i.i.d. single-tap channels.

    Convenience for frequency-flat analyses like the Fig. 6 microbenchmark
    (100 random channel matrices).
    """
    rng = ensure_rng(rng)
    model = model or FlatRayleighChannel()
    matrix = np.empty((n_rx, n_tx), dtype=complex)
    for i in range(n_rx):
        for j in range(n_tx):
            matrix[i, j] = model.realize(average_gain, rng=rng).taps[0]
    return matrix
