"""Wireless propagation and hardware-imperfection models.

Everything the paper's USRP testbed provided physically is simulated here:
free-running oscillators (carrier and sampling clocks), indoor multipath
channels with a conference-room geometry, path loss, AWGN and a shared
medium that superposes concurrent transmissions sample by sample.
"""

from repro.channel.geometry import ConferenceRoom, Placement
from repro.channel.medium import Medium, Transmission
from repro.channel.models import (
    ChannelModel,
    FlatRayleighChannel,
    LinkChannel,
    MultipathChannel,
    RicianChannel,
)
from repro.channel.oscillator import Oscillator, OscillatorConfig
from repro.channel.pathloss import LogDistancePathLoss
from repro.channel.timevarying import (
    GaussMarkovFader,
    JakesFader,
    TimeVaryingLinkChannel,
    channel_correlation,
)

__all__ = [
    "Oscillator",
    "OscillatorConfig",
    "ChannelModel",
    "FlatRayleighChannel",
    "MultipathChannel",
    "RicianChannel",
    "LinkChannel",
    "LogDistancePathLoss",
    "ConferenceRoom",
    "Placement",
    "Medium",
    "Transmission",
    "GaussMarkovFader",
    "JakesFader",
    "TimeVaryingLinkChannel",
    "channel_correlation",
]
