"""Time-varying fading: channel coherence and decorrelation.

The paper's protocol amortizes one channel-measurement phase over many
data packets because indoor channels stay coherent for "several hundreds
of milliseconds" (§5, [9]).  This module models that time axis with the
classic Clarke/Jakes fading model:

* ``JakesFader`` — sum-of-sinusoids simulator whose autocorrelation is
  ``J0(2 pi f_D t)`` (Clarke's spectrum); deterministic in time, so
  repeated queries at the same instant agree exactly;
* ``GaussMarkovFader`` — a simpler AR-1 alternative with exponential
  autocorrelation (pessimistic at short lags, kept for comparisons);
* ``TimeVaryingLinkChannel`` — a link whose taps evolve, compatible with
  :class:`~repro.channel.medium.Medium`;
* ``channel_correlation`` — maps elapsed time to expected correlation,
  used by the staleness analysis in :mod:`repro.sim.overhead`.

Coherence time convention: ``Tc`` is the 50%-coherence time, i.e.
``|rho(Tc)| = 0.5``, giving a Doppler spread ``f_D ~ 0.242 / Tc`` (for
Clarke's model J0(1.52) ~ 0.5).  A pedestrian walking through a conference
room at 2.4 GHz gives f_D of a few Hz -> Tc of hundreds of ms, matching
the paper's environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.special import j0

from repro.channel.models import LinkChannel
from repro.constants import COHERENCE_TIME_S
from repro.utils.rng import complex_normal, ensure_rng
from repro.utils.validation import require

#: 2*pi*f_D*Tc at which Clarke correlation crosses 0.5 (J0(1.52) ~ 0.5).
_CLARKE_HALF_POINT = 1.52


def doppler_from_coherence(coherence_time_s: float) -> float:
    """Doppler spread f_D (Hz) for a 50%-coherence time ``Tc``."""
    require(coherence_time_s > 0, "coherence time must be positive")
    return _CLARKE_HALF_POINT / (2.0 * np.pi * coherence_time_s)


def channel_correlation(
    elapsed_s: float, coherence_time_s: float, model: str = "clarke"
) -> float:
    """Expected fading correlation after ``elapsed_s`` seconds.

    Args:
        model: ``"clarke"`` (J0, the physical default — flat near t = 0) or
            ``"exponential"`` (matches :class:`GaussMarkovFader`).
    """
    require(coherence_time_s > 0, "coherence time must be positive")
    if model == "exponential":
        return float(np.exp(-abs(elapsed_s) / coherence_time_s))
    if model == "clarke":
        f_d = doppler_from_coherence(coherence_time_s)
        return float(j0(2.0 * np.pi * f_d * abs(elapsed_s)))
    raise ValueError(f"unknown correlation model {model!r}")


class JakesFader:
    """Sum-of-sinusoids Clarke-spectrum fading simulator.

    ``h(t) = sqrt(1/N) sum_k exp(j (2 pi f_D cos(a_k) t + phi_k))`` with
    random arrival angles and phases; E|h|^2 = 1 and the autocorrelation
    approaches ``J0(2 pi f_D t)`` as N grows.  Being a closed-form function
    of t it needs no state — queries are exactly repeatable at any time.
    """

    def __init__(self, coherence_time_s: float, rng=None, n_paths: int = 16):
        require(n_paths >= 4, "need a few propagation paths")
        self.coherence_time_s = float(coherence_time_s)
        self.f_doppler = doppler_from_coherence(coherence_time_s)
        rng = ensure_rng(rng)
        angles = rng.uniform(0.0, 2.0 * np.pi, n_paths)
        self._omegas = 2.0 * np.pi * self.f_doppler * np.cos(angles)
        self._phases = rng.uniform(0.0, 2.0 * np.pi, n_paths)
        self._scale = 1.0 / np.sqrt(n_paths)

    def value_at(self, t: float) -> complex:
        """The unit-power fading component at absolute time ``t``."""
        return complex(
            self._scale * np.sum(np.exp(1j * (self._omegas * t + self._phases)))
        )


class GaussMarkovFader:
    """AR-1 fading with exponential autocorrelation (comparison model).

    ``h(t + dt) = rho h(t) + sqrt(1 - rho^2) w`` with
    ``rho = exp(-dt / Tc)``.  Values are generated lazily on a grid and
    interpolated so repeated queries agree.  Note the exponential
    autocorrelation decays *linearly* near t = 0, much faster than
    physical fading — use :class:`JakesFader` unless you want that
    pessimism on purpose.
    """

    def __init__(self, coherence_time_s: float, rng=None, grid_dt: Optional[float] = None):
        require(coherence_time_s > 0, "coherence time must be positive")
        self.coherence_time_s = float(coherence_time_s)
        self._rng = ensure_rng(rng)
        self.grid_dt = grid_dt if grid_dt is not None else coherence_time_s / 50.0
        self._rho = float(np.exp(-self.grid_dt / self.coherence_time_s))
        self._innovation = float(np.sqrt(1.0 - self._rho**2))
        self._values = np.array([complex_normal(self._rng, ())])

    def _extend(self, n_points: int) -> None:
        if n_points <= self._values.size:
            return
        extra = n_points - self._values.size
        new = np.empty(extra, dtype=complex)
        prev = self._values[-1]
        for i in range(extra):
            prev = self._rho * prev + self._innovation * complex_normal(self._rng, ())
            new[i] = prev
        self._values = np.concatenate([self._values, new])

    def value_at(self, t: float) -> complex:
        """The unit-variance fading component at absolute time ``t >= 0``."""
        require(t >= 0.0, "time must be >= 0")
        idx = t / self.grid_dt
        hi = int(np.ceil(idx))
        self._extend(hi + 2)
        lo = int(np.floor(idx))
        frac = idx - lo
        return complex((1 - frac) * self._values[lo] + frac * self._values[lo + 1])


@dataclass
class TimeVaryingLinkChannel:
    """A link whose impulse response evolves with a coherence time.

    Decomposes each tap into a static (specular/LOS) part and a faded part:
    ``tap_i(t) = sqrt(K/(K+1)) s_i + sqrt(1/(K+1)) g_i f_i(t)`` where
    ``f_i`` is a unit fader — so a large Rician K yields a slowly-breathing
    channel and K = 0 pure time-varying Rayleigh.

    Implements the same interface as
    :class:`~repro.channel.models.LinkChannel` plus :meth:`taps_at`.
    """

    static_taps: np.ndarray
    faded_scale: np.ndarray
    faders: list
    delay_s: float = 0.0

    @classmethod
    def create(
        cls,
        average_gain: float,
        coherence_time_s: float = COHERENCE_TIME_S,
        n_taps: int = 1,
        rician_k: float = 0.0,
        rng=None,
        delay_s: float = 0.0,
        fader: str = "jakes",
    ) -> "TimeVaryingLinkChannel":
        """Draw a time-varying link with the given statistics."""
        rng = ensure_rng(rng)
        require(n_taps >= 1, "need at least one tap")
        profile = np.full(n_taps, average_gain / n_taps)
        k = max(float(rician_k), 0.0)
        static = np.sqrt(profile * k / (k + 1.0)) * np.exp(
            1j * rng.uniform(-np.pi, np.pi, n_taps)
        )
        faded_scale = np.sqrt(profile / (k + 1.0))
        fader_cls = JakesFader if fader == "jakes" else GaussMarkovFader
        faders = [fader_cls(coherence_time_s, rng=rng) for _ in range(n_taps)]
        return cls(
            static_taps=static,
            faded_scale=faded_scale,
            faders=faders,
            delay_s=delay_s,
        )

    def taps_at(self, t: float) -> np.ndarray:
        """The impulse response at absolute time ``t``."""
        faded = np.array([f.value_at(t) for f in self.faders])
        return self.static_taps + self.faded_scale * faded

    def snapshot(self, t: float) -> LinkChannel:
        """Freeze the link at time ``t`` as a static LinkChannel."""
        return LinkChannel(taps=self.taps_at(t), delay_s=self.delay_s)

    # -- LinkChannel-compatible interface (evaluated at t = 0) --------------

    @property
    def taps(self) -> np.ndarray:
        return self.taps_at(0.0)

    @property
    def gain(self) -> float:
        return float(
            np.sum(np.abs(self.static_taps) ** 2) + np.sum(self.faded_scale**2)
        )

    def frequency_response(self, fft_size: int = 64) -> np.ndarray:
        return self.snapshot(0.0).frequency_response(fft_size)

    def apply(self, samples: np.ndarray) -> np.ndarray:
        return self.snapshot(0.0).apply(samples)

    def apply_at(self, samples: np.ndarray, t: float) -> np.ndarray:
        """Convolve with the response at time ``t`` (packets are far shorter
        than the coherence time, so one snapshot per packet suffices)."""
        return self.snapshot(t).apply(samples)
