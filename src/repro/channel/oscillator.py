"""Free-running oscillator model: carrier offset, phase noise, sampling drift.

This is the component whose physics motivates the entire paper.  Every node
(AP or client) owns an independent oscillator with

* a **carrier frequency offset** drawn from the device's ppm tolerance — two
  802.11 oscillators at 2.4 GHz may disagree by up to ~96 kHz;
* **phase noise**, modelled as a Wiener (random-walk) process, which bounds
  how well any one-shot frequency estimate predicts future phase; and
* a **sampling frequency offset** locked to the same crystal, so the ppm
  error also skews the ADC/DAC clock (§5.2 "any practical wireless system
  has to also account for the sampling frequency offsets").

The phase-noise walk is generated lazily on a fixed grid and interpolated,
so repeated queries at the same instant return identical phase — necessary
because one transmission is observed by many receivers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import CARRIER_FREQUENCY
from repro.utils.rng import ensure_rng
from repro.utils.units import ppm_to_hz
from repro.utils.validation import require


@dataclass
class OscillatorConfig:
    """Physical parameters of a node's crystal oscillator.

    Attributes:
        ppm_offset: Fractional frequency error in parts per million.  The
            802.11 tolerance is +-20 ppm; real cards are typically within a
            few ppm of nominal.
        phase_noise_rad2_per_s: Variance growth rate of the Wiener phase
            noise.  The default 0.25 rad^2/s is calibrated so the end-to-end
            misalignment distribution of the full protocol matches the
            paper's Fig. 7 (median 0.017 rad, p95 0.05 rad) for
            USRP2/RFX2400-class hardware.
        carrier_frequency: Nominal RF carrier the ppm error applies to.
        initial_phase: Carrier phase at t = 0 (radians).
    """

    ppm_offset: float = 0.0
    phase_noise_rad2_per_s: float = 0.25
    carrier_frequency: float = CARRIER_FREQUENCY
    initial_phase: float = 0.0


class Oscillator:
    """A free-running oscillator queried for carrier phase at absolute times.

    The total carrier phase is ``2*pi*df*t + phi0 + W(t)`` where ``df`` is
    the ppm-derived offset and ``W`` the Wiener phase noise.  ``phase_at``
    accepts arbitrary (not necessarily monotonic) query times.
    """

    #: Phase-noise grid spacing (seconds).  Fine enough that linear
    #: interpolation error is negligible relative to the walk itself.
    GRID_DT = 20e-6

    def __init__(self, config: OscillatorConfig = None, rng=None):
        self.config = config or OscillatorConfig()
        self._rng = ensure_rng(rng)
        self.frequency_offset_hz = ppm_to_hz(
            self.config.ppm_offset, self.config.carrier_frequency
        )
        #: cumulative Wiener samples on the grid; index i is W(i * GRID_DT)
        self._walk = np.zeros(1)
        self._sigma_step = float(
            np.sqrt(self.config.phase_noise_rad2_per_s * self.GRID_DT)
        )

    @property
    def ppm_offset(self) -> float:
        return self.config.ppm_offset

    @property
    def sampling_ratio(self) -> float:
        """Actual-to-nominal sample clock ratio (shares the crystal's ppm)."""
        return 1.0 + self.config.ppm_offset * 1e-6

    def _extend_walk(self, n_points: int) -> None:
        if n_points <= self._walk.size:
            return
        extra = n_points - self._walk.size
        steps = self._rng.normal(0.0, self._sigma_step, extra)
        new = self._walk[-1] + np.cumsum(steps)
        self._walk = np.concatenate([self._walk, new])

    def phase_noise_at(self, times) -> np.ndarray:
        """Wiener phase-noise value at the given absolute times (>= 0)."""
        times = np.atleast_1d(np.asarray(times, dtype=float))
        require(bool(np.all(times >= 0.0)), "oscillator times must be >= 0")
        if self._sigma_step == 0.0:  # repro: noqa[NUM001] exact zero = noise disabled
            return np.zeros_like(times)
        idx = times / self.GRID_DT
        hi = int(np.ceil(idx.max())) + 1
        self._extend_walk(hi + 1)
        lo_idx = np.floor(idx).astype(int)
        frac = idx - lo_idx
        return self._walk[lo_idx] * (1 - frac) + self._walk[lo_idx + 1] * frac

    def phase_at(self, times) -> np.ndarray:
        """Total carrier phase (radians) at the given absolute times."""
        times = np.atleast_1d(np.asarray(times, dtype=float))
        deterministic = (
            2.0 * np.pi * self.frequency_offset_hz * times + self.config.initial_phase
        )
        return deterministic + self.phase_noise_at(times)

    def rotation_at(self, times) -> np.ndarray:
        """``exp(j * phase)`` at the given times."""
        return np.exp(1j * self.phase_at(times))


def random_oscillator(
    rng=None,
    max_ppm: float = 2.0,
    phase_noise_rad2_per_s: float = 0.25,
    carrier_frequency: float = CARRIER_FREQUENCY,
) -> Oscillator:
    """Draw an oscillator with a uniform ppm error in ``[-max_ppm, max_ppm]``.

    The default 2 ppm reflects decent crystals (USRP2-class); pass 20 for
    worst-case 802.11-legal hardware.
    """
    rng = ensure_rng(rng)
    config = OscillatorConfig(
        ppm_offset=float(rng.uniform(-max_ppm, max_ppm)),
        phase_noise_rad2_per_s=phase_noise_rad2_per_s,
        carrier_frequency=carrier_frequency,
        initial_phase=float(rng.uniform(-np.pi, np.pi)),
    )
    return Oscillator(config, rng=rng)
