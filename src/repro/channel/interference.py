"""External interference sources for robustness experiments.

The paper's MAC argues MegaMIMO coexists with other traffic (§9: clients
contend as they do today; hidden terminals are detected and excluded).
These generators let tests and examples put realistic interferers on the
medium:

* ``BurstyInterferer`` — duty-cycled wideband noise (microwave-oven /
  Bluetooth-hop class);
* ``ToneInterferer`` — a narrowband carrier parked on part of the band
  (cordless-phone class; only some OFDM subcarriers suffer);
* ``LegacySender`` — a foreign OFDM transmitter sending ordinary frames
  on the same channel (co-channel Wi-Fi).

Each exposes ``schedule(medium, node, start, duration)`` which places the
interfering waveform(s) on the medium; the caller registers the node and
its links first (an interferer is just another transmitter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.medium import Medium
from repro.utils.rng import complex_normal, ensure_rng
from repro.utils.validation import require


@dataclass
class BurstyInterferer:
    """Duty-cycled wideband noise bursts.

    Attributes:
        burst_s: On-time per burst.
        period_s: Burst repetition period (duty cycle = burst_s/period_s).
        power: Per-sample power of the bursts.
    """

    burst_s: float = 200e-6
    period_s: float = 1e-3
    power: float = 1.0

    def schedule(self, medium: Medium, node: str, start: float, duration: float,
                 rng=None) -> int:
        """Place bursts over [start, start+duration); returns burst count."""
        require(0 < self.burst_s <= self.period_s, "burst must fit its period")
        rng = ensure_rng(rng)
        fs = medium.sample_rate
        n_burst = int(round(self.burst_s * fs))
        count = 0
        t = start
        while t < start + duration:
            samples = complex_normal(rng, n_burst, scale=np.sqrt(self.power))
            medium.transmit(node, samples, t)
            t += self.period_s
            count += 1
        return count


@dataclass
class ToneInterferer:
    """A constant narrowband carrier at a normalized frequency.

    Attributes:
        frequency_norm: Tone frequency as a fraction of the sample rate,
            in (-0.5, 0.5); e.g. 10/64 parks it on OFDM subcarrier 10.
        power: Tone power.
    """

    frequency_norm: float = 10.0 / 64.0
    power: float = 1.0

    def schedule(self, medium: Medium, node: str, start: float, duration: float,
                 rng=None) -> int:
        require(-0.5 < self.frequency_norm < 0.5, "frequency out of band")
        rng = ensure_rng(rng)
        fs = medium.sample_rate
        n = int(round(duration * fs))
        phase0 = float(rng.uniform(0, 2 * np.pi))
        tone = np.sqrt(self.power) * np.exp(
            1j * (2 * np.pi * self.frequency_norm * np.arange(n) + phase0)
        )
        medium.transmit(node, tone, start)
        return 1


@dataclass
class LegacySender:
    """A foreign OFDM transmitter sending its own frames.

    Attributes:
        frame_bytes: Payload size of each foreign frame.
        inter_frame_s: Gap between its frames.
        mcs_index: Its MCS.
    """

    frame_bytes: int = 200
    inter_frame_s: float = 500e-6
    mcs_index: int = 2

    def schedule(self, medium: Medium, node: str, start: float, duration: float,
                 rng=None) -> int:
        from repro.phy.link import PointToPointLink
        from repro.phy.mcs import get_mcs

        rng = ensure_rng(rng)
        link = PointToPointLink(medium, mcs=get_mcs(self.mcs_index))
        count = 0
        t = start
        while t < start + duration:
            payload = bytes(rng.integers(0, 256, self.frame_bytes, dtype=np.uint8))
            packet = link.send(node, payload, t)
            t += packet.n_samples / medium.sample_rate + self.inter_frame_s
            count += 1
        return count
