"""802.11-style OFDM physical layer.

This subpackage is a from-scratch software PHY providing everything the
MegaMIMO protocol needs: constellation mapping, convolutional coding with
Viterbi decoding, block interleaving, scrambling, 64-point OFDM with pilots,
preamble generation (STS/LTS and the MegaMIMO sync header), packet framing,
carrier-frequency-offset estimation and least-squares channel estimation.
"""

from repro.phy.modulation import Modulation, get_modulation
from repro.phy.ofdm import OfdmModulator, OfdmDemodulator
from repro.phy.preamble import (
    short_training_sequence,
    long_training_sequence,
    sync_header,
    SYNC_HEADER_LTS_REPEATS,
)
from repro.phy.frame import PhyFrameEncoder, PhyFrameDecoder, FrameConfig
from repro.phy.cfo import (
    estimate_cfo_coarse,
    estimate_cfo_fine,
    apply_cfo,
    CfoTracker,
)
from repro.phy.channel_est import (
    estimate_channel_lts,
    rotate_channel_to_reference,
    average_channel_estimates,
)

__all__ = [
    "Modulation",
    "get_modulation",
    "OfdmModulator",
    "OfdmDemodulator",
    "short_training_sequence",
    "long_training_sequence",
    "sync_header",
    "SYNC_HEADER_LTS_REPEATS",
    "PhyFrameEncoder",
    "PhyFrameDecoder",
    "FrameConfig",
    "estimate_cfo_coarse",
    "estimate_cfo_fine",
    "apply_cfo",
    "CfoTracker",
    "estimate_channel_lts",
    "rotate_channel_to_reference",
    "average_channel_estimates",
]
