"""802.11-style OFDM physical layer.

This subpackage is a from-scratch software PHY providing everything the
MegaMIMO protocol needs: constellation mapping, convolutional coding with
Viterbi decoding, block interleaving, scrambling, 64-point OFDM with pilots,
preamble generation (STS/LTS and the MegaMIMO sync header), packet framing,
carrier-frequency-offset estimation and least-squares channel estimation.
"""

from repro.phy.cfo import CfoTracker, apply_cfo, estimate_cfo_coarse, estimate_cfo_fine
from repro.phy.channel_est import (
    average_channel_estimates,
    estimate_channel_lts,
    rotate_channel_to_reference,
)
from repro.phy.frame import FrameConfig, PhyFrameDecoder, PhyFrameEncoder
from repro.phy.modulation import Modulation, get_modulation
from repro.phy.ofdm import OfdmDemodulator, OfdmModulator
from repro.phy.preamble import (
    SYNC_HEADER_LTS_REPEATS,
    long_training_sequence,
    short_training_sequence,
    sync_header,
)

__all__ = [
    "Modulation",
    "get_modulation",
    "OfdmModulator",
    "OfdmDemodulator",
    "short_training_sequence",
    "long_training_sequence",
    "sync_header",
    "SYNC_HEADER_LTS_REPEATS",
    "PhyFrameEncoder",
    "PhyFrameDecoder",
    "FrameConfig",
    "estimate_cfo_coarse",
    "estimate_cfo_fine",
    "apply_cfo",
    "CfoTracker",
    "estimate_channel_lts",
    "rotate_channel_to_reference",
    "average_channel_estimates",
]
