"""PLCP-style packet framing: SIGNAL field, coding chain and OFDM payload.

The encoder turns a payload byte string into baseband samples:

    payload -> CRC-32 -> scramble -> convolutional encode -> puncture
            -> interleave -> constellation map -> OFDM symbols

preceded by a BPSK-1/2 SIGNAL symbol carrying the MCS and length (as in
IEEE 802.11-2012 §18.3.4).  The decoder inverts every step and reports CRC
success, which is what the link layer counts as a delivered packet.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.phy.coding import BlockInterleaver, ConvolutionalCode, Puncturer, Scrambler
from repro.phy.mcs import Mcs, get_mcs
from repro.phy.modulation import get_modulation
from repro.phy.ofdm import OfdmDemodulator, OfdmModulator
from repro.utils.validation import require

_CRC_BYTES = 4
_SIGNAL_BITS = 24
#: RATE field encodings of 802.11-2012 Table 18-6, indexed by MCS index.
_RATE_CODES = (0b1101, 0b1111, 0b0101, 0b0111, 0b1001, 0b1011, 0b0001, 0b0011)


def bytes_to_bits(data: bytes) -> np.ndarray:
    """LSB-first byte-to-bit expansion (802.11 bit ordering)."""
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr, bitorder="little")


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Inverse of :func:`bytes_to_bits`; trailing partial bytes are dropped."""
    bits = np.asarray(bits, dtype=np.uint8).ravel()
    n = (bits.size // 8) * 8
    return np.packbits(bits[:n], bitorder="little").tobytes()


@dataclass
class FrameConfig:
    """Static configuration shared by encoder and decoder.

    Attributes:
        sample_rate: Channel sample rate (10 MHz USRP / 20 MHz 802.11n).
        scrambler_seed: Initial scrambler state.
    """

    sample_rate: float
    scrambler_seed: int = 0b1011101


@dataclass
class DecodedFrame:
    """Decoder output.

    Attributes:
        payload: Recovered payload bytes (CRC stripped), or None on failure.
        crc_ok: Whether the CRC-32 check passed.
        mcs: The MCS announced in the SIGNAL field.
        length: Payload length announced in the SIGNAL field.
        evm_db: Error-vector magnitude of the equalized data symbols, dB.
    """

    payload: Optional[bytes]
    crc_ok: bool
    mcs: Optional[Mcs]
    length: int = 0
    evm_db: float = np.nan


class PhyFrameEncoder:
    """Encode payload bytes into OFDM data symbols (frequency domain rows).

    The output is returned as a (n_symbols, 48) frequency-domain array plus
    the time-domain samples, so beamforming systems can precode the
    frequency-domain symbols before OFDM modulation.
    """

    def __init__(self, config: FrameConfig):
        self.config = config
        self._code = ConvolutionalCode()
        self._modulator = OfdmModulator()

    def signal_field_symbols(self, mcs: Mcs, length: int) -> np.ndarray:
        """Build the 1-symbol SIGNAL field (BPSK, rate 1/2, no scrambling)."""
        require(0 < length < (1 << 12), "SIGNAL length must fit in 12 bits")
        bits = np.zeros(_SIGNAL_BITS, dtype=np.uint8)
        rate_code = _RATE_CODES[mcs.index]
        for i in range(4):  # RATE, transmitted MSB..LSB into bits 0..3
            bits[i] = (rate_code >> (3 - i)) & 1
        for i in range(12):  # LENGTH, LSB first in bits 5..16
            bits[5 + i] = (length >> i) & 1
        bits[17] = bits[:17].sum() % 2  # even parity
        # bits 18..23 are the all-zero SIGNAL tail; the convolutional
        # encoder's own zero-termination provides it, so encode bits 0..17.
        coded = self._code.encode(bits[:18])  # 2*(18+6) = 48 coded bits
        interleaver = BlockInterleaver(48, 1)
        interleaved = interleaver.interleave(coded)
        symbols = get_modulation("BPSK").modulate(interleaved)
        return symbols.reshape(1, -1)

    def payload_symbols(self, payload: bytes, mcs: Mcs) -> np.ndarray:
        """Encode payload (with CRC) into (n_symbols, 48) data symbols."""
        payload = bytes(payload)
        data = payload + zlib.crc32(payload).to_bytes(_CRC_BYTES, "little")
        bits = bytes_to_bits(data)

        scrambler = Scrambler(self.config.scrambler_seed)
        scrambled = scrambler.scramble(bits)

        coded = self._code.encode(scrambled)
        puncturer = Puncturer(mcs.coding_rate)
        punctured = puncturer.puncture(coded)

        # pad with alternating bits to fill whole OFDM symbols
        n_cbps = mcs.coded_bits_per_symbol
        n_symbols = int(np.ceil(punctured.size / n_cbps))
        pad = n_symbols * n_cbps - punctured.size
        if pad:
            filler = (np.arange(pad) % 2).astype(punctured.dtype)
            punctured = np.concatenate([punctured, filler])

        interleaver = BlockInterleaver(n_cbps, mcs.bits_per_subcarrier)
        interleaved = interleaver.interleave(punctured)
        symbols = mcs.modulation.modulate(interleaved)
        return symbols.reshape(n_symbols, -1)

    def encode(self, payload: bytes, mcs: Mcs) -> np.ndarray:
        """Full frequency-domain frame: SIGNAL symbol + payload symbols."""
        signal = self.signal_field_symbols(mcs, len(payload))
        data = self.payload_symbols(payload, mcs)
        return np.vstack([signal, data])

    def encode_time_domain(self, payload: bytes, mcs: Mcs) -> np.ndarray:
        """Frame as cyclic-prefixed time samples (no preamble)."""
        return self._modulator.modulate_frame(self.encode(payload, mcs))

    def n_payload_symbols(self, payload_length: int, mcs: Mcs) -> int:
        """Number of OFDM data symbols a payload of given length occupies."""
        n_bits = 8 * (payload_length + _CRC_BYTES)
        n_coded = 2 * (n_bits + self._code.n_tail_bits)
        puncturer = Puncturer(mcs.coding_rate)
        n_tx = puncturer.punctured_length(n_coded)
        return int(np.ceil(n_tx / mcs.coded_bits_per_symbol))


class PhyFrameDecoder:
    """Decode equalized frequency-domain symbols back to payload bytes."""

    def __init__(self, config: FrameConfig):
        self.config = config
        self._code = ConvolutionalCode()
        self._demodulator = OfdmDemodulator()

    def decode_signal_field(self, symbol: np.ndarray):
        """Parse an equalized SIGNAL symbol; returns (mcs, length) or None."""
        symbol = np.asarray(symbol, dtype=complex).ravel()
        llrs = get_modulation("BPSK").demodulate_soft(symbol)
        interleaver = BlockInterleaver(48, 1)
        deinterleaved = interleaver.deinterleave(llrs)
        bits = self._code.decode(deinterleaved, 18)
        rate_code = 0
        for i in range(4):
            rate_code = (rate_code << 1) | int(bits[i])
        if bits[:17].sum() % 2 != bits[17]:
            return None
        if rate_code not in _RATE_CODES:
            return None
        mcs = get_mcs(_RATE_CODES.index(rate_code))
        length = 0
        for i in range(12):
            length |= int(bits[5 + i]) << i
        if length == 0:
            return None
        return mcs, length

    def decode_payload(
        self,
        symbols: np.ndarray,
        mcs: Mcs,
        length: int,
        noise_var: float = 0.05,
    ) -> DecodedFrame:
        """Decode equalized (n_symbols, 48) data symbols to payload bytes."""
        symbols = np.asarray(symbols, dtype=complex)
        n_bits = 8 * (length + _CRC_BYTES)
        n_coded = 2 * (n_bits + self._code.n_tail_bits)
        puncturer = Puncturer(mcs.coding_rate)
        n_tx = puncturer.punctured_length(n_coded)
        n_symbols = int(np.ceil(n_tx / mcs.coded_bits_per_symbol))
        require(
            symbols.shape[0] >= n_symbols,
            f"need {n_symbols} data symbols, got {symbols.shape[0]}",
        )
        flat = symbols[:n_symbols].reshape(-1)

        llrs = mcs.modulation.demodulate_soft(flat, noise_var=noise_var)
        interleaver = BlockInterleaver(mcs.coded_bits_per_symbol, mcs.bits_per_subcarrier)
        deinterleaved = interleaver.deinterleave(llrs)
        depunctured = puncturer.depuncture(deinterleaved[:n_tx], n_coded)
        scrambled = self._code.decode(depunctured, n_bits)

        scrambler = Scrambler(self.config.scrambler_seed)
        bits = scrambler.descramble(scrambled)
        data = bits_to_bytes(bits)
        payload, crc = data[:-_CRC_BYTES], data[-_CRC_BYTES:]
        crc_ok = zlib.crc32(payload).to_bytes(_CRC_BYTES, "little") == crc

        # EVM against nearest constellation point
        hard = mcs.modulation.points[
            np.argmin(np.abs(flat[:, None] - mcs.modulation.points[None, :]), axis=1)
        ]
        err = np.mean(np.abs(flat - hard) ** 2)
        evm_db = float(10 * np.log10(max(err, 1e-12)))
        return DecodedFrame(
            payload=payload if crc_ok else None,
            crc_ok=crc_ok,
            mcs=mcs,
            length=length,
            evm_db=evm_db,
        )

    def decode(self, symbols: np.ndarray, noise_var: float = 0.05) -> DecodedFrame:
        """Decode a full frame: SIGNAL symbol followed by data symbols.

        A corrupted SIGNAL field can mis-announce a length longer than the
        captured frame; a real receiver just drops such a frame, so that
        case returns a failed DecodedFrame rather than raising.
        """
        symbols = np.asarray(symbols, dtype=complex)
        require(symbols.ndim == 2 and symbols.shape[0] >= 2, "frame too short")
        parsed = self.decode_signal_field(symbols[0])
        if parsed is None:
            return DecodedFrame(payload=None, crc_ok=False, mcs=None)
        mcs, length = parsed
        try:
            return self.decode_payload(symbols[1:], mcs, length, noise_var=noise_var)
        except ValueError:
            # announced length exceeds the capture: corrupted SIGNAL field
            return DecodedFrame(payload=None, crc_ok=False, mcs=mcs, length=length)
