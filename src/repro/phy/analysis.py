"""Waveform analysis utilities: PAPR, spectral occupancy, EVM.

Used by the test suite to validate that the PHY emits physically sane
waveforms (an OFDM transmitter with a broken mapper still round-trips its
own bits — spectral checks catch what loopback tests cannot), and by
anyone poking at the signals interactively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import linear_to_db
from repro.utils.validation import require


def papr_db(samples: np.ndarray) -> float:
    """Peak-to-average power ratio of a waveform, in dB.

    OFDM waveforms typically sit at 8-12 dB for practical symbol counts;
    a single-carrier constant-envelope signal is ~0 dB.
    """
    samples = np.asarray(samples, dtype=complex).ravel()
    require(samples.size > 0, "empty waveform")
    power = np.abs(samples) ** 2
    mean = float(np.mean(power))
    require(mean > 0, "silent waveform")
    return float(linear_to_db(float(np.max(power)) / mean))


def power_spectrum(samples: np.ndarray, n_fft: int = 256) -> np.ndarray:
    """Averaged periodogram (Welch, rectangular window), fftshifted."""
    samples = np.asarray(samples, dtype=complex).ravel()
    require(samples.size >= n_fft, "waveform shorter than the FFT")
    n_segments = samples.size // n_fft
    acc = np.zeros(n_fft)
    for k in range(n_segments):
        seg = samples[k * n_fft : (k + 1) * n_fft]
        acc += np.abs(np.fft.fft(seg)) ** 2
    return np.fft.fftshift(acc / n_segments)


def occupied_bandwidth_fraction(
    samples: np.ndarray, n_fft: int = 64, power_fraction: float = 0.99
) -> float:
    """Fraction of FFT bins holding ``power_fraction`` of the signal power.

    An 802.11 OFDM signal occupies 52 of 64 bins (~0.81); leakage beyond
    that indicates a windowing or mapping bug.
    """
    spectrum = power_spectrum(samples, n_fft)
    total = float(np.sum(spectrum))
    require(total > 0, "silent waveform")
    sorted_bins = np.sort(spectrum)[::-1]
    cumulative = np.cumsum(sorted_bins) / total
    n_needed = int(np.searchsorted(cumulative, power_fraction)) + 1
    return n_needed / n_fft


def evm_db(received: np.ndarray, reference: np.ndarray) -> float:
    """Error-vector magnitude of equalized symbols vs. their reference."""
    received = np.asarray(received, dtype=complex).ravel()
    reference = np.asarray(reference, dtype=complex).ravel()
    require(received.size == reference.size and received.size > 0, "size mismatch")
    err = float(np.mean(np.abs(received - reference) ** 2))
    ref = float(np.mean(np.abs(reference) ** 2))
    require(ref > 0, "silent reference")
    return float(linear_to_db(max(err, 1e-30) / ref))


@dataclass
class WaveformReport:
    """Summary statistics of one transmitted waveform.

    Attributes:
        papr_db: Peak-to-average power ratio.
        mean_power: Average |sample|^2.
        occupied_fraction: 99%-power bandwidth as a fraction of the grid.
        n_samples: Length.
    """

    papr_db: float
    mean_power: float
    occupied_fraction: float
    n_samples: int

    def format_summary(self) -> str:
        return (
            f"{self.n_samples} samples, mean power {self.mean_power:.3f}, "
            f"PAPR {self.papr_db:.1f} dB, 99% bandwidth "
            f"{self.occupied_fraction:.0%} of the grid"
        )


def analyze_waveform(samples: np.ndarray) -> WaveformReport:
    """Compute the full waveform report."""
    samples = np.asarray(samples, dtype=complex).ravel()
    return WaveformReport(
        papr_db=papr_db(samples),
        mean_power=float(np.mean(np.abs(samples) ** 2)),
        occupied_fraction=occupied_bandwidth_fraction(samples),
        n_samples=samples.size,
    )
