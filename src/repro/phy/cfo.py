"""Carrier-frequency-offset estimation, correction and long-term tracking.

Coarse estimation correlates successive 16-sample STS repetitions; fine
estimation correlates the two 64-sample LTS copies.  ``CfoTracker``
implements the paper's long-term averaging (§5.2b, §5.3): because APs are
infrastructure with stable offsets, averaging per-packet estimates across
many packets yields an offset accurate enough to extrapolate phase *within*
a packet — while remaining useless *across* packets, which is exactly why
MegaMIMO re-measures phase at every sync header.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FFT_SIZE
from repro.phy.preamble import STS_PERIOD
from repro.utils.validation import require


def estimate_cfo_coarse(sts_samples: np.ndarray, sample_rate: float) -> float:
    """Estimate CFO (Hz) from repeated 16-sample short training symbols.

    The unambiguous range is +-sample_rate / (2 * 16), i.e. +-312.5 kHz at
    10 MHz — far beyond any 802.11-legal oscillator offset.
    """
    sts_samples = np.asarray(sts_samples, dtype=complex).ravel()
    require(sts_samples.size >= 2 * STS_PERIOD, "need at least two STS periods")
    n = (sts_samples.size // STS_PERIOD) * STS_PERIOD
    x = sts_samples[:n]
    corr = np.sum(x[STS_PERIOD:] * np.conj(x[:-STS_PERIOD]))
    phase = np.angle(corr)
    return float(phase * sample_rate / (2.0 * np.pi * STS_PERIOD))


def estimate_cfo_fine(lts_samples: np.ndarray, sample_rate: float) -> float:
    """Estimate CFO (Hz) from two consecutive 64-sample LTS copies.

    Range +-sample_rate / (2 * 64); combined with the coarse estimate it
    resolves the full oscillator range with fine precision.
    """
    lts_samples = np.asarray(lts_samples, dtype=complex).ravel()
    require(lts_samples.size >= 2 * FFT_SIZE, "need two LTS copies")
    first = lts_samples[:FFT_SIZE]
    second = lts_samples[FFT_SIZE : 2 * FFT_SIZE]
    corr = np.sum(second * np.conj(first))
    phase = np.angle(corr)
    return float(phase * sample_rate / (2.0 * np.pi * FFT_SIZE))


def combine_cfo(coarse_hz: float, fine_hz: float, sample_rate: float) -> float:
    """Resolve the fine estimate's aliasing using the coarse estimate."""
    ambiguity = sample_rate / FFT_SIZE  # fine estimate is modulo this
    k = np.round((coarse_hz - fine_hz) / ambiguity)
    return float(fine_hz + k * ambiguity)


def apply_cfo(samples: np.ndarray, cfo_hz: float, sample_rate: float,
              start_time: float = 0.0) -> np.ndarray:
    """Rotate samples by ``exp(+j 2 pi cfo t)``; negate ``cfo_hz`` to correct.

    Args:
        samples: Complex baseband samples.
        cfo_hz: Frequency offset to impose (or, negated, to remove).
        sample_rate: Samples per second.
        start_time: Absolute time of the first sample, so phase is continuous
            across separately processed chunks.
    """
    samples = np.asarray(samples, dtype=complex)
    t = start_time + np.arange(samples.size) / sample_rate
    return samples * np.exp(2j * np.pi * cfo_hz * t)


class CfoTracker:
    """Long-term averaged CFO estimate between two fixed nodes.

    MegaMIMO slave APs keep "a continuously averaged estimate of their offset
    with the lead transmitter across multiple transmissions" (§5.2b).  An
    exponentially-weighted average converges to the true offset while
    remaining responsive to slow oscillator drift.
    """

    def __init__(self, alpha: float = 0.1):
        require(0.0 < alpha <= 1.0, "alpha must be in (0, 1]")
        self.alpha = alpha
        self._estimate = None
        self.n_updates = 0

    @property
    def estimate_hz(self):
        """Current averaged estimate in Hz, or None before any update."""
        return self._estimate

    def update(self, measurement_hz: float, weight: float = None) -> float:
        """Fold in a fresh per-packet CFO measurement; returns the average.

        Args:
            measurement_hz: The new measurement.
            weight: Override the EWMA coefficient for this update — used for
                high-precision measurements (long-baseline cross-header
                estimates) that deserve more trust than a raw header CFO.
        """
        measurement_hz = float(measurement_hz)
        alpha = self.alpha if weight is None else float(weight)  # repro: noqa[NUM003] EWMA scalar
        if self._estimate is None:
            self._estimate = measurement_hz
        else:
            self._estimate += alpha * (measurement_hz - self._estimate)
        self.n_updates += 1
        return self._estimate

    def predicted_phase(self, elapsed_s: float) -> float:
        """Phase (radians) accumulated over ``elapsed_s`` at the estimate.

        This is only trustworthy for within-packet durations (§5.3): over a
        1 ms packet a residual error of 10 Hz costs just 0.06 rad, but over a
        100 ms inter-packet gap it would cost 6.3 rad.
        """
        if self._estimate is None:
            return 0.0
        return 2.0 * np.pi * self._estimate * float(elapsed_s)
