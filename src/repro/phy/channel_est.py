"""Least-squares channel estimation from LTS symbols.

Also provides the two operations MegaMIMO's sounding phase needs beyond
vanilla 802.11 (§5.1b): averaging repeated per-AP estimates to beat down
noise, and rotating an estimate taken at time ``t`` back to the common
reference time ``t = 0`` using the measured CFO.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FFT_SIZE
from repro.phy.preamble import lts_grid
from repro.utils.validation import require

_LTS_GRID = lts_grid()
_OCCUPIED = np.abs(_LTS_GRID) > 0


def estimate_channel_lts(lts_time_samples: np.ndarray) -> np.ndarray:
    """LS channel estimate from one 64-sample (CP-free) LTS copy.

    Returns a 64-bin complex array; unoccupied bins (DC, band edges) are 0.
    """
    lts_time_samples = np.asarray(lts_time_samples, dtype=complex).ravel()
    require(lts_time_samples.size == FFT_SIZE, "need exactly one 64-sample LTS")
    grid = np.fft.fft(lts_time_samples) / np.sqrt(FFT_SIZE)
    estimate = np.zeros(FFT_SIZE, dtype=complex)
    estimate[_OCCUPIED] = grid[_OCCUPIED] / _LTS_GRID[_OCCUPIED]
    return estimate


def average_channel_estimates(estimates) -> np.ndarray:
    """Average several 64-bin channel estimates (reduces noise, §5.1a/b)."""
    estimates = [np.asarray(e, dtype=complex).ravel() for e in estimates]
    require(len(estimates) > 0, "need at least one estimate")
    for e in estimates:
        require(e.size == FFT_SIZE, "estimates must be 64-bin arrays")
    return np.mean(np.stack(estimates), axis=0)


def rotate_channel_to_reference(
    channel: np.ndarray,
    cfo_hz: float,
    elapsed_s: float,
) -> np.ndarray:
    """Undo the CFO rotation accumulated between reference time and ``t``.

    A channel measured ``elapsed_s`` after the reference time has rotated by
    ``exp(j 2 pi cfo elapsed)``; multiplying by the conjugate phase restores
    the value it had at the reference time (paper §5.1b: the receiver rotates
    AP i's estimate by ``e^{-j dw_i ((i-1)kT + D)}``).
    """
    channel = np.asarray(channel, dtype=complex)
    return channel * np.exp(-2j * np.pi * float(cfo_hz) * float(elapsed_s))


def channel_phase(channel: np.ndarray) -> float:
    """Energy-weighted mean phase of a 64-bin channel estimate.

    Used by slave APs to summarize the lead->slave channel rotation into a
    single correction phase when the channel is frequency-flat.
    """
    channel = np.asarray(channel, dtype=complex).ravel()
    return float(np.angle(np.sum(channel * np.abs(channel))))


def channel_rotation(reference: np.ndarray, current: np.ndarray) -> complex:
    """Unit-magnitude rotation best mapping ``reference`` onto ``current``.

    Computes ``e^{j(w_lead - w_slave) t}`` from the slave's two measurements
    of the lead channel (§5.2b): a least-squares phasor fit across occupied
    subcarriers, robust to per-bin noise.
    """
    reference = np.asarray(reference, dtype=complex).ravel()
    current = np.asarray(current, dtype=complex).ravel()
    require(reference.size == current.size, "estimates must be the same length")
    inner = np.sum(current * np.conj(reference))
    magnitude = np.abs(inner)
    if magnitude < 1e-15:
        return 1.0 + 0j
    return inner / magnitude
