"""Modulation-and-coding-scheme definitions derived from the MCS table."""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    MCS_MIN_SNR_DB,
    MCS_TABLE,
    N_DATA_SUBCARRIERS,
    SYMBOL_LENGTH,
)
from repro.phy.modulation import Modulation, get_modulation


@dataclass(frozen=True)
class Mcs:
    """One row of the 802.11a MCS table.

    Attributes:
        index: Position in the table (0 = BPSK-1/2 ... 7 = 64QAM-3/4).
        name: e.g. ``"16QAM-3/4"``.
        bits_per_subcarrier: Modulation order exponent.
        coding_rate: (numerator, denominator) of the convolutional rate.
        min_snr_db: Minimum effective SNR to sustain the MCS ([13]).
    """

    index: int
    name: str
    bits_per_subcarrier: int
    coding_rate: tuple
    min_snr_db: float

    @property
    def modulation(self) -> Modulation:
        mod_name = self.name.split("-")[0]
        return get_modulation(mod_name)

    @property
    def coded_bits_per_symbol(self) -> int:
        """Coded bits per OFDM symbol (N_CBPS)."""
        return N_DATA_SUBCARRIERS * self.bits_per_subcarrier

    @property
    def data_bits_per_symbol(self) -> int:
        """Information bits per OFDM symbol (N_DBPS)."""
        num, den = self.coding_rate
        return self.coded_bits_per_symbol * num // den

    def bitrate(self, sample_rate: float) -> float:
        """PHY bitrate in bits/s at the given channel sample rate.

        At 20 MHz a symbol lasts 4 us giving the familiar 6..54 Mbps; the
        paper's 10 MHz USRP channel halves these to 3..27 Mbps.
        """
        symbol_time = SYMBOL_LENGTH / float(sample_rate)
        return self.data_bits_per_symbol / symbol_time


#: All MCS rows, indexable by MCS index.
ALL_MCS = tuple(
    Mcs(i, name, bits, rate, snr)
    for i, ((name, bits, rate), snr) in enumerate(zip(MCS_TABLE, MCS_MIN_SNR_DB))
)


def get_mcs(index: int) -> Mcs:
    """Return the MCS with the given table index."""
    if not 0 <= index < len(ALL_MCS):
        raise IndexError(f"MCS index {index} out of range 0..{len(ALL_MCS) - 1}")
    return ALL_MCS[index]


def mcs_by_name(name: str) -> Mcs:
    """Return the MCS with the given name, e.g. ``"QPSK-1/2"``."""
    for mcs in ALL_MCS:
        if mcs.name == name:
            return mcs
    raise KeyError(f"no MCS named {name!r}")
