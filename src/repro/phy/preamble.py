"""802.11 training sequences and the MegaMIMO sync header.

The short training sequence (STS) supports packet detection and coarse CFO
estimation; the long training sequence (LTS) supports fine CFO estimation
and channel estimation.  MegaMIMO's *sync header* — the lead-AP preamble that
precedes both channel-measurement frames and every joint data frame (§5) —
is an STS followed by a configurable number of LTS repetitions, which slave
APs use to directly measure their instantaneous phase offset to the lead.
"""

from __future__ import annotations

import numpy as np

from repro.constants import CP_LENGTH, FFT_SIZE
from repro.phy.ofdm import subcarrier_to_fft_index

#: Frequency-domain STS definition of IEEE 802.11-2012 Eq. 18-9 (values on
#: every 4th subcarrier, scaled by sqrt(13/6)).
_STS_SUBCARRIERS = np.arange(-24, 25, 4)
_STS_VALUES = np.sqrt(13.0 / 6.0) * np.array([
    1 + 1j, -1 - 1j, 1 + 1j, -1 - 1j, -1 - 1j, 1 + 1j, 0, -1 - 1j, 1 + 1j,
    -1 - 1j, 1 + 1j, 1 + 1j, 1 + 1j,
])

#: Frequency-domain LTS definition of IEEE 802.11-2012 Eq. 18-11.
LTS_FREQUENCY = np.array([
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1,
    -1, 1, 1, 1, 1,  # subcarriers -26..-1
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1,
    1, -1, 1, 1, 1, 1,  # subcarriers 1..26
], dtype=float)
_LTS_SUBCARRIERS = np.array([k for k in range(-26, 27) if k != 0])

#: LTS repetitions in the MegaMIMO sync header.  The paper uses "a couple of
#: symbols" (§1) transmitted by the lead before each data packet.
SYNC_HEADER_LTS_REPEATS = 2

#: STS short-repetition period in samples (16 at 64-point numerology).
STS_PERIOD = 16


def lts_grid() -> np.ndarray:
    """The LTS as a full 64-bin frequency grid."""
    grid = np.zeros(FFT_SIZE, dtype=complex)
    grid[subcarrier_to_fft_index(_LTS_SUBCARRIERS)] = LTS_FREQUENCY
    return grid


def short_training_sequence(repeats: int = 10) -> np.ndarray:
    """Time-domain STS: ``repeats`` copies of the 16-sample short symbol.

    802.11 transmits 10 repetitions (two OFDM symbol durations).
    """
    grid = np.zeros(FFT_SIZE, dtype=complex)
    grid[subcarrier_to_fft_index(_STS_SUBCARRIERS)] = _STS_VALUES
    full = np.fft.ifft(grid) * np.sqrt(FFT_SIZE)
    short = full[:STS_PERIOD]
    return np.tile(short, repeats)


def long_training_sequence(repeats: int = 2, cp_length: int = 2 * CP_LENGTH) -> np.ndarray:
    """Time-domain LTS: a double-length guard followed by ``repeats`` symbols.

    802.11 uses a 32-sample guard and two 64-sample LTS copies.
    """
    time = np.fft.ifft(lts_grid()) * np.sqrt(FFT_SIZE)
    body = np.tile(time, repeats)
    if cp_length:
        return np.concatenate([body[-cp_length:] if cp_length <= body.size else body, body])
    return body


def sync_header(lts_repeats: int = SYNC_HEADER_LTS_REPEATS) -> np.ndarray:
    """The MegaMIMO lead-AP sync header: STS + ``lts_repeats`` LTS symbols.

    Slave APs detect this header, estimate the current lead->slave channel
    from the LTS, and divide by their stored reference channel to obtain the
    phase correction e^{j(w_lead - w_slave)t} (§5.2b).
    """
    return np.concatenate(
        [short_training_sequence(), long_training_sequence(repeats=lts_repeats)]
    )


def sync_header_length(lts_repeats: int = SYNC_HEADER_LTS_REPEATS) -> int:
    """Sample length of :func:`sync_header`."""
    return 10 * STS_PERIOD + 2 * CP_LENGTH + lts_repeats * FFT_SIZE


def lts_symbol_offsets(lts_repeats: int = SYNC_HEADER_LTS_REPEATS) -> np.ndarray:
    """Start offsets (samples) of each 64-sample LTS copy inside the header."""
    base = 10 * STS_PERIOD + 2 * CP_LENGTH
    return base + FFT_SIZE * np.arange(lts_repeats)
