"""Gray-coded constellation mapping for BPSK/QPSK/16-QAM/64-QAM.

Constellations follow IEEE 802.11-2012 §18.3.5.8: Gray-mapped square QAM
normalized to unit average energy (K_mod factors 1, 1/sqrt(2), 1/sqrt(10),
1/sqrt(42)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import require

_GRAY_2 = np.array([-1, 1], dtype=float)  # bit 0 -> -1, bit 1 -> +1
_GRAY_4 = np.array([-3, -1, 3, 1], dtype=float)  # 00,01,10,11 (Gray)
_GRAY_8 = np.array([-7, -5, -1, -3, 7, 5, 1, 3], dtype=float)


def _axis_levels(bits_per_axis: int) -> np.ndarray:
    if bits_per_axis == 1:
        return _GRAY_2
    if bits_per_axis == 2:
        return _GRAY_4
    if bits_per_axis == 3:
        return _GRAY_8
    raise ValueError(f"unsupported bits per axis: {bits_per_axis}")


@dataclass(frozen=True)
class Modulation:
    """A Gray-coded constellation with unit average symbol energy.

    Attributes:
        name: Human-readable name, e.g. ``"16QAM"``.
        bits_per_symbol: Number of bits carried per constellation point.
        points: Complex constellation points indexed by the integer whose
            binary expansion (MSB first) is the bit label.
    """

    name: str
    bits_per_symbol: int
    points: np.ndarray = field(repr=False)

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map a bit array (length divisible by bits_per_symbol) to symbols."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        require(
            bits.size % self.bits_per_symbol == 0,
            f"bit count {bits.size} not divisible by {self.bits_per_symbol}",
        )
        groups = bits.reshape(-1, self.bits_per_symbol)
        weights = 1 << np.arange(self.bits_per_symbol - 1, -1, -1)
        indices = groups @ weights
        return self.points[indices]

    def demodulate_hard(self, symbols: np.ndarray) -> np.ndarray:
        """Nearest-neighbour hard decisions back to bits (MSB first)."""
        symbols = np.asarray(symbols, dtype=complex).ravel()
        # distance to every constellation point: (n_sym, n_points)
        dist = np.abs(symbols[:, None] - self.points[None, :])
        indices = np.argmin(dist, axis=1)
        shifts = np.arange(self.bits_per_symbol - 1, -1, -1)
        bits = (indices[:, None] >> shifts[None, :]) & 1
        return bits.astype(np.uint8).ravel()

    def demodulate_soft(self, symbols: np.ndarray, noise_var: float = 1.0) -> np.ndarray:
        """Max-log LLRs for each bit; positive LLR means bit 0 more likely.

        Args:
            symbols: Received (equalized) constellation points.
            noise_var: Post-equalization noise variance used to scale LLRs.

        Returns:
            Array of LLRs, ``bits_per_symbol`` per input symbol.
        """
        symbols = np.asarray(symbols, dtype=complex).ravel()
        noise_var = max(float(noise_var), 1e-12)
        sq_dist = np.abs(symbols[:, None] - self.points[None, :]) ** 2
        n_points = len(self.points)
        shifts = np.arange(self.bits_per_symbol - 1, -1, -1)
        labels = (np.arange(n_points)[:, None] >> shifts[None, :]) & 1
        llrs = np.empty((symbols.size, self.bits_per_symbol))
        for b in range(self.bits_per_symbol):
            mask0 = labels[:, b] == 0
            d0 = sq_dist[:, mask0].min(axis=1)
            d1 = sq_dist[:, ~mask0].min(axis=1)
            llrs[:, b] = (d1 - d0) / noise_var
        return llrs.ravel()

    @property
    def min_distance(self) -> float:
        """Minimum Euclidean distance between constellation points."""
        diffs = self.points[:, None] - self.points[None, :]
        d = np.abs(diffs)
        d[d == 0] = np.inf
        return float(d.min())


def _build_bpsk() -> Modulation:
    return Modulation("BPSK", 1, _GRAY_2.astype(complex))


def _build_qam(bits_per_symbol: int, name: str) -> Modulation:
    bits_per_axis = bits_per_symbol // 2
    levels = _axis_levels(bits_per_axis)
    n = 1 << bits_per_symbol
    points = np.empty(n, dtype=complex)
    for idx in range(n):
        i_bits = idx >> bits_per_axis
        q_bits = idx & ((1 << bits_per_axis) - 1)
        points[idx] = levels[i_bits] + 1j * levels[q_bits]
    # normalize to unit average energy
    points /= np.sqrt(np.mean(np.abs(points) ** 2))
    return Modulation(name, bits_per_symbol, points)


_MODULATIONS = {
    "BPSK": _build_bpsk(),
    "QPSK": _build_qam(2, "QPSK"),
    "4QAM": _build_qam(2, "4QAM"),
    "16QAM": _build_qam(4, "16QAM"),
    "64QAM": _build_qam(6, "64QAM"),
}


def get_modulation(name: str) -> Modulation:
    """Look up a constellation by name (BPSK, QPSK/4QAM, 16QAM, 64QAM)."""
    key = name.upper()
    if key not in _MODULATIONS:
        raise KeyError(f"unknown modulation {name!r}; options: {sorted(_MODULATIONS)}")
    return _MODULATIONS[key]
