"""802.11 block interleaver.

Two-permutation interleaver over one OFDM symbol's coded bits
(IEEE 802.11-2012 §18.3.5.7): the first permutation spreads adjacent coded
bits across non-adjacent subcarriers; the second rotates bits within a
subcarrier's constellation label so that long runs do not land on the
least-reliable QAM bit positions.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require


class BlockInterleaver:
    """Interleave/deinterleave blocks of ``n_cbps`` coded bits per symbol.

    Args:
        n_cbps: Coded bits per OFDM symbol (48 * bits_per_subcarrier).
        bits_per_subcarrier: Modulation order exponent (1, 2, 4 or 6).
    """

    N_COLUMNS = 16

    def __init__(self, n_cbps: int, bits_per_subcarrier: int):
        require(n_cbps % self.N_COLUMNS == 0, "n_cbps must divide into 16 columns")
        self.n_cbps = n_cbps
        self.s = max(bits_per_subcarrier // 2, 1)
        k = np.arange(n_cbps)
        # first permutation
        i = (n_cbps // self.N_COLUMNS) * (k % self.N_COLUMNS) + k // self.N_COLUMNS
        # second permutation
        s = self.s
        j = s * (i // s) + (i + n_cbps - (self.N_COLUMNS * i) // n_cbps) % s
        self._forward = j  # bit k of input lands at position j[k]
        self._inverse = np.argsort(j)

    def interleave(self, bits: np.ndarray) -> np.ndarray:
        """Interleave one or more whole symbol blocks."""
        bits = np.asarray(bits).ravel()
        require(bits.size % self.n_cbps == 0, "input must be whole symbol blocks")
        out = np.empty_like(bits)
        blocks = bits.reshape(-1, self.n_cbps)
        out = np.empty_like(blocks)
        out[:, self._forward] = blocks
        return out.ravel()

    def deinterleave(self, bits: np.ndarray) -> np.ndarray:
        """Invert :meth:`interleave` (works on soft values too)."""
        bits = np.asarray(bits).ravel()
        require(bits.size % self.n_cbps == 0, "input must be whole symbol blocks")
        blocks = bits.reshape(-1, self.n_cbps)
        out = np.empty_like(blocks)
        out[:, self._inverse] = blocks
        return out.ravel()
