"""Rate-1/2 convolutional code with Viterbi decoding.

The industry-standard K=7 code with generators (133, 171) octal used by
802.11a/g/n.  The Viterbi decoder is vectorized over the 64 trellis states
and supports both hard (Hamming) and soft (LLR correlation) branch metrics,
plus depunctured input where erased positions carry zero metric.
"""

from __future__ import annotations

import numpy as np

from repro.constants import CONV_G0, CONV_G1, CONV_K
from repro.utils.validation import require


def _parity(x: np.ndarray) -> np.ndarray:
    """Bitwise parity of each element of an integer array."""
    x = x.copy()
    result = np.zeros_like(x)
    while np.any(x):
        result ^= x & 1
        x >>= 1
    return result


class ConvolutionalCode:
    """K=7 (133, 171) rate-1/2 convolutional encoder / Viterbi decoder.

    The encoder is zero-terminated: ``encode`` appends K-1 tail zeros so the
    trellis ends in state 0, which the decoder exploits for traceback.
    """

    def __init__(self, constraint_length: int = CONV_K,
                 g0: int = CONV_G0, g1: int = CONV_G1):
        self.constraint_length = constraint_length
        self.n_states = 1 << (constraint_length - 1)
        self.g0 = g0
        self.g1 = g1
        self._build_trellis()

    def _build_trellis(self) -> None:
        states = np.arange(self.n_states)
        # next state and output bits for input 0 and 1
        self.next_state = np.empty((self.n_states, 2), dtype=np.int64)
        self.output_bits = np.empty((self.n_states, 2, 2), dtype=np.uint8)
        for bit in (0, 1):
            # shift register: [input, state bits]; register = bit<<(K-1) | state
            register = (bit << (self.constraint_length - 1)) | states
            self.next_state[:, bit] = register >> 1
            self.output_bits[:, bit, 0] = _parity(register & self.g0)
            self.output_bits[:, bit, 1] = _parity(register & self.g1)
        # predecessor table for traceback-free vectorized decode
        # prev_state[s, j]: the j-th predecessor of state s, with input bit
        # prev_bit[s, j]
        self.prev_state = np.empty((self.n_states, 2), dtype=np.int64)
        self.prev_bit = np.empty((self.n_states, 2), dtype=np.uint8)
        counts = np.zeros(self.n_states, dtype=np.int64)
        for s in range(self.n_states):
            for bit in (0, 1):
                ns = self.next_state[s, bit]
                self.prev_state[ns, counts[ns]] = s
                self.prev_bit[ns, counts[ns]] = bit
                counts[ns] += 1
        require(bool(np.all(counts == 2)), "malformed trellis")

    # -- encoding ----------------------------------------------------------

    @property
    def n_tail_bits(self) -> int:
        """Number of zero tail bits appended by ``encode``."""
        return self.constraint_length - 1

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode a bit array, appending K-1 tail zeros; returns coded bits.

        Output length is ``2 * (len(bits) + K - 1)``; the two coded bits per
        input bit are emitted g0-first, matching 802.11.
        """
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        padded = np.concatenate([bits, np.zeros(self.n_tail_bits, dtype=np.uint8)])
        out = np.empty(2 * padded.size, dtype=np.uint8)
        state = 0
        for i, b in enumerate(padded):
            out[2 * i] = self.output_bits[state, b, 0]
            out[2 * i + 1] = self.output_bits[state, b, 1]
            state = self.next_state[state, b]
        return out

    # -- decoding ----------------------------------------------------------

    def decode(self, llrs: np.ndarray, n_info_bits: int) -> np.ndarray:
        """Viterbi-decode soft input back to ``n_info_bits`` information bits.

        Args:
            llrs: Soft values, one per coded bit, where positive favours
                bit 0 and negative favours bit 1.  Hard decisions can be fed
                as ``1 - 2*bit``.  Erased (punctured) positions must be 0.
            n_info_bits: Number of information bits to return (tail bits from
                the zero-terminated encoder are stripped).

        Returns:
            The maximum-likelihood information bit sequence.
        """
        llrs = np.asarray(llrs, dtype=float).ravel()
        require(llrs.size % 2 == 0, "coded stream must contain bit pairs")
        n_steps = llrs.size // 2
        require(
            n_steps >= n_info_bits,
            f"coded stream ({n_steps} steps) shorter than {n_info_bits} info bits",
        )
        pairs = llrs.reshape(n_steps, 2)

        # Branch metric for (state, input bit) at step t:
        # correlation of expected +-1 symbols with the LLRs.
        # expected symbol for coded bit b is (1 - 2b); metric = sum llr*(1-2b)
        expected = 1.0 - 2.0 * self.output_bits.astype(float)  # (S, 2, 2)

        neg_inf = -1e18
        metrics = np.full(self.n_states, neg_inf)
        metrics[0] = 0.0
        decisions = np.empty((n_steps, self.n_states), dtype=np.uint8)

        prev_state = self.prev_state
        prev_bit = self.prev_bit
        # precompute every step's branch metrics, already gathered per
        # (state, predecessor) — the add-compare-select loop then only does
        # one add and one comparison per step
        arrived = expected[prev_state, prev_bit]  # (S, 2, 2)
        bm_all = pairs @ arrived.reshape(-1, 2).T  # (n_steps, S*2)
        bm_all = bm_all.reshape(n_steps, self.n_states, 2)
        state_range = np.arange(self.n_states)
        for t in range(n_steps):
            cand = metrics[prev_state] + bm_all[t]
            choice = (cand[:, 1] > cand[:, 0]).astype(np.uint8)
            metrics = cand[state_range, choice]
            decisions[t] = choice

        # traceback from state 0 (zero-terminated)
        state = 0
        out = np.empty(n_steps, dtype=np.uint8)
        for t in range(n_steps - 1, -1, -1):
            j = decisions[t, state]
            out[t] = prev_bit[state, j]
            state = prev_state[state, j]
        return out[:n_info_bits]

    def decode_hard(self, coded_bits: np.ndarray, n_info_bits: int) -> np.ndarray:
        """Viterbi decode from hard bit decisions."""
        coded_bits = np.asarray(coded_bits, dtype=float).ravel()
        return self.decode(1.0 - 2.0 * coded_bits, n_info_bits)
