"""Puncturing of the rate-1/2 mother code to rates 2/3 and 3/4.

Patterns follow IEEE 802.11-2012 §18.3.5.6 (Figures 18-9/18-10): the coded
stream is partitioned into blocks and selected bits are simply not
transmitted.  On receive, ``depuncture`` re-inserts zero-valued LLR erasures
so the Viterbi decoder sees the full-rate trellis.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require

#: keep-masks over one puncturing period of the coded (A,B) stream.
PUNCTURE_PATTERNS = {
    (1, 2): np.array([1, 1], dtype=bool),
    (2, 3): np.array([1, 1, 1, 0], dtype=bool),
    (3, 4): np.array([1, 1, 1, 0, 0, 1], dtype=bool),
}


class Puncturer:
    """Puncture/depuncture a coded bit stream for a given coding rate."""

    def __init__(self, rate: tuple):
        rate = (int(rate[0]), int(rate[1]))
        if rate not in PUNCTURE_PATTERNS:
            raise KeyError(
                f"unsupported coding rate {rate}; options: {sorted(PUNCTURE_PATTERNS)}"
            )
        self.rate = rate
        self.pattern = PUNCTURE_PATTERNS[rate]
        self.period = len(self.pattern)
        self.kept_per_period = int(self.pattern.sum())

    def punctured_length(self, n_coded: int) -> int:
        """Transmitted bit count after puncturing ``n_coded`` mother bits."""
        full, rem = divmod(n_coded, self.period)
        return full * self.kept_per_period + int(self.pattern[:rem].sum())

    def puncture(self, coded_bits: np.ndarray) -> np.ndarray:
        """Drop the masked positions from a mother-code bit stream."""
        coded_bits = np.asarray(coded_bits).ravel()
        mask = np.resize(self.pattern, coded_bits.size)
        return coded_bits[mask]

    def depuncture(self, values: np.ndarray, n_coded: int) -> np.ndarray:
        """Re-insert zero erasures to recover a length-``n_coded`` stream.

        Args:
            values: Received soft values for the transmitted positions.
            n_coded: Length of the mother-coded stream before puncturing.
        """
        values = np.asarray(values, dtype=float).ravel()
        expected = self.punctured_length(n_coded)
        require(
            values.size == expected,
            f"expected {expected} punctured values for {n_coded} coded bits, "
            f"got {values.size}",
        )
        mask = np.resize(self.pattern, n_coded)
        out = np.zeros(n_coded, dtype=float)
        out[mask] = values
        return out
