"""802.11 frame-synchronous scrambler (x^7 + x^4 + 1)."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require


class Scrambler:
    """Length-127 self-synchronizing scrambler of IEEE 802.11-2012 §18.3.5.5.

    Scrambling and descrambling are the same XOR operation with the LFSR
    keystream, so one class provides both directions.
    """

    def __init__(self, seed: int = 0b1011101):
        require(0 < seed < 128, "scrambler seed must be a non-zero 7-bit value")
        self.seed = seed

    def keystream(self, n_bits: int) -> np.ndarray:
        """Generate ``n_bits`` of the scrambling sequence."""
        state = self.seed
        out = np.empty(n_bits, dtype=np.uint8)
        for i in range(n_bits):
            bit = ((state >> 6) ^ (state >> 3)) & 1
            state = ((state << 1) | bit) & 0x7F
            out[i] = bit
        return out

    def scramble(self, bits: np.ndarray) -> np.ndarray:
        """XOR the data bits with the scrambler keystream."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        return bits ^ self.keystream(bits.size)

    # descrambling is identical
    descramble = scramble
