"""Forward error correction: convolutional code, puncturing, interleaver,
scrambler — the 802.11a/g coding chain."""

from repro.phy.coding.convolutional import ConvolutionalCode
from repro.phy.coding.interleaver import BlockInterleaver
from repro.phy.coding.puncturing import PUNCTURE_PATTERNS, Puncturer
from repro.phy.coding.scrambler import Scrambler

__all__ = [
    "ConvolutionalCode",
    "Puncturer",
    "PUNCTURE_PATTERNS",
    "BlockInterleaver",
    "Scrambler",
]
