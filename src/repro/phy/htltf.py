"""Two-stream training fields (802.11n HT-LTF style).

Stock 802.11n receivers measure multi-stream channels from HT long
training fields: over two LTS symbols, stream 0 transmits ``[L, L]`` and
stream 1 ``[L, -L]`` (a 2x2 orthogonal mapping, the P matrix), so a
receiver separates the two transmit chains with one add and one subtract:

    h0 = (y0 + y1) / (2 L),    h1 = (y0 - y1) / (2 L)

This is the packet format MegaMIMO's §6 sounding relies on: every
measurement is "a series of two-stream transmissions" the client's card
already understands.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.constants import CP_LENGTH, FFT_SIZE
from repro.phy.channel_est import estimate_channel_lts
from repro.phy.preamble import lts_grid
from repro.utils.validation import require

#: the 2x2 orthogonal stream-mapping matrix
P_MATRIX = np.array([[1.0, 1.0], [1.0, -1.0]])

#: samples: double guard + two mapped LTS symbols
HTLTF_LENGTH = 2 * CP_LENGTH + 2 * FFT_SIZE


def htltf_waveforms() -> np.ndarray:
    """Per-stream time-domain HT-LTF: (2, HTLTF_LENGTH) samples.

    Stream s transmits ``P[s, k] * LTS`` in symbol slot k, preceded by a
    shared 32-sample cyclic guard.
    """
    time_lts = np.fft.ifft(lts_grid()) * np.sqrt(FFT_SIZE)
    out = np.empty((2, HTLTF_LENGTH), dtype=complex)
    for s in range(2):
        body = np.concatenate([P_MATRIX[s, 0] * time_lts, P_MATRIX[s, 1] * time_lts])
        guard = body[-2 * CP_LENGTH :]
        out[s] = np.concatenate([guard, body])
    return out


def estimate_two_streams(samples: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-stream 64-bin channel estimates from a received HT-LTF.

    Args:
        samples: At least HTLTF_LENGTH samples aligned to the field start.

    Returns:
        (h0, h1): the two transmit chains' channel estimates.
    """
    samples = np.asarray(samples, dtype=complex).ravel()
    require(samples.size >= HTLTF_LENGTH, "HT-LTF capture too short")
    start = 2 * CP_LENGTH
    y0 = estimate_channel_lts(samples[start : start + FFT_SIZE])
    y1 = estimate_channel_lts(samples[start + FFT_SIZE : start + 2 * FFT_SIZE])
    h0 = (y0 + y1) / 2.0
    h1 = (y0 - y1) / 2.0
    return h0, h1
