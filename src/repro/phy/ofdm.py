"""64-point OFDM modulation with pilot-aided phase tracking.

Maps 48 data symbols plus 4 scrambled pilots onto the 802.11 subcarrier
grid, performs the IFFT and prepends the cyclic prefix.  The demodulator
strips the prefix, FFTs, equalizes against a channel estimate, and applies
common-phase-error correction derived from the pilots — which is exactly how
MegaMIMO clients "track the phase of the lead AP symbol by symbol" (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    CP_LENGTH,
    DATA_SUBCARRIERS,
    FFT_SIZE,
    N_DATA_SUBCARRIERS,
    PILOT_POLARITY,
    PILOT_SUBCARRIERS,
    PILOT_VALUES,
    SYMBOL_LENGTH,
)
from repro.utils.validation import require


def subcarrier_to_fft_index(subcarriers: np.ndarray) -> np.ndarray:
    """Map signed subcarrier indices (-26..26) to FFT bin indices (0..63)."""
    subcarriers = np.asarray(subcarriers)
    return np.where(subcarriers >= 0, subcarriers, subcarriers + FFT_SIZE)


_DATA_BINS = subcarrier_to_fft_index(DATA_SUBCARRIERS)
_PILOT_BINS = subcarrier_to_fft_index(PILOT_SUBCARRIERS)


@dataclass
class EqualizedSymbol:
    """Result of demodulating one OFDM symbol.

    Attributes:
        data: 48 equalized data-subcarrier values.
        common_phase: Pilot-derived common phase error that was removed.
        pilot_snr: Crude SNR estimate from pilot dispersion (linear).
    """

    data: np.ndarray
    common_phase: float
    pilot_snr: float


class OfdmModulator:
    """Map frequency-domain data symbols to cyclic-prefixed time samples."""

    def __init__(self):
        self.fft_size = FFT_SIZE
        self.cp_length = CP_LENGTH

    def symbol_grid(self, data_symbols: np.ndarray, symbol_index: int = 0) -> np.ndarray:
        """The 64-bin frequency grid for one symbol: data + scrambled pilots.

        Args:
            data_symbols: 48 complex constellation points.
            symbol_index: Index into the pilot polarity sequence (the SIGNAL
                symbol is index 0 in 802.11; data symbols continue from 1).
        """
        data_symbols = np.asarray(data_symbols, dtype=complex).ravel()
        require(
            data_symbols.size == N_DATA_SUBCARRIERS,
            f"need {N_DATA_SUBCARRIERS} data symbols, got {data_symbols.size}",
        )
        grid = np.zeros(FFT_SIZE, dtype=complex)
        grid[_DATA_BINS] = data_symbols
        polarity = PILOT_POLARITY[symbol_index % len(PILOT_POLARITY)]
        grid[_PILOT_BINS] = PILOT_VALUES * polarity
        return grid

    def modulate_symbol(self, data_symbols: np.ndarray, symbol_index: int = 0) -> np.ndarray:
        """Build one OFDM symbol (80 samples) from 48 data symbols."""
        grid = self.symbol_grid(data_symbols, symbol_index)
        time = np.fft.ifft(grid) * np.sqrt(FFT_SIZE)
        return np.concatenate([time[-CP_LENGTH:], time])

    def modulate_frame(self, data_symbols: np.ndarray, first_symbol_index: int = 0) -> np.ndarray:
        """Concatenate many OFDM symbols; ``data_symbols`` is (n_sym, 48)."""
        data_symbols = np.asarray(data_symbols, dtype=complex)
        require(data_symbols.ndim == 2, "expected a (n_symbols, 48) array")
        chunks = [
            self.modulate_symbol(row, first_symbol_index + i)
            for i, row in enumerate(data_symbols)
        ]
        return np.concatenate(chunks) if chunks else np.zeros(0, dtype=complex)

    def modulate_grid(self, grid: np.ndarray) -> np.ndarray:
        """Modulate a raw 64-bin frequency grid (used for training symbols)."""
        grid = np.asarray(grid, dtype=complex).ravel()
        require(grid.size == FFT_SIZE, "grid must have 64 bins")
        time = np.fft.ifft(grid) * np.sqrt(FFT_SIZE)
        return np.concatenate([time[-CP_LENGTH:], time])


class OfdmDemodulator:
    """Strip CP, FFT, equalize and phase-track received OFDM symbols."""

    def __init__(self):
        self.fft_size = FFT_SIZE
        self.cp_length = CP_LENGTH

    def fft_symbol(self, samples: np.ndarray) -> np.ndarray:
        """FFT one 80-sample OFDM symbol to the 64-bin frequency grid."""
        samples = np.asarray(samples, dtype=complex).ravel()
        require(samples.size == SYMBOL_LENGTH, f"need {SYMBOL_LENGTH} samples")
        return np.fft.fft(samples[CP_LENGTH:]) / np.sqrt(FFT_SIZE)

    def demodulate_symbol(
        self,
        samples: np.ndarray,
        channel: np.ndarray,
        symbol_index: int = 0,
        track_phase: bool = True,
    ) -> EqualizedSymbol:
        """Equalize one received OFDM symbol.

        Args:
            samples: 80 time-domain samples (with CP).
            channel: Complex channel estimate per occupied FFT bin; accepts a
                full 64-bin array.
            symbol_index: Pilot polarity index for this symbol.
            track_phase: Remove pilot-derived common phase error (residual
                CFO/SFO) before slicing.

        Returns:
            An :class:`EqualizedSymbol` with equalized data values.
        """
        grid = self.fft_symbol(samples)
        channel = np.asarray(channel, dtype=complex).ravel()
        require(channel.size == FFT_SIZE, "channel estimate must cover 64 bins")

        polarity = PILOT_POLARITY[symbol_index % len(PILOT_POLARITY)]
        expected_pilots = PILOT_VALUES * polarity
        raw_pilots = grid[_PILOT_BINS] / _safe(channel[_PILOT_BINS])
        rotations = raw_pilots * np.conj(expected_pilots)
        common = np.sum(rotations)
        common_phase = float(np.angle(common)) if track_phase else 0.0

        data = grid[_DATA_BINS] / _safe(channel[_DATA_BINS])
        data = data * np.exp(-1j * common_phase)

        # pilot dispersion around the common rotation -> noise estimate
        aligned = rotations * np.exp(-1j * common_phase)
        signal_power = float(np.mean(np.abs(aligned)) ** 2)
        noise_power = float(np.mean(np.abs(aligned - np.mean(aligned)) ** 2))
        pilot_snr = signal_power / max(noise_power, 1e-12)
        return EqualizedSymbol(data=data, common_phase=common_phase, pilot_snr=pilot_snr)


def _safe(values: np.ndarray, floor: float = 1e-9) -> np.ndarray:
    """Avoid dividing by (near-)zero channel bins."""
    values = np.asarray(values, dtype=complex).copy()
    small = np.abs(values) < floor
    values[small] = floor
    return values
