"""Point-to-point packet transport over the simulated medium.

A generic single-antenna 802.11-style link: preamble (STS + LTS) followed
by a PLCP frame.  Used for the control traffic the paper sends "over the
wireless channel" — most importantly the clients' CSI feedback (§5.1b) —
and reusable for any unicast packet in tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.medium import Medium
from repro.constants import FFT_SIZE, SYMBOL_LENGTH
from repro.phy.cfo import apply_cfo, combine_cfo, estimate_cfo_coarse, estimate_cfo_fine
from repro.phy.channel_est import average_channel_estimates, estimate_channel_lts
from repro.phy.frame import DecodedFrame, FrameConfig, PhyFrameDecoder, PhyFrameEncoder
from repro.phy.mcs import Mcs, get_mcs
from repro.phy.ofdm import OfdmDemodulator
from repro.phy.preamble import lts_symbol_offsets, sync_header, sync_header_length
from repro.utils.validation import require


@dataclass
class LinkPacket:
    """Bookkeeping for one transmitted packet.

    Attributes:
        start_time: Absolute time of the preamble's first sample.
        n_samples: Total waveform length.
        mcs: Modulation and coding used.
        payload_length: Bytes carried.
    """

    start_time: float
    n_samples: int
    mcs: Mcs
    payload_length: int


class PointToPointLink:
    """Send and receive unicast packets between two medium nodes."""

    def __init__(self, medium: Medium, mcs: Optional[Mcs] = None):
        self.medium = medium
        self.mcs = mcs or get_mcs(2)  # QPSK-1/2: robust control rate
        config = FrameConfig(sample_rate=medium.sample_rate)
        self._encoder = PhyFrameEncoder(config)
        self._decoder = PhyFrameDecoder(config)
        self._demodulator = OfdmDemodulator()

    def waveform(self, payload: bytes) -> np.ndarray:
        """Preamble + frame as time samples."""
        frame = self._encoder.encode_time_domain(payload, self.mcs)
        return np.concatenate([sync_header(), frame])

    def packet_samples(self, payload_length: int) -> int:
        """Waveform length for a payload of the given size."""
        n_symbols = 1 + self._encoder.n_payload_symbols(payload_length, self.mcs)
        return sync_header_length() + n_symbols * SYMBOL_LENGTH

    def send(self, tx_node: str, payload: bytes, start_time: float) -> LinkPacket:
        """Transmit one packet; returns its on-air bookkeeping."""
        waveform = self.waveform(payload)
        self.medium.transmit(tx_node, waveform, start_time)
        return LinkPacket(
            start_time=start_time,
            n_samples=waveform.size,
            mcs=self.mcs,
            payload_length=len(payload),
        )

    def receive(self, rx_node: str, packet: LinkPacket) -> DecodedFrame:
        """Receive and decode a packet announced by :meth:`send`.

        Runs the standard chain: CFO lock from the preamble, LS channel
        estimate from the two LTS copies, pilot-tracked demodulation,
        Viterbi + CRC.
        """
        fs = self.medium.sample_rate
        rx = self.medium.receive(rx_node, packet.start_time, packet.n_samples)

        coarse = estimate_cfo_coarse(rx[:160], fs)
        lts_off = int(lts_symbol_offsets()[0])
        fine = estimate_cfo_fine(rx[lts_off : lts_off + 2 * FFT_SIZE], fs)
        cfo = combine_cfo(coarse, fine, fs)
        rx = apply_cfo(rx, -cfo, fs)

        estimates = [
            estimate_channel_lts(rx[lts_off + k * FFT_SIZE : lts_off + (k + 1) * FFT_SIZE])
            for k in range(2)
        ]
        channel = average_channel_estimates(estimates)

        data_start = sync_header_length()
        n_symbols = (packet.n_samples - data_start) // SYMBOL_LENGTH
        require(n_symbols >= 2, "packet too short for SIGNAL + data")
        symbols, pilot_snrs = [], []
        for m in range(n_symbols):
            s = data_start + m * SYMBOL_LENGTH
            eq = self._demodulator.demodulate_symbol(
                rx[s : s + SYMBOL_LENGTH], channel, symbol_index=m
            )
            symbols.append(eq.data)
            pilot_snrs.append(eq.pilot_snr)
        noise_var = float(np.mean(1.0 / np.maximum(pilot_snrs, 1e-6)))
        return self._decoder.decode(np.stack(symbols), noise_var=noise_var)

    def exchange(
        self, tx_node: str, rx_node: str, payload: bytes, start_time: float
    ) -> DecodedFrame:
        """Convenience: send then receive one packet."""
        packet = self.send(tx_node, payload, start_time)
        return self.receive(rx_node, packet)
