"""Packet detection and symbol timing recovery.

Detection uses the classic Schmidl-Cox style autocorrelation over the STS's
16-sample periodicity; fine timing uses cross-correlation against the known
LTS.  MegaMIMO slave APs run the same detector on the lead AP's sync header
to trigger their joint transmission (§10a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import CP_LENGTH, FFT_SIZE
from repro.phy.preamble import STS_PERIOD, long_training_sequence


@dataclass
class DetectionResult:
    """Where a packet was found in a sample stream.

    Attributes:
        sts_start: Sample index where the STS plateau begins.
        lts_start: Sample index of the first 64-sample LTS copy (after its
            guard interval).
        metric: Peak normalized autocorrelation metric (0..1).
    """

    sts_start: int
    lts_start: int
    metric: float


def sts_autocorrelation(samples: np.ndarray, window: int = 4 * STS_PERIOD) -> np.ndarray:
    """Normalized 16-sample-lag autocorrelation metric per sample offset."""
    samples = np.asarray(samples, dtype=complex).ravel()
    if samples.size < window + STS_PERIOD:
        return np.zeros(0)
    lagged = samples[STS_PERIOD:] * np.conj(samples[:-STS_PERIOD])
    power = np.abs(samples[:-STS_PERIOD]) ** 2
    kernel = np.ones(window)
    corr = np.convolve(lagged, kernel, mode="valid")
    energy = np.convolve(power, kernel, mode="valid")
    metric = np.abs(corr) / np.maximum(energy, 1e-12)
    return metric


def detect_packet(
    samples: np.ndarray,
    threshold: float = 0.8,
    search_start: int = 0,
) -> Optional[DetectionResult]:
    """Find the first packet preamble at or after ``search_start``.

    Returns None if no STS plateau above ``threshold`` is found or the LTS
    cross-correlation cannot confirm timing.
    """
    samples = np.asarray(samples, dtype=complex).ravel()
    metric = sts_autocorrelation(samples[search_start:])
    if metric.size == 0:
        return None
    above = np.nonzero(metric > threshold)[0]
    if above.size == 0:
        return None
    plateau_start = int(above[0]) + search_start

    # STS is 160 samples; search for the LTS in a window after the plateau.
    lts_ref = long_training_sequence(repeats=1, cp_length=0)  # one clean copy
    window_lo = plateau_start
    window_hi = min(plateau_start + 6 * FFT_SIZE, samples.size - FFT_SIZE)
    if window_hi <= window_lo:
        return None
    segment = samples[window_lo : window_hi + FFT_SIZE]
    corr = np.correlate(segment, lts_ref, mode="valid")
    energies = np.convolve(np.abs(segment) ** 2, np.ones(FFT_SIZE), mode="valid")
    n = min(corr.size, energies.size)
    norm = (
        np.abs(corr[:n])
        / np.sqrt(np.maximum(energies[:n], 1e-12))
        / np.linalg.norm(lts_ref)
    )
    peak_val = float(norm.max(initial=0.0))
    if peak_val < 0.5:
        return None
    # the two LTS copies correlate identically; lock onto the *earliest*
    # near-peak index so timing lands on the first copy, not the second
    candidates = np.nonzero(norm > 0.92 * peak_val)[0]
    best = int(candidates[0])
    best_val = float(norm[best])
    return DetectionResult(
        sts_start=plateau_start, lts_start=window_lo + best, metric=best_val
    )


def first_lts_offset(detection: DetectionResult) -> int:
    """Sample index of the first LTS copy from a detection result."""
    return detection.lts_start


def ideal_lts_offset(packet_start: int) -> int:
    """Where the first LTS copy sits for a packet starting at ``packet_start``.

    Layout: 10 STS repetitions (160 samples) + 32-sample LTS guard.
    """
    return packet_start + 10 * STS_PERIOD + 2 * CP_LENGTH
