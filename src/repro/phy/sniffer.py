"""Monitor-mode packet sniffer: find and decode every packet in a capture.

Scans a long sample stream for STS preambles, decodes each detected frame
(preamble-based CFO lock + channel estimate, then the PLCP chain), and
moves on — the software equivalent of a Wi-Fi card in monitor mode.  Used
by tests and by anyone inspecting what a simulated node actually hears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.constants import FFT_SIZE, SYMBOL_LENGTH
from repro.phy.cfo import apply_cfo, combine_cfo, estimate_cfo_coarse, estimate_cfo_fine
from repro.phy.channel_est import average_channel_estimates, estimate_channel_lts
from repro.phy.detection import detect_packet, ideal_lts_offset
from repro.phy.frame import DecodedFrame, FrameConfig, PhyFrameDecoder
from repro.phy.ofdm import OfdmDemodulator
from repro.phy.preamble import lts_symbol_offsets, sync_header_length


@dataclass
class SniffedPacket:
    """One packet pulled out of a capture.

    Attributes:
        sample_offset: Where its preamble starts in the capture.
        cfo_hz: The CFO the sniffer corrected.
        decoded: The PLCP decode result (``mcs is None`` if the SIGNAL
            field did not parse).
    """

    sample_offset: int
    cfo_hz: float
    decoded: DecodedFrame


class PacketSniffer:
    """Scan a capture and decode every detectable frame."""

    def __init__(self, sample_rate: float, threshold: float = 0.7):
        self.sample_rate = float(sample_rate)
        self.threshold = float(threshold)
        self._decoder = PhyFrameDecoder(FrameConfig(sample_rate=sample_rate))
        self._demodulator = OfdmDemodulator()

    def _decode_at(self, capture: np.ndarray, header_start: int) -> Optional[SniffedPacket]:
        fs = self.sample_rate
        rx = capture[header_start:]
        if rx.size < sync_header_length() + 2 * SYMBOL_LENGTH:
            return None
        coarse = estimate_cfo_coarse(rx[:160], fs)
        lts_off = int(lts_symbol_offsets()[0])
        fine = estimate_cfo_fine(rx[lts_off : lts_off + 2 * FFT_SIZE], fs)
        cfo = combine_cfo(coarse, fine, fs)
        rx = apply_cfo(rx, -cfo, fs)

        channel = average_channel_estimates(
            [
                estimate_channel_lts(
                    rx[lts_off + k * FFT_SIZE : lts_off + (k + 1) * FFT_SIZE]
                )
                for k in range(2)
            ]
        )

        data_start = sync_header_length()
        # parse the SIGNAL symbol first to learn the frame length
        eq = self._demodulator.demodulate_symbol(
            rx[data_start : data_start + SYMBOL_LENGTH], channel, symbol_index=0
        )
        parsed = self._decoder.decode_signal_field(eq.data)
        if parsed is None:
            return SniffedPacket(
                sample_offset=header_start,
                cfo_hz=cfo,
                decoded=DecodedFrame(payload=None, crc_ok=False, mcs=None),
            )
        mcs, length = parsed
        from repro.phy.frame import PhyFrameEncoder

        n_data = PhyFrameEncoder(
            FrameConfig(sample_rate=fs)
        ).n_payload_symbols(length, mcs)
        needed = data_start + (1 + n_data) * SYMBOL_LENGTH
        if rx.size < needed:
            return SniffedPacket(
                sample_offset=header_start,
                cfo_hz=cfo,
                decoded=DecodedFrame(payload=None, crc_ok=False, mcs=mcs, length=length),
            )
        symbols, pilot_snrs = [], []
        for m in range(1, 1 + n_data):
            s = data_start + m * SYMBOL_LENGTH
            eq = self._demodulator.demodulate_symbol(
                rx[s : s + SYMBOL_LENGTH], channel, symbol_index=m
            )
            symbols.append(eq.data)
            pilot_snrs.append(eq.pilot_snr)
        noise_var = float(np.mean(1.0 / np.maximum(pilot_snrs, 1e-6)))
        decoded = self._decoder.decode_payload(
            np.stack(symbols), mcs, length, noise_var=noise_var
        )
        return SniffedPacket(
            sample_offset=header_start, cfo_hz=cfo, decoded=decoded
        )

    def sniff(self, capture: np.ndarray, max_packets: int = 100) -> List[SniffedPacket]:
        """Find and decode up to ``max_packets`` frames in the capture."""
        capture = np.asarray(capture, dtype=complex).ravel()
        packets: List[SniffedPacket] = []
        cursor = 0
        while len(packets) < max_packets:
            detection = detect_packet(
                capture, threshold=self.threshold, search_start=cursor
            )
            if detection is None:
                break
            header_start = detection.lts_start - ideal_lts_offset(0)
            if header_start < cursor:
                cursor = detection.lts_start + FFT_SIZE
                continue
            packet = self._decode_at(capture, header_start)
            if packet is None:
                break
            packets.append(packet)
            if packet.decoded.mcs is not None:
                from repro.phy.frame import PhyFrameEncoder

                n_data = PhyFrameEncoder(
                    FrameConfig(sample_rate=self.sample_rate)
                ).n_payload_symbols(packet.decoded.length, packet.decoded.mcs)
                cursor = header_start + sync_header_length() + (1 + n_data) * SYMBOL_LENGTH
            else:
                cursor = header_start + sync_header_length()
        return packets
