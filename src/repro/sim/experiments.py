"""One experiment runner per figure of the paper's evaluation (§11).

Each ``run_figN`` function reproduces the corresponding figure's methodology
and returns a small result object with the figure's series plus a
``format_table()`` that prints the same rows/curves the paper plots.  The
benchmark suite calls these runners; ``EXPERIMENTS.md`` records their output
against the paper's numbers.

The Monte Carlo figures (6, 8, 9/10, 11) are structured as pure
``kernel(params, seed) -> result`` functions dispatched through the
deterministic sweep engine (:mod:`repro.runtime`): each trial draws from
its own seed stream derived from ``(seed, figure, cell, trial)``, so the
aggregated results are bit-identical for any ``workers`` count and across
checkpoint/resume (see ``docs/parallelism.md``).  The sample-level
protocol figures (7, 12, 13) remain serial: they run a handful of
stateful full-waveform systems, not wide trial grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.models import RicianChannel, random_channel_matrix
from repro.constants import (
    CP_LENGTH,
    FFT_SIZE,
    MAC_EFFICIENCY,
    SAMPLE_RATE_80211,
    SAMPLE_RATE_USRP,
    SNR_BANDS_DB,
    SYMBOL_LENGTH,
)
from repro.core.beamforming import (
    snr_reduction_from_misalignment,
    snr_reduction_grid,
    zero_forcing_precoder_wideband,
)
from repro.core.sounding import REFERENCE_OFFSET
from repro.core.system import MegaMimoSystem, SystemConfig
from repro.mac.rate import EffectiveSnrRateSelector
from repro.obs import trace
from repro.phy.channel_est import estimate_channel_lts
from repro.phy.preamble import long_training_sequence, sync_header, sync_header_length
from repro.runtime import CellSpec, register_batched_kernel, run_sweep
from repro.sim.fastsim import (
    SyncErrorModel,
    build_channel_tensor,
    diversity_snr_db,
    draw_band_snrs,
    joint_zf_sinr_db,
    mmse_stream_sinr_db,
    nulling_inr_db,
    unicast_snr_db,
)
from repro.sim.metrics import cdf_points, median_gain, percentile
from repro.utils.rng import ensure_rng
from repro.utils.units import db_to_linear, linear_to_db, wrap_phase

BAND_ORDER = ("high", "medium", "low")


def _master_seed(seed) -> int:
    """Root integer seed of a sweep; generators are collapsed to one draw."""
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    return int(ensure_rng(seed).integers(1 << 63))


# ---------------------------------------------------------------------------
# Figure 6 — SNR reduction vs. phase misalignment
# ---------------------------------------------------------------------------


@dataclass
class Fig6Result:
    """SNR loss vs. misalignment for a 2x2 distributed MIMO system.

    Attributes:
        misalignments_rad: The swept misalignment values.
        reduction_db: {snr_db: mean SNR reduction per misalignment}.
    """

    misalignments_rad: np.ndarray
    reduction_db: Dict[float, np.ndarray]

    def reduction_at(self, snr_db: float, misalignment_rad: float) -> float:
        idx = int(np.argmin(np.abs(self.misalignments_rad - misalignment_rad)))
        return float(self.reduction_db[snr_db][idx])

    def headline(self) -> Dict[str, float]:
        """Ledger/regression headline: SNR loss at the 0.1 rad operating point."""
        return {
            f"fig6.loss_0p10rad_{int(round(s))}db": self.reduction_at(s, 0.10)
            for s in self.reduction_db
        }

    def format_table(self) -> str:
        lines = ["misalignment(rad)  " + "  ".join(f"loss@{s:g}dB" for s in self.reduction_db)]
        for i, m in enumerate(self.misalignments_rad):
            cells = "  ".join(f"{self.reduction_db[s][i]:9.2f}" for s in self.reduction_db)
            lines.append(f"{m:17.3f}  {cells}")
        return "\n".join(lines)


def fig6_kernel(params, seed):
    """One Fig. 6 trial: a random 2x2 channel's loss over the (SNR,
    misalignment) grid.  Returns ``[[loss per misalignment] per SNR]``."""
    rng = ensure_rng(seed)
    h = random_channel_matrix(params["n_rx"], params["n_tx"], rng=rng)
    return [
        [float(np.mean(snr_reduction_from_misalignment(h, m, snr)))
         for m in params["misalignments"]]
        for snr in params["snrs_db"]
    ]


def fig6_kernel_batch(params, seeds):
    """Batched :func:`fig6_kernel`: every trial's grid in one stacked pass.

    Channel draws stay per-seed (each generator consumes exactly the scalar
    kernel's draws); the ZF precoders and the (SNR, misalignment) grid are
    then evaluated once over the stacked channel axis via
    :func:`snr_reduction_grid`, bit-identically to the scalar nest.
    """
    channels = np.stack(
        [
            random_channel_matrix(params["n_rx"], params["n_tx"], rng=ensure_rng(seed))
            for seed in seeds
        ]
    )
    grid = snr_reduction_grid(
        channels,
        np.asarray(params["misalignments"], dtype=float),
        np.asarray(params["snrs_db"], dtype=float),
    )  # (n_trials, n_snrs, n_mis, n_clients)
    losses = np.mean(np.ascontiguousarray(grid), axis=-1)
    return [
        [[float(v) for v in row] for row in losses[t]] for t in range(len(seeds))
    ]


register_batched_kernel(fig6_kernel, fig6_kernel_batch)


def run_fig6(
    seed: int = 1,
    n_channels: int = 100,
    misalignments: Optional[Sequence[float]] = None,
    snrs_db: Sequence[float] = (10.0, 20.0),
    workers: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    backend: Optional[str] = None,
) -> Fig6Result:
    """Fig. 6 methodology: 2 TX, 2 RX, 100 random channel matrices,
    misalignments 0..0.5 rad, average SNR 10 and 20 dB."""
    if misalignments is None:
        misalignments = np.linspace(0.0, 0.5, 11)
    misalignments = np.asarray(misalignments, dtype=float)
    params = {
        "n_rx": 2,
        "n_tx": 2,
        "misalignments": [float(m) for m in misalignments],
        "snrs_db": [float(s) for s in snrs_db],
    }
    sweep = run_sweep(
        "fig6",
        fig6_kernel,
        [CellSpec(key="channels", params=params, n_trials=n_channels)],
        master_seed=_master_seed(seed),
        workers=workers,
        checkpoint=checkpoint,
        resume=resume,
        backend=backend,
    )
    per_channel = np.asarray(sweep.results[0])  # (n_channels, n_snrs, n_mis)
    reduction: Dict[float, np.ndarray] = {
        float(s): per_channel[:, i, :].mean(axis=0) for i, s in enumerate(snrs_db)
    }
    return Fig6Result(misalignments_rad=misalignments, reduction_db=reduction)


# ---------------------------------------------------------------------------
# Figure 7 — CDF of observed phase misalignment (sample-level)
# ---------------------------------------------------------------------------


@dataclass
class Fig7Result:
    """Observed misalignment distribution from the sample-level protocol.

    Attributes:
        misalignments_rad: All |deviation| samples.
        median_rad / p95_rad: Summary statistics the paper quotes.
    """

    misalignments_rad: np.ndarray

    @property
    def median_rad(self) -> float:
        return float(np.median(self.misalignments_rad))

    @property
    def p95_rad(self) -> float:
        return percentile(self.misalignments_rad, 95)

    def cdf(self):
        return cdf_points(self.misalignments_rad)

    def headline(self) -> Dict[str, float]:
        """Ledger/regression headline: the paper's quoted sync statistics."""
        return {"fig7.median_rad": self.median_rad, "fig7.p95_rad": self.p95_rad}

    def format_table(self) -> str:
        xs, fs = self.cdf()
        picks = np.linspace(0, xs.size - 1, min(11, xs.size)).astype(int)
        lines = ["misalignment(rad)  CDF"]
        lines += [f"{xs[i]:17.4f}  {fs[i]:.3f}" for i in picks]
        lines.append(f"median = {self.median_rad:.4f} rad, p95 = {self.p95_rad:.4f} rad")
        return "\n".join(lines)


def run_fig7(
    seed: int = 2,
    n_systems: int = 8,
    n_rounds: int = 25,
    client_snr_db: float = 22.0,
    round_spacing_s: float = 2e-3,
    warmup_rounds: int = 4,
) -> Fig7Result:
    """Fig. 7 methodology, run on the sample-level protocol.

    Two APs (random lead/slave roles are symmetric here) and one receiver;
    the slave runs MegaMIMO's phase sync; lead and slave alternate LTS
    symbols; the receiver computes the relative phase between their channel
    estimates and its deviation from the first round.  ``warmup_rounds``
    headers run before the reference measurement so the slave's long-term
    CFO average has converged, as it would in a continuously-operating
    deployment (§5.2b).
    """
    rng = ensure_rng(seed)
    deviations: List[float] = []
    fs = SAMPLE_RATE_USRP
    lts = long_training_sequence(repeats=1, cp_length=CP_LENGTH)  # 80 samples

    for s in range(n_systems):
        with trace.span("experiment.cell", figure=7, system=s, n_rounds=n_rounds):
            cfg = SystemConfig(n_aps=2, n_clients=1, seed=int(rng.integers(1 << 31)))
            # conference-room links have a line-of-sight component; without it,
            # occasional deep Rayleigh fades at the receiver would dominate the
            # measurement with estimation noise unrelated to phase sync
            system = MegaMimoSystem.create(
                cfg, client_snr_db=client_snr_db,
                channel_model=RicianChannel(k_factor=7.0),
            )
            system.run_sounding(0.0)
            lead, slave = system.ap_ids
            client = system.client_ids[0]
            sync = system.synchronizers[slave]
            header_len = sync_header_length()
            reference_phase = None

            for r in range(warmup_rounds + n_rounds):
                t0 = 1e-3 + r * round_spacing_s
                t0 = round(t0 * fs) / fs
                system.medium.clear()
                # lead sync header
                system.medium.transmit(lead, sync_header(), t0)
                hdr_rx = system.medium.receive(slave, t0, header_len)
                obs = sync.observe_header(hdr_rx, t0 + REFERENCE_OFFSET / fs)
                if r < warmup_rounds:
                    continue
                # alternating symbols: lead then slave, one symbol apart
                t_lead = t0 + (header_len + 1500) / fs  # ~150 us turnaround
                t_slave = t_lead + SYMBOL_LENGTH / fs
                system.medium.transmit(lead, lts, t_lead)
                times = t_slave + np.arange(lts.size) / fs
                corrected = lts * sync.correction(times, obs)
                system.medium.transmit(slave, corrected, t_slave)
                rx = system.medium.receive(client, t_lead, 2 * SYMBOL_LENGTH)
                h_lead = estimate_channel_lts(rx[CP_LENGTH : CP_LENGTH + FFT_SIZE])
                h_slave = estimate_channel_lts(
                    rx[SYMBOL_LENGTH + CP_LENGTH : SYMBOL_LENGTH + CP_LENGTH + FFT_SIZE]
                )
                relative = float(np.angle(np.sum(h_slave * np.conj(h_lead))))
                if reference_phase is None:
                    reference_phase = relative
                else:
                    deviations.append(abs(wrap_phase(relative - reference_phase)))
            system.medium.clear()
    return Fig7Result(misalignments_rad=np.asarray(deviations))


# ---------------------------------------------------------------------------
# Figure 8 — INR vs. number of receivers
# ---------------------------------------------------------------------------


@dataclass
class Fig8Result:
    """Average INR at nulled clients vs. system size and SNR band.

    Attributes:
        n_receivers: The swept system sizes.
        inr_db: {band: mean INR per size}.
    """

    n_receivers: np.ndarray
    inr_db: Dict[str, np.ndarray]

    def slope_db_per_pair(self, band: str) -> float:
        """Least-squares INR growth per added AP-client pair."""
        y = self.inr_db[band]
        return float(np.polyfit(self.n_receivers, y, 1)[0])

    def headline(self) -> Dict[str, float]:
        """Ledger/regression headline: per-band INR slope + largest-N INR."""
        out: Dict[str, float] = {}
        for band in self.inr_db:
            out[f"fig8.inr_slope_{band}"] = self.slope_db_per_pair(band)
            out[f"fig8.inr_db_{band}_n{int(self.n_receivers[-1])}"] = float(
                self.inr_db[band][-1]
            )
        return out

    def format_table(self) -> str:
        header = "n_receivers  " + "  ".join(f"{b:>8}" for b in self.inr_db)
        lines = [header]
        for i, n in enumerate(self.n_receivers):
            cells = "  ".join(f"{self.inr_db[b][i]:8.3f}" for b in self.inr_db)
            lines.append(f"{n:11d}  {cells}")
        return "\n".join(lines)


def fig8_kernel(params, seed):
    """One Fig. 8 trial: a topology's per-packet nulling INR samples (dB)."""
    rng = ensure_rng(seed)
    n = params["n"]
    error_model = params["error_model"]
    snrs = draw_band_snrs(params["band"], n, n, rng)
    channels = build_channel_tensor(snrs, rng)
    est = error_model.corrupt_estimate(channels, snrs, rng)
    samples = []
    for _ in range(params["n_packets"]):
        errors = error_model.phase_errors(n, rng)
        nulled = int(rng.integers(0, n))
        samples.append(
            float(nulling_inr_db(channels, nulled, phase_errors=errors, est_channels=est))
        )
    return samples


def run_fig8(
    seed: int = 3,
    n_receivers: Sequence[int] = tuple(range(2, 11)),
    n_topologies: int = 10,
    n_packets: int = 5,
    error_model: Optional[SyncErrorModel] = None,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    backend: Optional[str] = None,
) -> Fig8Result:
    """Fig. 8 methodology: equal AP/client counts per SNR band; null at each
    client in turn; average the (leak+noise)/noise ratio."""
    error_model = error_model or SyncErrorModel()
    n_receivers = np.asarray(list(n_receivers), dtype=int)
    cells = [
        CellSpec(
            key=(band_name, int(n)),
            params={
                "band": SNR_BANDS_DB[band_name],
                "n": int(n),
                "n_packets": n_packets,
                "error_model": error_model,
            },
            n_trials=n_topologies,
        )
        for band_name in BAND_ORDER
        for n in n_receivers
    ]
    sweep = run_sweep(
        "fig8", fig8_kernel, cells, master_seed=_master_seed(seed),
        workers=workers, checkpoint=checkpoint, resume=resume, backend=backend,
    )
    result: Dict[str, np.ndarray] = {}
    for band_name in BAND_ORDER:
        curve = np.empty(n_receivers.size)
        for i, n in enumerate(n_receivers):
            with trace.span(
                "experiment.cell", figure=8, band=band_name, n=int(n)
            ) as cell:
                samples = [
                    s for trial in sweep.cell_results((band_name, int(n)))
                    for s in trial
                ]
                curve[i] = float(np.mean(samples))
                cell.record(n_samples=len(samples), mean_inr_db=curve[i])
        result[band_name] = curve
    return Fig8Result(n_receivers=n_receivers, inr_db=result)


# ---------------------------------------------------------------------------
# Figures 9 & 10 — throughput scaling and fairness
# ---------------------------------------------------------------------------


def zf_penalty_db(channels: np.ndarray) -> float:
    """The ZF power penalty of a channel shape: how far the per-stream
    effective SNR (k^2/N0) falls below the mean best-AP unicast SNR.

    Scale-invariant — scaling all links cancels out — so it is an intrinsic
    conditioning measure of the topology.
    """
    channels = np.asarray(channels, dtype=complex)
    _, k = zero_forcing_precoder_wideband(channels)
    link_gain = np.mean(np.abs(channels) ** 2, axis=0)  # (n_rx, n_tx)
    best = float(np.mean(np.max(link_gain, axis=1)))
    return float(linear_to_db(best) - linear_to_db(k**2))


def draw_screened_channels(
    n: int, rng, max_penalty_db: Optional[float], max_attempts: int = 100
) -> np.ndarray:
    """Draw an n x n channel shape, mirroring the paper's placement screen.

    The paper re-places clients until "all clients obtain an effective SNR
    in the desired range" (§11.2); topologies whose ZF conditioning penalty
    is too large cannot satisfy that and get re-placed.  (The paper's own
    gain model implies a screened penalty of K ~ 1.5-2 dB: from the 8.1x
    gain at 10 APs and low SNR, N(1 - log K / log SNR) gives K ~ 1.5.)

    Pass ``max_penalty_db=None`` to disable screening (ablation).
    """
    best_channels, best_penalty = None, np.inf
    for _ in range(max_attempts):
        shape_snrs = draw_band_snrs((19.0, 21.0), n, n, rng)
        channels = build_channel_tensor(shape_snrs, rng)
        if max_penalty_db is None:
            return channels
        penalty = zf_penalty_db(channels)
        if penalty <= max_penalty_db:
            return channels
        if penalty < best_penalty:
            best_channels, best_penalty = channels, penalty
    return best_channels


@dataclass
class ScalingCell:
    """Per-(band, N) results across topologies.

    Attributes:
        megamimo_bps: Total MegaMIMO throughput per topology.
        baseline_bps: Total 802.11 throughput per topology.
        per_client_gains: Flattened per-client gain samples (for Fig. 10).
    """

    megamimo_bps: np.ndarray
    baseline_bps: np.ndarray
    per_client_gains: np.ndarray


@dataclass
class Fig9Result:
    """Throughput scaling with AP count for each SNR band.

    Attributes:
        n_aps: Swept AP counts (receivers match).
        cells: {(band, n): ScalingCell}.
    """

    n_aps: np.ndarray
    cells: Dict[Tuple[str, int], ScalingCell]

    def mean_megamimo_mbps(self, band: str) -> np.ndarray:
        return np.array(
            [np.mean(self.cells[(band, n)].megamimo_bps) / 1e6 for n in self.n_aps]
        )

    def mean_baseline_mbps(self, band: str) -> np.ndarray:
        return np.array(
            [np.mean(self.cells[(band, n)].baseline_bps) / 1e6 for n in self.n_aps]
        )

    def median_gain(self, band: str, n: int) -> float:
        cell = self.cells[(band, n)]
        return median_gain(cell.megamimo_bps, cell.baseline_bps)

    def headline(self) -> Dict[str, float]:
        """Ledger/regression headline: per-band median gain at the largest N."""
        n_max = int(self.n_aps[-1])
        out: Dict[str, float] = {}
        for band in BAND_ORDER:
            if (band, n_max) in self.cells:
                out[f"fig9.median_gain_{band}_n{n_max}"] = self.median_gain(
                    band, n_max
                )
                out[f"fig9.megamimo_mbps_{band}_n{n_max}"] = float(
                    np.mean(self.cells[(band, n_max)].megamimo_bps) / 1e6
                )
        return out

    def format_table(self) -> str:
        lines = []
        for band in BAND_ORDER:
            lines.append(f"[{band} SNR]")
            lines.append("n_aps  802.11(Mbps)  MegaMIMO(Mbps)  median gain")
            mm = self.mean_megamimo_mbps(band)
            bl = self.mean_baseline_mbps(band)
            for i, n in enumerate(self.n_aps):
                g = self.median_gain(band, int(n))
                lines.append(f"{n:5d}  {bl[i]:12.2f}  {mm[i]:14.2f}  {g:11.2f}x")
        return "\n".join(lines)


def fig9_kernel(params, seed):
    """One Fig. 9 trial: a screened topology's MegaMIMO and 802.11 totals.

    Returns ``{"megamimo_bps", "baseline_bps", "gains"}`` for one topology
    draw; the runner aggregates trial lists into :class:`ScalingCell`s.
    """
    rng = ensure_rng(seed)
    n = params["n"]
    band = params["band"]
    error_model = params["error_model"]
    selector = EffectiveSnrRateSelector(
        params["sample_rate"], mac_efficiency=MAC_EFFICIENCY
    )
    channels = draw_screened_channels(n, rng, params["max_penalty_db"])
    # scale so the effective (post-ZF) SNR hits the band target
    _, k = zero_forcing_precoder_wideband(channels)
    target_db = float(rng.uniform(band[0], band[1]))
    scale = np.sqrt(db_to_linear(target_db) / k**2)
    channels = channels * scale
    link_snrs_db = linear_to_db(np.mean(np.abs(channels) ** 2, axis=0))
    est = error_model.corrupt_estimate(channels, link_snrs_db, rng)
    errors = error_model.phase_errors(n, rng)
    sinr_db = joint_zf_sinr_db(channels, phase_errors=errors, est_channels=est)
    stream_rates = np.array([selector.goodput(sinr_db[c]) for c in range(n)])
    best_ap = np.argmax(link_snrs_db, axis=1)
    unicast_rates = np.array(
        [
            selector.goodput(unicast_snr_db(channels, c, int(best_ap[c])))
            for c in range(n)
        ]
    )
    baseline_per_client = unicast_rates / n
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(
            baseline_per_client > 0,
            stream_rates / np.maximum(baseline_per_client, 1e-9),
            np.nan,
        )
    return {
        "megamimo_bps": float(np.sum(stream_rates)),
        "baseline_bps": float(np.mean(unicast_rates)),
        "gains": g[np.isfinite(g)].tolist(),
    }


def fig9_kernel_batch(params, seeds):
    """Batched :func:`fig9_kernel`: stacked screening, ZF and rate selection.

    Per-trial RNG streams are preserved exactly: the screening loop runs in
    rounds, each round drawing one candidate topology *per still-active
    trial* from that trial's own generator (matching the scalar kernel's
    early-stopping draw order), while the conditioning penalties of all
    candidates are scored in one stacked ZF pass.  The post-screening
    draws (band target, estimation noise, phase errors) also stay
    per-trial; the SINR evaluation and effective-SNR rate walk then run
    once over the trial axis (:meth:`EffectiveSnrRateSelector.goodput_batch`).
    Results are bit-identical to mapping :func:`fig9_kernel` over ``seeds``.
    """
    n = int(params["n"])
    band = params["band"]
    error_model = params["error_model"]
    max_penalty_db = params["max_penalty_db"]
    selector = EffectiveSnrRateSelector(
        params["sample_rate"], mac_efficiency=MAC_EFFICIENCY
    )
    rngs = [ensure_rng(seed) for seed in seeds]
    n_trials = len(rngs)

    # --- placement screening: draws per trial, penalties batched ----------
    chosen: List[Optional[np.ndarray]] = [None] * n_trials
    fallback: List[Optional[np.ndarray]] = [None] * n_trials
    fallback_penalty = np.full(n_trials, np.inf)
    active = list(range(n_trials))
    for _attempt in range(100):  # draw_screened_channels' max_attempts
        if not active:
            break
        cand = np.stack(
            [
                build_channel_tensor(
                    draw_band_snrs((19.0, 21.0), n, n, rngs[t]), rngs[t]
                )
                for t in active
            ]
        )  # (n_active, n_bins, n, n)
        if max_penalty_db is None:
            for i, t in enumerate(active):
                chosen[t] = cand[i]
            active = []
            break
        # zf_penalty_db, stacked over the active candidates
        _, k = zero_forcing_precoder_wideband(cand)
        link_gain = np.mean(np.abs(cand) ** 2, axis=-3)
        best_link = np.mean(np.max(link_gain, axis=-1), axis=-1)
        penalty = linear_to_db(best_link) - linear_to_db(k**2)
        still_active = []
        for i, t in enumerate(active):
            if penalty[i] <= max_penalty_db:
                chosen[t] = cand[i]
            else:
                if penalty[i] < fallback_penalty[t]:
                    fallback[t] = cand[i]
                    fallback_penalty[t] = penalty[i]
                still_active.append(t)
        active = still_active
    channels = np.stack(
        [chosen[t] if chosen[t] is not None else fallback[t] for t in range(n_trials)]
    )  # (n_trials, n_bins, n, n)

    # --- scale each trial so the effective SNR hits its band target -------
    _, k = zero_forcing_precoder_wideband(channels)
    targets = np.array([float(rng.uniform(band[0], band[1])) for rng in rngs])
    scale = np.sqrt(db_to_linear(targets) / k**2)
    channels = channels * scale[:, None, None, None]
    link_snrs_db = linear_to_db(np.mean(np.abs(channels) ** 2, axis=-3))

    est = np.stack(
        [
            error_model.corrupt_estimate(channels[t], link_snrs_db[t], rngs[t])
            for t in range(n_trials)
        ]
    )
    errors = np.stack([error_model.phase_errors(n, rngs[t]) for t in range(n_trials)])

    sinr_db = np.ascontiguousarray(
        joint_zf_sinr_db(channels, phase_errors=errors, est_channels=est)
    )  # (n_trials, n, n_bins)
    stream_rates = selector.goodput_batch(sinr_db)  # (n_trials, n)
    best_ap = np.argmax(link_snrs_db, axis=-1)  # (n_trials, n)
    uni = np.stack(
        [
            np.stack(
                [unicast_snr_db(channels[t], c, int(best_ap[t, c])) for c in range(n)]
            )
            for t in range(n_trials)
        ]
    )  # (n_trials, n, n_bins)
    unicast_rates = selector.goodput_batch(uni)

    out = []
    for t in range(n_trials):
        baseline_per_client = unicast_rates[t] / n
        with np.errstate(divide="ignore", invalid="ignore"):
            g = np.where(
                baseline_per_client > 0,
                stream_rates[t] / np.maximum(baseline_per_client, 1e-9),
                np.nan,
            )
        out.append(
            {
                "megamimo_bps": float(np.sum(stream_rates[t])),
                "baseline_bps": float(np.mean(unicast_rates[t])),
                "gains": g[np.isfinite(g)].tolist(),
            }
        )
    return out


register_batched_kernel(fig9_kernel, fig9_kernel_batch)


def run_fig9(
    seed: int = 4,
    n_aps: Sequence[int] = tuple(range(2, 11)),
    n_topologies: int = 20,
    error_model: Optional[SyncErrorModel] = None,
    sample_rate: float = SAMPLE_RATE_USRP,
    max_penalty_db: float = 2.0,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    backend: Optional[str] = None,
) -> Fig9Result:
    """Figs. 9/10 methodology: N APs and N clients placed per SNR band;
    measure total throughput with 802.11 (equal medium shares from the best
    AP) and MegaMIMO (all streams concurrent); 20 topologies per cell.

    Placement follows the paper: clients are placed "such that all clients
    obtain an *effective SNR* in the desired range" — the effective SNR of
    the joint transmission, k^2/N0 (which §9 shows is equal at every
    client).  We realize this by drawing a channel shape and scaling it so
    the post-beamforming gain k^2 hits a target inside the band; the 802.11
    baseline then sees the (higher) unicast link SNR that physically
    coexists with that placement — which is exactly why the paper's gains
    are slightly sub-N, and lower at low SNR (9.4x high vs. 8.1x low at 10
    APs): the ZF power penalty is hidden by MCS saturation at high SNR but
    not at low SNR.
    """
    error_model = error_model or SyncErrorModel()
    n_aps = np.asarray(list(n_aps), dtype=int)
    grid = [
        CellSpec(
            key=(band_name, int(n)),
            params={
                "band": SNR_BANDS_DB[band_name],
                "n": int(n),
                "error_model": error_model,
                "sample_rate": sample_rate,
                "max_penalty_db": max_penalty_db,
            },
            n_trials=n_topologies,
        )
        for band_name in BAND_ORDER
        for n in n_aps
    ]
    sweep = run_sweep(
        "fig9", fig9_kernel, grid, master_seed=_master_seed(seed),
        workers=workers, checkpoint=checkpoint, resume=resume, backend=backend,
    )
    cells: Dict[Tuple[str, int], ScalingCell] = {}
    for band_name in BAND_ORDER:
        for n in n_aps:
            with trace.span(
                "experiment.cell", figure=9, band=band_name, n=int(n),
                n_topologies=n_topologies,
            ):
                trials = sweep.cell_results((band_name, int(n)))
            cells[(band_name, int(n))] = ScalingCell(
                megamimo_bps=np.asarray([t["megamimo_bps"] for t in trials]),
                baseline_bps=np.asarray([t["baseline_bps"] for t in trials]),
                per_client_gains=np.asarray(
                    [g for t in trials for g in t["gains"]]
                ),
            )
    return Fig9Result(n_aps=n_aps, cells=cells)


@dataclass
class Fig10Result:
    """Per-client throughput-gain CDFs (fairness)."""

    gains: Dict[Tuple[str, int], np.ndarray]

    def cdf(self, band: str, n: int):
        return cdf_points(self.gains[(band, n)])

    def headline(self) -> Dict[str, float]:
        """Ledger/regression headline: fairness floor at the largest grid."""
        if not self.gains:
            return {}
        band, n = max(self.gains, key=lambda key: key[1])
        g = self.gains[(band, n)]
        return {
            f"fig10.p10_gain_{band}_n{n}": percentile(g, 10),
            f"fig10.median_gain_{band}_n{n}": float(np.median(g)),
        }

    def format_table(self) -> str:
        lines = []
        for (band, n), g in sorted(self.gains.items()):
            lines.append(
                f"[{band} SNR, {n} APs] per-client gain: "
                f"p10={percentile(g, 10):.2f}x median={np.median(g):.2f}x "
                f"p90={percentile(g, 90):.2f}x"
            )
        return "\n".join(lines)


def run_fig10(
    fig9: Optional[Fig9Result] = None,
    n_aps: Sequence[int] = (2, 6, 10),
    **fig9_kwargs,
) -> Fig10Result:
    """Fig. 10 reuses the Fig. 9 runs: CDFs of per-client gain."""
    if fig9 is None:
        fig9 = run_fig9(**fig9_kwargs)
    gains = {}
    for band in BAND_ORDER:
        for n in n_aps:
            if (band, int(n)) in fig9.cells:
                gains[(band, int(n))] = fig9.cells[(band, int(n))].per_client_gains
    return Fig10Result(gains=gains)


# ---------------------------------------------------------------------------
# Figure 11 — diversity throughput vs. SNR
# ---------------------------------------------------------------------------


@dataclass
class Fig11Result:
    """Diversity-mode throughput vs. single-link SNR for several AP counts.

    Attributes:
        snr_db: Swept single-AP link SNRs.
        throughput_mbps: {n_aps: mean throughput per SNR}; key 1 is the
            802.11 single-transmitter baseline.
    """

    snr_db: np.ndarray
    throughput_mbps: Dict[int, np.ndarray]

    def headline(self) -> Dict[str, float]:
        """Ledger/regression headline: top-SNR throughput, largest vs. baseline."""
        n_max = max(self.throughput_mbps)
        snr = int(round(float(self.snr_db[-1])))
        out = {
            f"fig11.mbps_n{n_max}_{snr}db": float(self.throughput_mbps[n_max][-1])
        }
        if 1 in self.throughput_mbps:
            out[f"fig11.mbps_n1_{snr}db"] = float(self.throughput_mbps[1][-1])
        return out

    def format_table(self) -> str:
        keys = sorted(self.throughput_mbps)
        lines = ["SNR(dB)  " + "  ".join(f"{k:>2}AP(Mbps)" for k in keys)]
        for i, s in enumerate(self.snr_db):
            cells = "  ".join(f"{self.throughput_mbps[k][i]:9.2f}" for k in keys)
            lines.append(f"{s:7.1f}  {cells}")
        return "\n".join(lines)


def fig11_kernel(params, seed):
    """One Fig. 11 trial: per-SNR throughput of one fading draw (bps).

    ``n_aps == 1`` is the 802.11 single-transmitter baseline; otherwise all
    APs beamform the same stream coherently (§8).
    """
    rng = ensure_rng(seed)
    n = params["n_aps"]
    error_model = params["error_model"]
    selector = EffectiveSnrRateSelector(
        params["sample_rate"], mac_efficiency=MAC_EFFICIENCY
    )
    rates = []
    for s in params["snr_db"]:
        if n == 1:
            snrs = np.full((1, 1), s)
            channels = build_channel_tensor(snrs, rng)
            rates.append(float(selector.goodput(unicast_snr_db(channels, 0, 0))))
        else:
            snrs = np.full((1, n), s) + rng.normal(0, 1.0, (1, n))
            channels = build_channel_tensor(snrs, rng)  # (bins, 1, n)
            errors = error_model.phase_errors(n, rng)
            div = diversity_snr_db(channels[:, 0, :], phase_errors=errors)
            rates.append(float(selector.goodput(div)))
    return rates


def run_fig11(
    seed: int = 5,
    n_aps_list: Sequence[int] = (2, 4, 6, 8, 10),
    snr_db: Optional[Sequence[float]] = None,
    n_draws: int = 30,
    error_model: Optional[SyncErrorModel] = None,
    sample_rate: float = SAMPLE_RATE_USRP,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    backend: Optional[str] = None,
) -> Fig11Result:
    """Fig. 11 methodology: one client with roughly equal SNR to all APs;
    all APs beamform the same stream coherently (§8)."""
    error_model = error_model or SyncErrorModel()
    if snr_db is None:
        snr_db = np.arange(-5.0, 26.0, 2.5)
    snr_db = np.asarray(snr_db, dtype=float)

    # cell key 1 is the 802.11 single-transmitter baseline
    sizes = [1] + [int(n) for n in n_aps_list if int(n) != 1]
    cells = [
        CellSpec(
            key=n,
            params={
                "n_aps": n,
                "snr_db": [float(s) for s in snr_db],
                "error_model": error_model,
                "sample_rate": sample_rate,
            },
            n_trials=n_draws,
        )
        for n in sizes
    ]
    sweep = run_sweep(
        "fig11", fig11_kernel, cells, master_seed=_master_seed(seed),
        workers=workers, checkpoint=checkpoint, resume=resume, backend=backend,
    )
    result: Dict[int, np.ndarray] = {}
    for n in sizes:
        trials = np.asarray(sweep.cell_results(n))  # (n_draws, n_snrs)
        result[n] = trials.mean(axis=0) / 1e6
    return Fig11Result(snr_db=snr_db, throughput_mbps=result)


# ---------------------------------------------------------------------------
# Figures 12 & 13 — 802.11n compatibility testbed
# ---------------------------------------------------------------------------


@dataclass
class Fig12Result:
    """2x(2-antenna AP) -> 2x(2-antenna 802.11n client) throughput.

    Attributes:
        bands: Band order.
        baseline_mbps / megamimo_mbps: Mean totals per band.
        per_client_gains: {band: flattened gain samples} (for Fig. 13).
    """

    bands: Tuple[str, ...]
    baseline_mbps: Dict[str, float]
    megamimo_mbps: Dict[str, float]
    per_client_gains: Dict[str, np.ndarray]

    def mean_gain(self, band: str) -> float:
        return float(self.megamimo_mbps[band] / self.baseline_mbps[band])

    def headline(self) -> Dict[str, float]:
        """Ledger/regression headline: per-band 802.11n-compat mean gain."""
        return {f"fig12.mean_gain_{band}": self.mean_gain(band) for band in self.bands}

    def format_table(self) -> str:
        lines = ["band    802.11n(Mbps)  MegaMIMO(Mbps)  gain"]
        for band in self.bands:
            lines.append(
                f"{band:6}  {self.baseline_mbps[band]:13.1f}  "
                f"{self.megamimo_mbps[band]:14.1f}  {self.mean_gain(band):.2f}x"
            )
        return "\n".join(lines)


def draw_screened_80211n_channels(
    rng,
    device_of: np.ndarray,
    client_of: np.ndarray,
    max_penalty_db: float,
    max_attempts: int = 200,
) -> np.ndarray:
    """Draw a 4x4 (2 AP x 2 client, 2 antennas each) channel shape where
    both systems operate in their normal regime.

    Mirrors the paper's placement: locations where either the joint 4x4
    beamforming or a client's own 2x2 802.11n link is badly conditioned
    would not produce an in-band effective SNR and get re-placed.  Requires
    the 4x4 ZF penalty and every client's best-AP 2x2 MMSE loss to be at
    most ``max_penalty_db``.
    """
    best, best_score = None, np.inf
    for _ in range(max_attempts):
        shape_snrs = draw_band_snrs((19.0, 21.0), 4, 4, rng)
        channels = build_channel_tensor(shape_snrs, rng)
        penalty = zf_penalty_db(channels)
        link_gain = np.mean(np.abs(channels) ** 2, axis=0)
        worst_mmse_loss = 0.0
        for c in range(2):
            rx_rows = np.nonzero(client_of == c)[0]
            losses = []
            for a in range(2):
                tx_cols = np.nonzero(device_of == a)[0]
                sub = channels[np.ix_(range(channels.shape[0]), rx_rows, tx_cols)]
                stream_sinr = mmse_stream_sinr_db(sub)
                link_db = linear_to_db(
                    np.mean(link_gain[np.ix_(rx_rows, tx_cols)])
                )
                losses.append(link_db - float(np.mean(stream_sinr)))
                worst_mmse_loss = max(worst_mmse_loss, min(losses))
        # the client's own 2x2 link must be clean (802.11n operates in its
        # normal regime: ~1 dB), while the joint 4x4 system tolerates a
        # slightly larger conditioning penalty — which is precisely why the
        # paper's measured gains are 1.67-1.83x instead of 2x
        score = max(penalty - (max_penalty_db + 1.0), worst_mmse_loss - 1.0)
        if score <= 0:
            return channels
        if score < best_score:
            best, best_score = channels, score
    return best


def run_fig12(
    seed: int = 6,
    n_topologies: int = 20,
    error_model: Optional[SyncErrorModel] = None,
    max_penalty_db: float = 2.0,
) -> Fig12Result:
    """Figs. 12/13 methodology: two 2-antenna APs jointly beamform 4 streams
    to two 2-antenna 802.11n clients on a 20 MHz channel; the baseline gives
    each client 2-stream service from its best AP with equal airtime.

    As in Fig. 9, placement targets the *effective* SNR of the joint
    transmission, and the 802.11n baseline operates on the physically
    coexisting (higher) unicast links — which is why the measured gains are
    1.67-1.83x rather than the full theoretical 2x.
    """
    rng = ensure_rng(seed)
    error_model = error_model or SyncErrorModel()
    selector = EffectiveSnrRateSelector(SAMPLE_RATE_80211, mac_efficiency=MAC_EFFICIENCY)
    device_of = np.array([0, 0, 1, 1])  # tx antennas -> AP device
    client_of = np.array([0, 0, 1, 1])  # rx antennas -> client

    baseline_mbps: Dict[str, float] = {}
    megamimo_mbps: Dict[str, float] = {}
    gains: Dict[str, np.ndarray] = {}
    for band_name in BAND_ORDER:
        band = SNR_BANDS_DB[band_name]
        mm_totals, bl_totals, gain_samples = [], [], []
        for _ in range(n_topologies):
            channels = draw_screened_80211n_channels(
                rng, device_of, client_of, max_penalty_db
            )
            _, k = zero_forcing_precoder_wideband(channels)
            target_db = float(rng.uniform(band[0], band[1]))
            channels = channels * np.sqrt(db_to_linear(target_db) / k**2)
            link_snrs_db = linear_to_db(np.mean(np.abs(channels) ** 2, axis=0))

            est = error_model.corrupt_estimate(channels, link_snrs_db, rng)
            errors = error_model.phase_errors(4, rng, device_of=device_of)
            sinr_db = joint_zf_sinr_db(channels, phase_errors=errors, est_channels=est)
            stream_rates = np.array([selector.goodput(sinr_db[a]) for a in range(4)])
            mm_client = np.array(
                [stream_rates[client_of == c].sum() for c in range(2)]
            )

            # baseline: best AP per client, 2x2 SU-MIMO (ZF), half airtime
            bl_client = np.empty(2)
            for c in range(2):
                rx_rows = np.nonzero(client_of == c)[0]
                ap_mean = [
                    np.mean(link_snrs_db[np.ix_(rx_rows, np.nonzero(device_of == a)[0])])
                    for a in range(2)
                ]
                best_ap = int(np.argmax(ap_mean))
                tx_cols = np.nonzero(device_of == best_ap)[0]
                sub = channels[np.ix_(range(channels.shape[0]), rx_rows, tx_cols)]
                # off-the-shelf 802.11n: direct-mapped streams with an MMSE
                # receiver, and rate adaptation falls back to single-stream
                # (2-antenna MRC) when the 2x2 channel is ill-conditioned
                sub_sinr = mmse_stream_sinr_db(sub)
                two_stream = sum(
                    selector.goodput(sub_sinr[i]) for i in range(len(tx_cols))
                )
                one_stream = max(
                    selector.goodput(
                        linear_to_db(np.sum(np.abs(sub[:, :, j]) ** 2, axis=1))
                    )
                    for j in range(len(tx_cols))
                )
                bl_client[c] = max(two_stream, one_stream) / 2.0
            mm_totals.append(mm_client.sum())
            bl_totals.append(bl_client.sum())
            valid = bl_client > 0
            gain_samples.extend((mm_client[valid] / bl_client[valid]).tolist())
        baseline_mbps[band_name] = float(np.mean(bl_totals)) / 1e6
        megamimo_mbps[band_name] = float(np.mean(mm_totals)) / 1e6
        gains[band_name] = np.asarray(gain_samples)
    return Fig12Result(
        bands=BAND_ORDER,
        baseline_mbps=baseline_mbps,
        megamimo_mbps=megamimo_mbps,
        per_client_gains=gains,
    )


@dataclass
class Fig13Result:
    """CDF of per-client 802.11n-compat throughput gains across all runs."""

    gains: np.ndarray

    @property
    def median(self) -> float:
        return float(np.median(self.gains))

    def headline(self) -> Dict[str, float]:
        """Ledger/regression headline: the Fig. 13 median per-node gain."""
        return {"fig13.median_gain": self.median}

    def cdf(self):
        return cdf_points(self.gains)

    def format_table(self) -> str:
        return (
            f"per-node gain: p5={percentile(self.gains, 5):.2f}x "
            f"median={self.median:.2f}x p95={percentile(self.gains, 95):.2f}x"
        )


def run_fig13(fig12: Optional[Fig12Result] = None, **fig12_kwargs) -> Fig13Result:
    """Fig. 13 reuses the Fig. 12 runs: gain CDF across all nodes/SNRs."""
    if fig12 is None:
        fig12 = run_fig12(**fig12_kwargs)
    all_gains = np.concatenate([fig12.per_client_gains[b] for b in fig12.bands])
    return Fig13Result(gains=all_gains)


# ---------------------------------------------------------------------------
# Figure 12, sample level — full-waveform verification of the §6 pipeline
# ---------------------------------------------------------------------------


@dataclass
class Fig12SampleLevelResult:
    """Measured (not modelled) 802.11n-compat gains from real waveforms.

    Attributes:
        gains: Per-topology MegaMIMO/baseline throughput ratios.
        megamimo_bps / baseline_bps: Per-topology absolute numbers.
    """

    gains: np.ndarray
    megamimo_bps: np.ndarray
    baseline_bps: np.ndarray

    @property
    def mean_gain(self) -> float:
        return float(np.mean(self.gains))

    def format_table(self) -> str:
        lines = ["topology  802.11n(Mbps)  MegaMIMO(Mbps)   gain"]
        for i, (g, m, b) in enumerate(
            zip(self.gains, self.megamimo_bps, self.baseline_bps)
        ):
            lines.append(f"{i:8d}  {b / 1e6:13.1f}  {m / 1e6:14.1f}  {g:5.2f}x")
        lines.append(f"mean gain: {self.mean_gain:.2f}x (paper: 1.67-1.83x)")
        return "\n".join(lines)


def run_fig12_sample_level(
    seed: int = 15,
    n_topologies: int = 4,
    snr_db: float = 28.0,
    payload_bytes: int = 60,
    rate_backoff_db: float = 5.0,
) -> Fig12SampleLevelResult:
    """Fig. 12 with real waveforms: §6 stitched sounding, 4-stream joint
    transmission, and a single-AP 2-stream baseline — every packet modulated,
    transmitted through the medium and decoded.

    Small-topology-count verification of the fast-path Fig. 12; absolute
    rates use each transmission's effective-SNR-selected MCS and count only
    CRC-verified deliveries.
    """
    from repro.channel.models import RicianChannel
    from repro.core.beamforming import zero_forcing_precoder_wideband
    from repro.core.compat_sampling import SampleLevelCompatSounder
    from repro.mac.rate import EffectiveSnrRateSelector
    from repro.phy.preamble import lts_grid

    rng = ensure_rng(seed)
    selector = EffectiveSnrRateSelector(SAMPLE_RATE_USRP, mac_efficiency=MAC_EFFICIENCY)
    occupied = None
    gains, mm_list, bl_list = [], [], []

    for topo in range(n_topologies):
        # placement screening, as in the fast-path Fig. 12 and the paper's
        # methodology: re-place until the joint effective SNR (k^2) lands in
        # the high band — ill-conditioned draws would never satisfy the
        # "effective SNR in the desired range" placement criterion
        system = None
        tensor = None
        for _attempt in range(12):
            config = SystemConfig(
                n_aps=2,
                n_clients=2,
                antennas_per_ap=2,
                antennas_per_client=2,
                seed=int(rng.integers(1 << 31)),
            )
            candidate = MegaMimoSystem.create(
                config, client_snr_db=snr_db,
                channel_model=RicianChannel(k_factor=10.0),
            )
            SampleLevelCompatSounder(candidate).measure(0.0)
            if occupied is None:
                occupied = np.nonzero(np.abs(lts_grid()) > 0)[0]
            cand_tensor = candidate._channel_tensor[occupied]
            _, k_cand = zero_forcing_precoder_wideband(cand_tensor)
            if float(linear_to_db(k_cand**2)) >= 19.0:
                system, tensor = candidate, cand_tensor
                break
        if system is None:
            continue

        # --- MegaMIMO: 4 streams at the effective-SNR-selected rate.
        # The stitched snapshot carries ~0.1 rad of per-entry phase error,
        # which floors the post-ZF SINR near 20 dB regardless of k^2 — the
        # backoff keeps the selected MCS below that self-interference floor.
        # Frequency-selective residual interference can still defeat the
        # scalar prediction on ill-conditioned draws, so like a real card
        # the transmitter steps the MCS down on a failed burst (§9 rate
        # adaptation + retransmission).
        from repro.phy.mcs import get_mcs as _get_mcs

        _, k = zero_forcing_precoder_wideband(tensor)
        decision = selector.select(
            min(float(linear_to_db(k**2)) - rate_backoff_db, 19.0)
        )
        if decision.mcs is None:
            continue
        payloads = [bytes([topo * 4 + i]) * payload_bytes for i in range(4)]
        mm_bps = 0.0
        t_mm = 10e-3
        mcs_index = decision.mcs.index
        while mcs_index >= 0:
            mcs = _get_mcs(mcs_index)
            report = system.joint_transmit(payloads, mcs, start_time=t_mm)
            delivered = sum(
                r.decoded.payload == p for r, p in zip(report.receptions, payloads)
            )
            if delivered >= 3 or mcs_index == 0:
                # all streams fly concurrently at the per-stream rate
                mm_bps = delivered * mcs.bitrate(SAMPLE_RATE_USRP) * MAC_EFFICIENCY
                break
            mcs_index -= 2
            t_mm += 4e-3

        # --- baseline: best AP serves each client alone, half airtime -----
        bl_client = []
        t = 14e-3
        for c in range(2):
            rows = [i for i, d in enumerate(system.client_antenna_device) if d == c]
            ap_scores = []
            for a in range(2):
                cols = [i for i, d in enumerate(system.antenna_device) if d == a]
                ap_scores.append(
                    float(np.mean(np.abs(tensor[np.ix_(range(52), rows, cols)]) ** 2))
                )
            best = int(np.argmax(ap_scores))
            cols = [i for i, d in enumerate(system.antenna_device) if d == best]
            sub = tensor[np.ix_(range(52), rows, cols)]
            _, k_sub = zero_forcing_precoder_wideband(sub)
            sub_decision = selector.select(
                min(float(linear_to_db(k_sub**2)) - rate_backoff_db, 19.0)
            )
            if sub_decision.mcs is None:
                bl_client.append(0.0)
                continue
            sub_payloads = [bytes([100 + c * 2 + i]) * payload_bytes for i in range(2)]
            rate = 0.0
            mcs_index = sub_decision.mcs.index
            while mcs_index >= 0:
                mcs = _get_mcs(mcs_index)
                sub_report = system.joint_transmit(
                    sub_payloads, mcs, start_time=t, streams=rows, antennas=cols,
                )
                t += 4e-3
                ok = sum(
                    r.decoded.payload == p
                    for r, p in zip(sub_report.receptions, sub_payloads)
                )
                if ok == 2 or mcs_index == 0:
                    rate = ok * mcs.bitrate(SAMPLE_RATE_USRP) * MAC_EFFICIENCY / 2.0
                    break
                mcs_index -= 2
            bl_client.append(rate)
        # each client's burst occupies half the airtime; the network total
        # is the sum of the per-client (already halved) throughputs
        bl_bps = float(np.sum(bl_client))

        if bl_bps > 0:
            gains.append(mm_bps / bl_bps)
            mm_list.append(mm_bps)
            bl_list.append(bl_bps)

    return Fig12SampleLevelResult(
        gains=np.asarray(gains),
        megamimo_bps=np.asarray(mm_list),
        baseline_bps=np.asarray(bl_list),
    )
