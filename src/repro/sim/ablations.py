"""Ablation experiments for the design choices DESIGN.md calls out.

Each runner isolates one mechanism of the paper's design:

* **Sync strategy** (§5.2b, §5.3): direct per-packet phase measurement
  (MegaMIMO) vs. one-shot CFO extrapolation (the strawman) vs. no
  correction vs. a genie oracle — as a function of the time elapsed since
  sounding.
* **In-packet tracking** (§5.3 principle 1): with and without the averaged
  CFO ramp through the packet, as a function of packet duration.
* **Sounding layout** (§5.1a): interleaved vs. block-sequential channel
  measurement symbols.
* **CFO averaging** (§5.2b): EWMA coefficient of the long-term offset
  estimate vs. steady-state misalignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.channel.models import RicianChannel
from repro.constants import CP_LENGTH, FFT_SIZE, SAMPLE_RATE_USRP
from repro.core.sounding import (
    REFERENCE_OFFSET,
    SoundingPlan,
    estimate_at_client,
    interleaved_sounding_frame,
)
from repro.core.system import MegaMimoSystem, SystemConfig
from repro.phy.preamble import lts_grid, sync_header, sync_header_length
from repro.runtime import CellSpec, run_sweep
from repro.utils.rng import ensure_rng
from repro.utils.units import wrap_phase


# ---------------------------------------------------------------------------
# Sync-strategy ablation
# ---------------------------------------------------------------------------


@dataclass
class SyncAblationResult:
    """Mean slave misalignment per (strategy, elapsed time since sounding).

    Attributes:
        delays_s: Elapsed times probed.
        misalignment_rad: {strategy: mean |misalignment| per delay}.
    """

    delays_s: np.ndarray
    misalignment_rad: Dict[str, np.ndarray]

    def format_table(self) -> str:
        names = list(self.misalignment_rad)
        lines = ["elapsed(ms)  " + "  ".join(f"{n:>22}" for n in names)]
        for i, d in enumerate(self.delays_s):
            cells = "  ".join(
                f"{self.misalignment_rad[n][i]:22.4f}" for n in names
            )
            lines.append(f"{d * 1e3:11.1f}  {cells}")
        return "\n".join(lines)


def sync_ablation_kernel(params, seed):
    """One sync-ablation trial: every strategy run on *one* shared system.

    The strategies are paired — the same system seed (channels,
    oscillators, placement) underlies each of them — so the comparison
    isolates the synchronization strategy, exactly as the original serial
    loop reused one seed list across strategies.  Returns
    ``{strategy: [|misalignment| per delay]}``.
    """
    rng = ensure_rng(seed)
    system_seed = int(rng.integers(1 << 31))
    delays_s = params["delays_s"]
    out = {}
    for strategy in params["strategies"]:
        config = SystemConfig(
            n_aps=2, n_clients=2, seed=system_seed, sync_strategy=strategy
        )
        system = MegaMimoSystem.create(
            config,
            client_snr_db=25.0,
            channel_model=RicianChannel(k_factor=8.0),
        )
        system.run_sounding(0.0)
        curve = []
        for delay in delays_s:
            report = system.joint_transmit(
                [b"A" * 16, b"B" * 16],
                __mcs0(),
                start_time=float(delay),
            )
            if strategy == "none":
                # genie misalignment of the uncorrected slave
                lead = system.medium.oscillator(system.lead_id)
                slave = system.medium.oscillator(system.ap_ids[1])
                tref = system.reference_time
                t = report.joint_start_time
                err = (
                    lead.phase_at([t])[0]
                    - slave.phase_at([t])[0]
                    - lead.phase_at([tref])[0]
                    + slave.phase_at([tref])[0]
                )
                curve.append(abs(wrap_phase(err)))
            else:
                curve.append(float(np.mean(list(report.misalignment_rad.values()))))
        out[strategy] = curve
    return out


def run_sync_strategy_ablation(
    seed: int = 7,
    strategies: Sequence[str] = ("megamimo", "naive", "none"),
    delays_s: Sequence[float] = (2e-3, 10e-3, 50e-3, 150e-3),
    n_systems: int = 4,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    backend: Optional[str] = None,
) -> SyncAblationResult:
    """Measure genie slave misalignment for each strategy and elapsed time.

    MegaMIMO's per-packet direct measurement keeps misalignment flat in
    elapsed time; the naive extrapolation grows linearly until it wraps;
    no correction drifts immediately.
    """
    delays_s = np.asarray(list(delays_s), dtype=float)
    sweep = run_sweep(
        "ablation.sync",
        sync_ablation_kernel,
        [
            CellSpec(
                key="systems",
                params={
                    "strategies": tuple(strategies),
                    "delays_s": [float(d) for d in delays_s],
                },
                n_trials=n_systems,
            )
        ],
        master_seed=seed,
        workers=workers,
        checkpoint=checkpoint,
        resume=resume,
        backend=backend,
    )
    trials = sweep.results[0]
    result: Dict[str, np.ndarray] = {
        strategy: np.mean([t[strategy] for t in trials], axis=0)
        for strategy in strategies
    }
    return SyncAblationResult(delays_s=delays_s, misalignment_rad=result)


def __mcs0():
    from repro.phy.mcs import get_mcs

    return get_mcs(0)


# ---------------------------------------------------------------------------
# In-packet tracking ablation
# ---------------------------------------------------------------------------


@dataclass
class TrackingAblationResult:
    """End-of-packet misalignment with and without the in-packet CFO ramp.

    Attributes:
        packet_durations_s: Probed packet lengths.
        with_tracking / without_tracking: Mean |phase error| at packet end.
    """

    packet_durations_s: np.ndarray
    with_tracking: np.ndarray
    without_tracking: np.ndarray

    def format_table(self) -> str:
        lines = ["packet(us)  tracked(rad)  untracked(rad)"]
        for i, d in enumerate(self.packet_durations_s):
            lines.append(
                f"{d * 1e6:10.0f}  {self.with_tracking[i]:12.4f}  "
                f"{self.without_tracking[i]:14.4f}"
            )
        return "\n".join(lines)


def run_tracking_ablation(
    seed: int = 8,
    packet_durations_s: Sequence[float] = (100e-6, 400e-6, 1e-3, 2e-3),
    n_systems: int = 5,
    n_warmup: int = 4,
) -> TrackingAblationResult:
    """§5.3 principle 1: within a packet, the averaged CFO estimate is good
    enough to track phase; without it, error grows with packet duration.

    Measured directly on the synchronizer: after warm-up headers, compare
    the correction phasor at the *end* of a hypothetical packet against the
    genie rotation.
    """
    rng = ensure_rng(seed)
    packet_durations_s = np.asarray(list(packet_durations_s), dtype=float)
    tracked = np.zeros(packet_durations_s.size)
    untracked = np.zeros(packet_durations_s.size)
    fs = SAMPLE_RATE_USRP
    header_len = sync_header_length()

    for _ in range(n_systems):
        config = SystemConfig(n_aps=2, n_clients=1, seed=int(rng.integers(1 << 31)))
        system = MegaMimoSystem.create(
            config, client_snr_db=25.0, channel_model=RicianChannel(k_factor=8.0)
        )
        system.run_sounding(0.0)
        slave = system.ap_ids[1]
        sync = system.synchronizers[slave]
        lead_osc = system.medium.oscillator(system.lead_id)
        slave_osc = system.medium.oscillator(slave)
        tref = system.reference_time

        obs = None
        for k in range(n_warmup + 1):
            t0 = round((1e-3 + k * 2e-3) * fs) / fs
            system.medium.clear()
            system.medium.transmit(system.lead_id, sync_header(), t0)
            rx = system.medium.receive(slave, t0, header_len)
            obs = sync.observe_header(rx, t0 + REFERENCE_OFFSET / fs)
        system.medium.clear()

        for i, duration in enumerate(packet_durations_s):
            t_end = np.array([obs.header_time + duration])
            ideal = (
                lead_osc.phase_at(t_end)[0]
                - slave_osc.phase_at(t_end)[0]
                - lead_osc.phase_at([tref])[0]
                + slave_osc.phase_at([tref])[0]
            )
            with_c = sync.correction(t_end, obs)[0]
            without_c = sync.correction_without_inpacket_tracking(t_end, obs)[0]
            tracked[i] += abs(wrap_phase(float(np.angle(with_c)) - ideal))
            untracked[i] += abs(wrap_phase(float(np.angle(without_c)) - ideal))

    return TrackingAblationResult(
        packet_durations_s=packet_durations_s,
        with_tracking=tracked / n_systems,
        without_tracking=untracked / n_systems,
    )


# ---------------------------------------------------------------------------
# Sounding-layout ablation
# ---------------------------------------------------------------------------


class SequentialSoundingPlan(SoundingPlan):
    """Block-sequential layout: each AP sends all its rounds back to back.

    The §5.1a strawman — per-AP measurements are far apart in time, so
    rotating them to the common reference time stretches the CFO estimate
    over longer spans and the snapshot consistency degrades.
    """

    def slot_start(self, ap_index: int, round_index: int) -> int:
        base = self.header_length + self.cfo_section_length
        return base + (ap_index * self.n_rounds + round_index) * (
            CP_LENGTH + FFT_SIZE
        )

    @property
    def round_period_samples(self) -> int:
        # consecutive rounds of one AP are adjacent slots
        return CP_LENGTH + FFT_SIZE


@dataclass
class SoundingAblationResult:
    """Cross-AP phase consistency of the measured snapshot per layout.

    Attributes:
        interleaved_rad / sequential_rad: Mean |relative-phase error| of the
            estimated snapshot vs. the genie snapshot.
    """

    interleaved_rad: float
    sequential_rad: float

    def format_table(self) -> str:
        return (
            "layout       snapshot phase error (rad)\n"
            f"interleaved  {self.interleaved_rad:26.4f}\n"
            f"sequential   {self.sequential_rad:26.4f}"
        )


def run_sounding_ablation(
    seed: int = 9, n_trials: int = 10, n_aps: int = 6, rounds: int = 4
) -> SoundingAblationResult:
    """Compare snapshot consistency of interleaved vs. sequential sounding.

    A client measures all APs with both layouts on identical channels and
    oscillators; the error metric is the phase error of each AP's estimate
    relative to AP 0's, against the genie channels at the reference time —
    exactly the quantity beamforming depends on.
    """
    rng = ensure_rng(seed)
    errors = {"interleaved": [], "sequential": []}
    occupied = np.abs(lts_grid()) > 0

    for _ in range(n_trials):
        system_seed = int(rng.integers(1 << 31))
        for name, plan_cls in (
            ("interleaved", SoundingPlan),
            ("sequential", SequentialSoundingPlan),
        ):
            config = SystemConfig(n_aps=n_aps, n_clients=1, seed=system_seed)
            system = MegaMimoSystem.create(
                config, client_snr_db=22.0, channel_model=RicianChannel(k_factor=8.0)
            )
            plan = plan_cls(
                n_aps=n_aps, n_rounds=rounds, sample_rate=config.sample_rate
            )
            system.medium.clear()
            for i, ap in enumerate(system.ap_ids):
                system.medium.transmit(
                    ap, interleaved_sounding_frame(plan, i), 0.0
                )
            client = system.client_ids[0]
            rx = system.medium.receive(client, 0.0, plan.frame_length)
            est = estimate_at_client(rx, plan)
            system.medium.clear()

            tref = REFERENCE_OFFSET / config.sample_rate
            client_osc = system.medium.oscillator(client)
            genie = []
            for ap in system.ap_ids:
                link = system.medium.get_link(ap, client)
                osc = system.medium.oscillator(ap)
                rot = np.exp(
                    1j * (osc.phase_at([tref])[0] - client_osc.phase_at([tref])[0])
                )
                genie.append(link.taps[0] * rot)
            genie = np.asarray(genie)

            measured = np.array(
                [np.mean(est.channels[a][occupied]) for a in range(n_aps)]
            )
            rel_meas = np.angle(measured / measured[0])
            rel_genie = np.angle(genie / genie[0])
            err = np.abs(wrap_phase(rel_meas - rel_genie))[1:]
            errors[name].append(float(np.mean(err)))

    return SoundingAblationResult(
        interleaved_rad=float(np.mean(errors["interleaved"])),
        sequential_rad=float(np.mean(errors["sequential"])),
    )


# ---------------------------------------------------------------------------
# CFO-averaging ablation
# ---------------------------------------------------------------------------


@dataclass
class CfoAveragingResult:
    """Steady-state CFO error per EWMA coefficient.

    Attributes:
        alphas: EWMA coefficients probed.
        cfo_error_hz: Mean |estimate - truth| after convergence.
    """

    alphas: np.ndarray
    cfo_error_hz: np.ndarray

    def format_table(self) -> str:
        lines = ["alpha  steady-state CFO error (Hz)"]
        for a, e in zip(self.alphas, self.cfo_error_hz):
            lines.append(f"{a:5.2f}  {e:27.2f}")
        return "\n".join(lines)


def run_cfo_averaging_ablation(
    seed: int = 10,
    alphas: Sequence[float] = (1.0, 0.5, 0.2, 0.1, 0.05),
    n_headers: int = 20,
    n_systems: int = 4,
) -> CfoAveragingResult:
    """§5.2b's "long term average": smaller EWMA coefficients average out
    per-header estimation noise; alpha = 1 (no averaging) keeps the raw
    per-header error.

    Uses raw within-header CFO measurements only (the long-baseline
    cross-header refinement is disabled) to isolate the averaging effect.
    """
    from repro.core.phasesync import estimate_header_cfo

    rng = ensure_rng(seed)
    alphas = np.asarray(list(alphas), dtype=float)
    fs = SAMPLE_RATE_USRP
    header_len = sync_header_length()
    errors = np.zeros(alphas.size)

    for _ in range(n_systems):
        config = SystemConfig(n_aps=2, n_clients=1, seed=int(rng.integers(1 << 31)))
        system = MegaMimoSystem.create(
            config, client_snr_db=25.0, channel_model=RicianChannel(k_factor=8.0)
        )
        slave = system.ap_ids[1]
        true_cfo = (
            system.medium.oscillator(system.lead_id).frequency_offset_hz
            - system.medium.oscillator(slave).frequency_offset_hz
        )
        # collect raw per-header measurements once, reuse for every alpha
        measurements = []
        for k in range(n_headers):
            t0 = round((1e-3 + k * 2e-3) * fs) / fs
            system.medium.clear()
            system.medium.transmit(system.lead_id, sync_header(), t0)
            rx = system.medium.receive(slave, t0, header_len)
            measurements.append(estimate_header_cfo(rx, fs))
        system.medium.clear()

        for i, alpha in enumerate(alphas):
            estimate = measurements[0]
            for m in measurements[1:]:
                estimate += alpha * (m - estimate)
            errors[i] += abs(estimate - true_cfo)

    return CfoAveragingResult(alphas=alphas, cfo_error_hz=errors / n_systems)


# ---------------------------------------------------------------------------
# Placement-screening ablation (Fig. 9's conditioning assumption)
# ---------------------------------------------------------------------------


@dataclass
class ScreeningAblationResult:
    """Fig. 9 gains with and without the placement-conditioning screen.

    Attributes:
        n_aps: The AP counts compared.
        screened / unscreened: Median high-SNR gains per count.
    """

    n_aps: Sequence[int]
    screened: Dict[int, float]
    unscreened: Dict[int, float]

    def format_table(self) -> str:
        lines = ["n_aps  screened(<=2dB)  unscreened"]
        for n in self.n_aps:
            lines.append(
                f"{n:5d}  {self.screened[n]:15.2f}x  {self.unscreened[n]:9.2f}x"
            )
        return "\n".join(lines)


def run_screening_ablation(
    seed: int = 14,
    n_aps: Sequence[int] = (4, 8),
    n_topologies: int = 8,
    workers: int = 1,
    backend: Optional[str] = None,
) -> ScreeningAblationResult:
    """Fig. 9's placement screen on vs. off.

    The paper's testbed placement implicitly screened for well-conditioned
    topologies (its own gain model implies K ~ 1.5-2 dB); without the
    screen, raw i.i.d. fading draws keep the *linear scaling* but with a
    lower slope — the shape survives, the absolute gain drops.
    """
    from repro.sim.experiments import run_fig9

    screened_run = run_fig9(
        seed=seed, n_aps=tuple(n_aps), n_topologies=n_topologies,
        max_penalty_db=2.0, workers=workers, backend=backend,
    )
    unscreened_run = run_fig9(
        seed=seed, n_aps=tuple(n_aps), n_topologies=n_topologies,
        max_penalty_db=None, workers=workers, backend=backend,
    )
    return ScreeningAblationResult(
        n_aps=list(n_aps),
        screened={n: screened_run.median_gain("high", n) for n in n_aps},
        unscreened={n: unscreened_run.median_gain("high", n) for n in n_aps},
    )
