"""Frequency-domain fast simulation path for large parameter sweeps.

The sample-level system in :mod:`repro.core.system` runs the full protocol
but costs seconds per packet; the paper's evaluation sweeps 20 topologies x
9 AP counts x 3 SNR bands.  This module reproduces the *physics that
matters for throughput* directly in the frequency domain:

* per-subcarrier channel matrices drawn from the fading models,
* zero-forcing precoding with the paper's per-AP power normalization,
* channel-estimation error (sounding noise) and residual slave phase
  misalignment, both calibrated against the sample-level path (Fig. 7), and
* per-subcarrier SINR -> effective-SNR rate selection [13].

Integration tests verify that this path and the sample-level path agree on
post-beamforming SINR for matched configurations.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.channel.models import ChannelModel, RicianChannel
from repro.core.beamforming import zero_forcing_precoder_wideband
from repro.obs import metrics, timeseries
from repro.runtime import register_batched_kernel
from repro.utils.rng import complex_normal, ensure_rng
from repro.utils.units import db_to_linear, linear_to_db
from repro.utils.validation import require

#: Number of occupied OFDM subcarriers modelled per link.
N_BINS = 52

#: Environment variable multiplying every SyncErrorModel's phase sigma.
#: A fault-injection knob for the regression harness: setting it to 2 in a
#: `repro obs regress` CI run simulates a sync degradation and must trip
#: the phase-error budget check (see docs/observability.md).  Unset or "1"
#: leaves the calibrated model untouched.
PHASE_SIGMA_SCALE_ENV = "REPRO_PHASE_SIGMA_SCALE"

# module-level telemetry handles: these functions are the fast path of the
# 20-topology figure sweeps, so the handles are resolved exactly once
_OBS_PHASE_ERR = metrics.histogram("fastsim.phase_error_rad")
_OBS_DRAWS = metrics.counter("fastsim.phase_error_draws")
_OBS_ESTIMATES = metrics.counter("fastsim.estimates_corrupted")
# Live twin of the histogram: sync health flows into the time-series store
# as it is drawn, so the §7.3 budget alert rules and /timeseries see a
# degradation *during* the run, not at exit (the ring buffer bounds cost).
_TS_PHASE_ERR = timeseries.series("fastsim.phase_error_rad")


@dataclass
class SyncErrorModel:
    """Calibrated imperfections of the distributed synchronization.

    Attributes:
        phase_sigma_rad: Std of each slave's residual phase misalignment per
            packet.  Default 0.015 rad matches the sample-level protocol's
            converged behaviour (Fig. 7: observed median ~0.013-0.017 rad,
            which also folds in receiver-side measurement noise) and
            reproduces the paper's Fig. 8 INR slope of ~0.13 dB per added
            AP-client pair at high SNR.
        estimation_snr_boost_db: How much better the sounding channel
            estimate is than one raw symbol at link SNR (round averaging +
            the 52-bin estimation gain); sets H_est = H + noise.
        lead_is_perfect: The lead defines the phase reference, so its own
            "misalignment" is zero by construction.
    """

    phase_sigma_rad: float = 0.015
    estimation_snr_boost_db: float = 15.0
    lead_is_perfect: bool = True

    def __post_init__(self):
        scale = os.environ.get(PHASE_SIGMA_SCALE_ENV)
        if scale is not None and scale.strip():
            self.phase_sigma_rad = float(self.phase_sigma_rad) * float(scale)

    def phase_errors(
        self, n_tx: int, rng, device_of: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Draw per-TX-antenna phase errors for one joint transmission.

        Antennas sharing a device (``device_of``) share one error — they are
        driven by one oscillator.  Device 0 is the lead.
        """
        rng = ensure_rng(rng)
        if device_of is None:
            device_of = np.arange(n_tx)
        device_of = np.asarray(device_of)
        n_devices = int(device_of.max()) + 1
        per_device = rng.normal(0.0, self.phase_sigma_rad, n_devices)
        if self.lead_is_perfect:
            per_device[0] = 0.0
        errors = per_device[device_of]
        _OBS_DRAWS.inc()
        if errors.size:
            worst = float(np.max(np.abs(errors)))
            _OBS_PHASE_ERR.observe(worst)
            _TS_PHASE_ERR.record(worst)
        return errors

    def corrupt_estimate(self, channels: np.ndarray, snr_db, rng) -> np.ndarray:
        """Add estimation noise to a channel tensor.

        Args:
            channels: (..., n_bins, n_rx, n_tx) true channels (leading batch
                axes allowed).
            snr_db: Per-entry link SNR (scalar, (n_rx, n_tx) or with the
                same leading axes as ``channels``); estimation SNR is this
                plus ``estimation_snr_boost_db``.
        """
        rng = ensure_rng(rng)
        channels = np.asarray(channels, dtype=complex)
        snr = db_to_linear(np.asarray(snr_db, dtype=float) + self.estimation_snr_boost_db)
        snr = np.broadcast_to(snr, channels.shape[:-3] + channels.shape[-2:])
        scale = np.abs(channels) / np.sqrt(snr)[..., None, :, :]
        noise = complex_normal(rng, channels.shape, 1.0) * scale
        _OBS_ESTIMATES.inc()
        return channels + noise


def draw_band_snrs(band: Tuple[float, float], n_clients: int, n_aps: int, rng,
                   ap_spread_db: float = 2.0) -> np.ndarray:
    """Per-(client, AP) link SNRs with each client's base SNR in the band.

    Reproduces the paper's placement procedure ("place ... nodes in random
    client locations such that all clients obtain an effective SNR in the
    desired range", §11.2): a base SNR per client uniform in the band plus a
    small per-AP variation.
    """
    rng = ensure_rng(rng)
    lo, hi = band
    base = rng.uniform(lo, hi, n_clients)
    spread = rng.normal(0.0, ap_spread_db, (n_clients, n_aps))
    return base[:, None] + spread


def taps_to_channel_tensor(taps: np.ndarray, n_bins: int = N_BINS) -> np.ndarray:
    """Frequency responses of a stack of link impulse responses.

    Args:
        taps: (..., n_rx, n_tx, n_taps) per-link impulse responses.
        n_bins: Occupied subcarriers to keep; the FFT grid is
            ``max(n_bins, 64)`` as in :meth:`LinkChannel.frequency_response`.

    Returns:
        (..., n_bins, n_rx, n_tx) complex channel tensor.  Each link's row
        FFT is bit-identical to a scalar per-link
        ``LinkChannel.frequency_response`` call, so stacking trials does not
        perturb the channel values.
    """
    taps = np.asarray(taps, dtype=complex)
    require(taps.ndim >= 3, "need (..., n_rx, n_tx, n_taps)")
    fft_size = max(n_bins, 64)
    require(taps.shape[-1] <= fft_size, "impulse response longer than FFT")
    padded = np.zeros(taps.shape[:-1] + (fft_size,), dtype=complex)
    padded[..., : taps.shape[-1]] = taps
    response = np.fft.fft(padded, axis=-1)[..., :n_bins]
    return np.moveaxis(response, -1, -3)


def build_channel_tensor(
    snr_db: np.ndarray,
    rng,
    model: ChannelModel = None,
    noise_power: float = 1.0,
    n_bins: int = N_BINS,
) -> np.ndarray:
    """Per-subcarrier channel tensor for an (..., n_rx, n_tx) SNR map.

    Args:
        snr_db: (..., n_rx, n_tx) average link SNRs (leading batch axes
            allowed — e.g. a trial axis — sharing one RNG stream).
        model: Fading model.  Default is Rician K=7 — conference-room links
            (ceiling APs, line of sight) have a strong specular component,
            which is also what keeps the paper's channel matrices "random
            and well conditioned" (§11.2).

    Returns:
        (..., n_bins, n_rx, n_tx) complex channels with E|H|^2 = SNR * noise.

    All links are drawn through one vectorized
    :meth:`ChannelModel.realize_taps` call (array-sized RNG draws rather
    than the per-link scalar draws of earlier revisions), so the serial
    sweep kernels and the batched backend consume per-trial streams
    identically.
    """
    rng = ensure_rng(rng)
    model = model or RicianChannel(k_factor=7.0)
    snr_db = np.asarray(snr_db, dtype=float)
    require(snr_db.ndim >= 2, "snr_db must be (..., n_rx, n_tx)")
    gains = db_to_linear(snr_db) * noise_power
    taps = model.realize_taps(gains, rng=rng)
    return taps_to_channel_tensor(taps, n_bins)


def joint_zf_sinr_db(
    channels: np.ndarray,
    noise_power: float = 1.0,
    phase_errors: Optional[np.ndarray] = None,
    est_channels: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-client, per-subcarrier SINR (dB) after joint ZF beamforming.

    Args:
        channels: (..., n_bins, n_rx, n_tx) true channels at transmission
            time (leading batch axes allowed, e.g. a trial axis).
        noise_power: Receiver noise power.
        phase_errors: (..., n_tx) per-antenna misalignment (radians).
        est_channels: Channels the precoder is built from (estimation error);
            defaults to the true channels.

    Returns:
        (..., n_rx, n_bins) SINR in dB.

    The 3-D input keeps the loopy per-subcarrier reference implementation;
    batched inputs take one broadcast-matmul pass whose per-trial results
    are bit-identical to the reference (the backend-equivalence harness and
    the batch-of-1 property tests pin this).
    """
    channels = np.asarray(channels, dtype=complex)
    est = channels if est_channels is None else np.asarray(est_channels, dtype=complex)
    n_tx = channels.shape[-1]
    rotation = (
        np.exp(1j * np.asarray(phase_errors, dtype=float))
        if phase_errors is not None
        else np.ones(n_tx)
    )
    precoders, _ = zero_forcing_precoder_wideband(est)
    if channels.ndim == 3:
        n_bins, n_rx, _ = channels.shape
        sinr = np.empty((n_rx, n_bins))
        for b in range(n_bins):
            eff = (channels[b] * rotation[None, :]) @ precoders[b]
            signal = np.abs(np.diag(eff)) ** 2
            interference = np.sum(np.abs(eff) ** 2, axis=1) - signal
            sinr[:, b] = signal / (interference + noise_power)
        return linear_to_db(sinr)
    eff = (channels * rotation[..., None, None, :]) @ precoders
    signal = np.abs(np.diagonal(eff, axis1=-2, axis2=-1)) ** 2  # (..., B, R)
    interference = np.sum(np.abs(eff) ** 2, axis=-1) - signal
    sinr = signal / (interference + noise_power)
    return linear_to_db(np.moveaxis(sinr, -1, -2))


def nulling_inr_db(
    channels: np.ndarray,
    nulled_client: int,
    noise_power: float = 1.0,
    phase_errors: Optional[np.ndarray] = None,
    est_channels: Optional[np.ndarray] = None,
) -> float:
    """Fig. 8 metric: (leakage + noise) / noise, in dB, at a nulled client.

    Accepts a (..., n_bins, n_rx, n_tx) batch and then returns a
    (...,)-shaped array; the batched path accumulates leakage bin-by-bin in
    the same order as the scalar reference, so agreement is exact up to the
    vector-matrix product (gemv vs. batched gemm — pinned at tight
    tolerance by the property tests).
    """
    channels = np.asarray(channels, dtype=complex)
    est = channels if est_channels is None else np.asarray(est_channels, dtype=complex)
    n_bins, n_rx, n_tx = channels.shape[-3], channels.shape[-2], channels.shape[-1]
    rotation = (
        np.exp(1j * np.asarray(phase_errors, dtype=float))
        if phase_errors is not None
        else np.ones(n_tx)
    )
    precoders, _ = zero_forcing_precoder_wideband(est)
    others = np.ones(n_rx, dtype=bool)
    others[nulled_client] = False
    if channels.ndim == 3:
        leak = 0.0
        for b in range(n_bins):
            row = (channels[b][nulled_client] * rotation) @ precoders[b]
            leak += float(np.sum(np.abs(row[others]) ** 2))
        leak /= n_bins
        return float(linear_to_db((leak + noise_power) / noise_power))
    rotated = channels[..., :, nulled_client, :] * rotation[..., None, :]
    rows = (rotated[..., :, None, :] @ precoders)[..., 0, :]  # (..., B, R)
    leak = np.zeros(channels.shape[:-3])
    for b in range(n_bins):
        leak = leak + np.sum(np.abs(rows[..., b, others]) ** 2, axis=-1)
    leak = leak / n_bins
    return linear_to_db((leak + noise_power) / noise_power)


def diversity_snr_db(
    channels_to_client: np.ndarray,
    noise_power: float = 1.0,
    phase_errors: Optional[np.ndarray] = None,
    per_ap_power: float = 1.0,
) -> np.ndarray:
    """Per-subcarrier SNR (dB) of coherent diversity beamforming (§8).

    Each AP transmits ``h^*/|h| x`` at its full power, so amplitudes add:
    N equal-SNR APs yield an N^2 SNR gain.

    Args:
        channels_to_client: (..., n_bins, n_aps) channels to the single
            client (leading batch axes allowed).
        phase_errors: (..., n_aps) per-AP misalignment.

    Returns:
        (..., n_bins) SNR in dB.
    """
    channels_to_client = np.asarray(channels_to_client, dtype=complex)
    n_aps = channels_to_client.shape[-1]
    rotation = (
        np.exp(1j * np.asarray(phase_errors, dtype=float))
        if phase_errors is not None
        else np.ones(n_aps)
    )
    amplitude = np.abs(channels_to_client)  # post-conjugation contribution
    combined = np.abs(np.sum(amplitude * rotation[..., None, :], axis=-1)) ** 2
    return linear_to_db(per_ap_power * combined / noise_power)


def mmse_stream_sinr_db(
    channels: np.ndarray,
    noise_power: float = 1.0,
    per_stream_power: float = 1.0,
) -> np.ndarray:
    """Per-stream, per-subcarrier SINR (dB) of direct-mapped spatial streams
    with an MMSE receiver — the standard 802.11n SU-MIMO link model.

    An 802.11n AP transmits one stream per antenna with no CSI at the
    transmitter; the client's MIMO equalizer separates them.  The MMSE
    per-stream SINR is ``1 / [(I + (P/N0) H^H H)^-1]_ii - 1``.

    Args:
        channels: (..., n_bins, n_rx, n_tx) channels of the link (leading
            batch axes allowed).

    Returns:
        (..., n_tx, n_bins) per-stream SINRs in dB.
    """
    channels = np.asarray(channels, dtype=complex)
    n_rx, n_tx = channels.shape[-2], channels.shape[-1]
    require(n_rx >= n_tx, "MMSE separation needs n_rx >= n_tx streams")
    snr_scale = per_stream_power / noise_power
    eye = np.eye(n_tx)
    if channels.ndim == 3:
        n_bins = channels.shape[0]
        sinr = np.empty((n_tx, n_bins))
        for b in range(n_bins):
            h = channels[b]
            gram = eye + snr_scale * (h.conj().T @ h)
            inv_diag = np.real(np.diag(np.linalg.inv(gram)))
            sinr[:, b] = 1.0 / np.maximum(inv_diag, 1e-12) - 1.0
        return linear_to_db(np.maximum(sinr, 1e-12))
    gram = eye + snr_scale * (np.conj(np.swapaxes(channels, -1, -2)) @ channels)
    inv_diag = np.real(np.diagonal(np.linalg.inv(gram), axis1=-2, axis2=-1))
    sinr = 1.0 / np.maximum(inv_diag, 1e-12) - 1.0  # (..., B, n_tx)
    return linear_to_db(np.maximum(np.moveaxis(sinr, -1, -2), 1e-12))


def unicast_snr_db(channels: np.ndarray, client: int, ap: int,
                   noise_power: float = 1.0) -> np.ndarray:
    """Per-subcarrier single-AP unicast SNR (the 802.11 baseline link)."""
    channels = np.asarray(channels, dtype=complex)
    return linear_to_db(np.abs(channels[:, client, ap]) ** 2 / noise_power)


# ---------------------------------------------------------------------------
# Canned fast-path Monte Carlo sweep (benchmark + runtime-engine workload)
# ---------------------------------------------------------------------------


def sinr_grid_kernel(params, seed):
    """One fast-path trial: joint-ZF SINR statistics of a random topology.

    A pure ``(params, seed) -> result`` kernel for the sweep engine — one
    NxN draw from the band, corrupted estimate, per-device phase errors,
    and the resulting post-beamforming SINR summary.
    """
    rng = ensure_rng(seed)
    n = params["n"]
    error_model = params["error_model"]
    snrs = draw_band_snrs(tuple(params["band"]), n, n, rng)
    channels = build_channel_tensor(snrs, rng)
    est = error_model.corrupt_estimate(channels, snrs, rng)
    errors = error_model.phase_errors(n, rng)
    sinr_db = joint_zf_sinr_db(channels, phase_errors=errors, est_channels=est)
    return {
        "mean_sinr_db": float(np.mean(sinr_db)),
        "min_sinr_db": float(np.min(sinr_db)),
        "max_sinr_db": float(np.max(sinr_db)),
    }


def sinr_grid_kernel_batch(params, seeds):
    """Batched :func:`sinr_grid_kernel`: one array pass over many trials.

    RNG draws stay per-trial — each seed's generator consumes exactly the
    draws the scalar kernel would (band SNRs, link taps, estimation noise,
    phase errors, in that order) — while the FFTs, ZF inversions and SINR
    reductions run once over the stacked trial axis.  Results are
    bit-identical to mapping :func:`sinr_grid_kernel` over ``seeds``.
    """
    n = int(params["n"])
    band = tuple(params["band"])
    error_model = params["error_model"]
    model = RicianChannel(k_factor=7.0)
    snrs, taps, est_noise, errors = [], [], [], []
    for seed in seeds:
        rng = ensure_rng(seed)
        trial_snrs = draw_band_snrs(band, n, n, rng)
        snrs.append(trial_snrs)
        taps.append(model.realize_taps(db_to_linear(trial_snrs), rng=rng))
        est_noise.append(complex_normal(rng, (N_BINS, n, n), 1.0))
        errors.append(error_model.phase_errors(n, rng))
    snr_arr = np.stack(snrs)  # (T, n, n)
    channels = taps_to_channel_tensor(np.stack(taps))  # (T, B, n, n)
    est_snr = db_to_linear(snr_arr + error_model.estimation_snr_boost_db)
    scale = np.abs(channels) / np.sqrt(est_snr)[..., None, :, :]
    est = channels + np.stack(est_noise) * scale
    _OBS_ESTIMATES.inc(len(seeds))
    sinr_db = np.ascontiguousarray(
        joint_zf_sinr_db(channels, phase_errors=np.stack(errors), est_channels=est)
    )
    return [
        {
            "mean_sinr_db": float(np.mean(sinr_db[t])),
            "min_sinr_db": float(np.min(sinr_db[t])),
            "max_sinr_db": float(np.max(sinr_db[t])),
        }
        for t in range(len(seeds))
    ]


def run_sinr_grid(
    seed: int = 12,
    sizes: Sequence[int] = (2, 4, 8),
    band: Tuple[float, float] = (18.0, 22.0),
    n_trials: int = 64,
    error_model: Optional[SyncErrorModel] = None,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    backend: Optional[str] = None,
) -> dict:
    """Monte Carlo grid over system sizes of the fast-path SINR physics.

    The canned "fastsim grid" workload: per system size N, ``n_trials``
    independent topologies are drawn and the post-ZF SINR summarized.
    Returns ``{n: {"mean_sinr_db", "min_sinr_db", "max_sinr_db"}}``
    aggregated over trials, deterministically for any ``workers`` count.
    """
    from repro.runtime import CellSpec, run_sweep

    error_model = error_model or SyncErrorModel()
    cells = [
        CellSpec(
            key=int(n),
            params={"n": int(n), "band": tuple(band), "error_model": error_model},
            n_trials=n_trials,
        )
        for n in sizes
    ]
    sweep = run_sweep(
        "fastsim.sinr_grid", sinr_grid_kernel, cells, master_seed=int(seed),
        workers=workers, checkpoint=checkpoint, resume=resume, backend=backend,
    )
    out = {}
    for n in sizes:
        trials = sweep.cell_results(int(n))
        out[int(n)] = {
            "mean_sinr_db": float(np.mean([t["mean_sinr_db"] for t in trials])),
            "min_sinr_db": float(np.min([t["min_sinr_db"] for t in trials])),
            "max_sinr_db": float(np.max([t["max_sinr_db"] for t in trials])),
        }
    return out


# The batched twin is registered at import time so every entry point —
# run_sinr_grid, the CLI, the bench script — can resolve it by kernel.
register_batched_kernel(sinr_grid_kernel, sinr_grid_kernel_batch)
