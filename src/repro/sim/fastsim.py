"""Frequency-domain fast simulation path for large parameter sweeps.

The sample-level system in :mod:`repro.core.system` runs the full protocol
but costs seconds per packet; the paper's evaluation sweeps 20 topologies x
9 AP counts x 3 SNR bands.  This module reproduces the *physics that
matters for throughput* directly in the frequency domain:

* per-subcarrier channel matrices drawn from the fading models,
* zero-forcing precoding with the paper's per-AP power normalization,
* channel-estimation error (sounding noise) and residual slave phase
  misalignment, both calibrated against the sample-level path (Fig. 7), and
* per-subcarrier SINR -> effective-SNR rate selection [13].

Integration tests verify that this path and the sample-level path agree on
post-beamforming SINR for matched configurations.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.channel.models import ChannelModel, RicianChannel
from repro.core.beamforming import zero_forcing_precoder_wideband
from repro.obs import metrics
from repro.utils.rng import complex_normal, ensure_rng
from repro.utils.units import db_to_linear, linear_to_db
from repro.utils.validation import require

#: Number of occupied OFDM subcarriers modelled per link.
N_BINS = 52

#: Environment variable multiplying every SyncErrorModel's phase sigma.
#: A fault-injection knob for the regression harness: setting it to 2 in a
#: `repro obs regress` CI run simulates a sync degradation and must trip
#: the phase-error budget check (see docs/observability.md).  Unset or "1"
#: leaves the calibrated model untouched.
PHASE_SIGMA_SCALE_ENV = "REPRO_PHASE_SIGMA_SCALE"

# module-level telemetry handles: these functions are the fast path of the
# 20-topology figure sweeps, so the handles are resolved exactly once
_OBS_PHASE_ERR = metrics.histogram("fastsim.phase_error_rad")
_OBS_DRAWS = metrics.counter("fastsim.phase_error_draws")
_OBS_ESTIMATES = metrics.counter("fastsim.estimates_corrupted")


@dataclass
class SyncErrorModel:
    """Calibrated imperfections of the distributed synchronization.

    Attributes:
        phase_sigma_rad: Std of each slave's residual phase misalignment per
            packet.  Default 0.015 rad matches the sample-level protocol's
            converged behaviour (Fig. 7: observed median ~0.013-0.017 rad,
            which also folds in receiver-side measurement noise) and
            reproduces the paper's Fig. 8 INR slope of ~0.13 dB per added
            AP-client pair at high SNR.
        estimation_snr_boost_db: How much better the sounding channel
            estimate is than one raw symbol at link SNR (round averaging +
            the 52-bin estimation gain); sets H_est = H + noise.
        lead_is_perfect: The lead defines the phase reference, so its own
            "misalignment" is zero by construction.
    """

    phase_sigma_rad: float = 0.015
    estimation_snr_boost_db: float = 15.0
    lead_is_perfect: bool = True

    def __post_init__(self):
        scale = os.environ.get(PHASE_SIGMA_SCALE_ENV)
        if scale is not None and scale.strip():
            self.phase_sigma_rad = float(self.phase_sigma_rad) * float(scale)

    def phase_errors(
        self, n_tx: int, rng, device_of: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Draw per-TX-antenna phase errors for one joint transmission.

        Antennas sharing a device (``device_of``) share one error — they are
        driven by one oscillator.  Device 0 is the lead.
        """
        rng = ensure_rng(rng)
        if device_of is None:
            device_of = np.arange(n_tx)
        device_of = np.asarray(device_of)
        n_devices = int(device_of.max()) + 1
        per_device = rng.normal(0.0, self.phase_sigma_rad, n_devices)
        if self.lead_is_perfect:
            per_device[0] = 0.0
        errors = per_device[device_of]
        _OBS_DRAWS.inc()
        if errors.size:
            _OBS_PHASE_ERR.observe(float(np.max(np.abs(errors))))
        return errors

    def corrupt_estimate(self, channels: np.ndarray, snr_db, rng) -> np.ndarray:
        """Add estimation noise to a channel tensor.

        Args:
            channels: (n_bins, n_rx, n_tx) true channels.
            snr_db: Per-entry link SNR (scalar or (n_rx, n_tx)); estimation
                SNR is this plus ``estimation_snr_boost_db``.
        """
        rng = ensure_rng(rng)
        channels = np.asarray(channels, dtype=complex)
        snr = db_to_linear(np.asarray(snr_db, dtype=float) + self.estimation_snr_boost_db)
        snr = np.broadcast_to(snr, channels.shape[1:])
        scale = np.abs(channels) / np.sqrt(snr)[None, :, :]
        noise = complex_normal(rng, channels.shape, 1.0) * scale
        _OBS_ESTIMATES.inc()
        return channels + noise


def draw_band_snrs(band: Tuple[float, float], n_clients: int, n_aps: int, rng,
                   ap_spread_db: float = 2.0) -> np.ndarray:
    """Per-(client, AP) link SNRs with each client's base SNR in the band.

    Reproduces the paper's placement procedure ("place ... nodes in random
    client locations such that all clients obtain an effective SNR in the
    desired range", §11.2): a base SNR per client uniform in the band plus a
    small per-AP variation.
    """
    rng = ensure_rng(rng)
    lo, hi = band
    base = rng.uniform(lo, hi, n_clients)
    spread = rng.normal(0.0, ap_spread_db, (n_clients, n_aps))
    return base[:, None] + spread


def build_channel_tensor(
    snr_db: np.ndarray,
    rng,
    model: ChannelModel = None,
    noise_power: float = 1.0,
    n_bins: int = N_BINS,
) -> np.ndarray:
    """Per-subcarrier channel tensor for an (n_rx, n_tx) SNR map.

    Args:
        snr_db: (n_rx, n_tx) average link SNRs.
        model: Fading model.  Default is Rician K=7 — conference-room links
            (ceiling APs, line of sight) have a strong specular component,
            which is also what keeps the paper's channel matrices "random
            and well conditioned" (§11.2).

    Returns:
        (n_bins, n_rx, n_tx) complex channels with E|H|^2 = SNR * noise.
    """
    rng = ensure_rng(rng)
    model = model or RicianChannel(k_factor=7.0)
    snr_db = np.asarray(snr_db, dtype=float)
    require(snr_db.ndim == 2, "snr_db must be (n_rx, n_tx)")
    n_rx, n_tx = snr_db.shape
    out = np.empty((n_bins, n_rx, n_tx), dtype=complex)
    for r in range(n_rx):
        for t in range(n_tx):
            gain = db_to_linear(snr_db[r, t]) * noise_power
            link = model.realize(float(gain), rng=rng)
            response = link.frequency_response(max(n_bins, 64))
            out[:, r, t] = response[:n_bins]
    return out


def joint_zf_sinr_db(
    channels: np.ndarray,
    noise_power: float = 1.0,
    phase_errors: Optional[np.ndarray] = None,
    est_channels: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-client, per-subcarrier SINR (dB) after joint ZF beamforming.

    Args:
        channels: (n_bins, n_rx, n_tx) true channels at transmission time.
        noise_power: Receiver noise power.
        phase_errors: (n_tx,) per-antenna misalignment (radians).
        est_channels: Channels the precoder is built from (estimation error);
            defaults to the true channels.

    Returns:
        (n_rx, n_bins) SINR in dB.
    """
    channels = np.asarray(channels, dtype=complex)
    est = channels if est_channels is None else np.asarray(est_channels, dtype=complex)
    n_bins, n_rx, n_tx = channels.shape
    rotation = (
        np.exp(1j * np.asarray(phase_errors, dtype=float))
        if phase_errors is not None
        else np.ones(n_tx)
    )
    precoders, _ = zero_forcing_precoder_wideband(est)
    sinr = np.empty((n_rx, n_bins))
    for b in range(n_bins):
        eff = (channels[b] * rotation[None, :]) @ precoders[b]
        signal = np.abs(np.diag(eff)) ** 2
        interference = np.sum(np.abs(eff) ** 2, axis=1) - signal
        sinr[:, b] = signal / (interference + noise_power)
    return linear_to_db(sinr)


def nulling_inr_db(
    channels: np.ndarray,
    nulled_client: int,
    noise_power: float = 1.0,
    phase_errors: Optional[np.ndarray] = None,
    est_channels: Optional[np.ndarray] = None,
) -> float:
    """Fig. 8 metric: (leakage + noise) / noise, in dB, at a nulled client."""
    channels = np.asarray(channels, dtype=complex)
    est = channels if est_channels is None else np.asarray(est_channels, dtype=complex)
    n_bins, n_rx, n_tx = channels.shape
    rotation = (
        np.exp(1j * np.asarray(phase_errors, dtype=float))
        if phase_errors is not None
        else np.ones(n_tx)
    )
    precoders, _ = zero_forcing_precoder_wideband(est)
    leak = 0.0
    for b in range(n_bins):
        row = (channels[b][nulled_client] * rotation) @ precoders[b]
        others = np.ones(n_rx, dtype=bool)
        others[nulled_client] = False
        leak += float(np.sum(np.abs(row[others]) ** 2))
    leak /= n_bins
    return float(linear_to_db((leak + noise_power) / noise_power))


def diversity_snr_db(
    channels_to_client: np.ndarray,
    noise_power: float = 1.0,
    phase_errors: Optional[np.ndarray] = None,
    per_ap_power: float = 1.0,
) -> np.ndarray:
    """Per-subcarrier SNR (dB) of coherent diversity beamforming (§8).

    Each AP transmits ``h^*/|h| x`` at its full power, so amplitudes add:
    N equal-SNR APs yield an N^2 SNR gain.

    Args:
        channels_to_client: (n_bins, n_aps) channels to the single client.
        phase_errors: Per-AP misalignment.

    Returns:
        (n_bins,) SNR in dB.
    """
    channels_to_client = np.asarray(channels_to_client, dtype=complex)
    n_bins, n_aps = channels_to_client.shape
    rotation = (
        np.exp(1j * np.asarray(phase_errors, dtype=float))
        if phase_errors is not None
        else np.ones(n_aps)
    )
    amplitude = np.abs(channels_to_client)  # post-conjugation contribution
    combined = np.abs(np.sum(amplitude * rotation[None, :], axis=1)) ** 2
    return linear_to_db(per_ap_power * combined / noise_power)


def mmse_stream_sinr_db(
    channels: np.ndarray,
    noise_power: float = 1.0,
    per_stream_power: float = 1.0,
) -> np.ndarray:
    """Per-stream, per-subcarrier SINR (dB) of direct-mapped spatial streams
    with an MMSE receiver — the standard 802.11n SU-MIMO link model.

    An 802.11n AP transmits one stream per antenna with no CSI at the
    transmitter; the client's MIMO equalizer separates them.  The MMSE
    per-stream SINR is ``1 / [(I + (P/N0) H^H H)^-1]_ii - 1``.

    Args:
        channels: (n_bins, n_rx, n_tx) channels of the link.

    Returns:
        (n_tx, n_bins) per-stream SINRs in dB.
    """
    channels = np.asarray(channels, dtype=complex)
    n_bins, n_rx, n_tx = channels.shape
    require(n_rx >= n_tx, "MMSE separation needs n_rx >= n_tx streams")
    snr_scale = per_stream_power / noise_power
    sinr = np.empty((n_tx, n_bins))
    eye = np.eye(n_tx)
    for b in range(n_bins):
        h = channels[b]
        gram = eye + snr_scale * (h.conj().T @ h)
        inv_diag = np.real(np.diag(np.linalg.inv(gram)))
        sinr[:, b] = 1.0 / np.maximum(inv_diag, 1e-12) - 1.0
    return linear_to_db(np.maximum(sinr, 1e-12))


def unicast_snr_db(channels: np.ndarray, client: int, ap: int,
                   noise_power: float = 1.0) -> np.ndarray:
    """Per-subcarrier single-AP unicast SNR (the 802.11 baseline link)."""
    channels = np.asarray(channels, dtype=complex)
    return linear_to_db(np.abs(channels[:, client, ap]) ** 2 / noise_power)


# ---------------------------------------------------------------------------
# Canned fast-path Monte Carlo sweep (benchmark + runtime-engine workload)
# ---------------------------------------------------------------------------


def sinr_grid_kernel(params, seed):
    """One fast-path trial: joint-ZF SINR statistics of a random topology.

    A pure ``(params, seed) -> result`` kernel for the sweep engine — one
    NxN draw from the band, corrupted estimate, per-device phase errors,
    and the resulting post-beamforming SINR summary.
    """
    rng = ensure_rng(seed)
    n = params["n"]
    error_model = params["error_model"]
    snrs = draw_band_snrs(tuple(params["band"]), n, n, rng)
    channels = build_channel_tensor(snrs, rng)
    est = error_model.corrupt_estimate(channels, snrs, rng)
    errors = error_model.phase_errors(n, rng)
    sinr_db = joint_zf_sinr_db(channels, phase_errors=errors, est_channels=est)
    return {
        "mean_sinr_db": float(np.mean(sinr_db)),
        "min_sinr_db": float(np.min(sinr_db)),
        "max_sinr_db": float(np.max(sinr_db)),
    }


def run_sinr_grid(
    seed: int = 12,
    sizes: Sequence[int] = (2, 4, 8),
    band: Tuple[float, float] = (18.0, 22.0),
    n_trials: int = 64,
    error_model: Optional[SyncErrorModel] = None,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> dict:
    """Monte Carlo grid over system sizes of the fast-path SINR physics.

    The canned "fastsim grid" workload: per system size N, ``n_trials``
    independent topologies are drawn and the post-ZF SINR summarized.
    Returns ``{n: {"mean_sinr_db", "min_sinr_db", "max_sinr_db"}}``
    aggregated over trials, deterministically for any ``workers`` count.
    """
    from repro.runtime import CellSpec, run_sweep

    error_model = error_model or SyncErrorModel()
    cells = [
        CellSpec(
            key=int(n),
            params={"n": int(n), "band": tuple(band), "error_model": error_model},
            n_trials=n_trials,
        )
        for n in sizes
    ]
    sweep = run_sweep(
        "fastsim.sinr_grid", sinr_grid_kernel, cells, master_seed=int(seed),
        workers=workers, checkpoint=checkpoint, resume=resume,
    )
    out = {}
    for n in sizes:
        trials = sweep.cell_results(int(n))
        out[int(n)] = {
            "mean_sinr_db": float(np.mean([t["mean_sinr_db"] for t in trials])),
            "min_sinr_db": float(np.min([t["min_sinr_db"] for t in trials])),
            "max_sinr_db": float(np.max([t["max_sinr_db"] for t in trials])),
        }
    return out
