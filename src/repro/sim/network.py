"""Scenario builder: geometry + path loss -> link SNR maps and systems.

Bridges the physical room model to the two simulation paths: it samples a
conference-room topology (Fig. 5 style), computes per-link SNRs from the
path-loss model, and can instantiate either a frequency-domain channel
tensor or a full sample-level :class:`~repro.core.system.MegaMimoSystem`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.geometry import ConferenceRoom, Topology
from repro.channel.models import ChannelModel, RicianChannel
from repro.channel.pathloss import LogDistancePathLoss
from repro.core.system import MegaMimoSystem, SystemConfig
from repro.sim.fastsim import build_channel_tensor
from repro.utils.rng import ensure_rng
from repro.utils.validation import require


@dataclass
class ScenarioConfig:
    """Physical scenario parameters.

    Attributes:
        n_aps: Access points on the shared channel.
        n_clients: Clients in the room.
        tx_power_dbm: AP transmit power.
        noise_floor_dbm: Receiver noise floor (10 MHz channel default).
        room: Room geometry (defaults to the paper-like conference room).
        pathloss: Large-scale propagation model.
        seed: RNG seed.
    """

    n_aps: int
    n_clients: int
    tx_power_dbm: float = 10.0
    noise_floor_dbm: float = -92.0
    room: Optional[ConferenceRoom] = None
    pathloss: Optional[LogDistancePathLoss] = None
    seed: Optional[int] = None


class NetworkScenario:
    """One sampled deployment: topology plus derived link SNRs."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        self._rng = ensure_rng(config.seed)
        self.room = config.room or ConferenceRoom()
        self.pathloss = config.pathloss or LogDistancePathLoss()
        self.topology: Topology = self.room.sample_topology(
            config.n_aps, config.n_clients, rng=self._rng
        )
        distances = self.topology.distances()
        loss_db = self.pathloss.loss_db(distances, rng=self._rng)
        #: (n_clients, n_aps) link SNRs in dB
        self.client_ap_snr_db = (
            config.tx_power_dbm - loss_db - config.noise_floor_dbm
        )

    @property
    def n_aps(self) -> int:
        return self.config.n_aps

    @property
    def n_clients(self) -> int:
        return self.config.n_clients

    def best_ap_snr_db(self) -> np.ndarray:
        """(n_clients,) SNR to each client's strongest AP."""
        return np.max(self.client_ap_snr_db, axis=1)

    def channel_tensor(self, model: ChannelModel = None, n_bins: int = 52) -> np.ndarray:
        """(n_bins, n_clients, n_aps) frequency-domain channels."""
        return build_channel_tensor(
            self.client_ap_snr_db,
            rng=self._rng,
            model=model or RicianChannel(k_factor=7.0),
            n_bins=n_bins,
        )

    def sample_level_system(self, **config_overrides) -> MegaMimoSystem:
        """A full sample-level system with these link SNRs."""
        cfg = SystemConfig(
            n_aps=self.config.n_aps,
            n_clients=self.config.n_clients,
            seed=self.config.seed,
            **config_overrides,
        )
        return MegaMimoSystem.create(cfg, self.client_ap_snr_db)

    def clip_snrs_to_band(self, band) -> None:
        """Force every client's best-AP SNR into a band (paper placement).

        Shifts each client's row so its strongest link lands uniformly in
        the band, mimicking re-placing the client until its SNR qualifies.
        """
        lo, hi = band
        require(hi > lo, "band must be (low, high)")
        best = self.best_ap_snr_db()
        targets = self._rng.uniform(lo, hi, self.n_clients)
        self.client_ap_snr_db += (targets - best)[:, None]
