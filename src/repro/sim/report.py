"""Regenerate the measured numbers recorded in EXPERIMENTS.md.

Runs every figure's experiment at full scale and prints the tables; the
output is what EXPERIMENTS.md's "measured" columns quote.  Lives inside the
package (rather than only in ``scripts/``) so ``python -m repro report``
works from an installed wheel, not just a source checkout.
"""

from __future__ import annotations

from repro.obs import get_logger, metrics

logger = get_logger(__name__)


def _banner(msg: str) -> None:
    print("\n" + "=" * 72)
    print(msg)
    print("=" * 72)


def generate_report() -> None:
    """Run the full experiment suite and print every table to stdout."""
    from repro.sim import ablations as A
    from repro.sim import experiments as E
    from repro.sim.overhead import run_overhead_experiment
    from repro.sim.theory import fit_gain_model, paper_implied_k_summary

    report_timer = metrics.timer("report.generate_s").start()
    logger.info("regenerating all EXPERIMENTS.md tables (full scale)")

    _banner("Figure 6 — SNR reduction vs. phase misalignment")
    fig6 = E.run_fig6(seed=1, n_channels=100)
    print(fig6.format_table())
    print(f"loss at 0.35 rad / 20 dB: {fig6.reduction_at(20.0, 0.35):.2f} dB "
          "(paper: ~8 dB)")

    _banner("Figure 7 — CDF of observed phase misalignment")
    fig7 = E.run_fig7(seed=2, n_systems=12, n_rounds=40)
    print(fig7.format_table())
    print("(paper: median 0.017 rad, p95 0.05 rad)")

    _banner("Figure 8 — INR vs. number of receivers")
    fig8 = E.run_fig8(seed=3, n_topologies=20, n_packets=5)
    print(fig8.format_table())
    for band in ("high", "medium", "low"):
        print(f"{band}: slope {fig8.slope_db_per_pair(band):+.3f} dB/pair")
    print("(paper: <1.5 dB at 10 receivers; ~0.13 dB/pair at high SNR)")

    _banner("Figures 9 & 10 — throughput scaling and fairness")
    fig9 = E.run_fig9(seed=4, n_topologies=20)
    print(fig9.format_table())
    print("(paper: gains 9.4x / 9.1x / 8.1x at 10 APs; baselines 23.6 / "
          "14.9 / 7.75 Mbps)")
    fig10 = E.run_fig10(fig9, n_aps=(2, 6, 10))
    print()
    print(fig10.format_table())

    _banner("Figure 11 — diversity throughput vs. SNR")
    fig11 = E.run_fig11(seed=5, n_draws=40)
    print(fig11.format_table())
    zero = int(abs(fig11.snr_db - 0.0).argmin())
    print(f"0 dB client with 10 APs: {fig11.throughput_mbps[10][zero]:.1f} Mbps "
          "(paper: ~21 Mbps)")

    _banner("Figures 12 & 13 — 802.11n compatibility")
    fig12 = E.run_fig12(seed=6, n_topologies=40)
    print(fig12.format_table())
    print("(paper: 1.67-1.83x average across bands)")
    fig13 = E.run_fig13(fig12)
    print(fig13.format_table())
    print("(paper: 1.65-2x per node, median 1.8x)")

    _banner("Figure 12, sample level — real waveforms through the §6 pipeline")
    fig12s = E.run_fig12_sample_level(seed=15, n_topologies=8)
    print(fig12s.format_table())

    _banner("Ablation — sync strategy")
    print(A.run_sync_strategy_ablation(seed=7, n_systems=8).format_table())

    _banner("Ablation — in-packet tracking")
    print(A.run_tracking_ablation(seed=8, n_systems=8).format_table())

    _banner("Ablation — sounding layout")
    print(A.run_sounding_ablation(seed=9, n_trials=20).format_table())

    _banner("Ablation — CFO averaging window")
    print(A.run_cfo_averaging_ablation(seed=10, n_systems=10).format_table())

    _banner("Ablation — sounding overhead vs. CSI staleness")
    print(run_overhead_experiment(seed=11, n_topologies=8).format_table())

    _banner("Theory — the paper's gain model fitted to our Fig. 9 (high SNR)")
    gains = [fig9.median_gain("high", n) for n in (4, 6, 8, 10)]
    fit = fit_gain_model([4, 6, 8, 10], gains, 22.0)
    print(fit.format_table())
    print("K implied by the paper's own gains:")
    for label, k in paper_implied_k_summary().items():
        print(f"  {label}: K = {k:.2f} dB")

    print(f"\ntotal runtime: {report_timer.stop():.0f} s")
