"""Protocol overhead and channel-staleness analysis.

§5: "a single channel measurement phase can be followed by multiple data
transmissions.  Channels only need to be recomputed on the order of the
coherence time of the channel, which is several hundreds of milliseconds".
§5.2b adds the failure mode this avoids: without per-packet phase
re-anchoring the system "would force ... measuring H every few
milliseconds, which means incurring the overhead of communicating the
channels from all clients to the APs almost every packet".

This module quantifies both effects:

* airtime overhead of the sounding phase (frame + CSI feedback) as a
  function of the re-sounding interval, and
* beamforming SINR degradation from *stale CSI* — the precoder built from
  H(0) applied to the decorrelated channel H(t) — using the Gauss-Markov
  fading model.

``run_overhead_experiment`` combines them into net throughput vs.
re-sounding interval, exposing the optimum the paper's design targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.channel.timevarying import channel_correlation
from repro.constants import COHERENCE_TIME_S, MAC_EFFICIENCY, PACKET_SIZE_BYTES, SAMPLE_RATE_USRP
from repro.core.sounding import SoundingPlan
from repro.mac.rate import EffectiveSnrRateSelector
from repro.sim.fastsim import build_channel_tensor, joint_zf_sinr_db
from repro.utils.rng import complex_normal, ensure_rng
from repro.utils.validation import require


def stale_channels(
    channels: np.ndarray, elapsed_s: float, coherence_time_s: float, rng
) -> np.ndarray:
    """The channel tensor after ``elapsed_s`` of Gauss-Markov decorrelation.

    ``H(t) = rho H(0) + sqrt(1 - rho^2) W`` with W matched to each entry's
    power — the innovation replaces what the old measurement no longer
    predicts.
    """
    rng = ensure_rng(rng)
    channels = np.asarray(channels, dtype=complex)
    rho = channel_correlation(elapsed_s, coherence_time_s)
    scale = np.sqrt(np.mean(np.abs(channels) ** 2, axis=0, keepdims=True))
    innovation = complex_normal(rng, channels.shape, 1.0) * scale
    return rho * channels + np.sqrt(1.0 - rho**2) * innovation


def sounding_airtime_s(
    n_aps: int,
    n_clients: int,
    sample_rate: float = SAMPLE_RATE_USRP,
    rounds: int = 4,
    feedback_bits_per_client: int = 52 * 2 * 16,
    feedback_rate_bps: float = 12e6,
) -> float:
    """Airtime consumed by one full channel-measurement phase.

    Sounding frame (header + CFO blocks + interleaved symbols) plus each
    client's CSI feedback (52 subcarriers x complex x 16-bit, sent "back to
    the transmitters over the wireless channel", §5.1b).
    """
    plan = SoundingPlan(n_aps=n_aps, n_rounds=rounds, sample_rate=sample_rate)
    frame_s = plan.frame_length / sample_rate
    feedback_s = n_clients * n_aps * feedback_bits_per_client / feedback_rate_bps
    return frame_s + feedback_s


def packet_airtime_s(
    bitrate_bps: float,
    packet_bytes: int = PACKET_SIZE_BYTES,
    sample_rate: float = SAMPLE_RATE_USRP,
) -> float:
    """Airtime of one data frame: sync header + turnaround + payload."""
    require(bitrate_bps > 0, "bitrate must be positive")
    from repro.constants import TRIGGER_TURNAROUND_S
    from repro.phy.preamble import sync_header_length

    overhead_s = sync_header_length() / sample_rate + TRIGGER_TURNAROUND_S
    payload_s = packet_bytes * 8 / bitrate_bps
    return overhead_s + payload_s


@dataclass
class OverheadResult:
    """Net throughput vs. re-sounding interval.

    Attributes:
        intervals_s: Probed re-sounding intervals.
        net_throughput_bps: {coherence_time_s: net throughput per interval}.
        best_interval_s: {coherence_time_s: argmax interval}.
    """

    intervals_s: np.ndarray
    net_throughput_bps: Dict[float, np.ndarray]

    @property
    def best_interval_s(self) -> Dict[float, float]:
        return {
            tc: float(self.intervals_s[int(np.argmax(curve))])
            for tc, curve in self.net_throughput_bps.items()
        }

    def format_table(self) -> str:
        tcs = sorted(self.net_throughput_bps)
        lines = [
            "interval(ms)  "
            + "  ".join(f"Tc={tc * 1e3:.0f}ms (Mbps)" for tc in tcs)
        ]
        for i, iv in enumerate(self.intervals_s):
            cells = "  ".join(
                f"{self.net_throughput_bps[tc][i] / 1e6:14.1f}" for tc in tcs
            )
            lines.append(f"{iv * 1e3:12.1f}  {cells}")
        lines.append(
            "optimal interval: "
            + ", ".join(
                f"Tc={tc * 1e3:.0f}ms -> {self.best_interval_s[tc] * 1e3:.0f}ms"
                for tc in tcs
            )
        )
        return "\n".join(lines)


def run_overhead_experiment(
    seed: int = 11,
    n_aps: int = 6,
    intervals_s: Sequence[float] = (2e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3),
    coherence_times_s: Sequence[float] = (50e-3, COHERENCE_TIME_S, 1.0),
    n_topologies: int = 8,
    snr_db: float = 22.0,
) -> OverheadResult:
    """Net throughput vs. re-sounding interval for several coherence times.

    For an interval T, packets throughout [0, T] use the H(0) precoder
    against progressively staler channels; net throughput folds in the
    sounding airtime amortized over the interval.  Short intervals waste
    airtime on sounding; long intervals decay into self-interference — the
    optimum sits near the coherence time, as §5 asserts.
    """
    rng = ensure_rng(seed)
    selector = EffectiveSnrRateSelector(SAMPLE_RATE_USRP, mac_efficiency=MAC_EFFICIENCY)
    intervals_s = np.asarray(list(intervals_s), dtype=float)
    result: Dict[float, np.ndarray] = {}

    for tc in coherence_times_s:
        curve = np.zeros(intervals_s.size)
        for _ in range(n_topologies):
            snrs = np.full((n_aps, n_aps), snr_db) + rng.normal(0, 2, (n_aps, n_aps))
            h0 = build_channel_tensor(snrs, rng)
            for i, interval in enumerate(intervals_s):
                # evaluate staleness at a few epochs through the interval
                rates = []
                for frac in (0.25, 0.5, 0.75, 1.0):
                    ht = stale_channels(h0, frac * interval, tc, rng)
                    sinr = joint_zf_sinr_db(ht, est_channels=h0)
                    rates.append(
                        np.mean([selector.goodput(sinr[c]) for c in range(n_aps)])
                    )
                gross = float(np.mean(rates)) * n_aps  # all streams concurrent
                sounding = sounding_airtime_s(n_aps, n_aps)
                efficiency = interval / (interval + sounding)
                curve[i] += gross * efficiency
        result[float(tc)] = curve / n_topologies
    return OverheadResult(intervals_s=intervals_s, net_throughput_bps=result)
