"""Throughput/fairness metrics and CDF helpers used by the experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.utils.validation import require


def cdf_points(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative fractions)."""
    values = np.sort(np.asarray(values, dtype=float).ravel())
    require(values.size > 0, "empty sample")
    fractions = np.arange(1, values.size + 1) / values.size
    return values, fractions


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (q in [0, 100])."""
    return float(np.percentile(np.asarray(values, dtype=float), q))


def median_gain(megamimo: Sequence[float], baseline: Sequence[float]) -> float:
    """Median of per-sample throughput ratios."""
    megamimo = np.asarray(megamimo, dtype=float)
    baseline = np.asarray(baseline, dtype=float)
    require(megamimo.shape == baseline.shape, "shape mismatch")
    require(bool(np.all(baseline > 0)), "baseline throughput must be positive")
    return float(np.median(megamimo / baseline))


@dataclass
class ThroughputSummary:
    """Aggregate statistics of one experiment cell.

    Attributes:
        mean_mbps: Mean total throughput.
        median_mbps: Median total throughput.
        p10_mbps / p90_mbps: Spread.
    """

    mean_mbps: float
    median_mbps: float
    p10_mbps: float
    p90_mbps: float


def summarize_throughput(values_bps: Sequence[float]) -> ThroughputSummary:
    """Summarize a sample of total throughputs (input bits/s, output Mbps)."""
    mbps = np.asarray(values_bps, dtype=float) / 1e6
    require(mbps.size > 0, "empty sample")
    return ThroughputSummary(
        mean_mbps=float(np.mean(mbps)),
        median_mbps=float(np.median(mbps)),
        p10_mbps=float(np.percentile(mbps, 10)),
        p90_mbps=float(np.percentile(mbps, 90)),
    )


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index of per-client allocations (1 = perfectly fair)."""
    values = np.asarray(values, dtype=float)
    require(values.size > 0, "empty sample")
    total = values.sum()
    if total == 0:
        return 1.0
    return float(total**2 / (values.size * np.sum(values**2)))
