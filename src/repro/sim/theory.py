"""Theoretical capacity analysis behind the paper's gain model (§11.2).

The paper explains its measured gains with a two-line model:

* beamforming throughput with N APs scales as
  ``N log(SNR / K) = N log(SNR) − N log(K)`` where K captures the
  conditioning of the channel matrix ("natural channel matrices can be
  considered random and well conditioned, and hence K can essentially be
  treated as constant");
* 802.11 throughput scales as ``log(SNR)``;
* hence the expected gain is ``N (1 − log K / log SNR)`` — approaching N
  as SNR grows, which is why high-SNR gains (9.4x) beat low-SNR gains
  (8.1x).

This module implements that model, inverts it (what K do measured gains
imply?), and provides Shannon-capacity references the simulated rate
selection can be sanity-checked against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.utils.units import db_to_linear
from repro.utils.validation import require


def shannon_rate_bps(snr_db: float, bandwidth_hz: float) -> float:
    """Shannon capacity of a flat AWGN link."""
    require(bandwidth_hz > 0, "bandwidth must be positive")
    return float(bandwidth_hz * np.log2(1.0 + db_to_linear(snr_db)))


def megamimo_gain_model(n_aps: int, snr_db: float, k_db: float) -> float:
    """The paper's expected gain: ``N (1 − log K / log SNR)``.

    Args:
        n_aps: Number of APs (= concurrent streams).
        snr_db: Operating SNR of the 802.11 baseline link.
        k_db: Conditioning penalty K in dB (per-stream effective SNR is
            SNR/K).

    Returns:
        Expected throughput gain over 802.11.
    """
    require(n_aps >= 1, "need at least one AP")
    snr = db_to_linear(snr_db)
    k = db_to_linear(k_db)
    require(snr > 1.0, "the log-SNR model needs SNR > 0 dB")
    gain = n_aps * (1.0 - np.log2(k) / np.log2(snr))
    return float(max(gain, 0.0))


def implied_k_db(n_aps: int, snr_db: float, measured_gain: float) -> float:
    """Invert the gain model: the conditioning penalty K a gain implies.

    Applying this to the paper's own numbers (gain 8.1x at 10 APs, low
    SNR ~9 dB) yields K ~ 1.7 dB — the calibration target for the Fig. 9
    placement screening (see docs/architecture.md).
    """
    require(0 < measured_gain <= n_aps, "gain must be in (0, N]")
    snr = db_to_linear(snr_db)
    log_k = (1.0 - measured_gain / n_aps) * np.log2(snr)
    return float(10.0 * np.log10(2.0**log_k))


def diversity_snr_gain_db(n_aps: int) -> float:
    """Coherent-combining SNR gain of §8: N^2 (amplitudes add)."""
    require(n_aps >= 1, "need at least one AP")
    return float(20.0 * np.log10(n_aps))


@dataclass
class GainModelFit:
    """Comparison of measured gains against the paper's model.

    Attributes:
        n_aps: AP counts.
        measured: Measured gains at each count.
        predicted: Model gains with the fitted K.
        k_db: The single conditioning penalty that best explains the data.
    """

    n_aps: np.ndarray
    measured: np.ndarray
    predicted: np.ndarray
    k_db: float

    def max_relative_error(self) -> float:
        return float(
            np.max(np.abs(self.predicted - self.measured) / self.measured)
        )

    def format_table(self) -> str:
        lines = [f"fitted conditioning penalty K = {self.k_db:.2f} dB",
                 "n_aps  measured  model"]
        for n, m, p in zip(self.n_aps, self.measured, self.predicted):
            lines.append(f"{n:5d}  {m:8.2f}  {p:5.2f}")
        return "\n".join(lines)


def fit_gain_model(
    n_aps: Sequence[int], measured_gains: Sequence[float], snr_db: float
) -> GainModelFit:
    """Fit the single-K gain model to measured gains across AP counts.

    Least squares over log K: each observation implies a K; the fit is the
    (gain-weighted) geometric mean.
    """
    n_aps = np.asarray(list(n_aps), dtype=int)
    measured = np.asarray(list(measured_gains), dtype=float)
    require(n_aps.size == measured.size and n_aps.size > 0, "mismatched inputs")
    ks = np.array(
        [implied_k_db(int(n), snr_db, float(g)) for n, g in zip(n_aps, measured)]
    )
    k_db = float(np.mean(ks))
    predicted = np.array(
        [megamimo_gain_model(int(n), snr_db, k_db) for n in n_aps]
    )
    return GainModelFit(n_aps=n_aps, measured=measured, predicted=predicted, k_db=k_db)


def paper_implied_k_summary() -> Dict[str, float]:
    """K values implied by the paper's own headline gains (for the record)."""
    return {
        "high (9.4x @ 10 APs, ~22 dB)": implied_k_db(10, 22.0, 9.4),
        "medium (9.1x @ 10 APs, ~15 dB)": implied_k_db(10, 15.0, 9.1),
        "low (8.1x @ 10 APs, ~9 dB)": implied_k_db(10, 9.0, 8.1),
    }
