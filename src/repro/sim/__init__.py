"""Network simulation and experiment harness.

``fastsim`` is a frequency-domain fast path (per-subcarrier channel
matrices + calibrated phase-error model) for the paper's 20-topology
parameter sweeps; it is cross-validated against the sample-level protocol
in the integration tests.  ``experiments`` has one runner per paper figure.
"""

from repro.sim.fastsim import (
    SyncErrorModel,
    build_channel_tensor,
    diversity_snr_db,
    draw_band_snrs,
    joint_zf_sinr_db,
)
from repro.sim.metrics import cdf_points, median_gain, summarize_throughput
from repro.sim.network import NetworkScenario, ScenarioConfig

__all__ = [
    "SyncErrorModel",
    "build_channel_tensor",
    "joint_zf_sinr_db",
    "diversity_snr_db",
    "draw_band_snrs",
    "NetworkScenario",
    "ScenarioConfig",
    "cdf_points",
    "median_gain",
    "summarize_throughput",
]
