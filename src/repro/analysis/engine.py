"""Lint engine: walk files, run every registered rule, apply suppressions.

The engine is deliberately runtime-free: it parses source text and never
imports the code under analysis, so it can gate broken or heavyweight
modules alike, and runs identically in CI and pre-commit contexts.

File paths inside :class:`Violation` records are stored POSIX-style and
relative to the lint *root* (default: the current working directory), which
is what keeps baseline fingerprints machine-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.registry import Rule, all_rules
from repro.analysis.source import ModuleSource, module_name_for
from repro.analysis.violations import Severity, Violation

#: Pseudo-rule id for files the parser rejects or that cannot be read.
SYNTAX_RULE_ID = "SYN001"


class LintRootError(ValueError):
    """A linted path lies outside the lint root.

    Fingerprints embed paths relative to the root; silently falling back to
    an absolute path would make them machine-dependent and defeat the
    baseline, so the engine refuses instead.
    """


@dataclass
class LintReport:
    """Outcome of one engine run (before any baseline comparison)."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: int = 0  #: hits silenced by ``# repro: noqa`` comments
    files_checked: int = 0
    files: List[str] = field(default_factory=list)  #: root-relative POSIX paths

    def by_severity(self, severity: Severity) -> List[Violation]:
        return [v for v in self.violations if v.severity is severity]

    def fingerprints(self) -> List[Tuple[Violation, str]]:
        """``(violation, fingerprint)`` pairs with stable occurrence indices.

        Identical ``(path, rule, line-text)`` triples are numbered in line
        order, so moving an offending line does not mint a new fingerprint
        but adding a second identical offence does.
        """
        counts: Dict[Tuple[str, str, str], int] = {}
        pairs: List[Tuple[Violation, str]] = []
        for violation in sorted(
            self.violations, key=lambda v: (v.path, v.line, v.col, v.rule)
        ):
            key = (violation.path, violation.rule, violation.text)
            occurrence = counts.get(key, 0)
            counts[key] = occurrence + 1
            pairs.append((violation, violation.fingerprint(occurrence)))
        return pairs


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through as-is)."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    yield candidate


def _relative_posix(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        raise LintRootError(
            f"{path} is outside the lint root {root}; run from the "
            f"repository root (or pass root=) so baseline fingerprints "
            f"stay machine-independent"
        ) from None


def lint_file(
    path: Path, root: Path, rules: Sequence[Rule]
) -> Tuple[List[Violation], int]:
    """Run ``rules`` over one file; returns (violations, suppressed count).

    A file that fails to parse — or cannot be read at all (permissions,
    non-UTF-8 bytes) — produces a single :data:`SYNTAX_RULE_ID` violation
    instead of aborting the run.
    """
    rel = _relative_posix(path, root)
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Violation(
                rule=SYNTAX_RULE_ID,
                severity=Severity.ERROR,
                path=rel,
                line=1,
                col=0,
                message=f"file cannot be read: {exc}",
                text="",
            )
        ], 0
    module = module_name_for(path.resolve().parts)
    try:
        src = ModuleSource.parse(rel, text, module=module)
    except SyntaxError as exc:
        lineno = exc.lineno or 1
        return [
            Violation(
                rule=SYNTAX_RULE_ID,
                severity=Severity.ERROR,
                path=rel,
                line=lineno,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
                text=(exc.text or "").strip(),
            )
        ], 0

    kept: List[Violation] = []
    suppressed = 0
    for rule in rules:
        for violation in rule.check(src):
            if src.suppressed(violation.line, violation.rule):
                suppressed += 1
            else:
                kept.append(violation)
    return kept, suppressed


def run_lint(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    rules: Optional[Iterable[Rule]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with the registered rules."""
    root = (root or Path.cwd()).resolve()
    active = list(rules) if rules is not None else all_rules()
    report = LintReport()
    for path in iter_python_files([Path(p) for p in paths]):
        violations, suppressed = lint_file(path, root, active)
        report.violations.extend(violations)
        report.suppressed += suppressed
        report.files_checked += 1
        report.files.append(_relative_posix(path, root))
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return report


def parse_snippet(
    text: str, module: str = "repro.core.snippet", path: str = "<snippet>"
) -> ModuleSource:
    """Parse an in-memory snippet as if it lived at ``module`` (test helper)."""
    return ModuleSource.parse(path, text, module=module)
