"""Command-line front end: ``repro lint`` / ``python -m repro.analysis``.

Exit codes:

* ``0`` — no violations outside the baseline (warnings reported but
  tolerated unless ``--strict``),
* ``1`` — new violations (any new ERROR; with ``--strict``, any new hit),
* ``2`` — configuration problems (unreadable baseline, no files).

The flag set is shared with the ``repro lint`` subcommand of the main CLI
through :func:`add_lint_arguments`, so both entry points stay in lockstep.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import IO, List, Optional

from repro.analysis import baseline as B
from repro.analysis import engine
from repro.analysis.registry import all_rules
from repro.analysis.violations import Severity, Violation

#: Where the committed debt-freeze lives (relative to the repo root).
DEFAULT_BASELINE = "tests/data/lint_baseline.json"

#: What ``repro lint`` checks when no paths are given.
DEFAULT_PATHS = ("src",)

EXIT_OK = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags (shared by ``repro lint`` and ``-m``)."""
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=DEFAULT_BASELINE,
        help=f"frozen-debt baseline JSON (default {DEFAULT_BASELINE}; "
             f"a missing file means an empty baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report and gate on every violation",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="freeze the current violations into --baseline and exit 0 "
             "(with explicit PATHs, entries for unlinted files are kept)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on new WARNING-severity hits too (the CI setting); "
             "ADVICE-level heuristics never gate",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def _format_rules() -> str:
    lines = [f"{'id':<8} {'severity':<8} {'family':<12} summary"]
    for rule in all_rules():
        lines.append(
            f"{rule.id:<8} {str(rule.severity):<8} {rule.family:<12} {rule.summary}"
        )
    return "\n".join(lines)


def gating_violations(
    violations: List[Violation], strict: bool
) -> List[Violation]:
    """The subset of ``violations`` that fails the run.

    ERROR always gates; WARNING gates only under ``--strict``; ADVICE
    (name-heuristic rules like NUM003) never gates.
    """
    return [
        v for v in violations
        if v.severity is Severity.ERROR
        or (strict and v.severity is Severity.WARNING)
    ]


def _text_report(
    result: B.GateResult, report: engine.LintReport, strict: bool,
    stream: IO[str],
) -> None:
    for violation in result.new:
        print(violation.format(), file=stream)
    gating = gating_violations(result.new, strict)
    tolerated = len(result.new) - len(gating)
    print(
        f"repro lint: {report.files_checked} files, "
        f"{len(result.new)} new ({len(gating)} gating, {tolerated} non-gating), "
        f"{len(result.accepted)} baselined, {len(result.stale)} stale "
        f"baseline entries, {report.suppressed} noqa-suppressed",
        file=stream,
    )
    if result.stale:
        print(
            "stale baseline entries (fixed debt) — refresh with "
            "--update-baseline:", file=stream,
        )
        for entry in result.stale:
            print(
                f"  {entry['path']}:{entry.get('line', '?')} "
                f"{entry['rule']} {entry.get('text', '')!r}",
                file=stream,
            )


def _json_report(
    result: B.GateResult, report: engine.LintReport, strict: bool,
    stream: IO[str],
) -> None:
    new_fps = {id(v) for v in result.new}
    payload = {
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "strict": strict,
        "counts": result.counts,
        "violations": [
            {**v.to_dict(), "fingerprint": fp, "new": id(v) in new_fps}
            for v, fp in report.fingerprints()
        ],
        "stale": result.stale,
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def run_lint_command(
    args: argparse.Namespace, stream: Optional[IO[str]] = None
) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    out: IO[str] = stream if stream is not None else sys.stdout
    if args.list_rules:
        print(_format_rules(), file=out)
        return EXIT_OK

    paths = [Path(p) for p in (args.paths or DEFAULT_PATHS)]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro lint: no such path: "
            f"{', '.join(str(p) for p in missing)}", file=sys.stderr,
        )
        return EXIT_USAGE

    try:
        report = engine.run_lint(paths)
    except engine.LintRootError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return EXIT_USAGE

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        preserve: Optional[B.Baseline] = None
        if args.paths:
            # Explicit path subset: refresh only the linted files' entries
            # and carry the frozen debt of every other file over unchanged.
            try:
                preserve = B.load_baseline(baseline_path)
            except B.BaselineError as exc:
                print(f"repro lint: {exc}", file=sys.stderr)
                return EXIT_USAGE
        frozen = B.write_baseline(baseline_path, report, preserve=preserve)
        kept = len(frozen) - sum(
            1 for _, fp in report.fingerprints() if fp in frozen
        )
        scope = (
            f" ({kept} entries outside the linted paths kept)"
            if preserve is not None else ""
        )
        print(
            f"baseline written to {baseline_path} "
            f"({len(frozen)} frozen violations){scope}", file=out,
        )
        return EXIT_OK

    if args.no_baseline:
        baseline = B.Baseline()
    else:
        try:
            baseline = B.load_baseline(baseline_path)
        except B.BaselineError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return EXIT_USAGE

    result = B.compare(report, baseline)
    if args.format == "json":
        _json_report(result, report, args.strict, out)
    else:
        _text_report(result, report, args.strict, out)

    gating = gating_violations(result.new, args.strict)
    return EXIT_VIOLATIONS if gating else EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based determinism/numerics/observability linter for the "
            "MegaMIMO reproduction (see docs/static_analysis.md)"
        ),
    )
    add_lint_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    args = build_parser().parse_args(argv)
    return run_lint_command(args)
