"""Parsed-module context handed to every lint rule.

A :class:`ModuleSource` bundles what a rule needs to reason about one file:
the AST, the raw lines, the dotted module name (``repro.phy.frame``) used
for path-scoped rules, per-line ``# repro: noqa[...]`` suppressions, and an
import-alias resolver so rules match *semantic* targets — ``np.random.seed``
is recognized whether numpy was imported as ``np``, imported bare, or its
submodule was imported directly.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

#: Matches ``# repro: noqa`` (suppress everything on the line) and
#: ``# repro: noqa[DET001,NUM001]`` (suppress the listed rules only).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9_,\s]+)\])?", re.IGNORECASE
)

#: Sentinel rule-set meaning "suppress every rule on this line".
SUPPRESS_ALL: FrozenSet[str] = frozenset({"*"})


def _scan_noqa(text: str) -> Dict[int, FrozenSet[str]]:
    """Per-line suppression sets parsed from comment tokens.

    Tokenizing (rather than regex-scanning raw lines) keeps ``noqa``-shaped
    text inside string literals from suppressing anything.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                suppressions[tok.start[0]] = SUPPRESS_ALL
            else:
                names = frozenset(
                    r.strip().upper() for r in rules.split(",") if r.strip()
                )
                if names:
                    suppressions[tok.start[0]] = names
    except tokenize.TokenError:
        # Unterminated string/bracket: ast.parse will report it; noqa
        # comments in a file that does not tokenize cannot help anyway.
        pass
    return suppressions


def dotted_name(node: ast.AST) -> Optional[str]:
    """The source-level dotted path of a Name/Attribute chain, or ``None``.

    ``np.random.seed`` -> ``"np.random.seed"``; anything rooted in a call,
    subscript or literal has no stable dotted path and yields ``None``.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def base_identifier(node: ast.AST) -> Optional[str]:
    """The root identifier a value expression hangs off, or ``None``.

    Peels attribute access and subscripts: ``channels[0].real`` ->
    ``"channels"``; ``self.precoder.real`` -> ``"precoder"`` (the attribute
    nearest the access is the semantically meaningful name for heuristics
    keyed on what a value *is called*).
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        # for self.channels / obj.channels, the attribute name is the label
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class ImportMap:
    """Local-name -> canonical dotted-path map built from import statements.

    ``import numpy as np`` binds ``np -> numpy``; ``from numpy.random
    import default_rng as rng_factory`` binds ``rng_factory ->
    numpy.random.default_rng``.  :meth:`resolve` rewrites a source dotted
    path through the map so rules compare against canonical module paths.
    """

    def __init__(self, tree: ast.AST, module: str = "") -> None:
        self.aliases: Dict[str, str] = {}
        package = module.rsplit(".", 1)[0] if "." in module else module
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # relative import: anchor at this module's package when
                    # known; otherwise the names stay unresolvable, which
                    # only costs a missed match, never a false positive.
                    if not package:
                        continue
                    anchor = package.split(".")
                    if node.level > 1:
                        anchor = anchor[: -(node.level - 1)]
                    base = ".".join(anchor + ([base] if base else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{base}.{alias.name}" if base else alias.name

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, or ``None``."""
        path = dotted_name(node)
        if path is None:
            return None
        head, _, rest = path.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head


@dataclass
class ModuleSource:
    """Everything the rules need to analyze one parsed module."""

    path: str  #: POSIX path relative to the lint root (fingerprint key).
    module: str  #: Dotted module name (``repro.phy.frame``) or ``""``.
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    noqa: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    imports: ImportMap = field(init=False)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.text.splitlines()
        self.imports = ImportMap(self.tree, self.module)

    @classmethod
    def parse(cls, path: str, text: str, module: str = "") -> "ModuleSource":
        """Parse ``text``; raises ``SyntaxError`` for unparsable input."""
        tree = ast.parse(text, filename=path)
        src = cls(path=path, module=module, text=text, tree=tree)
        src.noqa = _scan_noqa(text)
        return src

    def line_text(self, lineno: int) -> str:
        """The stripped source text of a 1-based line (``""`` off the end)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, lineno: int, rule: str) -> bool:
        """True when ``# repro: noqa`` on ``lineno`` covers ``rule``."""
        rules = self.noqa.get(lineno)
        if rules is None:
            return False
        return rules is SUPPRESS_ALL or "*" in rules or rule.upper() in rules

    def in_package(self, *prefixes: str) -> bool:
        """True when this module sits under any dotted package prefix."""
        for prefix in prefixes:
            if self.module == prefix or self.module.startswith(prefix + "."):
                return True
        return False


def module_name_for(path_parts: Tuple[str, ...]) -> str:
    """Derive a dotted module name from path components.

    Anchors at the *last* ``repro`` component so both installed trees and
    ``src/repro/...`` checkouts (and test fixtures that mimic them) map to
    the same module names.  Returns ``""`` when the file is not inside a
    ``repro`` package — path-scoped rules then simply do not apply.
    """
    parts = [p for p in path_parts if p]
    if "repro" not in parts:
        return ""
    idx = len(parts) - 1 - parts[::-1].index("repro")
    tail = list(parts[idx:])
    if not tail:
        return ""
    last = tail[-1]
    if last.endswith(".py"):
        tail[-1] = last[: -len(".py")]
    if tail[-1] == "__init__":
        tail.pop()
    return ".".join(tail)


#: Kernel packages where wall-clock and stdlib-random access is forbidden
#: (results must be pure functions of params + seed).  ``repro.obs`` and
#: ``repro.cli`` are intentionally outside this set: telemetry timestamps
#: and CLI wall-clock are features, not determinism leaks.
KERNEL_PACKAGES: Set[str] = {
    "repro.phy",
    "repro.channel",
    "repro.mac",
    "repro.sim",
    "repro.core",
    "repro.radio",
}
