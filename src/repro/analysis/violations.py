"""Violation records emitted by the static-analysis rules.

A :class:`Violation` pins one rule hit to a source location and carries a
content-addressed :meth:`~Violation.fingerprint` so the baseline file can
freeze existing debt without being invalidated by unrelated line-number
drift: the fingerprint hashes the *text* of the offending line (plus an
occurrence index for repeated identical lines), not its position.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Any, Dict


class Severity(enum.Enum):
    """How a rule hit is gated.

    ``ERROR`` violations fail ``repro lint`` when they are not in the
    baseline; ``WARNING`` violations are reported but only fail the run
    under ``--strict`` (the CI invocation); ``ADVICE`` violations are
    reported but never gate, even under ``--strict`` — the tier for name
    heuristics whose false positives would otherwise force ``noqa``
    comments onto legitimate code.
    """

    ERROR = "error"
    WARNING = "warning"
    ADVICE = "advice"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location.

    Attributes:
        rule: Rule identifier (e.g. ``DET001``).
        severity: Gate level of the owning rule.
        path: File path, POSIX-style and relative to the lint root, so
            fingerprints agree between CI and local runs.
        line: 1-based source line.
        col: 0-based column of the offending node.
        message: Human-readable description of this specific hit.
        text: The stripped source line, used for display and fingerprints.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    text: str

    def fingerprint(self, occurrence: int = 0) -> str:
        """Content-addressed identity of this violation.

        Two hits collide only when the same rule flags the same line text
        in the same file; ``occurrence`` disambiguates genuinely repeated
        identical lines (assigned in line order by the engine).
        """
        key = f"{self.path}::{self.rule}::{self.text}::{occurrence}"
        return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        """The canonical one-line rendering (``path:line:col: RULE ...``)."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"[{self.severity}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready rendering (used by ``--format json``)."""
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "text": self.text,
        }
