"""Pluggable rule registry for the ``repro lint`` analyzer.

A rule is a subclass of :class:`Rule` with a unique ``id``, a ``family``
(``determinism``/``rng``/``numerics``/``obs``), a :class:`Severity`, and a
``check`` method yielding :class:`Violation` records for one parsed module.
Decorating the class with :func:`register` makes it discoverable; the
engine instantiates every registered rule once per run.

Adding a rule is three steps (see ``docs/static_analysis.md``):

1. subclass :class:`Rule` in a module under ``repro.analysis.rules``,
2. decorate it with ``@register``,
3. add a flagged and a clean fixture under ``tests/analysis/fixtures/``
   (a meta-test fails the suite if either is missing).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Type

from repro.analysis.source import ModuleSource
from repro.analysis.violations import Severity, Violation


class Rule:
    """Base class for one static-analysis rule.

    Class attributes declare identity and gating; subclasses implement
    :meth:`check`.  Rules must be stateless across modules — the engine
    reuses one instance for the whole run.
    """

    #: Unique identifier, ``<FAMILY-PREFIX><NNN>`` (e.g. ``DET001``).
    id: str = ""
    #: Rule family, used for grouping in reports and docs.
    family: str = ""
    #: Gate level (see :class:`Severity`).
    severity: Severity = Severity.ERROR
    #: One-line description shown by ``repro lint --list-rules``.
    summary: str = ""

    def check(self, src: ModuleSource) -> Iterator[Violation]:
        """Yield every hit of this rule in ``src``."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for subclass typing

    def violation(
        self, src: ModuleSource, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(
            rule=self.id,
            severity=self.severity,
            path=src.path,
            line=line,
            col=col,
            message=message,
            text=src.line_text(line),
        )


#: id -> rule class, populated by :func:`register` at import time.
_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry.

    Raises ``ValueError`` on duplicate or malformed ids so a bad rule fails
    loudly at import time rather than silently shadowing another rule.
    """
    rule_id = rule_cls.id
    if not rule_id or not rule_id.isalnum() or not rule_id[0].isalpha():
        raise ValueError(f"rule {rule_cls.__name__} has invalid id {rule_id!r}")
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")
    if not rule_cls.summary or not rule_cls.family:
        raise ValueError(f"rule {rule_id} must declare summary and family")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def load_rules() -> None:
    """Import the built-in rule modules (idempotent)."""
    from repro.analysis import rules  # noqa: F401  (import registers rules)


def all_rules() -> List[Rule]:
    """One instance of every registered rule, ordered by id."""
    load_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    """Sorted ids of every registered rule."""
    load_rules()
    return sorted(_REGISTRY)
