"""Numerics rules: float-equality traps and silent complex-to-real casts.

MegaMIMO's phase math lives in complex channel estimates and precoder
weights; a silent ``.real`` or ``float()`` cast on one of those corrupts
phase information without raising, and exact ``==`` on floating-point
results is the classic cross-platform reproducibility trap.  Deliberate
exact comparisons (zero sentinels, disabled-path guards) stay possible via
``# repro: noqa[NUM001]`` with a short justification.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.registry import Rule, register
from repro.analysis.source import ModuleSource, base_identifier
from repro.analysis.violations import Severity

#: Value names treated as known-complex channel/precoder quantities.
_COMPLEX_NAME_RE = re.compile(
    r"(?i)(channel|csi|precod|beamform|steer|weight)|^(h|hs)$"
)

def _is_float_expr(src: ModuleSource, node: ast.AST) -> bool:
    """Conservative: True only when the expression is provably float/complex.

    Literals, arithmetic over literals, explicit ``float(...)`` casts and
    ``.real``/``.imag`` component reads qualify; bare names never do, so
    integer comparisons (`n == 0`) are never flagged.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (float, complex))
    if isinstance(node, ast.UnaryOp):
        return _is_float_expr(src, node.operand)
    if isinstance(node, ast.BinOp):
        return _is_float_expr(src, node.left) or _is_float_expr(src, node.right)
    if isinstance(node, ast.Call):
        path = src.imports.resolve(node.func)
        if path in ("float", "complex"):
            return True
        return path in (
            "numpy.float64", "numpy.float32", "numpy.float16", "numpy.longdouble",
        )
    if isinstance(node, ast.Attribute):
        return node.attr in ("real", "imag")
    return False


@register
class FloatEquality(Rule):
    """Exact ``==``/``!=`` on floating-point expressions."""

    id = "NUM001"
    family = "numerics"
    severity = Severity.ERROR
    summary = (
        "== / != on a float or complex expression; compare with "
        "np.isclose/tolerances (noqa a deliberate exact-zero sentinel)"
    )

    def check(self, src: ModuleSource) -> Iterator:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_expr(src, left) or _is_float_expr(src, right):
                    yield self.violation(
                        src, node,
                        "exact equality on a floating-point expression; use "
                        "np.isclose / an explicit tolerance, or mark a "
                        "deliberate sentinel with `# repro: noqa[NUM001]`",
                    )
                    break  # one report per comparison chain


@register
class NumpyMatrix(Rule):
    """``np.matrix`` is deprecated and changes ``*``/slicing semantics."""

    id = "NUM002"
    family = "numerics"
    severity = Severity.ERROR
    summary = "np.matrix is deprecated; use 2-D ndarrays with @ for matmul"

    def check(self, src: ModuleSource) -> Iterator:
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            if src.imports.resolve(node) == "numpy.matrix":
                yield self.violation(
                    src, node,
                    "numpy.matrix is deprecated and silently changes "
                    "operator semantics; use a 2-D ndarray and `@`",
                )


def _statement_of(parents: dict, node: ast.AST) -> Optional[ast.stmt]:
    """The innermost statement containing ``node``."""
    current: Optional[ast.AST] = node
    while current is not None and not isinstance(current, ast.stmt):
        current = parents.get(current)
    return current if isinstance(current, ast.stmt) else None


@register
class ComplexToRealCast(Rule):
    """Silent complex->real casts on channel/precoder values.

    ``h.real`` (or ``float(h)`` / ``np.real(h)``) on a channel estimate
    throws the quadrature component away without a trace; magnitude and
    phase reads must go through ``np.abs``/``np.angle``.  Reading ``.real``
    *paired with* ``.imag`` of the same value in the same statement is the
    legitimate I/Q-decomposition idiom (quantizers, serializers) and is not
    flagged.
    """

    id = "NUM003"
    family = "numerics"
    # ADVICE, not WARNING: the name heuristic below matches legitimate
    # real-valued identifiers (`weights`, a loop variable `h`), so this
    # rule must never gate CI — not even under --strict.
    severity = Severity.ADVICE
    summary = (
        ".real / float() on a channel/precoder value outside np.abs / "
        "np.angle (unpaired with .imag); drops phase silently"
    )

    def check(self, src: ModuleSource) -> Iterator:
        parents: dict = {}
        for parent in ast.walk(src.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent

        def paired_imag(base: ast.AST, node: ast.AST) -> bool:
            stmt = _statement_of(parents, node)
            if stmt is None:
                return False
            want = ast.dump(base)
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Attribute) and sub.attr == "imag":
                    if ast.dump(sub.value) == want:
                        return True
                if isinstance(sub, ast.Call):
                    if src.imports.resolve(sub.func) == "numpy.imag" and sub.args:
                        if ast.dump(sub.args[0]) == want:
                            return True
            return False

        for node in ast.walk(src.tree):
            if isinstance(node, ast.Attribute) and node.attr == "real":
                base = node.value
                name = base_identifier(base)
                if name and _COMPLEX_NAME_RE.search(name):
                    if not paired_imag(base, node):
                        yield self.violation(
                            src, node,
                            f"`.real` on {name!r} silently drops the "
                            f"quadrature component; use np.abs/np.angle "
                            f"(or read .real and .imag together)",
                        )
            elif isinstance(node, ast.Call):
                path = src.imports.resolve(node.func)
                if path == "float" and node.args:
                    target = node.args[0]
                elif path == "numpy.real" and node.args:
                    target = node.args[0]
                else:
                    continue
                name = base_identifier(target)
                if name and _COMPLEX_NAME_RE.search(name):
                    caster = "float()" if path == "float" else "np.real()"
                    if path == "numpy.real" and paired_imag(target, node):
                        continue
                    yield self.violation(
                        src, node,
                        f"{caster} on {name!r} silently drops the "
                        f"quadrature component; use np.abs/np.angle",
                    )
