"""Determinism rules: hidden entropy and RNG-discipline violations.

The sweep engine's bit-identical-results guarantee (``docs/parallelism.md``)
holds only while every kernel is a pure function of ``(params, seed)``.
These rules statically reject the ways that purity has historically been
broken: legacy global-state numpy RNG calls, unseeded generators constructed
outside the blessed seeding modules, stdlib ``random``/wall-clock reads
inside kernel packages, and functions that accept an ``rng`` yet construct
their own generator instead of threading the one they were given.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Union

from repro.analysis.registry import Rule, register
from repro.analysis.source import KERNEL_PACKAGES, ModuleSource
from repro.analysis.violations import Severity, Violation

#: Modules allowed to construct unseeded generators: the two RNG plumbing
#: points every other component is supposed to thread generators through.
RNG_PLUMBING_MODULES = frozenset({"repro.runtime.seeding", "repro.utils.rng"})

#: numpy.random attributes that are part of the *modern* Generator API and
#: therefore fine to reference; everything else on ``numpy.random`` is the
#: legacy global-state (or legacy RandomState) surface.
_MODERN_NP_RANDOM: Set[str] = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Canonical dotted paths that read wall-clock or date state.  Monotonic
#: duration clocks (``perf_counter``/``process_time``/``monotonic``) are
#: deliberately not listed: they cannot leak absolute time into results
#: and are what the tracer and progress meter legitimately use.
_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: Generator constructors a function holding an ``rng`` parameter must not
#: call (the rng must be threaded, not re-derived).
_GENERATOR_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
})


def _resolved_call(src: ModuleSource, node: ast.Call) -> Optional[str]:
    """Canonical dotted path of a call's callee, or ``None``."""
    return src.imports.resolve(node.func)


@register
class LegacyNumpyRandom(Rule):
    """Ban ``np.random.seed`` and the rest of the legacy RNG surface."""

    id = "DET001"
    family = "determinism"
    severity = Severity.ERROR
    summary = (
        "legacy numpy.random.* global-state call (seed/rand/randint/...); "
        "use a threaded numpy.random.Generator"
    )

    def check(self, src: ModuleSource) -> Iterator:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            path = _resolved_call(src, node)
            if path is None or not path.startswith("numpy.random."):
                continue
            attr = path[len("numpy.random."):]
            # only flag direct attributes of numpy.random: a method call on
            # a Generator (rng.normal) never resolves to numpy.random.*
            if "." in attr or attr in _MODERN_NP_RANDOM:
                continue
            yield self.violation(
                src, node,
                f"call to legacy global-state numpy.random.{attr}(); "
                f"thread a numpy.random.Generator instead",
            )


@register
class UnseededDefaultRng(Rule):
    """Unseeded ``default_rng()`` anywhere but the RNG plumbing modules."""

    id = "DET002"
    family = "determinism"
    severity = Severity.ERROR
    summary = (
        "unseeded default_rng() outside repro.runtime.seeding / "
        "repro.utils.rng; derive seeds through the seeding module"
    )

    def check(self, src: ModuleSource) -> Iterator:
        if src.module in RNG_PLUMBING_MODULES:
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            if _resolved_call(src, node) != "numpy.random.default_rng":
                continue
            if node.args or any(kw.arg == "seed" for kw in node.keywords):
                continue
            yield self.violation(
                src, node,
                "unseeded default_rng() pulls OS entropy; derive the stream "
                "from repro.runtime.seeding (or accept an rng argument)",
            )


@register
class StdlibRandomInKernel(Rule):
    """Stdlib ``random`` has process-global state; ban it in kernels."""

    id = "DET003"
    family = "determinism"
    severity = Severity.ERROR
    summary = (
        "stdlib random.* used inside a kernel package "
        "(phy/channel/mac/sim/core/radio); use the threaded numpy Generator"
    )

    def check(self, src: ModuleSource) -> Iterator:
        if not src.in_package(*KERNEL_PACKAGES):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            path = _resolved_call(src, node)
            if path is None:
                continue
            if path == "random" or path.startswith("random."):
                yield self.violation(
                    src, node,
                    f"stdlib {path}() shares hidden global state across the "
                    f"process; kernels must draw from their rng parameter",
                )


@register
class WallClockInKernel(Rule):
    """Wall-clock reads make kernel output depend on when it ran."""

    id = "DET004"
    family = "determinism"
    severity = Severity.ERROR
    summary = (
        "wall-clock read (time.time/datetime.now/...) inside a kernel "
        "package; use perf_counter for durations, params for timestamps"
    )

    def check(self, src: ModuleSource) -> Iterator:
        if not src.in_package(*KERNEL_PACKAGES):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            path = _resolved_call(src, node)
            if path in _WALL_CLOCK_CALLS:
                yield self.violation(
                    src, node,
                    f"{path}() reads the wall clock inside a kernel package; "
                    f"durations belong to time.perf_counter(), absolute "
                    f"times belong in explicit parameters",
                )


class _RngFunctionVisitor(ast.NodeVisitor):
    """Collects generator constructions inside functions taking ``rng``."""

    def __init__(self, rule: "RederivedRng", src: ModuleSource) -> None:
        self.rule = rule
        self.src = src
        self.hits: List[Violation] = []

    def _check_function(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        args = node.args
        names = {
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        }
        if "rng" in names:
            self._scan_body(node)
        # nested functions are visited on their own terms either way
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    visit_FunctionDef = _check_function
    visit_AsyncFunctionDef = _check_function

    def _scan_body(self, func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        """Flag generator constructions in ``func``, skipping nested defs."""
        stack = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # a nested def is scanned by its own visit
            if isinstance(node, ast.Call):
                path = self.src.imports.resolve(node.func)
                if path in _GENERATOR_CONSTRUCTORS:
                    self.hits.append(
                        self.rule.violation(
                            self.src, node,
                            f"function takes an `rng` parameter but builds "
                            f"its own generator via {path}(); thread the "
                            f"rng it was given (ensure_rng(rng) to coerce)",
                        )
                    )
            stack.extend(ast.iter_child_nodes(node))


@register
class RederivedRng(Rule):
    """A function given an ``rng`` must use it, not re-derive its own."""

    id = "RNG001"
    family = "rng"
    severity = Severity.ERROR
    summary = (
        "function with an `rng` parameter constructs its own generator; "
        "rng streams must be threaded, not re-derived"
    )

    def check(self, src: ModuleSource) -> Iterator:
        if src.module in RNG_PLUMBING_MODULES:
            return
        visitor = _RngFunctionVisitor(self, src)
        visitor.visit(src.tree)
        yield from visitor.hits
