"""Observability-hygiene rules: span lifecycles and metric naming.

The tracer's span records are only exception-safe when spans are entered
through ``with`` (``Span.__exit__`` emits the record; a span that is never
exited is silently lost, and one exited manually can mis-nest the stack).
Metric names must follow the registered ``dotted.name`` convention —
``component.metric`` lowercase with underscores — because the summarizer's
glob filters, the OpenMetrics exporter and the regression gate all key on
that shape (see ``docs/observability.md``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set

from repro.analysis.registry import Rule, register
from repro.analysis.source import ModuleSource, dotted_name
from repro.analysis.violations import Severity

#: The registered metric-name convention: at least two lowercase dotted
#: segments, e.g. ``mac.arq.retries`` or ``phasesync.cfo_residual_hz``.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Registry accessors whose first argument is a metric name.
_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram", "timer"})


def _is_tracer_base(src: ModuleSource, node: ast.AST) -> bool:
    """Heuristic: does this expression look like a tracer handle?

    Matches the module-level ``trace`` singleton (however imported), any
    ``*tracer*``-named local, and attribute chains ending in a tracer.
    """
    path = src.imports.resolve(node) or dotted_name(node) or ""
    leaf = path.rsplit(".", 1)[-1].lower()
    return "trace" in leaf or "tracer" in path.lower()


@register
class SpanOutsideWith(Rule):
    """Tracer spans must be opened via ``with`` so exit always records."""

    id = "OBS001"
    family = "obs"
    severity = Severity.ERROR
    summary = (
        "tracer .span(...) opened outside a `with` block; spans must be "
        "context-managed so their records survive exceptions"
    )

    def check(self, src: ModuleSource) -> Iterator:
        with_contexts: Set[int] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_contexts.add(id(item.context_expr))
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "span"):
                continue
            if not _is_tracer_base(src, func.value):
                continue
            if id(node) in with_contexts:
                continue
            yield self.violation(
                src, node,
                "span opened outside `with`; use `with trace.span(...) as "
                "sp:` so the record is emitted even when the body raises",
            )


@register
class MetricNameConvention(Rule):
    """Literal metric names must follow the ``dotted.name`` convention."""

    id = "OBS002"
    family = "obs"
    severity = Severity.ERROR
    summary = (
        "metric registered with a name outside the dotted.name convention "
        "(lowercase component.metric); breaks glob filters and exporters"
    )

    def check(self, src: ModuleSource) -> Iterator:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _METRIC_FACTORIES
            ):
                continue
            base = src.imports.resolve(func.value) or dotted_name(func.value) or ""
            leaf = base.rsplit(".", 1)[-1].lower()
            if not ("metrics" in leaf or "registry" in leaf):
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if not (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
            ):
                continue  # dynamic names are the caller's responsibility
            if METRIC_NAME_RE.match(name_arg.value):
                continue
            yield self.violation(
                src, node,
                f"metric name {name_arg.value!r} does not match the "
                f"dotted.name convention (lowercase `component.metric`); "
                f"see docs/observability.md",
            )


@register
class AdHocPerfCounterTiming(Rule):
    """Timing should flow through obs, not ad-hoc ``perf_counter`` pairs.

    A ``t0 = time.perf_counter()`` / ``elapsed = perf_counter() - t0``
    pair measures a duration and then strands it in a local variable:
    invisible to traces, metrics snapshots, the ledger and the profiler.
    ``trace.span(...)`` or ``metrics.timer(...)`` capture the same number
    *and* land it in telemetry.  Advice-only — :mod:`repro.obs` itself is
    exempt (it is the implementation of those timers), and benchmarks that
    deliberately want a raw stopwatch can suppress per line.
    """

    id = "OBS003"
    family = "obs"
    severity = Severity.ADVICE
    summary = (
        "ad-hoc time.perf_counter() timing outside repro.obs; prefer "
        "trace.span(...) or metrics.timer(...) so the measurement lands "
        "in telemetry"
    )

    def check(self, src: ModuleSource) -> Iterator:
        if src.in_package("repro.obs"):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            if src.imports.resolve(node.func) != "time.perf_counter":
                continue
            yield self.violation(
                src, node,
                "ad-hoc perf_counter timing; wrap the region in "
                "`with trace.span(...)` or use `metrics.timer(...)` so the "
                "duration is recorded, not stranded in a local",
            )


@register
class AlertRuleNameConvention(Rule):
    """Alert-rule names should follow the same ``domain.metric`` shape.

    Alert rules (:class:`repro.obs.alerts.AlertRule`) land in ledger
    alarms, trace events and the ``/alerts`` endpoint next to metric
    names; a rule named ``PhaseBudget!`` breaks the same glob filters and
    family grouping OBS002 protects for metrics.  Rules declared in TOML
    get the equivalent check at load time (``alerts.load_rules`` warns);
    this covers the python call sites.  Advice-only: experimental rule
    names in notebooks/scripts should nag, not gate.
    """

    id = "OBS004"
    family = "obs"
    severity = Severity.ADVICE
    summary = (
        "alert rule named outside the dotted domain.metric convention "
        "(lowercase `domain.metric`, like metric names under OBS002)"
    )

    def check(self, src: ModuleSource) -> Iterator:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            path = src.imports.resolve(func) or dotted_name(func) or ""
            if path.rsplit(".", 1)[-1] != "AlertRule":
                continue
            name_node = None
            for kw in node.keywords:
                if kw.arg == "name":
                    name_node = kw.value
                    break
            if name_node is None and node.args:
                name_node = node.args[0]
            if not (
                isinstance(name_node, ast.Constant)
                and isinstance(name_node.value, str)
            ):
                continue  # dynamic names are checked at construction time
            if METRIC_NAME_RE.match(name_node.value):
                continue
            yield self.violation(
                src, node,
                f"alert rule name {name_node.value!r} does not match the "
                f"dotted domain.metric convention; alarms and /alerts "
                f"group by that shape (see docs/static_analysis.md)",
            )


@register
class SwallowedException(Rule):
    """Observability/runtime plumbing must not drop exceptions silently.

    A bare ``except ...: pass`` in the obs stack or the sweep runtime is
    exactly the failure mode the flight recorder and crash bundles exist
    to eliminate: telemetry that dies without a trace.  Handlers there
    must log what they dropped (debug level is fine for best-effort
    paths) or re-raise.  Scoped to :mod:`repro.obs` and
    :mod:`repro.runtime`; advice-only, since a deliberate swallow with a
    justifying comment plus ``# repro: noqa[OBS005]`` is sometimes the
    right call (e.g. a client that vanished mid-response).
    """

    id = "OBS005"
    family = "obs"
    severity = Severity.ADVICE
    summary = (
        "exception handler swallows the error without logging "
        "(`except ...: pass`) inside obs/runtime plumbing"
    )

    def check(self, src: ModuleSource) -> Iterator:
        if not src.in_package("repro.obs", "repro.runtime"):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            body_is_silent = all(
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                )
                for stmt in node.body
            )
            if not body_is_silent:
                continue
            yield self.violation(
                src, node.body[0],
                "exception caught and silently dropped; log it (debug "
                "level is fine) or re-raise — silent failures in the "
                "telemetry path are invisible exactly when they matter",
            )
