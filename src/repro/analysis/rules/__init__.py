"""Built-in rule families for ``repro lint``.

Importing this package registers every shipped rule with
:mod:`repro.analysis.registry`.  Third-party or experiment-local rules can
``@register`` additional :class:`~repro.analysis.registry.Rule` subclasses
before invoking the engine.
"""

from repro.analysis.rules import determinism, numerics, obs

__all__ = ["determinism", "numerics", "obs"]
