"""``python -m repro.analysis`` — run the lint gate standalone."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
