"""Baseline file: freeze existing lint debt, fail only on new violations.

The committed baseline (``tests/data/lint_baseline.json``) records a
fingerprint for every violation that existed when the gate was introduced.
``repro lint`` then fails only on violations *not* in the baseline, so the
gate can be adopted without a flag-day cleanup while still preventing any
new debt.  ``repro lint --update-baseline`` re-freezes the current state
(use it after deliberately fixing or accepting debt; review the diff).

Fingerprints hash ``(path, rule, offending line text, occurrence index)``
— see :meth:`repro.analysis.violations.Violation.fingerprint` — so
unrelated edits that shift line numbers do not churn the file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.analysis.engine import LintReport
from repro.analysis.violations import Violation

#: Schema marker so a future format change can migrate old files.
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


@dataclass
class Baseline:
    """The set of accepted (frozen) violation fingerprints."""

    entries: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    path: Optional[str] = None

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class GateResult:
    """Baseline comparison outcome consumed by the CLI and tests."""

    new: List[Violation] = field(default_factory=list)
    accepted: List[Violation] = field(default_factory=list)
    stale: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        return {
            "new": len(self.new),
            "accepted": len(self.accepted),
            "stale": len(self.stale),
        }


def load_baseline(path: Path) -> Baseline:
    """Load a baseline file; raises :class:`BaselineError` when unusable.

    A missing file is *not* an error — it means "empty baseline" so the
    gate works out of the box on fresh checkouts and fixture trees.
    """
    if not path.exists():
        return Baseline(path=str(path))
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or "entries" not in data:
        raise BaselineError(f"baseline {path} has no 'entries' object")
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has version {version!r}; "
            f"this tool reads version {BASELINE_VERSION}"
        )
    entries = data["entries"]
    if not isinstance(entries, dict):
        raise BaselineError(f"baseline {path} 'entries' must be an object")
    return Baseline(entries=dict(entries), path=str(path))


def write_baseline(
    path: Path, report: LintReport, preserve: Optional[Baseline] = None
) -> Baseline:
    """Freeze every violation in ``report`` into the baseline at ``path``.

    When ``preserve`` is given (a previously loaded baseline), entries for
    files the report did *not* lint are carried over unchanged.  The CLI
    uses this for ``--update-baseline`` with an explicit path subset, so
    refreshing one file's debt never silently discards the frozen debt of
    every unlinted file.
    """
    entries: Dict[str, Dict[str, Any]] = {}
    if preserve is not None:
        linted = set(report.files)
        for fingerprint, entry in preserve.entries.items():
            if entry.get("path") not in linted:
                entries[fingerprint] = dict(entry)
    for violation, fingerprint in report.fingerprints():
        entries[fingerprint] = {
            "rule": violation.rule,
            "path": violation.path,
            "line": violation.line,
            "text": violation.text,
        }
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Frozen repro-lint debt: violations listed here do not fail the "
            "gate. Regenerate with `repro lint --update-baseline` and review "
            "the diff; see docs/static_analysis.md."
        ),
        "entries": entries,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return Baseline(entries=entries, path=str(path))


def compare(report: LintReport, baseline: Baseline) -> GateResult:
    """Split a report into new vs. baseline-accepted violations.

    Also surfaces *stale* baseline entries (debt that no longer exists) so
    fixed violations can be retired from the file.
    """
    result = GateResult()
    seen = set()
    for violation, fingerprint in report.fingerprints():
        seen.add(fingerprint)
        if fingerprint in baseline:
            result.accepted.append(violation)
        else:
            result.new.append(violation)
    for fingerprint, entry in sorted(baseline.entries.items()):
        if fingerprint not in seen:
            result.stale.append({"fingerprint": fingerprint, **entry})
    return result
