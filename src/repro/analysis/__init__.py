"""Static analysis for the reproduction's code-level invariants.

``repro lint`` (also ``python -m repro.analysis``) runs an AST-based
analyzer over the source tree and enforces, *before the code ever runs*,
the invariants the runtime stack can only observe after the fact:

* **determinism** — no legacy global-state numpy RNG, no unseeded
  generators outside the seeding plumbing, no stdlib ``random`` or
  wall-clock reads inside kernel packages (``DET001``-``DET004``);
* **rng discipline** — functions that accept an ``rng`` must thread it,
  never re-derive their own stream (``RNG001``);
* **numerics** — no exact float equality, no ``np.matrix``, no silent
  complex-to-real casts on channel/precoder values (``NUM001``-``NUM003``);
* **obs hygiene** — spans context-managed, metric names following the
  ``dotted.name`` convention (``OBS001``-``OBS002``).

Violations can be suppressed per line with ``# repro: noqa[RULE]`` and
pre-existing debt is frozen in ``tests/data/lint_baseline.json``; see
``docs/static_analysis.md`` for the full rule catalog and workflow.
"""

from repro.analysis.baseline import (
    Baseline,
    BaselineError,
    GateResult,
    compare,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    LintReport,
    LintRootError,
    lint_file,
    parse_snippet,
    run_lint,
)
from repro.analysis.registry import Rule, all_rules, register, rule_ids
from repro.analysis.source import ImportMap, ModuleSource
from repro.analysis.violations import Severity, Violation

__all__ = [
    "Baseline",
    "BaselineError",
    "GateResult",
    "ImportMap",
    "LintReport",
    "LintRootError",
    "ModuleSource",
    "Rule",
    "Severity",
    "Violation",
    "all_rules",
    "compare",
    "lint_file",
    "load_baseline",
    "parse_snippet",
    "register",
    "rule_ids",
    "run_lint",
    "write_baseline",
]
