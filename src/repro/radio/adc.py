"""Receiver quantization: AGC + fixed-point ADC.

The USRP2's ADC digitizes 14 bits; consumer Wi-Fi chips use 8-10.  An AGC
scales the analog signal so the ADC's range is well used: too little gain
buries the signal in quantization noise, too much clips.  The sample-level
receive paths are otherwise infinitely precise, so this model bounds how
much fidelity that idealization buys (spoiler: at 10+ bits, nothing the
protocol can notice — which matches the paper running on 14-bit USRPs
without mention of quantization).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import linear_to_db
from repro.utils.validation import require


@dataclass
class AdcConfig:
    """ADC parameters.

    Attributes:
        bits: Resolution per real dimension (14 = USRP2-class).
        target_backoff_db: AGC headroom — the RMS level is placed this far
            below full scale so Gaussian-ish peaks rarely clip (OFDM PAPR
            is ~10 dB; 12 dB backoff keeps clipping below 1e-4).
    """

    bits: int = 14
    target_backoff_db: float = 12.0

    def __post_init__(self):
        require(2 <= self.bits <= 24, "ADC resolution out of range")


class AutomaticGainControl:
    """Block AGC: scale a capture so its RMS sits at the target backoff."""

    def __init__(self, config: AdcConfig = None):
        self.config = config or AdcConfig()

    def gain_for(self, samples: np.ndarray) -> float:
        """Linear gain placing the capture's RMS at the backoff point."""
        samples = np.asarray(samples, dtype=complex)
        rms = float(np.sqrt(np.mean(np.abs(samples) ** 2)))
        require(rms > 0, "silent capture")
        target_rms = 10.0 ** (-self.config.target_backoff_db / 20.0)
        return target_rms / rms


class AdcModel:
    """Quantize a complex capture through an AGC + fixed-point ADC.

    Full scale is +-1.0 per real dimension after AGC.  Returns the
    digitized samples re-scaled back to the input's level, so downstream
    processing is unchanged apart from quantization/clipping artifacts.
    """

    def __init__(self, config: AdcConfig = None):
        self.config = config or AdcConfig()
        self.agc = AutomaticGainControl(self.config)
        self.last_clip_fraction = 0.0

    def digitize(self, samples: np.ndarray) -> np.ndarray:
        """AGC + quantize + clip; output at the input's original scale."""
        samples = np.asarray(samples, dtype=complex)
        if samples.size == 0:
            return samples.copy()
        gain = self.agc.gain_for(samples)
        scaled = samples * gain
        levels = (1 << (self.config.bits - 1)) - 1

        def q(x):
            clipped = np.clip(x, -1.0, 1.0)
            return np.round(clipped * levels) / levels

        self.last_clip_fraction = float(
            np.mean(
                (np.abs(scaled.real) > 1.0) | (np.abs(scaled.imag) > 1.0)
            )
        )
        return (q(scaled.real) + 1j * q(scaled.imag)) / gain

    def quantization_snr_db(self, samples: np.ndarray) -> float:
        """Measured SNR of the digitized capture vs. the analog input."""
        samples = np.asarray(samples, dtype=complex)
        out = self.digitize(samples)
        err = float(np.mean(np.abs(out - samples) ** 2))
        sig = float(np.mean(np.abs(samples) ** 2))
        if err == 0.0:  # repro: noqa[NUM001] exact zero = lossless digitization
            return float("inf")
        return float(linear_to_db(sig / err))
