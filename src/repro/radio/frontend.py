"""Transmit/receive front-end: power scaling and sampling-clock skew.

Carrier rotation is applied by the medium (it needs both endpoints'
oscillators); the front-end owns what a single radio does alone — scaling to
its power limit and emitting samples on its own, slightly-off DAC clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.oscillator import Oscillator
from repro.utils.validation import require


def apply_sfo(samples: np.ndarray, ppm: float) -> np.ndarray:
    """Resample a stream emitted by a DAC whose clock is off by ``ppm``.

    A transmitter whose crystal runs fast by ``ppm`` emits its waveform
    compressed in real time: the receiver (sampling on its own clock) sees
    x(t * (1 + ppm*1e-6)).  Linear interpolation suffices because the skew
    is a few parts per million.
    """
    samples = np.asarray(samples, dtype=complex)
    if samples.size == 0 or ppm == 0.0:  # repro: noqa[NUM001] exact zero = skew disabled
        return samples.copy()
    ratio = 1.0 + ppm * 1e-6
    positions = np.arange(samples.size) * ratio
    positions = np.clip(positions, 0, samples.size - 1)
    base = np.arange(samples.size)
    real = np.interp(positions, base, samples.real)
    imag = np.interp(positions, base, samples.imag)
    return real + 1j * imag


@dataclass
class RadioFrontend:
    """One node's radio: its oscillator, power limit and SFO behaviour.

    Attributes:
        node_id: Medium node identifier.
        oscillator: The node's free-running oscillator.
        max_power: Per-node average transmit power constraint (the paper's
            beamforming normalization k enforces this jointly).
        model_sfo: Whether to apply sampling-clock skew on transmit.  The
            carrier-phase effect of the shared crystal is always modelled by
            the oscillator; this flag adds the (much smaller) sample-timing
            skew.
    """

    node_id: str
    oscillator: Oscillator
    max_power: float = 1.0
    model_sfo: bool = True

    def prepare_transmit(self, samples: np.ndarray, enforce_power: bool = True) -> np.ndarray:
        """Apply power limiting and DAC clock skew to outgoing samples."""
        samples = np.asarray(samples, dtype=complex)
        if enforce_power and samples.size:
            power = float(np.mean(np.abs(samples) ** 2))
            if power > self.max_power:
                samples = samples * np.sqrt(self.max_power / power)
        if self.model_sfo:
            samples = apply_sfo(samples, self.oscillator.ppm_offset)
        return samples

    def average_power(self, samples: np.ndarray) -> float:
        samples = np.asarray(samples, dtype=complex)
        require(samples.size > 0, "no samples")
        return float(np.mean(np.abs(samples) ** 2))
