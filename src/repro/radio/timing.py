"""Trigger-based time synchronization (SourceSync [30] stand-in).

The paper's USRP implementation has the lead AP emit a trigger; every slave
logs the trigger timestamp, adds a fixed turnaround delay t_delta = 150 us,
and transmits at that instant (§10a).  SourceSync gets residual timing error
down to "a few nanoseconds" — far inside the 1.6 us cyclic prefix at 10 MHz
— so timing error shows up only as a per-AP linear phase across subcarriers
that channel measurement absorbs (§5.2, footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import TRIGGER_TURNAROUND_S
from repro.utils.rng import ensure_rng


@dataclass
class TimingConfig:
    """Timing-synchronization quality parameters.

    Attributes:
        turnaround_s: Fixed delay between the lead trigger and the joint
            transmission start (150 us in the paper's implementation).
        jitter_std_s: Residual per-node timing error of the SourceSync-style
            scheme (a few nanoseconds).
    """

    turnaround_s: float = TRIGGER_TURNAROUND_S
    jitter_std_s: float = 5e-9


class TriggerTimer:
    """Computes when each node actually starts its joint transmission."""

    def __init__(self, config: TimingConfig = None, rng=None):
        self.config = config or TimingConfig()
        self._rng = ensure_rng(rng)

    def joint_start_time(self, trigger_time: float) -> float:
        """Nominal joint transmission start for a trigger at ``trigger_time``."""
        return trigger_time + self.config.turnaround_s

    def node_start_time(self, trigger_time: float) -> float:
        """Actual start time for one node, including its timing jitter."""
        jitter = float(self._rng.normal(0.0, self.config.jitter_std_s))
        return self.joint_start_time(trigger_time) + jitter
