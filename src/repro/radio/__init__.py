"""Radio front-end models: TX/RX chains and trigger-based time sync.

Stands in for the USRP2 hardware of the paper's testbed: digital-to-analog
sample clocks with ppm skew, transmit power scaling, and the timestamp/
trigger mechanism used to start joint transmissions at the same instant
(§10a, building on SourceSync [30] for symbol-level time sync).
"""

from repro.radio.frontend import RadioFrontend, apply_sfo
from repro.radio.timing import TriggerTimer, TimingConfig

__all__ = ["RadioFrontend", "apply_sfo", "TriggerTimer", "TimingConfig"]
