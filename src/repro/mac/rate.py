"""Effective-SNR bitrate selection (Halperin et al. [13], used by §9).

Frequency-selective channels make average SNR a poor rate predictor; the
effective-SNR algorithm instead:

1. computes the uncoded bit error rate *per subcarrier* from that
   subcarrier's SNR and the candidate modulation,
2. averages BER across subcarriers, and
3. inverts the BER formula to get the *effective SNR* — the SNR of the flat
   channel that would produce the same average BER,

then picks the fastest MCS whose effective SNR clears its threshold.  In
MegaMIMO the APs know the post-beamforming signal strength k^2 in each
subcarrier and the client-reported noise N, "so they can compute the SNR in
each subcarrier as k^2/N.  They can then map this set of SNRs to rate by
performing a table lookup" (§9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.special import erfc, erfcinv

from repro.phy.mcs import ALL_MCS, Mcs
from repro.utils.units import db_to_linear, linear_to_db
from repro.utils.validation import require


def _qfunc(x):
    return 0.5 * erfc(np.asarray(x, dtype=float) / np.sqrt(2.0))


def _qfunc_inv(p):
    p = np.clip(np.asarray(p, dtype=float), 1e-300, 1 - 1e-12)
    return np.sqrt(2.0) * erfcinv(2.0 * p)


def ber_for_modulation(snr_linear, bits_per_symbol: int) -> np.ndarray:
    """Uncoded BER of Gray-coded BPSK/QPSK/M-QAM at the given symbol SNR."""
    snr_linear = np.maximum(np.asarray(snr_linear, dtype=float), 0.0)
    if bits_per_symbol == 1:  # BPSK
        return _qfunc(np.sqrt(2.0 * snr_linear))
    if bits_per_symbol == 2:  # QPSK
        return _qfunc(np.sqrt(snr_linear))
    # square M-QAM nearest-neighbour approximation
    m = 2.0**bits_per_symbol
    coef = 4.0 / bits_per_symbol * (1.0 - 1.0 / np.sqrt(m))
    arg = np.sqrt(3.0 * snr_linear / (m - 1.0))
    return coef * _qfunc(arg)


def snr_for_ber(ber, bits_per_symbol: int) -> np.ndarray:
    """Inverse of :func:`ber_for_modulation` (the effective SNR mapping)."""
    ber = np.asarray(ber, dtype=float)
    if bits_per_symbol == 1:
        return _qfunc_inv(ber) ** 2 / 2.0
    if bits_per_symbol == 2:
        return _qfunc_inv(ber) ** 2
    m = 2.0**bits_per_symbol
    coef = 4.0 / bits_per_symbol * (1.0 - 1.0 / np.sqrt(m))
    arg = _qfunc_inv(np.minimum(ber / coef, 0.5))
    return arg**2 * (m - 1.0) / 3.0


def effective_snr_db(subcarrier_snr_db, bits_per_symbol: int) -> float:
    """Effective SNR (dB) of a set of per-subcarrier SNRs for one modulation."""
    snrs = db_to_linear(np.atleast_1d(subcarrier_snr_db))
    bers = ber_for_modulation(snrs, bits_per_symbol)
    mean_ber = float(np.mean(bers))
    return float(linear_to_db(snr_for_ber(mean_ber, bits_per_symbol)))


def select_mcs_for_snr(snr_db: float) -> Optional[Mcs]:
    """Fastest MCS whose threshold a flat SNR clears; None below all."""
    best = None
    for mcs in ALL_MCS:
        if snr_db >= mcs.min_snr_db:
            best = mcs
    return best


@dataclass
class RateDecision:
    """Output of the rate selector.

    Attributes:
        mcs: Chosen MCS, or None if even the slowest one won't hold.
        effective_snr_db: Effective SNR for the chosen MCS's modulation
            (for the base modulation when no MCS qualifies).
        bitrate: PHY bitrate in bits/s (0 when no MCS qualifies).
    """

    mcs: Optional[Mcs]
    effective_snr_db: float
    bitrate: float


class EffectiveSnrRateSelector:
    """Maps per-subcarrier SNRs to an MCS via the effective-SNR lookup.

    Args:
        sample_rate: Channel sample rate, which fixes the bitrate scale
            (10 MHz -> 3..27 Mbps; 20 MHz -> 6..54 Mbps per stream).
        mac_efficiency: Fraction of the PHY rate surviving MAC overheads;
            applied by :meth:`goodput` only.
    """

    def __init__(self, sample_rate: float, mac_efficiency: float = 1.0):
        require(sample_rate > 0, "sample rate must be positive")
        self.sample_rate = float(sample_rate)
        self.mac_efficiency = float(mac_efficiency)

    def select(self, subcarrier_snr_db) -> RateDecision:
        """Choose the fastest sustainable MCS for these per-subcarrier SNRs."""
        subcarrier_snr_db = np.atleast_1d(np.asarray(subcarrier_snr_db, dtype=float))
        best: Optional[Mcs] = None
        best_eff = effective_snr_db(subcarrier_snr_db, 1)
        for mcs in ALL_MCS:
            eff = effective_snr_db(subcarrier_snr_db, mcs.bits_per_subcarrier)
            if eff >= mcs.min_snr_db:
                best = mcs
                best_eff = eff
        if best is None:
            return RateDecision(mcs=None, effective_snr_db=best_eff, bitrate=0.0)
        return RateDecision(
            mcs=best,
            effective_snr_db=best_eff,
            bitrate=best.bitrate(self.sample_rate),
        )

    def goodput(self, subcarrier_snr_db) -> float:
        """Bitrate after MAC overhead for these per-subcarrier SNRs (bits/s)."""
        return self.select(subcarrier_snr_db).bitrate * self.mac_efficiency

    def goodput_batch(self, subcarrier_snr_db: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`goodput` over a stack of per-subcarrier rows.

        ``subcarrier_snr_db`` has shape (..., n_bins); the return value has
        shape (...,).  The MCS walk mirrors :meth:`select` — every MCS is
        evaluated in ``ALL_MCS`` order and the last qualifying one wins —
        with the per-row effective-SNR lookup replaced by one elementwise
        pass per MCS, so each row's decision is bit-identical to the scalar
        selector's.
        """
        rows = np.asarray(subcarrier_snr_db, dtype=float)
        require(rows.ndim >= 1, "need at least one subcarrier axis")
        snrs = db_to_linear(rows)
        bitrate = np.zeros(rows.shape[:-1])
        for mcs in ALL_MCS:
            bers = ber_for_modulation(snrs, mcs.bits_per_subcarrier)
            mean_ber = np.mean(bers, axis=-1)
            eff = linear_to_db(snr_for_ber(mean_ber, mcs.bits_per_subcarrier))
            bitrate = np.where(
                eff >= mcs.min_snr_db, mcs.bitrate(self.sample_rate), bitrate
            )
        return bitrate * self.mac_efficiency
