"""The shared downlink queue over the wired backend (§9).

"In MegaMIMO, all downlink packets are sent on the Ethernet to all MegaMIMO
APs.  Thus, all APs in the network have the same downlink queue.  Each
packet in the queue has a designated AP, which is the AP with the strongest
SNR to the client to which that packet is destined."
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

import numpy as np

from repro.utils.validation import require

_sequence = itertools.count()


@dataclass
class Packet:
    """One downlink packet.

    Attributes:
        client: Destination client index.
        size_bytes: Payload size.
        designated_ap: AP index with the strongest SNR to the client.
        seqno: Monotonic enqueue order (FIFO key).
        retries: Times this packet has been (re)transmitted.
    """

    client: int
    size_bytes: int
    designated_ap: int
    seqno: int = field(default_factory=lambda: next(_sequence))
    retries: int = 0


class DownlinkQueue:
    """FIFO downlink queue replicated at every AP via the backend.

    Args:
        client_ap_snr_db: (n_clients, n_aps) SNR map used to designate APs.
    """

    def __init__(self, client_ap_snr_db: np.ndarray):
        snr = np.asarray(client_ap_snr_db, dtype=float)
        require(snr.ndim == 2, "need an (n_clients, n_aps) SNR map")
        self.client_ap_snr_db = snr
        self.n_clients, self.n_aps = snr.shape
        self._queue: Deque[Packet] = deque()

    def designated_ap(self, client: int) -> int:
        """AP with the strongest SNR to ``client``."""
        return int(np.argmax(self.client_ap_snr_db[client]))

    def enqueue(self, client: int, size_bytes: int = 1500) -> Packet:
        """Add one packet for ``client``; designation happens here."""
        require(0 <= client < self.n_clients, "unknown client")
        packet = Packet(
            client=client,
            size_bytes=size_bytes,
            designated_ap=self.designated_ap(client),
        )
        self._queue.append(packet)
        return packet

    def requeue(self, packet: Packet) -> None:
        """Return an unACKed packet for a future joint transmission (§9)."""
        packet.retries += 1
        self._queue.append(packet)

    def head(self) -> Optional[Packet]:
        """The packet MegaMIMO always transmits next (head of the queue)."""
        return self._queue[0] if self._queue else None

    def remove(self, packet: Packet) -> None:
        self._queue.remove(packet)

    def pending_for(self, client: int) -> List[Packet]:
        return [p for p in self._queue if p.client == client]

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self):
        return iter(self._queue)
