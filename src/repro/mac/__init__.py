"""MegaMIMO's link layer (§9): shared downlink queue over the wired
backend, lead election, joint-transmission grouping, weighted carrier
sense, effective-SNR rate selection and asynchronous acknowledgments."""

from repro.mac.arq import ArqController, PacketStatus
from repro.mac.baseline import (
    baseline_80211_throughput,
    baseline_80211n_throughput,
    megamimo_throughput_from_rates,
)
from repro.mac.csma import CsmaSimulator, Station
from repro.mac.queue import DownlinkQueue, Packet
from repro.mac.rate import EffectiveSnrRateSelector, effective_snr_db, select_mcs_for_snr
from repro.mac.scheduler import JointScheduler, TransmissionGroup

__all__ = [
    "EffectiveSnrRateSelector",
    "select_mcs_for_snr",
    "effective_snr_db",
    "DownlinkQueue",
    "Packet",
    "JointScheduler",
    "TransmissionGroup",
    "CsmaSimulator",
    "Station",
    "ArqController",
    "PacketStatus",
    "baseline_80211_throughput",
    "baseline_80211n_throughput",
    "megamimo_throughput_from_rates",
]
