"""MegaMIMO's link layer (§9): shared downlink queue over the wired
backend, lead election, joint-transmission grouping, weighted carrier
sense, effective-SNR rate selection and asynchronous acknowledgments."""

from repro.mac.rate import (
    EffectiveSnrRateSelector,
    select_mcs_for_snr,
    effective_snr_db,
)
from repro.mac.queue import DownlinkQueue, Packet
from repro.mac.scheduler import JointScheduler, TransmissionGroup
from repro.mac.csma import CsmaSimulator, Station
from repro.mac.arq import ArqController, PacketStatus
from repro.mac.baseline import (
    baseline_80211_throughput,
    baseline_80211n_throughput,
    megamimo_throughput_from_rates,
)

__all__ = [
    "EffectiveSnrRateSelector",
    "select_mcs_for_snr",
    "effective_snr_db",
    "DownlinkQueue",
    "Packet",
    "JointScheduler",
    "TransmissionGroup",
    "CsmaSimulator",
    "Station",
    "ArqController",
    "PacketStatus",
    "baseline_80211_throughput",
    "baseline_80211n_throughput",
    "megamimo_throughput_from_rates",
]
