"""Baseline throughput models the paper compares against.

* **Traditional 802.11** (the USRP-testbed baseline, §11.2): only one AP may
  transmit on the channel at a time, so N clients time-share it.  "Since
  USRPs don't have carrier sense, we compute 802.11 throughput by providing
  each client with an equal share of the medium."
* **Traditional 802.11n** (the compat-testbed baseline, §11.5): each client
  gets 2-stream MIMO service from its best AP, again with an equal airtime
  share.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mac.rate import EffectiveSnrRateSelector
from repro.utils.validation import require


def baseline_80211_throughput(
    per_client_subcarrier_snr_db: Sequence[np.ndarray],
    selector: EffectiveSnrRateSelector,
) -> np.ndarray:
    """Per-client 802.11 throughput under equal medium sharing (bits/s).

    Args:
        per_client_subcarrier_snr_db: For each client, its per-subcarrier
            SNRs from its best AP (single-AP unicast).
        selector: Rate selector (carries sample rate + MAC efficiency).

    Returns:
        (n_clients,) throughput; client i gets rate_i / n_clients.
    """
    n = len(per_client_subcarrier_snr_db)
    require(n >= 1, "need at least one client")
    rates = np.array(
        [selector.goodput(snrs) for snrs in per_client_subcarrier_snr_db]
    )
    return rates / n


def baseline_80211n_throughput(
    per_client_stream_snrs_db: Sequence[Sequence[np.ndarray]],
    selector: EffectiveSnrRateSelector,
) -> np.ndarray:
    """Per-client 802.11n MIMO throughput under equal medium sharing.

    Args:
        per_client_stream_snrs_db: For each client, a list of per-stream
            per-subcarrier SNR arrays (2 streams for a 2-antenna client
            served by its best 2-antenna AP).
        selector: Rate selector.

    Returns:
        (n_clients,) throughput; each client's streams sum, then the medium
        is shared equally.
    """
    n = len(per_client_stream_snrs_db)
    require(n >= 1, "need at least one client")
    rates = np.array(
        [
            sum(selector.goodput(snrs) for snrs in streams)
            for streams in per_client_stream_snrs_db
        ]
    )
    return rates / n


def megamimo_throughput_from_rates(per_stream_goodput: Sequence[float]) -> float:
    """Total MegaMIMO throughput: all streams fly concurrently (bits/s)."""
    return float(np.sum(per_stream_goodput))
