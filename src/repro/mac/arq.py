"""Asynchronous acknowledgments and retransmission (§9).

"MegaMIMO disables synchronous ACKs at clients and uses higher layer
asynchronous acknowledgments like in prior work such as MRD and ZipTx.
[...] As in regular 802.11, APs in MegaMIMO keep packets in the queue until
they are ACKed.  If a packet is not ACKed, they can be combined with other
packets in the queue for future concurrent transmissions."

Crucially, per-client losses are **decoupled**: stale channel state to one
client corrupts only that client's stream; the others decode fine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.mac.queue import DownlinkQueue, Packet
from repro.utils.validation import require


class PacketStatus(enum.Enum):
    """Lifecycle of an in-flight packet."""

    IN_FLIGHT = "in_flight"
    ACKED = "acked"
    LOST = "lost"


@dataclass
class _Flight:
    packet: Packet
    sent_at: float
    status: PacketStatus = PacketStatus.IN_FLIGHT


class ArqController:
    """Tracks in-flight packets and feeds losses back into the queue.

    Args:
        queue: The shared downlink queue packets return to on loss.
        ack_timeout_s: How long to wait for the asynchronous ACK before
            declaring a packet lost and requeueing it.
        max_retries: Drop a packet after this many retransmissions.
    """

    def __init__(
        self,
        queue: DownlinkQueue,
        ack_timeout_s: float = 10e-3,
        max_retries: int = 7,
    ):
        require(ack_timeout_s > 0, "timeout must be positive")
        self.queue = queue
        self.ack_timeout_s = float(ack_timeout_s)
        self.max_retries = int(max_retries)
        self._in_flight: Dict[int, _Flight] = {}
        self.delivered: List[Packet] = []
        self.dropped: List[Packet] = []

    def on_transmit(self, packet: Packet, now: float) -> None:
        """Record that ``packet`` left in a joint transmission at ``now``."""
        self._in_flight[packet.seqno] = _Flight(packet=packet, sent_at=now)

    def on_ack(self, seqno: int) -> None:
        """Asynchronous higher-layer ACK arrived for ``seqno``."""
        flight = self._in_flight.pop(seqno, None)
        if flight is None:
            return  # duplicate/late ACK
        flight.status = PacketStatus.ACKED
        self.delivered.append(flight.packet)

    def poll_timeouts(self, now: float) -> List[Packet]:
        """Requeue every packet whose ACK timer expired; returns them.

        Packets beyond ``max_retries`` are dropped instead.
        """
        expired = [
            f for f in self._in_flight.values()
            if now - f.sent_at >= self.ack_timeout_s
        ]
        requeued = []
        for flight in expired:
            del self._in_flight[flight.packet.seqno]
            flight.status = PacketStatus.LOST
            if flight.packet.retries >= self.max_retries:
                self.dropped.append(flight.packet)
            else:
                self.queue.requeue(flight.packet)
                requeued.append(flight.packet)
        return requeued

    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def status_of(self, seqno: int) -> Optional[PacketStatus]:
        flight = self._in_flight.get(seqno)
        return flight.status if flight else None
