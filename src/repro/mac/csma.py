"""Carrier-sense contention with weighted windows (§9, building on [29]).

"The lead AP contends on behalf of all slave APs, with its contention
window weighted by the number of packets in the joint transmission."  With
a joint transmission of n streams the lead draws its backoff from a window
n times smaller, so in expectation it wins the medium n times as often as a
single-packet contender — preserving per-packet airtime fairness between
MegaMIMO and legacy stations.

The simulator is a slotted idealization of DCF: every round, each station
draws a uniform backoff from its window; the smallest draw wins the round;
ties are collisions (nobody transmits useful data).  It also models hidden
terminals (stations that cannot hear each other transmit regardless of the
winner) and the blacklist mechanism of [34] used by §9 to exclude APs that
trigger persistent hidden-terminal losses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple


from repro.utils.rng import ensure_rng
from repro.utils.validation import require


@dataclass
class Station:
    """One contender on the medium.

    Attributes:
        name: Identifier.
        weight: Contention weight (number of packets in the joint
            transmission for a MegaMIMO lead; 1 for a normal station).
        base_window: Un-weighted contention window (slots).
    """

    name: str
    weight: int = 1
    base_window: int = 32

    @property
    def window(self) -> int:
        """Effective contention window: base window divided by weight."""
        return max(2, self.base_window // max(self.weight, 1))


@dataclass
class ContentionOutcome:
    """Tallies from a contention simulation.

    Attributes:
        wins: Rounds won per station.
        collisions: Rounds lost to a tie.
        rounds: Total rounds simulated.
    """

    wins: Dict[str, int]
    collisions: int
    rounds: int

    def share(self, name: str) -> float:
        """Fraction of non-collision rounds won by ``name``."""
        useful = self.rounds - self.collisions
        return self.wins[name] / useful if useful else 0.0


class CsmaSimulator:
    """Slotted contention among stations, with optional hidden pairs."""

    def __init__(self, stations: List[Station], rng=None):
        require(len(stations) >= 1, "need at least one station")
        names = [s.name for s in stations]
        require(len(set(names)) == len(names), "station names must be unique")
        self.stations = list(stations)
        self._rng = ensure_rng(rng)
        self._hidden: Set[Tuple[str, str]] = set()
        self._blacklisted: Set[str] = set()
        self.loss_counts: Dict[str, int] = {s.name: 0 for s in stations}

    def set_hidden(self, a: str, b: str) -> None:
        """Mark two stations as unable to hear each other."""
        self._hidden.add((a, b))
        self._hidden.add((b, a))

    def is_hidden(self, a: str, b: str) -> bool:
        return (a, b) in self._hidden

    def blacklist(self, name: str) -> None:
        """Exclude a station from joint transmissions (§9's [34] mechanism)."""
        self._blacklisted.add(name)

    @property
    def blacklisted(self) -> Set[str]:
        return set(self._blacklisted)

    def active_stations(self) -> List[Station]:
        return [s for s in self.stations if s.name not in self._blacklisted]

    def run(self, rounds: int, loss_threshold: Optional[int] = None) -> ContentionOutcome:
        """Simulate ``rounds`` contention rounds.

        A round is a collision when the minimum backoff is shared, or when
        the winner has a hidden peer that (not having heard it) transmits
        over it with probability proportional to its window occupancy.
        Stations whose hidden-terminal losses exceed ``loss_threshold`` are
        blacklisted mid-run, as §9 prescribes.
        """
        wins = {s.name: 0 for s in self.stations}
        collisions = 0
        # DCF semantics: losers freeze their backoff while the winner
        # transmits and resume the residual afterwards, so long-run win
        # rates are proportional to 1/window — which is what makes the
        # weighted window deliver an n-fold airtime share ([29]).
        counters: Dict[str, int] = {}
        for _ in range(rounds):
            active = self.active_stations()
            if not active:
                break
            for s in active:
                if s.name not in counters:
                    counters[s.name] = int(self._rng.integers(0, s.window))
            draws = {s.name: counters[s.name] for s in active}
            lowest = min(draws.values())
            winners = [name for name, d in draws.items() if d == lowest]
            # elapse `lowest` idle slots, then the winners' transmission
            for name in draws:
                counters[name] -= lowest
            for name in winners:
                del counters[name]  # redraw next round
            if len(winners) > 1:
                collisions += 1
                continue
            winner = winners[0]
            # hidden peers never saw the winner grab the medium; they talk
            # over it whenever their own backoff would have expired during
            # the winner's transmission — approximate as their draw being
            # within one slot of the winner's
            hidden_clobber = False
            for s in active:
                if s.name != winner and self.is_hidden(s.name, winner):
                    if draws[s.name] <= lowest + 1:
                        hidden_clobber = True
                        self.loss_counts[winner] += 1
            if hidden_clobber:
                collisions += 1
                if (
                    loss_threshold is not None
                    and self.loss_counts[winner] > loss_threshold
                ):
                    self.blacklist(winner)
                continue
            wins[winner] += 1
        return ContentionOutcome(wins=wins, collisions=collisions, rounds=rounds)
